"""Setuptools entry point (kept for legacy editable installs without wheel)."""

from setuptools import setup

setup()
