"""Section 6.4 case studies (Listings 2 and 3).

* Case study 1: a store-bound block both models predict correctly; the
  explanations should name the store instructions (fine-grained features).
* Case study 2: a division/dependency-heavy block; the simulator's
  explanation should name the ``div`` instruction or a dependency, while the
  neural model's explanation is typically coarser.
"""

from conftest import emit

from repro.bb.features import FeatureKind
from repro.eval.case_studies import run_case_studies


def test_case_studies(benchmark, eval_context, results_dir):
    results = benchmark.pedantic(
        lambda: run_case_studies(eval_context), rounds=1, iterations=1
    )
    emit(results_dir, "case_studies", "\n\n".join(r.render() for r in results))

    by_name = {r.name: r for r in results}
    study1 = by_name["case-study-1"]
    study2 = by_name["case-study-2"]

    # Case study 1: uiCA's prediction is close to the "hardware" number and
    # its explanation contains fine-grained features.
    uica1 = study1.explanations["uiCA"]
    assert abs(uica1.prediction - study1.hardware_throughput) <= 1.0
    assert uica1.is_fine_grained

    # Case study 2: the block is division-bound (tens of cycles on hardware)
    # and uiCA's explanation pins a fine-grained feature of the block.
    assert study2.hardware_throughput > 10.0
    uica2 = study2.explanations["uiCA"]
    assert uica2.is_fine_grained
    described = " ".join(f.describe() for f in uica2.features)
    assert "div" in described or "RAW" in described
