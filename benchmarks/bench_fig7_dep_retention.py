"""Figure 7 (Appendix E.3): accuracy and precision vs explicit dependency
retention probability.

The paper selects 0.1 as the value that balances explanation accuracy and
precision.  The reproduction reports both series for the same sweep.
"""

from conftest import emit

from repro.eval.ablations import sweep_dependency_retention
from repro.utils.tables import render_series

PROBABILITIES = (0.0, 0.1, 0.3, 0.5)


def test_fig7_dependency_retention(benchmark, eval_context, results_dir):
    blocks = eval_context.test_blocks()[: max(len(eval_context.test_blocks()) // 2, 8)]
    points = benchmark.pedantic(
        lambda: sweep_dependency_retention(eval_context, PROBABILITIES, blocks=blocks),
        rounds=1,
        iterations=1,
    )
    text = render_series(
        "Figure 7: accuracy and precision vs explicit dependency retention",
        [p.value for p in points],
        {
            "accuracy (%)": [p.accuracy for p in points],
            "avg precision": [p.precision for p in points],
        },
        x_label="p_explicit_retain",
        precision=2,
    )
    emit(results_dir, "fig7_dep_retention", text)

    by_value = {float(p.value): p for p in points}
    assert by_value[0.1].accuracy >= max(p.accuracy for p in points) - 25.0
    assert all(0.0 <= p.precision <= 1.0 for p in points)
