"""Figure 4: error vs explanation granularity, partitioned by BHive category.

The paper repeats the Figure 2 study on 50-block partitions per category
(Load, Load/Store, Store, Scalar, Vector, Scalar/Vector).  The reproduction
checks the headline trend — the neural model's error is at least as large as
the simulator's in every category — and reports the full composition table
per category.
"""

from conftest import emit

from repro.eval.error_correlation import (
    render_granularity_table,
    run_partitioned_granularity_experiment,
)


def test_fig4_partition_by_category(benchmark, eval_context, results_dir):
    per_category = benchmark.pedantic(
        lambda: run_partitioned_granularity_experiment(
            eval_context,
            partition="category",
            blocks_per_partition=max(eval_context.settings.test_set_size // 2, 8),
        ),
        rounds=1,
        iterations=1,
    )
    sections = []
    for category, results in per_category.items():
        sections.append(render_granularity_table(f"Figure 4 ({category})", results))
    emit(results_dir, "fig4_categories", "\n\n".join(sections))

    assert len(per_category) >= 4
    worse_or_equal = 0
    for category, results in per_category.items():
        by_label = {r.model_label: r for r in results}
        if by_label["Ithemal"].mape >= by_label["uiCA"].mape:
            worse_or_equal += 1
    # The neural model is the higher-error model in (nearly) every partition.
    assert worse_or_equal >= len(per_category) - 1
