"""Figure 5 (Appendix E.1): explanation accuracy vs the precision threshold.

The paper sweeps the threshold ``1 − δ`` and picks 0.7 as the largest value
still attaining the best accuracy.  The reproduction reports the same sweep
and checks that the default threshold is competitive with every other value.
"""

from conftest import emit

from repro.eval.ablations import sweep_precision_threshold
from repro.utils.tables import render_series

THRESHOLDS = (0.5, 0.6, 0.7, 0.8, 0.9)


def test_fig5_precision_threshold(benchmark, eval_context, results_dir):
    blocks = eval_context.test_blocks()[: max(len(eval_context.test_blocks()) // 2, 8)]
    points = benchmark.pedantic(
        lambda: sweep_precision_threshold(eval_context, THRESHOLDS, blocks=blocks),
        rounds=1,
        iterations=1,
    )
    text = render_series(
        "Figure 5: explanation accuracy vs precision threshold (1 - delta)",
        [p.value for p in points],
        {"accuracy (%)": [p.accuracy for p in points]},
        x_label="threshold",
        precision=1,
    )
    emit(results_dir, "fig5_precision_threshold", text)

    by_value = {float(p.value): p.accuracy for p in points}
    best = max(by_value.values())
    # The paper's default threshold (0.7) should be within reach of the best
    # sweep point (ties are common at this evaluation scale).
    assert by_value[0.7] >= best - 20.0
    assert all(0.0 <= p.accuracy <= 100.0 for p in points)
