"""Micro-benchmarks of the building blocks (not a paper table).

These use pytest-benchmark's normal timing loop to track the cost of the
operations the explanation workload performs thousands of times per block:
perturbation sampling, pipeline simulation, neural-model inference and one
full explanation.  Useful for spotting performance regressions.
"""

import pytest

from repro.bb.block import BasicBlock
from repro.explain.config import ExplainerConfig
from repro.explain.explainer import CometExplainer
from repro.models.analytical import AnalyticalCostModel
from repro.models.uica import UiCACostModel
from repro.perturb.sampler import PerturbationSampler

BLOCK_TEXT = """
    mov ecx, edx
    xor edx, edx
    lea rax, [rcx + rax - 1]
    div rcx
    mov rdx, rcx
    imul rax, rcx
"""


@pytest.fixture(scope="module")
def block():
    return BasicBlock.from_text(BLOCK_TEXT)


def test_perturbation_sampling_speed(benchmark, block):
    sampler = PerturbationSampler(block, rng=0)
    benchmark(lambda: sampler.sample_unconstrained(10))


def test_pipeline_simulation_speed(benchmark, block):
    model = UiCACostModel("hsw")
    benchmark(lambda: model.simulator.throughput(block))


def test_neural_inference_speed(benchmark, block, eval_context):
    model = eval_context.ithemal_model("hsw")
    benchmark(lambda: model.inner.predict(block))


def test_full_explanation_speed(benchmark, block):
    model = AnalyticalCostModel("hsw")
    config = ExplainerConfig(epsilon=0.2, relative_epsilon=0.0)

    def explain_once():
        return CometExplainer(model, config, rng=0).explain(block)

    explanation = benchmark.pedantic(explain_once, rounds=3, iterations=1)
    assert explanation.precision > 0.0
