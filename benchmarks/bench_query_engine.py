"""Throughput benchmark of the batched query engine.

Measures the end-to-end explanation pipeline in two configurations:

* **sequential** — the pre-batching engine: one ``model.predict`` call per
  perturbed block and the scalar reference implementation of Γ
  (``PerturbationConfig(vectorized=False)``),
* **batched** — the batched query engine: every precision-refinement round
  routes all its perturbed blocks through a single ``predict_batch`` call,
  Γ runs its vectorized fast path, and the cache wrapper dedupes batches.

Reported per mode: wall-clock time, explanations/sec, real model queries,
queries/sec and the cache hit rate.  A raw model-level microbenchmark
(``predict_many`` vs ``predict_batch`` on a fixed perturbation set) is
included so the model-side speedup is visible independently of the sampler.

Run standalone (writes ``BENCH_query_engine.json`` at the repository root):

    PYTHONPATH=src python benchmarks/bench_query_engine.py
    PYTHONPATH=src python benchmarks/bench_query_engine.py --quick --model crude
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

import os

from repro.data.synthesis import BlockSynthesizer
from repro.explain.config import ExplainerConfig
from repro.explain.explainer import CometExplainer
from repro.models.base import CachedCostModel
from repro.models.registry import build_cost_model
from repro.perturb.config import PerturbationConfig
from repro.runtime.backend import available_backends
from repro.runtime.session import ExplanationSession

#: Report sections, in run (and report) order.  ``core`` is the
#: sequential/batched/microbench trio the report is named after; the rest
#: are independently selectable with ``--only``/``--skip``, and a partial
#: run merges its sections into an existing report file instead of
#: clobbering the sections it did not run.
SECTIONS = (
    "core",
    "matrix",
    "service",
    "socket",
    "dispatchers",
    "continuous_batching",
    "result_cache",
    "resilience",
    "soa_engine",
    "encoded_pipeline",
)


def parse_args(argv=None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--model", default="crude", help="cost model short name")
    parser.add_argument("--microarch", default="hsw")
    parser.add_argument("--blocks", type=int, default=12, help="number of blocks to explain")
    parser.add_argument("--min-size", type=int, default=4, help="smallest block (instructions)")
    parser.add_argument("--max-size", type=int, default=14, help="largest block (instructions)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--workers", type=int, default=0, help="thread fan-out for simulator models")
    parser.add_argument(
        "--quick", action="store_true", help="tiny configuration for CI smoke runs"
    )
    parser.add_argument(
        "--matrix-model",
        default="uica",
        help="simulator-backed model for the backend matrix",
    )
    parser.add_argument(
        "--matrix-workers",
        type=int,
        default=None,
        help="worker count for the thread/process backends (default: CPU count)",
    )
    parser.add_argument(
        "--matrix-blocks",
        type=int,
        default=6,
        help="number of blocks explained per backend in the matrix",
    )
    parser.add_argument(
        "--only",
        nargs="+",
        choices=SECTIONS,
        default=None,
        metavar="SECTION",
        help="run only these sections (default: all); a partial run merges "
        f"into an existing report file. Sections: {', '.join(SECTIONS)}",
    )
    parser.add_argument(
        "--skip",
        nargs="+",
        choices=SECTIONS,
        default=[],
        metavar="SECTION",
        help="sections to leave out (applied after --only)",
    )
    parser.add_argument(
        "--service-repeats",
        type=int,
        default=4,
        help="how many times each block is requested in the service benchmark "
        "(a serving workload re-sees hot blocks)",
    )
    parser.add_argument(
        "--dispatcher-counts",
        type=int,
        nargs="+",
        default=[1, 2, 4],
        help="dispatcher fleet sizes measured in the scheduler matrix",
    )
    parser.add_argument(
        "--dispatcher-repeats",
        type=int,
        default=2,
        help="how many times each (block, uarch) pair is requested per "
        "dispatcher count",
    )
    parser.add_argument(
        "--fused-outstanding",
        type=int,
        nargs="+",
        default=[1, 2, 4, 8],
        help="concurrently outstanding same-key requests measured in the "
        "continuous-batching benchmark",
    )
    parser.add_argument(
        "--fused-repeats",
        type=int,
        default=12,
        help="how many seeds each block is requested under per "
        "continuous-batching run",
    )
    parser.add_argument(
        "--output",
        default=str(REPO_ROOT / "BENCH_query_engine.json"),
        help="where to write the JSON report",
    )
    return parser.parse_args(argv)


def build_model(args) -> CachedCostModel:
    model = build_cost_model(
        args.model, args.microarch, cached=False, batch_workers=args.workers
    )
    return CachedCostModel(model)


def explainer_config(batched: bool) -> ExplainerConfig:
    return ExplainerConfig(
        epsilon=0.2,
        relative_epsilon=0.0,
        batch_queries=batched,
        perturbation=PerturbationConfig(vectorized=batched),
    )


def run_mode(args, blocks, batched: bool) -> dict:
    model = build_model(args)
    explainer = CometExplainer(model, explainer_config(batched), rng=args.seed)
    start = time.perf_counter()
    explanations = explainer.explain_many(blocks, rng=args.seed)
    elapsed = time.perf_counter() - start
    queries = model.query_count  # real inner-model evaluations
    lookups = model.hits + model.misses
    return {
        "mode": "batched" if batched else "sequential",
        "blocks": len(blocks),
        "seconds": round(elapsed, 4),
        "explanations_per_sec": round(len(blocks) / elapsed, 4),
        "model_queries": queries,
        "queries_per_sec": round(queries / elapsed, 1),
        "cache_lookups": lookups,
        "cache_hit_rate": round(model.hit_rate, 4),
        "mean_precision": round(
            sum(e.precision for e in explanations) / len(explanations), 4
        ),
        "anchors_meeting_threshold": sum(e.meets_threshold for e in explanations),
    }


def run_model_microbench(args, blocks) -> dict:
    """predict_many vs predict_batch on a fixed set of perturbed blocks."""
    from repro.perturb.sampler import PerturbationSampler

    per_block = 40 if args.quick else 200
    queries = []
    for block in blocks:
        sampler = PerturbationSampler(block, rng=args.seed)
        queries.extend(sampler.sample_unconstrained(per_block))

    sequential_model = build_model(args).inner
    start = time.perf_counter()
    sequential_values = sequential_model.predict_many(queries)
    sequential_elapsed = time.perf_counter() - start

    batched_model = build_model(args).inner
    start = time.perf_counter()
    batched_values = batched_model.predict_batch(queries)
    batched_elapsed = time.perf_counter() - start

    max_abs_diff = max(
        abs(a - b) for a, b in zip(sequential_values, batched_values)
    )
    return {
        "queries": len(queries),
        "predict_many_qps": round(len(queries) / sequential_elapsed, 1),
        "predict_batch_qps": round(len(queries) / batched_elapsed, 1),
        "model_speedup": round(sequential_elapsed / batched_elapsed, 2),
        "max_abs_prediction_diff": max_abs_diff,
    }


def run_backend_matrix(args, blocks) -> dict:
    """Explanations/sec on a simulator-backed model per execution backend.

    The simulator is pure Python, so the thread backend stays GIL-bound while
    the process backend scales with cores: this is the experiment behind the
    runtime's ProcessBackend.  Each backend explains the same seeded workload
    through one ExplanationSession; parity of the results is a by-product
    (and is pinned separately by tests/explain/test_batch_parity.py).
    """
    workers = args.matrix_workers or os.cpu_count() or 1
    matrix = {
        "model": args.matrix_model,
        "workers": workers,
        "cpus": os.cpu_count() or 1,
        "blocks": len(blocks),
        "backends": {},
    }
    config = explainer_config(batched=True)
    for backend_name in available_backends():
        model = build_cost_model(args.matrix_model, args.microarch, cached=True)
        with ExplanationSession(
            model, config, backend=backend_name, workers=workers, rng=args.seed
        ) as session:
            start = time.perf_counter()
            session.explain_many(blocks, rng=args.seed)
            elapsed = time.perf_counter() - start
            stats = session.stats()
        matrix["backends"][backend_name] = {
            "seconds": round(elapsed, 4),
            "explanations_per_sec": round(len(blocks) / elapsed, 4),
            "model_queries": stats.model_queries,
            "cache_hit_rate": round(stats.cache_hit_rate, 4),
        }
    thread_rate = matrix["backends"]["thread"]["explanations_per_sec"]
    process_rate = matrix["backends"]["process"]["explanations_per_sec"]
    matrix["process_vs_thread_speedup"] = (
        round(process_rate / thread_rate, 2) if thread_rate else None
    )
    if matrix["cpus"] < 2:
        # The simulator is pure Python: threads are GIL-bound, so the process
        # backend's gain is bounded by the core count.  On one core it can
        # only measure its own IPC overhead.
        matrix["note"] = (
            "single-CPU host: process fan-out has no parallelism to win; "
            "the process/thread ratio approaches the core count on "
            "multi-core hardware (>=2x from 2-4 cores up)"
        )
    return matrix


def run_service_bench(args, blocks) -> dict:
    """Warm-session service vs a cold session per request.

    The request stream visits each block ``--service-repeats`` times with the
    same seed (interleaved) — the serving scenario the warm session exists
    for: retries, several consumers of one report, fleet-wide hot blocks.
    A repeated request's queries all hit the resident cache, where the cold
    path rebuilds the model, session and cache from scratch every time.  The
    simulator-backed matrix model is used because its per-query cost is what
    a production cost model looks like; seeded results are identical on both
    paths (the service's determinism contract), so this measures pure
    serving overhead.
    """
    from repro.service import ExplanationService

    config = explainer_config(batched=True)
    model_name = args.matrix_model
    stream = [
        (block, args.seed)
        for _repeat in range(args.service_repeats)
        for block in blocks
    ]

    with ExplanationService(
        model=model_name, uarch=args.microarch, config=config
    ) as service:
        start = time.perf_counter()
        ids = [service.submit(block, seed=seed) for block, seed in stream]
        for request_id in ids:
            service.result(request_id)
        warm_elapsed = time.perf_counter() - start
        stats = service.stats()
        warm_hit_rate = stats.session_stats[
            (model_name, args.microarch)
        ].cache_hit_rate

    start = time.perf_counter()
    for block, seed in stream:
        with ExplanationService(
            model=model_name, uarch=args.microarch, config=config
        ) as cold:
            cold.explain(block, seed=seed)
    cold_elapsed = time.perf_counter() - start

    return {
        "model": model_name,
        "requests": len(stream),
        "distinct_blocks": len(blocks),
        "repeats_per_block": args.service_repeats,
        "warm_seconds": round(warm_elapsed, 4),
        "warm_requests_per_sec": round(len(stream) / warm_elapsed, 4),
        "warm_cache_hit_rate": round(warm_hit_rate, 4),
        "cold_seconds": round(cold_elapsed, 4),
        "cold_requests_per_sec": round(len(stream) / cold_elapsed, 4),
        "warm_vs_cold_speedup": round(cold_elapsed / warm_elapsed, 2),
    }


def run_socket_bench(args, blocks) -> dict:
    """TCP transport overhead: the same warm stream, in-process vs socket.

    Both runs drive one warm :class:`ExplanationService` with an identical
    pipelined request stream (submit everything, then collect); the socket
    run adds a loopback TCP hop, JSON serialisation of the responses and
    the per-connection reader/writer threads.  The *cheap* analytical model
    is used on purpose — under a simulator model the per-request compute
    hides the transport entirely, and this section exists to measure the
    transport.  Results are bit-identical on both paths (same service
    semantics), so the delta is pure wire overhead.
    """
    from repro.service import ExplanationService, ServiceClient, SocketServer

    config = explainer_config(batched=True)
    stream = [
        (block, args.seed)
        for _repeat in range(args.service_repeats)
        for block in blocks
    ]

    with ExplanationService(
        model="crude", uarch=args.microarch, config=config, max_queue=len(stream)
    ) as service:
        start = time.perf_counter()
        ids = [service.submit(block, seed=seed) for block, seed in stream]
        for request_id in ids:
            service.result(request_id)
        direct_elapsed = time.perf_counter() - start

    with ExplanationService(
        model="crude", uarch=args.microarch, config=config, max_queue=len(stream)
    ) as service:
        with SocketServer(service, port=0) as server:
            with ServiceClient(*server.address, timeout=600) as client:
                start = time.perf_counter()
                ids = [client.submit(block, seed=seed) for block, seed in stream]
                for request_id in ids:
                    client.result(request_id)
                socket_elapsed = time.perf_counter() - start

    overhead_ms = (socket_elapsed - direct_elapsed) * 1000.0 / len(stream)
    return {
        "model": "crude",
        "requests": len(stream),
        "direct_seconds": round(direct_elapsed, 4),
        "direct_requests_per_sec": round(len(stream) / direct_elapsed, 4),
        "socket_seconds": round(socket_elapsed, 4),
        "socket_requests_per_sec": round(len(stream) / socket_elapsed, 4),
        "socket_overhead_ms_per_request": round(overhead_ms, 3),
        "socket_vs_direct": round(socket_elapsed / direct_elapsed, 3),
    }


def run_dispatcher_matrix(args, blocks) -> dict:
    """Warm-service throughput at 1/2/4 dispatchers on a mixed-key stream.

    The stream requests every block on *both* microarchitectures (two
    session keys), repeated — the workload shape the scheduler exists for:
    same-key requests stay serialized on one dispatcher (the determinism
    contract), distinct keys spread across the fleet.  Seeded results are
    identical at every dispatcher count (pinned by the service parity
    tests), so the matrix measures pure scheduling/parallelism effect.  On
    a single-CPU host every count measures the same core plus scheduler
    overhead; the per-section ``cpus`` stamp makes that floor
    machine-detectable.
    """
    from repro.service import ExplanationService

    config = explainer_config(batched=True)
    model_name = args.matrix_model
    uarchs = ("hsw", "skl")
    stream = [
        (block, args.seed, uarch)
        for _repeat in range(args.dispatcher_repeats)
        for uarch in uarchs
        for block in blocks
    ]
    matrix = {
        "model": model_name,
        "uarchs": list(uarchs),
        "requests": len(stream),
        "distinct_blocks": len(blocks),
        "repeats": args.dispatcher_repeats,
        "dispatchers": {},
    }
    for count in args.dispatcher_counts:
        with ExplanationService(
            model=model_name,
            uarch=args.microarch,
            config=config,
            dispatchers=count,
            max_queue=len(stream),
            max_sessions=len(uarchs),
        ) as service:
            start = time.perf_counter()
            ids = [
                service.submit(block, seed=seed, uarch=uarch)
                for block, seed, uarch in stream
            ]
            for request_id in ids:
                service.result(request_id)
            elapsed = time.perf_counter() - start
            stats = service.stats()
        matrix["dispatchers"][str(count)] = {
            "seconds": round(elapsed, 4),
            "requests_per_sec": round(len(stream) / elapsed, 4),
            "executed_per_dispatcher": [
                d.executed for d in stats.dispatcher_stats
            ],
            "stolen": sum(d.stolen for d in stats.dispatcher_stats),
        }
    # "vs single" means exactly that: the baseline is the count==1 entry,
    # not whatever the caller listed first; without one the ratio is
    # meaningless and recorded as null.
    top_count = max(args.dispatcher_counts)
    top = matrix["dispatchers"][str(top_count)]["requests_per_sec"]
    single = matrix["dispatchers"].get("1")
    matrix["scaling_vs_single"] = (
        round(top / single["requests_per_sec"], 2)
        if single and single["requests_per_sec"]
        else None
    )
    if (os.cpu_count() or 1) < 2:
        matrix["note"] = (
            "single-CPU host: dispatchers time-slice one core, so the matrix "
            "measures scheduler overhead only; cross-key scaling needs "
            "multi-core hardware (bounded by min(dispatchers, distinct "
            "keys, cores))"
        )
    return matrix


def run_continuous_batching_bench(args) -> dict:
    """Fused vs unfused serving of a same-key warm request stream.

    The substrate is an Ithemal-style neural model (the paper's serving
    target): its ``predict_batch`` pays a per-invocation cost — padding,
    batch setup, the LSTM readout — before any per-block work, which is
    exactly what continuous batching amortizes.  The weights are untrained
    (the registry build needs training data; serving cost is independent
    of weight values), so the session is built inline via
    ``session_factory``.  Blocks are small hot micro-blocks and the
    KL-LUCB budget uses many small rounds (``batch_size=4``), the regime
    a production explainer cache-front faces: short loops re-explained
    under many seeds, round structure dominated by call count.

    Every configuration serves the identical stream — each block
    requested under ``--fused-repeats`` distinct seeds, all submitted up
    front so the requests are genuinely outstanding together — through a
    fresh single-dispatcher service per trial, five trials each, best
    trial reported (minimum wall-clock, the standard microbenchmark
    estimator — trial times here are fractions of a second, where
    scheduler noise only ever adds).  A fresh service per trial keeps the
    query cache identically cold every time; reusing one service would
    let the cache accumulate until later trials stop invoking the model
    at all, which is fast but measures nothing.  One throwaway serve up
    front pays process-global warmup (numpy dispatch, allocator).  The
    unfused run serves the stream one request at a time (the per-key
    mutual exclusion baseline); each fused run caps the tick group at one
    of ``--fused-outstanding`` resident requests.  Seeded results are bit-for-bit identical in every
    configuration (the fusion parity suite pins this), so the difference
    is purely how many ``predict_batch`` invocations the same KL-LUCB
    rounds cost: ``model_calls_saved`` (= rounds_fused - ticks) records
    the per-tick amortization directly.  That lever is thread-free — it
    holds on a 1-CPU host, where dispatcher fan-out cannot help.
    """
    from repro.models.ithemal import IthemalConfig, IthemalCostModel
    from repro.service import ExplanationService

    hidden_size = 448
    config = ExplainerConfig(
        epsilon=0.2,
        relative_epsilon=0.0,
        coverage_samples=40,
        min_precision_samples=8,
        max_precision_samples=300,
        batch_size=4,
        batch_queries=True,
        perturbation=PerturbationConfig(vectorized=True),
    )
    blocks = BlockSynthesizer(rng=args.seed).generate_many(
        6, min_instructions=2, max_instructions=3, rng=args.seed + 1
    )
    # Block-major: all seeds of one hot block are adjacent, so a fused tick
    # holds same-length sequences (no LSTM padding waste) — the shape of a
    # real hot-block fan-in, where many clients re-explain one block.
    stream = [
        (block, args.seed + repeat)
        for block in blocks
        for repeat in range(args.fused_repeats)
    ]

    def session_factory(model_name, uarch):
        return ExplanationSession(
            IthemalCostModel(uarch, IthemalConfig(hidden_size=hidden_size)), config
        )

    def serve_once(continuous_batching, max_fused):
        with ExplanationService(
            model="ithemal",
            uarch=args.microarch,
            config=config,
            session_factory=session_factory,
            dispatchers=1,
            continuous_batching=continuous_batching,
            max_fused_requests=max_fused,
            max_queue=len(stream),
        ) as service:
            start = time.perf_counter()
            ids = [service.submit(block, seed=seed) for block, seed in stream]
            for request_id in ids:
                service.result(request_id)
            elapsed = time.perf_counter() - start
            stats = service.stats()
        return elapsed, stats

    def serve(continuous_batching, max_fused, trials=5):
        best, stats = serve_once(continuous_batching, max_fused)
        for _ in range(trials - 1):
            elapsed, stats = serve_once(continuous_batching, max_fused)
            best = min(best, elapsed)
        return best, stats

    serve_once(False, 1)  # throwaway: process-global warmup
    unfused_elapsed, _ = serve(False, 1)
    unfused_rps = len(stream) / unfused_elapsed
    section = {
        "model": "ithemal",
        "hidden_size": hidden_size,
        "requests": len(stream),
        "distinct_blocks": len(blocks),
        "seeds_per_block": args.fused_repeats,
        "unfused_seconds": round(unfused_elapsed, 4),
        "unfused_requests_per_sec": round(unfused_rps, 4),
        "outstanding": {},
    }
    for outstanding in args.fused_outstanding:
        elapsed, stats = serve(True, outstanding)
        fusion = stats.fusion  # counters from the last trial (one stream)
        section["outstanding"][str(outstanding)] = {
            "seconds": round(elapsed, 4),
            "requests_per_sec": round(len(stream) / elapsed, 4),
            "fused_vs_unfused": round(len(stream) / elapsed / unfused_rps, 2),
            "ticks": fusion.ticks,
            "rounds_fused": fusion.rounds_fused,
            "mean_rounds_per_tick": round(fusion.mean_occupancy, 2),
            "model_calls_saved": fusion.rounds_fused - fusion.ticks,
            "shared_cache_hits": fusion.shared_hits,
            "absorbed": stats.absorbed,
        }
    return section


def run_result_cache_bench(args, blocks) -> dict:
    """The persistent result cache: disabled vs cold vs warm vs restart.

    A seeded explanation is a pure function of its fingerprint, so the
    result cache memoizes *whole explanations* — a warm hit skips the
    entire anchor search, not just inner-model queries.  The stream
    requests each block under two seeds; every configuration serves that
    identical stream twice through the simulator-backed matrix model (per
    request compute is what makes the memo worth keeping):

    * ``disabled`` — ``result_cache=False``; the second pass recomputes
      every search (only the session's query LRU is warm, so this second
      pass — not the cold first — is the honest baseline for a warm hit);
    * ``cold`` — a fresh on-disk store; first pass computes and writes
      through;
    * ``warm`` — the same service's second pass, served from tier 0;
    * ``warm_restart`` — a *new* service over the same store file, served
      from the on-disk tier (scan, CRC check, unpickle, promote).

    Results are bit-identical in every configuration (the cache-state
    parity matrix in tests/integration pins this), so the deltas are
    purely what memoization saves and what the store costs.
    """
    import tempfile

    from repro.service import ExplanationService

    config = explainer_config(batched=True)
    model_name = args.matrix_model
    stream = [
        (block, args.seed + repeat)
        for repeat in range(2)
        for block in blocks
    ]

    def serve_pass(service) -> float:
        start = time.perf_counter()
        ids = [service.submit(block, seed=seed) for block, seed in stream]
        for request_id in ids:
            service.result(request_id)
        return time.perf_counter() - start

    def rps(elapsed: float) -> float:
        return round(len(stream) / elapsed, 4)

    with tempfile.TemporaryDirectory() as tmp:
        store = Path(tmp) / "bench.cache"
        with ExplanationService(
            model=model_name,
            uarch=args.microarch,
            config=config,
            result_cache=False,
            max_queue=len(stream),
        ) as service:
            # The first pass doubles as the cold baseline: a fresh
            # session with nothing memoized, exactly what the cold cached
            # run pays *minus* the write-through — their ratio isolates
            # the store's cost.  The second pass has the query LRU warm,
            # which is what a long-lived uncached service looks like, so
            # it is the honest baseline for a warm hit.
            disabled_first_elapsed = serve_pass(service)
            disabled_elapsed = serve_pass(service)
        with ExplanationService(
            model=model_name,
            uarch=args.microarch,
            config=config,
            result_cache=str(store),
            max_queue=len(stream),
        ) as service:
            cold_elapsed = serve_pass(service)
            warm_elapsed = serve_pass(service)
            warm_stats = service.stats().result_cache
        with ExplanationService(
            model=model_name,
            uarch=args.microarch,
            config=config,
            result_cache=str(store),
            max_queue=len(stream),
        ) as service:
            restart_elapsed = serve_pass(service)
            restart_stats = service.stats().result_cache

    return {
        "model": model_name,
        "requests": len(stream),
        "distinct_blocks": len(blocks),
        "seeds_per_block": 2,
        "disabled_first_pass_seconds": round(disabled_first_elapsed, 4),
        "disabled_seconds": round(disabled_elapsed, 4),
        "disabled_requests_per_sec": rps(disabled_elapsed),
        "cold_seconds": round(cold_elapsed, 4),
        "cold_requests_per_sec": rps(cold_elapsed),
        "warm_seconds": round(warm_elapsed, 4),
        "warm_requests_per_sec": rps(warm_elapsed),
        "warm_hit_rate": round(warm_stats.hit_rate, 4),
        "warm_restart_seconds": round(restart_elapsed, 4),
        "warm_restart_requests_per_sec": rps(restart_elapsed),
        "restart_disk_hits": restart_stats.disk.hits,
        "store_bytes": warm_stats.disk.bytes,
        "warm_vs_disabled_speedup": round(disabled_elapsed / warm_elapsed, 2),
        "cold_write_through_overhead": round(
            cold_elapsed / disabled_first_elapsed, 3
        ),
    }


def run_resilience_bench(args, blocks) -> dict:
    """Price of fault tolerance: SIGKILL recovery and checkpoint replay.

    Two measurements.  First, the supervised process backend predicts the
    same batch healthy and then with every pool worker SIGKILLed — the
    recovery run pays broken-pool detection, a pool rebuild and one full
    retry, so the ratio is the worst-case stall one worker OOM-kill
    inflicts on a batch.  Second, a checkpointed ``explain_many`` runs
    fresh and then resumes over its own completed journal — the replay
    ratio is what a crash-and-restart costs relative to the work the
    journal saved.  Both recoveries are bit-for-bit (pinned by
    tests/runtime/test_supervision.py and test_checkpoint.py); this
    section records only their speed.
    """
    import signal
    import tempfile

    from repro.runtime.backend import BackendRetryPolicy, ProcessBackend

    workers = 2
    model = build_cost_model(args.matrix_model, args.microarch, cached=False)
    retry = BackendRetryPolicy(backoff=0.0, max_backoff=0.0)
    with ProcessBackend(workers, retry=retry) as backend:
        backend.predict_blocks(model, blocks)  # warm the pool
        start = time.perf_counter()
        healthy = backend.predict_blocks(model, blocks)
        healthy_elapsed = time.perf_counter() - start

        pool = backend._pool
        for pid in list(pool._processes):
            os.kill(pid, signal.SIGKILL)
        deadline = time.monotonic() + 10.0
        for process in list(pool._processes.values()):
            process.join(max(deadline - time.monotonic(), 0.1))

        start = time.perf_counter()
        recovered = backend.predict_blocks(model, blocks)
        recovery_elapsed = time.perf_counter() - start
        stats = backend.worker_stats()
    if recovered != healthy:  # bit-for-bit, or the timings are meaningless
        raise RuntimeError("recovered batch diverged from the healthy batch")

    config = explainer_config(batched=True)
    with tempfile.TemporaryDirectory() as tmp:
        journal = Path(tmp) / "bench.jsonl"
        with ExplanationSession(build_model(args), config) as session:
            start = time.perf_counter()
            session.explain_many(blocks, rng=args.seed, checkpoint=journal)
            fresh_elapsed = time.perf_counter() - start
        with ExplanationSession(build_model(args), config) as session:
            start = time.perf_counter()
            session.explain_many(blocks, rng=args.seed, checkpoint=journal)
            replay_elapsed = time.perf_counter() - start
            skips = session.stats().checkpoint_skips

    return {
        "model": args.matrix_model,
        "blocks": len(blocks),
        "workers": workers,
        "healthy_batch_seconds": round(healthy_elapsed, 4),
        "sigkill_recovery_seconds": round(recovery_elapsed, 4),
        "recovery_vs_healthy": round(recovery_elapsed / healthy_elapsed, 2),
        "worker_restarts": stats["restarts"],
        "batch_retries": stats["retries"],
        "checkpoint_model": args.model,
        "checkpoint_fresh_seconds": round(fresh_elapsed, 4),
        "checkpoint_replay_seconds": round(replay_elapsed, 4),
        "checkpoint_replay_speedup": round(fresh_elapsed / replay_elapsed, 2),
        "checkpoint_skips": skips,
    }


def run_soa_engine_bench(args, blocks) -> dict:
    """Struct-of-arrays Γ engine + fused batch loop vs the pre-SoA hot path.

    Both lanes run the full batched explanation pipeline over the same
    seeded workload.  The ``baseline`` lane forces the pre-SoA
    configuration — the ``legacy`` per-perturbation Γ engine and the numpy
    gather/reduceat batch kernel — while the ``soa`` lane runs the current
    defaults (wave-structured struct-of-arrays Γ, fused per-block cost
    loop, array-state KL-LUCB rounds).  A Γ-only microbenchmark per engine
    (reference oracle included) isolates the perturbation-layer speedup
    from the Amdahl-limited end-to-end number.
    """
    from repro.perturb.algorithm import BlockPerturber, forced_engine

    def lane(engine_name: str) -> dict:
        model = build_model(args)
        if engine_name == "legacy":
            model.inner._use_reference_batch_kernel = True
        explainer = CometExplainer(model, explainer_config(batched=True), rng=args.seed)
        with forced_engine(engine_name if engine_name != "soa" else None):
            start = time.perf_counter()
            explainer.explain_many(blocks, rng=args.seed)
            elapsed = time.perf_counter() - start
        return {
            "seconds": round(elapsed, 4),
            "explanations_per_sec": round(len(blocks) / elapsed, 4),
            "model_queries": model.query_count,
        }

    def gamma_rate(engine_name: str) -> float:
        count = 200 if args.quick else 2000
        total = 0.0
        drawn = 0
        for block in blocks:
            perturber = BlockPerturber(block, rng=args.seed, engine=engine_name)
            start = time.perf_counter()
            perturber.perturb_many(count)
            total += time.perf_counter() - start
            drawn += count
        return round(drawn / total, 1)

    baseline = lane("legacy")
    soa = lane("soa")
    return {
        "blocks": len(blocks),
        "baseline_pre_soa": baseline,
        "soa": soa,
        "explanations_per_sec_speedup": round(
            soa["explanations_per_sec"] / baseline["explanations_per_sec"], 2
        ),
        "gamma_perturbations_per_sec": {
            engine: gamma_rate(engine) for engine in ("reference", "legacy", "soa")
        },
    }


def run_encoded_pipeline_bench(args, blocks) -> dict:
    """Encoded perturbation batches end to end vs the materialised pipeline.

    Three analytical-model lanes run the identical seeded workload through
    the full batched explanation pipeline:

    * ``pr9_baseline`` — encoding off *and* the KL-bound bisection memo off:
      exactly the PR 9 hot path, re-measured in the same run so the headline
      speedup is an honest same-machine A/B rather than a comparison against
      a stale recorded number;
    * ``materialized`` — encoding off, memo on: isolates the satellite
      bound-memo win from the columnar-pipeline win;
    * ``encoded`` — the current defaults: Γ emits encoded rows, the cache
      dedupes on row keys, and the analytical row kernel predicts without
      constructing a single block.

    An Ithemal-model pair (untrained weights — serving cost is independent
    of weight values) records the neural-model win, where the encoded path
    additionally amortises re-tokenisation through the per-instruction
    embedding memo.  Results are asserted bit-for-bit identical across all
    lanes of each pair — a lane that diverged would make the timings
    meaningless — and the encoded lanes record their row accounting so the
    report shows how much of the pipeline actually stayed encoded.
    """
    from contextlib import nullcontext

    from repro.explain.precision import bound_memo_disabled
    from repro.models.ithemal import IthemalCostModel
    from repro.perturb.batch import encoded_tally, forced_encoded

    def lane(workload, model_factory, encoded, memo, trials):
        def once():
            model = model_factory()
            explainer = CometExplainer(
                model, explainer_config(batched=True), rng=args.seed
            )
            memo_ctx = nullcontext() if memo else bound_memo_disabled()
            tally_base = encoded_tally()
            with forced_encoded(encoded), memo_ctx:
                start = time.perf_counter()
                explanations = explainer.explain_many(workload, rng=args.seed)
                elapsed = time.perf_counter() - start
            tally = encoded_tally().delta(tally_base)
            results = [
                (
                    tuple(str(f) for f in e.features),
                    e.precision,
                    e.coverage,
                    e.num_queries,
                    e.prediction,
                )
                for e in explanations
            ]
            return elapsed, model.query_count, tally, results

        elapsed, queries, tally, results = once()
        for _ in range(trials - 1):
            again, queries, tally, results = once()
            elapsed = min(elapsed, again)
        row = {
            "seconds": round(elapsed, 4),
            "explanations_per_sec": round(len(workload) / elapsed, 4),
            "model_queries": queries,
            "encoded_rows": tally.encoded,
            "materialized_rows": tally.materialized,
        }
        return row, results

    def pair(workload, model_factory, trials):
        lanes = {}
        baseline_results = None
        for name, encoded, memo in (
            ("pr9_baseline", False, False),
            ("materialized", False, True),
            ("encoded", True, True),
        ):
            lanes[name], results = lane(workload, model_factory, encoded, memo, trials)
            if baseline_results is None:
                baseline_results = results
            elif results != baseline_results:  # bit-for-bit, or timings lie
                raise RuntimeError(f"{name} lane diverged from pr9_baseline")
        base_rate = lanes["pr9_baseline"]["explanations_per_sec"]
        lanes["encoded_vs_pr9"] = round(
            lanes["encoded"]["explanations_per_sec"] / base_rate, 2
        )
        lanes["encoded_vs_materialized"] = round(
            lanes["encoded"]["explanations_per_sec"]
            / lanes["materialized"]["explanations_per_sec"],
            2,
        )
        return lanes

    analytical = pair(
        blocks, lambda: build_model(args), trials=1 if args.quick else 3
    )
    neural_blocks = BlockSynthesizer(rng=args.seed).generate_many(
        2 if args.quick else 12,
        min_instructions=6,
        max_instructions=12,
        rng=args.seed + 2,
    )

    # An untrained Ithemal predicts near-uniformly, so KL-LUCB converges at
    # the sample floor and there is no query traffic to measure.  Train a
    # small configuration briefly (seeded, against the analytical model's
    # throughputs) so predictions vary with block content; parameters are
    # snapshotted once and restored per trial — lane timings never include
    # training, and every trial starts from identical weights.
    def trained_ithemal():
        from repro.models.analytical import AnalyticalCostModel
        from repro.models.ithemal import IthemalConfig

        teacher = AnalyticalCostModel(args.microarch)
        training = BlockSynthesizer(rng=args.seed + 3).generate_many(
            32, min_instructions=3, max_instructions=10, rng=args.seed + 4
        )
        model = IthemalCostModel(
            args.microarch,
            IthemalConfig(embedding_size=16, hidden_size=16, epochs=2),
        )
        model.train(training, [teacher.predict(b) for b in training])
        return {name: value.copy() for name, value in model.parameters().items()}, model

    weights, template = trained_ithemal()

    def ithemal_factory():
        for name, value in template.parameters().items():
            value[...] = weights[name]
        template._embed_memo.clear()
        return CachedCostModel(template)

    ithemal = pair(
        neural_blocks,
        ithemal_factory,
        trials=1 if args.quick else 3,
    )
    return {
        "blocks": len(blocks),
        "analytical": analytical,
        "ithemal": {"blocks": len(neural_blocks), **ithemal},
    }


def stamp_host_cpus(report: dict) -> None:
    """Stamp the host CPU count into the report and every section.

    Recorded numbers are only comparable on similar hardware — a
    single-CPU container shows IPC/scheduling floors where a multi-core
    host shows speedups.  With the count stamped per section, that
    distinction is machine-detectable instead of a prose note.
    """
    cpus = os.cpu_count() or 1
    report["host_cpus"] = cpus
    for section in report.values():
        if isinstance(section, dict):
            section["cpus"] = cpus


def main(argv=None) -> int:
    args = parse_args(argv)
    skipped = set(args.skip)
    selected = {s for s in (args.only or SECTIONS) if s not in skipped}
    if args.quick:
        args.blocks = min(args.blocks, 3)
        args.max_size = min(args.max_size, 8)
        args.matrix_blocks = min(args.matrix_blocks, 2)
        args.dispatcher_repeats = 1
        args.fused_repeats = min(args.fused_repeats, 2)

    synthesizer = BlockSynthesizer(rng=args.seed)
    blocks = synthesizer.generate_many(
        args.blocks,
        min_instructions=args.min_size,
        max_instructions=args.max_size,
        rng=args.seed + 1,
    )

    report = {
        "benchmark": "query_engine",
        "model": args.model,
        "microarch": args.microarch,
        "seed": args.seed,
        "block_sizes": [args.min_size, args.max_size],
    }

    sequential = batched = micro = speedup = None
    if "core" in selected:
        sequential = run_mode(args, blocks, batched=False)
        batched = run_mode(args, blocks, batched=True)
        micro = run_model_microbench(args, blocks)
        speedup = round(
            batched["explanations_per_sec"] / sequential["explanations_per_sec"], 2
        )
        report["sequential"] = sequential
        report["batched"] = batched
        report["explanations_per_sec_speedup"] = speedup
        report["model_microbench"] = micro

    matrix = None
    if "matrix" in selected:
        matrix_blocks = blocks[: args.matrix_blocks]
        matrix = run_backend_matrix(args, matrix_blocks)
        report["backend_matrix"] = matrix

    service = None
    if "service" in selected:
        service = run_service_bench(args, blocks[: args.matrix_blocks])
        report["service"] = service

    socket_bench = None
    if "socket" in selected:
        socket_bench = run_socket_bench(args, blocks[: args.matrix_blocks])
        report["service_socket"] = socket_bench

    dispatcher_matrix = None
    if "dispatchers" in selected:
        dispatcher_matrix = run_dispatcher_matrix(args, blocks[: args.matrix_blocks])
        report["dispatcher_matrix"] = dispatcher_matrix

    continuous = None
    if "continuous_batching" in selected:
        continuous = run_continuous_batching_bench(args)
        report["continuous_batching"] = continuous

    result_cache = None
    if "result_cache" in selected:
        result_cache = run_result_cache_bench(args, blocks[: args.matrix_blocks])
        report["result_cache"] = result_cache

    resilience = None
    if "resilience" in selected:
        resilience = run_resilience_bench(args, blocks[: args.matrix_blocks])
        report["resilience"] = resilience

    soa_engine = None
    if "soa_engine" in selected:
        soa_engine = run_soa_engine_bench(args, blocks)
        report["soa_engine"] = soa_engine

    encoded_pipeline = None
    if "encoded_pipeline" in selected:
        encoded_pipeline = run_encoded_pipeline_bench(args, blocks)
        report["encoded_pipeline"] = encoded_pipeline

    output = Path(args.output)
    if selected != set(SECTIONS) and output.exists():
        # Partial run: keep the sections this invocation did not measure, so
        # --only re-records one section without clobbering the report.
        try:
            previous = json.loads(output.read_text())
        except (OSError, ValueError):
            previous = {}
        if isinstance(previous, dict):
            previous.update(report)
            report = previous

    stamp_host_cpus(report)
    output.write_text(json.dumps(report, indent=2) + "\n")

    print(
        f"query-engine benchmark — model={args.model} blocks={len(blocks)} "
        f"sections={','.join(s for s in SECTIONS if s in selected)}"
    )
    if sequential is not None:
        for row in (sequential, batched):
            print(
                f"  {row['mode']:>10}: {row['seconds']:7.2f}s  "
                f"{row['explanations_per_sec']:7.3f} expl/s  "
                f"{row['queries_per_sec']:9.1f} q/s  "
                f"hit-rate {row['cache_hit_rate']:.2%}"
            )
        print(
            f"  speedup: {speedup:.2f}x explanations/sec  "
            f"(model-level predict_batch: {micro['model_speedup']:.2f}x)"
        )
    if matrix is not None:
        print(
            f"backend matrix — model={matrix['model']} "
            f"workers={matrix['workers']} cpus={matrix['cpus']}"
        )
        for name, row in matrix["backends"].items():
            print(
                f"  {name:>10}: {row['seconds']:7.2f}s  "
                f"{row['explanations_per_sec']:7.3f} expl/s"
            )
        print(f"  process vs thread: {matrix['process_vs_thread_speedup']}x")
    if service is not None:
        print(
            f"service — model={service['model']} {service['requests']} requests "
            f"({service['distinct_blocks']} blocks x{service['repeats_per_block']})"
        )
        print(
            f"        warm: {service['warm_seconds']:7.2f}s  "
            f"{service['warm_requests_per_sec']:7.3f} req/s  "
            f"hit-rate {service['warm_cache_hit_rate']:.2%}"
        )
        print(
            f"        cold: {service['cold_seconds']:7.2f}s  "
            f"{service['cold_requests_per_sec']:7.3f} req/s"
        )
        print(f"  warm vs cold: {service['warm_vs_cold_speedup']:.2f}x requests/sec")
    if socket_bench is not None:
        print(
            f"socket transport — {socket_bench['requests']} requests on "
            f"model={socket_bench['model']}"
        )
        print(
            f"      direct: {socket_bench['direct_seconds']:7.2f}s  "
            f"{socket_bench['direct_requests_per_sec']:7.3f} req/s"
        )
        print(
            f"      socket: {socket_bench['socket_seconds']:7.2f}s  "
            f"{socket_bench['socket_requests_per_sec']:7.3f} req/s"
        )
        print(
            f"  overhead: {socket_bench['socket_overhead_ms_per_request']:.2f} ms/request "
            f"({socket_bench['socket_vs_direct']:.3f}x elapsed)"
        )
    if dispatcher_matrix is not None:
        print(
            f"dispatcher matrix — model={dispatcher_matrix['model']} "
            f"{dispatcher_matrix['requests']} requests over "
            f"{len(dispatcher_matrix['uarchs'])} uarch keys"
        )
        for count, row in dispatcher_matrix["dispatchers"].items():
            print(
                f"  {count:>2} dispatchers: {row['seconds']:7.2f}s  "
                f"{row['requests_per_sec']:7.3f} req/s  "
                f"({row['stolen']} stolen)"
            )
        if dispatcher_matrix["scaling_vs_single"] is not None:
            print(
                f"  scaling vs single dispatcher: "
                f"{dispatcher_matrix['scaling_vs_single']}x"
            )
    if continuous is not None:
        print(
            f"continuous batching — model={continuous['model']} "
            f"{continuous['requests']} same-key requests "
            f"({continuous['distinct_blocks']} blocks x"
            f"{continuous['seeds_per_block']} seeds)"
        )
        print(
            f"     unfused: {continuous['unfused_seconds']:7.2f}s  "
            f"{continuous['unfused_requests_per_sec']:7.3f} req/s"
        )
        for outstanding, row in continuous["outstanding"].items():
            print(
                f"  {outstanding:>2} outstanding: {row['seconds']:7.2f}s  "
                f"{row['requests_per_sec']:7.3f} req/s  "
                f"({row['fused_vs_unfused']:.2f}x, "
                f"{row['mean_rounds_per_tick']:.2f} rounds/tick, "
                f"{row['model_calls_saved']} calls saved)"
            )
    if result_cache is not None:
        print(
            f"result cache — model={result_cache['model']} "
            f"{result_cache['requests']} requests "
            f"({result_cache['distinct_blocks']} blocks x"
            f"{result_cache['seeds_per_block']} seeds)"
        )
        print(
            f"      disabled: {result_cache['disabled_seconds']:7.2f}s  "
            f"{result_cache['disabled_requests_per_sec']:7.3f} req/s"
        )
        print(
            f"          cold: {result_cache['cold_seconds']:7.2f}s  "
            f"{result_cache['cold_requests_per_sec']:7.3f} req/s  "
            f"(write-through {result_cache['cold_write_through_overhead']:.3f}x)"
        )
        print(
            f"          warm: {result_cache['warm_seconds']:7.2f}s  "
            f"{result_cache['warm_requests_per_sec']:7.3f} req/s  "
            f"hit-rate {result_cache['warm_hit_rate']:.2%}"
        )
        print(
            f"       restart: {result_cache['warm_restart_seconds']:7.2f}s  "
            f"{result_cache['warm_restart_requests_per_sec']:7.3f} req/s  "
            f"({result_cache['restart_disk_hits']} disk hits)"
        )
        print(
            f"  warm vs disabled: "
            f"{result_cache['warm_vs_disabled_speedup']:.2f}x requests/sec"
        )
    if resilience is not None:
        print(
            f"resilience — model={resilience['model']} "
            f"{resilience['blocks']} blocks, {resilience['workers']} workers"
        )
        print(
            f"     healthy batch: {resilience['healthy_batch_seconds']:7.2f}s   "
            f"sigkill recovery: {resilience['sigkill_recovery_seconds']:7.2f}s  "
            f"({resilience['recovery_vs_healthy']:.2f}x, "
            f"{resilience['worker_restarts']} restarts)"
        )
        print(
            f"  checkpoint fresh: {resilience['checkpoint_fresh_seconds']:7.2f}s   "
            f"journal replay: {resilience['checkpoint_replay_seconds']:7.2f}s  "
            f"({resilience['checkpoint_replay_speedup']:.2f}x, "
            f"{resilience['checkpoint_skips']} skips)"
        )
    if soa_engine is not None:
        print(f"soa engine — {soa_engine['blocks']} blocks")
        for name in ("baseline_pre_soa", "soa"):
            row = soa_engine[name]
            print(
                f"  {name:>16}: {row['seconds']:7.2f}s  "
                f"{row['explanations_per_sec']:7.3f} expl/s"
            )
        print(
            f"  soa vs pre-soa: "
            f"{soa_engine['explanations_per_sec_speedup']:.2f}x explanations/sec"
        )
        gamma = soa_engine["gamma_perturbations_per_sec"]
        print(
            "  Γ perturbations/sec: "
            + "  ".join(f"{engine}={gamma[engine]:,.0f}" for engine in gamma)
        )
    if encoded_pipeline is not None:
        print(f"encoded pipeline — {encoded_pipeline['blocks']} blocks")
        for model_key in ("analytical", "ithemal"):
            section = encoded_pipeline[model_key]
            for name in ("pr9_baseline", "materialized", "encoded"):
                row = section[name]
                print(
                    f"  {model_key:>10} {name:>12}: {row['seconds']:7.2f}s  "
                    f"{row['explanations_per_sec']:7.3f} expl/s  "
                    f"({row['encoded_rows']} encoded / "
                    f"{row['materialized_rows']} materialized rows)"
                )
            print(
                f"  {model_key:>10} encoded vs pr9: "
                f"{section['encoded_vs_pr9']:.2f}x  "
                f"(vs materialized+memo: "
                f"{section['encoded_vs_materialized']:.2f}x)"
            )
    print(f"  report written to {output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
