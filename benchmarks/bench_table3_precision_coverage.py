"""Table 3: average precision and coverage of COMET's explanations.

Paper values: precision ≈ 0.78–0.81 and coverage ≈ 0.18–0.19 for Ithemal and
uiCA on Haswell and Skylake.  The reproduction checks that precision is high
(at or above the 0.7 threshold on average) and coverage is a non-trivial
fraction of the perturbation space for every model/micro-architecture pair.
"""

from conftest import emit

from repro.eval.precision_coverage import run_precision_coverage_experiment


def test_table3_precision_coverage(benchmark, eval_context, results_dir):
    result = benchmark.pedantic(
        lambda: run_precision_coverage_experiment(eval_context),
        rounds=1,
        iterations=1,
    )
    emit(results_dir, "table3_precision_coverage", result.render())

    assert len(result.rows) == 4  # 2 models x 2 microarchitectures
    for row in result.rows:
        assert row.precision_mean >= 0.6, row.model_label
        assert 0.01 <= row.coverage_mean <= 0.9, row.model_label
