"""Figure 2: prediction error vs explanation granularity (Haswell & Skylake).

Paper finding: Ithemal has the higher MAPE and its explanations contain the
coarse-grained instruction-count feature η far more often than uiCA's, whose
explanations skew towards specific instructions and data dependencies.
"""

from conftest import emit

from repro.eval.error_correlation import (
    render_granularity_table,
    run_error_granularity_experiment,
)


def test_fig2_error_vs_granularity(benchmark, eval_context, results_dir):
    results = benchmark.pedantic(
        lambda: run_error_granularity_experiment(eval_context), rounds=1, iterations=1
    )
    text = render_granularity_table(
        "Figure 2: MAPE vs explanation feature composition (Ithemal vs uiCA)",
        results,
    )
    emit(results_dir, "fig2_error_granularity", text)

    by_key = {(r.model_label, r.microarch): r for r in results}
    for microarch in eval_context.settings.microarchs:
        ithemal = by_key[("Ithemal", microarch)]
        uica = by_key[("uiCA", microarch)]
        # The neural model is the less accurate one on every micro-architecture.
        assert ithemal.mape > uica.mape
    # ... and leans on the coarse-grained instruction-count feature more.  The
    # composition percentages are quantised to 1/test_set_size, so at the
    # default (small) scale this is asserted on the average across
    # micro-architectures rather than per micro-architecture.
    microarchs = eval_context.settings.microarchs
    ithemal_eta = [by_key[("Ithemal", m)].pct_num_instructions for m in microarchs]
    uica_eta = [by_key[("uiCA", m)].pct_num_instructions for m in microarchs]
    assert sum(ithemal_eta) / len(ithemal_eta) >= sum(uica_eta) / len(uica_eta)
