"""Figure 3: error vs explanation granularity, partitioned by BHive source.

The paper repeats the Figure 2 study on 100-block partitions drawn from the
Clang and OpenBLAS portions of BHive and observes the same inverse
correlation in each partition.
"""

from conftest import emit

from repro.eval.error_correlation import (
    render_granularity_table,
    run_partitioned_granularity_experiment,
)


def test_fig3_partition_by_source(benchmark, eval_context, results_dir):
    per_source = benchmark.pedantic(
        lambda: run_partitioned_granularity_experiment(
            eval_context,
            partition="source",
            blocks_per_partition=eval_context.settings.test_set_size,
        ),
        rounds=1,
        iterations=1,
    )
    sections = []
    for source, results in per_source.items():
        sections.append(
            render_granularity_table(f"Figure 3 ({source})", results)
        )
    emit(results_dir, "fig3_sources", "\n\n".join(sections))

    assert set(per_source) == {"clang", "openblas"}
    for source, results in per_source.items():
        by_label = {r.model_label: r for r in results}
        assert by_label["Ithemal"].mape > by_label["uiCA"].mape, source
    # The η-composition comparison is asserted on the average across the
    # source partitions: with the default (small) per-partition block counts
    # the percentages are too coarsely quantised for a meaningful
    # per-partition comparison (the paper uses 100 blocks per source).
    ithemal_eta = [
        {r.model_label: r for r in results}["Ithemal"].pct_num_instructions
        for results in per_source.values()
    ]
    uica_eta = [
        {r.model_label: r for r in results}["uiCA"].pct_num_instructions
        for results in per_source.values()
    ]
    assert sum(ithemal_eta) / len(ithemal_eta) >= sum(uica_eta) / len(uica_eta)
