"""Figure 6 (Appendix E.2): accuracy vs instruction-deletion probability.

The paper finds ``p_del = 0.33`` maximises explanation accuracy among the
candidates swept.  The reproduction reports the same sweep and checks the
default remains competitive.
"""

from conftest import emit

from repro.eval.ablations import sweep_deletion_probability
from repro.utils.tables import render_series

PROBABILITIES = (0.0, 0.33, 0.66, 1.0)


def test_fig6_deletion_probability(benchmark, eval_context, results_dir):
    blocks = eval_context.test_blocks()[: max(len(eval_context.test_blocks()) // 2, 8)]
    points = benchmark.pedantic(
        lambda: sweep_deletion_probability(eval_context, PROBABILITIES, blocks=blocks),
        rounds=1,
        iterations=1,
    )
    text = render_series(
        "Figure 6: explanation accuracy vs instruction deletion probability p_del",
        [p.value for p in points],
        {"accuracy (%)": [p.accuracy for p in points]},
        x_label="p_del",
        precision=1,
    )
    emit(results_dir, "fig6_deletion_prob", text)

    by_value = {float(p.value): p.accuracy for p in points}
    assert by_value[0.33] >= max(by_value.values()) - 20.0
