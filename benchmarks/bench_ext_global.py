"""Extension study: global explanations exist for simple models, not complex ones.

Not a table of the paper; this regenerates the evidence behind the Section 4
argument that motivates block-specific explanations.  The global explainer
searches for a predicate rule describing where each model's predictions land:

* for the paper's hypothetical model M1 ("2 cycles iff the block has 8
  instructions") the rule ``num_instructions == 8`` is recovered exactly
  (precision = recall = 1),
* for the realistic simulation-based model the best rule over a comparable
  prediction band is markedly less faithful, showing why COMET explains one
  block at a time.
"""

from conftest import emit

from repro.globalx.global_explainer import GlobalExplainer
from repro.globalx.threshold_model import InstructionCountThresholdModel
from repro.models.base import CachedCostModel
from repro.models.uica import UiCACostModel
from repro.utils.tables import render_table


def _run_study(eval_context):
    blocks = eval_context.dataset.filter_by_size(4, 10).blocks()

    m1 = InstructionCountThresholdModel(target_count=8)
    m1_explainer = GlobalExplainer(m1, blocks)
    m1_explanation = m1_explainer.explain_value(2.0, epsilon=0.25)

    uica = CachedCostModel(UiCACostModel("hsw"))
    uica_explainer = GlobalExplainer(uica, blocks)
    predictions = sorted(uica_explainer.predictions())
    low = predictions[len(predictions) // 3]
    high = predictions[2 * len(predictions) // 3]
    uica_explanation = uica_explainer.explain_range(low, high)

    rows = [
        [
            "M1 (count==8 toy model)",
            "[1.75, 2.25]",
            m1_explanation.rule.describe(),
            m1_explanation.precision,
            m1_explanation.recall,
            m1_explanation.f1,
        ],
        [
            "uiCA stand-in (Haswell)",
            f"[{low:.2f}, {high:.2f}]",
            uica_explanation.rule.describe(),
            uica_explanation.precision,
            uica_explanation.recall,
            uica_explanation.f1,
        ],
    ]
    return rows, m1_explanation, uica_explanation


def test_ext_global_explanations(benchmark, eval_context, results_dir):
    rows, m1_explanation, uica_explanation = benchmark.pedantic(
        lambda: _run_study(eval_context), rounds=1, iterations=1
    )
    text = render_table(
        ["Model", "Target T (cycles)", "Best global rule", "Precision", "Recall", "F1"],
        rows,
        title="Extension: global explanation quality, toy vs realistic cost model",
        precision=2,
    )
    emit(results_dir, "ext_global", text)

    # Shape assertions: the toy model admits a (near-)perfect global rule,
    # the realistic model does not.
    assert m1_explanation.precision >= 0.99
    assert m1_explanation.recall >= 0.99
    assert uica_explanation.f1 <= m1_explanation.f1
