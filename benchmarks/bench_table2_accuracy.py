"""Table 2: accuracy of COMET's explanations over the crude cost model.

Paper values (200 blocks, 5 seeds): Random 26.6±20.3 / 26.6±20.3,
Fixed 72.3 / 74.0, COMET 96.9±0.9 / 98.0±0.8 (Haswell / Skylake).
The reproduction targets the ordering and magnitudes (COMET far above both
baselines, close to 100%), not the exact figures.
"""

from conftest import emit

from repro.eval.accuracy import run_accuracy_experiment


def test_table2_accuracy(benchmark, eval_context, results_dir):
    result = benchmark.pedantic(
        lambda: run_accuracy_experiment(eval_context), rounds=1, iterations=1
    )
    emit(results_dir, "table2_accuracy", result.render())

    comet_hsw, _ = result.accuracy["COMET"]["hsw"]
    random_hsw, _ = result.accuracy["Random"]["hsw"]
    fixed_hsw, _ = result.accuracy["Fixed"]["hsw"]
    # Shape assertions: COMET dominates both baselines on every microarch.
    for microarch in result.microarchs:
        assert (
            result.accuracy["COMET"][microarch][0]
            > result.accuracy["Fixed"][microarch][0]
        )
        assert (
            result.accuracy["COMET"][microarch][0]
            > result.accuracy["Random"][microarch][0]
        )
    assert comet_hsw >= 60.0
    assert random_hsw <= 60.0
    assert fixed_hsw <= comet_hsw
