"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one table or figure of the paper.  They all share
one :class:`~repro.eval.context.EvaluationContext` (same dataset, same trained
models) so the suite runs in minutes; scale can be raised towards the paper's
setup with the ``REPRO_EVAL_*`` environment variables (see
``repro/eval/context.py``).

Each benchmark prints the regenerated rows/series and also writes them to
``benchmarks/results/<name>.txt`` so EXPERIMENTS.md can reference stable
artefacts.
"""

import os
import sys
from pathlib import Path

import pytest

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.eval.context import EvaluationContext, EvaluationSettings  # noqa: E402

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def eval_context() -> EvaluationContext:
    """The shared evaluation context (dataset + trained cost models)."""
    return EvaluationContext.shared(EvaluationSettings.from_env())


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def emit(results_dir: Path, name: str, text: str) -> None:
    """Print a regenerated table/figure and persist it under results/."""
    print()
    print(text)
    (results_dir / f"{name}.txt").write_text(text + "\n")
