"""Extension study: explanation-guided vs unguided block optimization.

Not a table of the paper; this regenerates the evidence for the Section 7
claim that COMET's explanations can guide optimization by telling the search
*which* block features to rewrite.  For each case-study block, a guided and
an unguided stochastic rewrite search (same proposal budget, same cost model)
minimise the uiCA stand-in's predicted throughput; the guided search should
reach an equal or lower predicted cost on average.
"""

from conftest import emit

from repro.bb.block import BasicBlock
from repro.eval.case_studies import CASE_STUDY_BLOCKS
from repro.explain.config import ExplainerConfig
from repro.guidance.optimizer import optimize_block
from repro.models.base import CachedCostModel
from repro.models.uica import UiCACostModel
from repro.utils.tables import render_table

_EXPLAINER = ExplainerConfig(
    coverage_samples=120,
    max_precision_samples=60,
    min_precision_samples=20,
)
_STEPS = 25


def _run_study():
    rows = []
    for name, text in CASE_STUDY_BLOCKS.items():
        block = BasicBlock.from_text(text)
        guided_model = CachedCostModel(UiCACostModel("hsw"))
        unguided_model = CachedCostModel(UiCACostModel("hsw"))
        guided = optimize_block(
            guided_model,
            block,
            guided=True,
            steps=_STEPS,
            rng=7,
            explainer_config=_EXPLAINER,
        )
        unguided = optimize_block(
            unguided_model, block, guided=False, steps=_STEPS, rng=7
        )
        rows.append(
            [
                name,
                guided.original_cost,
                guided.best_cost,
                unguided.best_cost,
                100.0 * guided.relative_improvement,
                100.0 * unguided.relative_improvement,
            ]
        )
    return rows


def test_ext_guided_optimization(benchmark, results_dir):
    rows = benchmark.pedantic(_run_study, rounds=1, iterations=1)
    text = render_table(
        [
            "Block",
            "Original (cyc)",
            "Guided best (cyc)",
            "Unguided best (cyc)",
            "Guided gain (%)",
            "Unguided gain (%)",
        ],
        rows,
        title="Extension: explanation-guided vs unguided optimization (uiCA, Haswell)",
        precision=2,
    )
    emit(results_dir, "ext_guidance", text)

    # Shape assertions: neither search makes a block worse, and on aggregate
    # the guided search is at least as good as the unguided one.
    for _, original, guided_best, unguided_best, *_ in rows:
        assert guided_best <= original + 1e-9
        assert unguided_best <= original + 1e-9
    total_guided = sum(row[2] for row in rows)
    total_unguided = sum(row[3] for row in rows)
    assert total_guided <= total_unguided + 1e-6
