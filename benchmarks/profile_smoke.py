"""cProfile smoke check of the explanation hot path.

Profiles a small batched analytical-model workload, prints the top-20
functions by cumulative time, and asserts two shares of the run:

* the cost model's own batch prediction keeps at least a *floor* share —
  the engine exists to spend its time querying the model, and framework
  code must not quietly grow back around the model calls;
* Γ (perturbation generation, ``perturb_many``/``perturb_batch``) stays
  under a *ceiling* share — the encoded-pipeline work of PR 10 moved block
  materialisation out of the hot loop, and a Γ share creeping back over
  the ceiling means rows are being materialised eagerly again (the Amdahl
  budget ``docs/performance.md`` tracks).

Run standalone (exits non-zero when either bound is violated):

    PYTHONPATH=src python benchmarks/profile_smoke.py
    PYTHONPATH=src python benchmarks/profile_smoke.py --min-model-share 0.1
    PYTHONPATH=src python benchmarks/profile_smoke.py --max-gamma-share 0.5
"""

from __future__ import annotations

import argparse
import cProfile
import pstats
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.data.synthesis import BlockSynthesizer
from repro.explain.config import ExplainerConfig
from repro.explain.explainer import CometExplainer
from repro.models.analytical import AnalyticalCostModel
from repro.models.base import CachedCostModel


def parse_args(argv=None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--blocks", type=int, default=4)
    parser.add_argument("--min-size", type=int, default=4)
    parser.add_argument("--max-size", type=int, default=10)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--min-model-share",
        type=float,
        default=0.10,
        help="required share of total profiled time spent inside the inner "
        "model's _predict_batch (cumulative)",
    )
    parser.add_argument(
        "--max-gamma-share",
        type=float,
        default=0.55,
        help="maximum share of total profiled time spent inside Γ "
        "(perturb_many/perturb_batch, cumulative)",
    )
    parser.add_argument("--top", type=int, default=20)
    return parser.parse_args(argv)


def model_share(stats: pstats.Stats) -> float:
    """Cumulative-time share of the inner model's batch prediction.

    The markers are matched on function name so the check survives
    line-number drift.  ``_predict_rows_batch`` is the analytical model's
    fused kernel — the top-level inner entry on the encoded path, where
    ``predict_batch`` calls it directly and ``_predict_batch`` never runs;
    ``_predict_batch`` covers the materialised and reference-kernel paths.
    Taking the max (never the sum: one delegates to the other) keeps the
    floor meaningful on every lane.
    """
    total = stats.total_tt
    if total <= 0.0:
        raise SystemExit("profile captured no time at all")
    best = 0.0
    for (filename, _line, name), entry in stats.stats.items():
        if name in ("_predict_batch", "_predict_rows_batch") and filename.endswith(
            "analytical.py"
        ):
            cumulative = entry[3]
            best = max(best, cumulative)
    return best / total


def gamma_share(stats: pstats.Stats) -> float:
    """Cumulative-time share of Γ: perturbation generation end to end.

    ``perturb_many`` and ``perturb_batch`` are disjoint entry points (the
    eager and encoded sampler paths) so their cumulative times add without
    double counting; matching on ``algorithm.py`` keeps the check pinned to
    the perturber even if same-named methods appear elsewhere.
    """
    total = stats.total_tt
    if total <= 0.0:
        raise SystemExit("profile captured no time at all")
    gamma = 0.0
    for (filename, _line, name), entry in stats.stats.items():
        if name in ("perturb_many", "perturb_batch") and filename.endswith(
            "algorithm.py"
        ):
            gamma += entry[3]
    return gamma / total


def main(argv=None) -> int:
    args = parse_args(argv)
    blocks = BlockSynthesizer(rng=args.seed).generate_many(
        args.blocks,
        min_instructions=args.min_size,
        max_instructions=args.max_size,
        rng=args.seed + 1,
    )
    model = CachedCostModel(AnalyticalCostModel("hsw"))
    explainer = CometExplainer(
        model,
        ExplainerConfig(epsilon=0.2, relative_epsilon=0.0, batch_queries=True),
        rng=args.seed,
    )
    explainer.explain(blocks[0], rng=args.seed)  # warm caches/tables

    profiler = cProfile.Profile()
    profiler.enable()
    explainer.explain_many(blocks, rng=args.seed + 1)
    profiler.disable()

    stats = pstats.Stats(profiler)
    stats.sort_stats("cumulative").print_stats(args.top)
    share = model_share(stats)
    print(f"inner-model _predict_batch share of total time: {share:.1%}")
    gamma = gamma_share(stats)
    print(f"gamma perturb_many/perturb_batch share of total time: {gamma:.1%}")
    failed = False
    if share < args.min_model_share:
        print(
            f"FAIL: model share {share:.1%} is below the "
            f"{args.min_model_share:.1%} floor — framework overhead has "
            "grown around the model calls",
            file=sys.stderr,
        )
        failed = True
    else:
        print(f"OK: model share meets the {args.min_model_share:.1%} floor")
    if gamma > args.max_gamma_share:
        print(
            f"FAIL: gamma share {gamma:.1%} is above the "
            f"{args.max_gamma_share:.1%} ceiling — perturbation generation "
            "(likely eager materialisation) has crept back into the hot loop",
            file=sys.stderr,
        )
        failed = True
    else:
        print(f"OK: gamma share is under the {args.max_gamma_share:.1%} ceiling")
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
