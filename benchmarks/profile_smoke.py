"""cProfile smoke check of the explanation hot path.

Profiles a small batched analytical-model workload, prints the top-20
functions by cumulative time, and asserts that the cost model's own batch
prediction keeps at least a floor share of the run.  The regression this
guards is overhead creep: the explanation engine exists to spend its time
querying the model, and PR-by-PR optimisation of Γ and the KL-LUCB round
state only holds if framework code does not quietly grow back around the
model calls (the Amdahl budget ``docs/performance.md`` tracks).

Run standalone (exits non-zero when the share floor is violated):

    PYTHONPATH=src python benchmarks/profile_smoke.py
    PYTHONPATH=src python benchmarks/profile_smoke.py --min-model-share 0.1
"""

from __future__ import annotations

import argparse
import cProfile
import pstats
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.data.synthesis import BlockSynthesizer
from repro.explain.config import ExplainerConfig
from repro.explain.explainer import CometExplainer
from repro.models.analytical import AnalyticalCostModel
from repro.models.base import CachedCostModel


def parse_args(argv=None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--blocks", type=int, default=4)
    parser.add_argument("--min-size", type=int, default=4)
    parser.add_argument("--max-size", type=int, default=10)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--min-model-share",
        type=float,
        default=0.10,
        help="required share of total profiled time spent inside the inner "
        "model's _predict_batch (cumulative)",
    )
    parser.add_argument("--top", type=int, default=20)
    return parser.parse_args(argv)


def model_share(stats: pstats.Stats, marker: str = "_predict_batch") -> float:
    """Cumulative-time share of the inner model's batch prediction.

    The marker is matched on function name so the check survives line-number
    drift; the analytical model's ``_predict_batch`` is the top-level inner
    entry — everything below it (memo lookups, hazard scans) is genuine
    model work by construction.
    """
    total = stats.total_tt
    if total <= 0.0:
        raise SystemExit("profile captured no time at all")
    best = 0.0
    for (filename, _line, name), entry in stats.stats.items():
        if name == marker and filename.endswith("analytical.py"):
            cumulative = entry[3]
            best = max(best, cumulative)
    return best / total


def main(argv=None) -> int:
    args = parse_args(argv)
    blocks = BlockSynthesizer(rng=args.seed).generate_many(
        args.blocks,
        min_instructions=args.min_size,
        max_instructions=args.max_size,
        rng=args.seed + 1,
    )
    model = CachedCostModel(AnalyticalCostModel("hsw"))
    explainer = CometExplainer(
        model,
        ExplainerConfig(epsilon=0.2, relative_epsilon=0.0, batch_queries=True),
        rng=args.seed,
    )
    explainer.explain(blocks[0], rng=args.seed)  # warm caches/tables

    profiler = cProfile.Profile()
    profiler.enable()
    explainer.explain_many(blocks, rng=args.seed + 1)
    profiler.disable()

    stats = pstats.Stats(profiler)
    stats.sort_stats("cumulative").print_stats(args.top)
    share = model_share(stats)
    print(f"inner-model _predict_batch share of total time: {share:.1%}")
    if share < args.min_model_share:
        print(
            f"FAIL: model share {share:.1%} is below the "
            f"{args.min_model_share:.1%} floor — framework overhead has "
            "grown around the model calls",
            file=sys.stderr,
        )
        return 1
    print(f"OK: model share meets the {args.min_model_share:.1%} floor")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
