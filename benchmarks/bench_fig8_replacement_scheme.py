"""Figure 8 (Appendix E.4): opcode-only vs whole-instruction replacement.

The paper finds the opcode-only vertex replacement scheme produces more
accurate explanations, which motivates COMET's default.  The reproduction
compares both schemes on the same blocks.
"""

from conftest import emit

from repro.eval.ablations import compare_replacement_schemes
from repro.utils.tables import render_series


def test_fig8_replacement_scheme(benchmark, eval_context, results_dir):
    blocks = eval_context.test_blocks()[: max(len(eval_context.test_blocks()) // 2, 8)]
    points = benchmark.pedantic(
        lambda: compare_replacement_schemes(eval_context, blocks=blocks),
        rounds=1,
        iterations=1,
    )
    text = render_series(
        "Figure 8: explanation accuracy by vertex replacement scheme",
        [p.value for p in points],
        {"accuracy (%)": [p.accuracy for p in points]},
        x_label="scheme",
        precision=1,
    )
    emit(results_dir, "fig8_replacement_scheme", text)

    by_value = {str(p.value): p.accuracy for p in points}
    assert set(by_value) == {"opcode", "instruction"}
    # Opcode-only replacement should not be (meaningfully) worse.
    assert by_value["opcode"] >= by_value["instruction"] - 15.0
