"""Appendix F: cardinality of the perturbation space.

The paper reports |Π̂(∅)| ≈ 1.94e38 for a 7-instruction AVX block (Listing 4)
and ≈ 1.63e32 for a 10-instruction integer block (Listing 5), and shows the
count shrinking when an instruction feature is preserved.  The reproduction
regenerates the same table for the same listings; the absolute magnitudes
depend on the modelled ISA subset, but the counts must be astronomically
large and must shrink monotonically as features are preserved.
"""

from conftest import emit

from repro.bb.block import BasicBlock
from repro.bb.features import InstructionFeature
from repro.perturb.space import estimate_space_size, log10_space_size
from repro.utils.tables import render_table

LISTING_4 = """
    vdivss xmm0, xmm0, xmm6
    vmulss xmm7, xmm0, xmm0
    vxorps xmm0, xmm0, xmm5
    vaddss xmm7, xmm7, xmm3
    vmulss xmm6, xmm6, xmm7
    vdivss xmm6, xmm3, xmm6
    vmulss xmm0, xmm6, xmm0
"""

LISTING_5 = """
    shl eax, 3
    imul rax, r15
    xor edx, edx
    add rax, 7
    shr rax, 3
    lea rax, [rbp + rax - 1]
    div rbp
    imul rax, rbp
    mov rbp, qword ptr [rsp + 8]
    sub rbp, rax
"""


def _rows():
    rows = []
    for name, text, preserved_index in (
        ("Listing 4 (AVX block)", LISTING_4, 0),
        ("Listing 5 (integer block)", LISTING_5, 1),
    ):
        block = BasicBlock.from_text(text)
        empty = estimate_space_size(block)
        feature = InstructionFeature.of(preserved_index, block[preserved_index])
        preserved = estimate_space_size(block, [feature])
        rows.append(
            [
                name,
                block.num_instructions,
                f"{empty:.2e}",
                f"log10={log10_space_size(block):.1f}",
                f"{preserved:.2e}",
            ]
        )
    return rows


def test_appendix_f_space_sizes(benchmark, results_dir):
    rows = benchmark.pedantic(_rows, rounds=1, iterations=1)
    text = render_table(
        ["Block", "n", "|Π̂(∅)| estimate", "order", "|Π̂({inst})| estimate"],
        rows,
        title="Appendix F: perturbation-space cardinality estimates",
    )
    emit(results_dir, "appendix_f_space", text)

    for row in rows:
        empty = float(row[2])
        preserved = float(row[4])
        assert empty > 1e20          # astronomically large, as in the paper
        assert preserved < empty     # preserving a feature shrinks the space
