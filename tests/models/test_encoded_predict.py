"""Encoded-batch prediction parity: every model, one contract.

``predict_batch`` on a :class:`PerturbationBatch` must return exactly what
it returns on the materialised block list — whether the model predicts
straight from instruction references (analytical, Ithemal), dedupes through
content keys (the cache wrapper), or silently materialises because it has
no row kernel (callable/simulator-style models).  The accounting satellite
rides along: :class:`QueryTally` exposes how many rows stayed encoded.
"""

import numpy as np
import pytest

from repro.bb.block import BasicBlock
from repro.data.synthesis import BlockSynthesizer
from repro.models.analytical import AnalyticalCostModel
from repro.models.base import CachedCostModel, CallableCostModel
from repro.models.ithemal import IthemalConfig, IthemalCostModel
from repro.perturb.algorithm import BlockPerturber
from repro.perturb.batch import EncodedRow, PerturbationBatch


def _block():
    return BasicBlock.from_text(
        "mov rax, rbx\nadd rcx, rax\nimul rdx, rcx\nsub rsi, 4\n"
        "mov qword ptr [rsi], rdx\nadd rax, 1"
    )


@pytest.fixture(scope="module")
def batch():
    """A wave-engine batch with genuine deferred rows."""
    produced = BlockPerturber(_block(), engine="soa").perturb_batch(
        40, rng=np.random.default_rng(21)
    )
    assert any(isinstance(row, EncodedRow) for row in produced.rows)
    return produced


@pytest.fixture(scope="module")
def blocks(batch):
    # Materialise a *copy* of the rows so the module-scoped batch keeps its
    # deferred rows deferred for the tests that assert on encoded counts.
    return [
        row.template.with_instructions(row.refs)
        if isinstance(row, EncodedRow)
        else row
        for row in batch.rows
    ]


def _tiny_ithemal():
    return IthemalCostModel(
        "hsw", IthemalConfig(embedding_size=8, hidden_size=8, epochs=1)
    )


class TestKernelModels:
    def test_analytical_parity(self, batch, blocks):
        model = AnalyticalCostModel("hsw")
        assert model.predict_batch(batch) == model.predict_batch(blocks)

    def test_analytical_reference_kernel_materialises(self, batch, blocks):
        model = AnalyticalCostModel("hsw")
        model._use_reference_batch_kernel = True
        assert model._rows_kernel() is None
        assert model.predict_batch(batch) == model.predict_batch(blocks)

    def test_ithemal_parity_is_exact(self, batch, blocks):
        model = _tiny_ithemal()
        # Encoded and materialised paths share _predict_rows_batch, so the
        # float stream is identical — exact equality, not allclose.
        assert model.predict_batch(batch) == model.predict_batch(blocks)

    def test_kernel_models_count_one_query_per_row(self, batch):
        model = AnalyticalCostModel("hsw")
        model.predict_batch(batch)
        assert model.query_count == len(batch)

    def test_encoded_rows_reach_tally(self, batch):
        model = AnalyticalCostModel("hsw")
        base = model.query_tally()
        fresh = BlockPerturber(_block(), engine="soa").perturb_batch(
            30, rng=np.random.default_rng(33)
        )
        model.predict_batch(fresh)
        delta = model.query_tally().delta(base)
        assert delta.encoded_rows + delta.materialized_rows >= 30
        assert delta.encoded_rows > 0
        # A row kernel never builds blocks for rows that arrived deferred.
        assert all(
            not isinstance(row, EncodedRow) or not row.materialized
            for row in fresh.rows
        )


class TestKernellessModels:
    def test_callable_model_materialises_and_matches(self):
        model = CallableCostModel(lambda b: float(b.num_instructions), name="count")
        fresh = BlockPerturber(_block(), engine="soa").perturb_batch(
            25, rng=np.random.default_rng(5)
        )
        base = model.query_tally()
        expected = [float(len(row.refs if isinstance(row, EncodedRow) else row))
                    for row in fresh.rows]
        assert model.predict_batch(fresh) == expected
        delta = model.query_tally().delta(base)
        # Every deferred row had to be built for the block-wise fallback.
        assert delta.materialized_rows >= sum(
            1 for row in fresh.rows if isinstance(row, EncodedRow)
        )


class TestCachedModel:
    def test_cached_parity_and_dedupe(self, batch, blocks):
        cached = CachedCostModel(AnalyticalCostModel("hsw"))
        results = cached.predict_batch(batch)
        assert results == CachedCostModel(AnalyticalCostModel("hsw")).predict_batch(
            blocks
        )
        # The inner model saw each distinct content key exactly once.
        unique = len({row.key() for row in batch.rows})
        assert cached.inner.query_count == unique
        assert cached.misses == unique
        assert cached.hits == len(batch) - unique

    def test_cached_hits_on_previously_cached_blocks(self, batch, blocks):
        cached = CachedCostModel(AnalyticalCostModel("hsw"))
        cached.predict_batch(blocks)  # warm through the materialised path
        before = cached.inner.query_count
        cached.predict_batch(batch)  # encoded rows must hit those entries
        assert cached.inner.query_count == before

    def test_cached_keeps_rows_encoded(self):
        cached = CachedCostModel(AnalyticalCostModel("hsw"))
        fresh = BlockPerturber(_block(), engine="soa").perturb_batch(
            30, rng=np.random.default_rng(8)
        )
        deferred = fresh.encoded_count
        assert deferred > 0
        cached.predict_batch(fresh)
        # Keying and the analytical row kernel never materialise.
        assert fresh.encoded_count == deferred


class TestSegmented:
    def _segments(self):
        perturber = BlockPerturber(_block(), engine="soa")
        rng = np.random.default_rng(13)
        return [perturber.perturb_batch(n, rng=rng) for n in (7, 0, 12, 5)]

    @pytest.mark.parametrize(
        "factory",
        [
            lambda: AnalyticalCostModel("hsw"),
            lambda: CachedCostModel(AnalyticalCostModel("hsw")),
            _tiny_ithemal,
        ],
        ids=["analytical", "cached", "ithemal"],
    )
    def test_segmented_parity(self, factory):
        segments = self._segments()
        flat = [block for segment in segments for block in segment.blocks()]
        model = factory()
        values, tallies, _ = model.predict_batch_segmented(segments)
        assert [len(v) for v in values] == [len(s) for s in segments]
        assert sum(t.queries for t in tallies) == len(flat)
        assert [p for segment in values for p in segment] == factory().predict_batch(
            flat
        )

    def test_segmented_accepts_mixed_representations(self):
        segments = self._segments()
        mixed = [segments[0], segments[1].blocks(), segments[2], segments[3].blocks()]
        model = CachedCostModel(AnalyticalCostModel("hsw"))
        values, _, _ = model.predict_batch_segmented(mixed)
        flat = [block for segment in segments for block in segment.blocks()]
        assert [p for segment in values for p in segment] == CachedCostModel(
            AnalyticalCostModel("hsw")
        ).predict_batch(flat)


class TestIthemalEmbedMemo:
    def test_predict_populates_memo(self, batch):
        model = _tiny_ithemal()
        model.predict_batch(batch)
        assert model._embed_memo

    def test_train_invalidates_memo(self, blocks):
        model = _tiny_ithemal()
        model.predict_batch(blocks[:8])
        assert model._embed_memo
        model.train(blocks[:8], [float(len(b)) for b in blocks[:8]], epochs=1)
        # Training mutates the embedding matrix in place; predictions after
        # training must come from the updated weights, not stale pools.
        fresh = _tiny_ithemal()
        fresh.train(blocks[:8], [float(len(b)) for b in blocks[:8]], epochs=1)
        assert model.predict_batch(blocks[:8]) == fresh.predict_batch(blocks[:8])

    def test_load_starts_with_clean_memo(self, tmp_path, blocks):
        model = _tiny_ithemal()
        model.train(blocks[:6], [float(len(b)) for b in blocks[:6]], epochs=1)
        path = tmp_path / "ithemal.npz"
        model.save(path)
        restored = IthemalCostModel.load(path)
        assert not restored._embed_memo
        assert restored.predict_batch(blocks[:6]) == model.predict_batch(blocks[:6])
