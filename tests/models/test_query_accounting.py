"""Thread-exact query accounting: global totals and per-thread tallies.

Block-sharded ``explain_many`` runs whole searches on concurrent threads
against one shared (cached) model.  Two things must hold for its
per-explanation ``num_queries`` to mean anything:

* the *global* counters (``query_count``, ``hits``, ``misses``) lose no
  updates under concurrency (the pre-fix base ``CostModel`` incremented
  ``query_count`` without a lock), and
* each thread can snapshot *its own* contribution
  (:meth:`CostModel.query_tally`), so a :class:`QueryCounter` wrapped
  around one search counts that search's queries only — not whatever the
  other shards did meanwhile.
"""

import pickle
import threading

from repro.bb.block import BasicBlock
from repro.data.synthesis import BlockSynthesizer
from repro.models.analytical import AnalyticalCostModel
from repro.models.base import CachedCostModel, CallableCostModel, QueryCounter


def _distinct_blocks(count, seed=3):
    return BlockSynthesizer(rng=seed).generate_many(
        count, min_instructions=2, max_instructions=5, rng=seed + 1
    )


def _hammer(threads, work):
    """Run ``work(index)`` on N threads behind a start barrier; re-raise."""
    barrier = threading.Barrier(threads)
    errors = []

    def run(index):
        try:
            barrier.wait(timeout=30)
            work(index)
        except Exception as error:  # surfaced to the main thread
            errors.append(error)

    pool = [threading.Thread(target=run, args=(i,)) for i in range(threads)]
    for thread in pool:
        thread.start()
    for thread in pool:
        thread.join(timeout=60)
    assert not errors, errors
    return pool


class TestGlobalCountersAreExact:
    THREADS = 8
    ROUNDS = 200

    def test_plain_model_query_count_is_lost_update_free(self, tiny_block):
        model = CallableCostModel(lambda block: 1.0)

        def work(index):
            for _ in range(self.ROUNDS):
                model.predict(tiny_block)

        _hammer(self.THREADS, work)
        assert model.query_count == self.THREADS * self.ROUNDS

    def test_cached_model_totals_are_exact_under_concurrency(self):
        blocks = _distinct_blocks(4)
        model = CachedCostModel(AnalyticalCostModel("hsw"))

        def work(index):
            for _ in range(self.ROUNDS):
                for block in blocks:
                    model.predict(block)

        _hammer(self.THREADS, work)
        lookups = self.THREADS * self.ROUNDS * len(blocks)
        assert model.hits + model.misses == lookups
        # Every miss is one inner query, and the distinct blocks were
        # computed at least once each; duplicates of one key may race to
        # miss together (both saw the cache before either stored), but
        # hits + misses never drifts from the lookup count.
        assert model.query_count == model.misses
        assert model.misses >= len(blocks)
        assert model.inner.query_count == model.query_count

    def test_batch_path_totals_are_exact_under_concurrency(self):
        blocks = _distinct_blocks(6)
        model = CachedCostModel(AnalyticalCostModel("hsw"))

        def work(index):
            for _ in range(50):
                model.predict_batch(blocks)

        _hammer(self.THREADS, work)
        assert model.hits + model.misses == self.THREADS * 50 * len(blocks)
        assert model.query_count == model.misses


class TestPerThreadTallies:
    def test_tally_scoped_to_calling_thread(self):
        blocks = _distinct_blocks(8)
        model = CachedCostModel(AnalyticalCostModel("hsw"))
        per_thread = {}
        lock = threading.Lock()

        def work(index):
            # Each thread owns two of the eight blocks: its tally must see
            # exactly its own lookups, not the other threads'.
            mine = blocks[index * 2 : index * 2 + 2]
            before = model.query_tally()
            for _ in range(25):
                for block in mine:
                    model.predict(block)
            delta = model.query_tally().delta(before)
            with lock:
                per_thread[index] = delta

        _hammer(4, work)
        for index, delta in per_thread.items():
            assert delta.hits + delta.misses == 50
            assert delta.queries == delta.misses
            # This thread's two blocks miss only on first sight *by this
            # thread or nobody* — and since the key sets are disjoint,
            # exactly its own two first-misses are its queries.
            assert delta.misses == 2
        assert model.query_count == 8
        assert model.hits + model.misses == 4 * 50

    def test_query_counter_isolates_concurrent_measurements(self):
        """Two QueryCounters on two threads must not see each other."""
        blocks = _distinct_blocks(4)
        model = CachedCostModel(AnalyticalCostModel("hsw"))
        measured = {}
        lock = threading.Lock()

        def work(index):
            mine = blocks[index * 2 : index * 2 + 2]
            with QueryCounter(model) as counter:
                for block in mine:
                    model.predict(block)
                    model.predict(block)
            with lock:
                measured[index] = counter

        _hammer(2, work)
        for counter in measured.values():
            assert counter.queries == 2  # two distinct blocks, own misses only
            assert counter.misses == 2
            assert counter.hits == 2  # the repeat predicts
        assert model.query_count == 4  # but the global view has everything

    def test_query_counter_carries_hit_miss_split(self, tiny_block):
        model = CachedCostModel(AnalyticalCostModel("hsw"))
        with QueryCounter(model) as counter:
            model.predict(tiny_block)
            model.predict(tiny_block)
            model.predict(tiny_block)
        assert counter.queries == 1
        assert counter.misses == 1
        assert counter.hits == 2

    def test_fresh_thread_starts_from_zero(self, tiny_block):
        model = CachedCostModel(AnalyticalCostModel("hsw"))
        model.predict(tiny_block)
        seen = {}

        def work():
            seen["tally"] = model.query_tally()

        thread = threading.Thread(target=work)
        thread.start()
        thread.join(timeout=10)
        assert seen["tally"].queries == 0
        assert seen["tally"].hits == 0
        assert model.query_tally().queries == 1  # main thread kept its own


class TestAccountingSurvivesPickling:
    def test_cached_model_round_trips(self, tiny_block):
        model = CachedCostModel(AnalyticalCostModel("hsw"))
        model.predict(tiny_block)
        clone = pickle.loads(pickle.dumps(model))
        # Thread tallies do not travel (locks and thread-locals are rebuilt,
        # so the clone's calling thread starts at zero), but the cache
        # contents do — the clone answers from its warm cache.
        assert clone.query_tally().queries == 0
        assert clone.predict(tiny_block) == model.predict(tiny_block)
        assert clone.query_tally().hits == 1
        assert clone.query_tally().queries == 0

    def test_plain_model_round_trips(self):
        model = AnalyticalCostModel("hsw")
        block = BasicBlock.from_text("add rcx, rax\nmov rdx, rcx")
        model.predict(block)
        clone = pickle.loads(pickle.dumps(model))
        assert clone.predict(block) == model.predict(block)
        assert clone.query_tally().queries == 1
