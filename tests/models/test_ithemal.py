"""Tests for the Ithemal-like neural cost model."""

import numpy as np
import pytest

from repro.bb.block import BasicBlock
from repro.data.bhive import BHiveDataset
from repro.models.ithemal import (
    BlockTokenizer,
    IthemalConfig,
    IthemalCostModel,
    train_ithemal,
)
from repro.utils.errors import ModelError


@pytest.fixture(scope="module")
def tiny_dataset():
    return BHiveDataset.synthesize(
        60, include_categories=False, min_instructions=2, max_instructions=8, rng=5
    )


@pytest.fixture(scope="module")
def trained_model(tiny_dataset):
    config = IthemalConfig(embedding_size=16, hidden_size=16, epochs=3)
    return train_ithemal(
        tiny_dataset.blocks(), tiny_dataset.throughputs("hsw"), "hsw", config
    )


class TestTokenizer:
    def test_vocabulary_covers_isa(self):
        tokenizer = BlockTokenizer()
        assert tokenizer.vocabulary_size > 150
        assert tokenizer.token_id("add") != tokenizer.token_id("mov")
        assert tokenizer.token_id("rax") != tokenizer.token_id("rbx")

    def test_unknown_token_maps_to_unk(self):
        tokenizer = BlockTokenizer()
        assert tokenizer.token_id("no-such-token") == tokenizer.token_id(tokenizer.UNK)

    def test_instruction_tokens(self):
        tokenizer = BlockTokenizer()
        block = BasicBlock.from_text("mov rsi, qword ptr [r14 + 32]")
        tokens = tokenizer.instruction_tokens(block[0])
        assert tokens[0] == "mov"
        assert tokenizer.MEM in tokens and "r14" in tokens

    def test_encode_block_shape(self):
        tokenizer = BlockTokenizer()
        block = BasicBlock.from_text("add rcx, rax\nmov rdx, rcx")
        encoded = tokenizer.encode_block(block)
        assert len(encoded) == 2
        assert all(isinstance(i, int) for row in encoded for i in row)


class TestPrediction:
    def test_untrained_model_predicts_positive(self):
        model = IthemalCostModel("hsw", IthemalConfig(embedding_size=8, hidden_size=8))
        block = BasicBlock.from_text("add rcx, rax\nmov rdx, rcx")
        assert model.predict(block) > 0

    def test_prediction_changes_with_block(self, trained_model):
        short = BasicBlock.from_text("add rcx, rax")
        long = BasicBlock.from_text("\n".join(["add rcx, rax"] * 10))
        assert trained_model.predict(short) != trained_model.predict(long)

    def test_prediction_deterministic(self, trained_model):
        block = BasicBlock.from_text("add rcx, rax\nimul rbx, rcx")
        assert trained_model.predict(block) == trained_model.predict(block)


class TestTraining:
    def test_training_reduces_loss(self, tiny_dataset):
        config = IthemalConfig(embedding_size=16, hidden_size=16, epochs=4)
        model = IthemalCostModel("hsw", config)
        history = model.train(tiny_dataset.blocks(), tiny_dataset.throughputs("hsw"))
        assert history.train_loss[-1] < history.train_loss[0]
        assert model.trained

    def test_trained_model_better_than_constant(self, trained_model, tiny_dataset):
        targets = np.array(tiny_dataset.throughputs("hsw"))
        mape_model = trained_model.evaluate_mape(tiny_dataset.blocks(), targets)
        constant = float(np.mean(targets))
        mape_constant = 100 * np.mean(np.abs(constant - targets) / targets)
        assert mape_model < mape_constant

    def test_longer_blocks_predicted_slower(self, trained_model):
        short = BasicBlock.from_text("add rcx, rax\nsub rbx, rdx")
        long = BasicBlock.from_text(
            "\n".join(["add rcx, rax", "sub rbx, rdx", "xor rsi, rdi", "and r8, r9"] * 3)
        )
        assert trained_model.predict(long) > trained_model.predict(short)

    def test_mismatched_lengths_rejected(self):
        model = IthemalCostModel("hsw", IthemalConfig(embedding_size=8, hidden_size=8))
        with pytest.raises(ModelError):
            model.train([BasicBlock.from_text("nop")], [1.0, 2.0])

    def test_empty_dataset_rejected(self):
        model = IthemalCostModel("hsw", IthemalConfig(embedding_size=8, hidden_size=8))
        with pytest.raises(ModelError):
            model.train([], [])


class TestPersistence:
    def test_save_and_load_round_trip(self, trained_model, tmp_path):
        path = tmp_path / "ithemal.npz"
        trained_model.save(path)
        restored = IthemalCostModel.load(path, "hsw")
        block = BasicBlock.from_text("add rcx, rax\nimul rbx, rcx\ndiv rcx")
        assert restored.predict(block) == pytest.approx(trained_model.predict(block))

    def test_config_validation(self):
        with pytest.raises(ValueError):
            IthemalConfig(embedding_size=0)
        with pytest.raises(ValueError):
            IthemalConfig(validation_fraction=1.5)
