"""Tests for the crude interpretable cost model C and its ground truth."""

import pytest

from repro.bb.block import BasicBlock
from repro.bb.features import DependencyFeature, InstructionFeature, NumInstructionsFeature
from repro.models.analytical import (
    AnalyticalCostModel,
    feature_costs,
    ground_truth_explanations,
    ground_truth_feature_kinds,
)
from repro.uarch.tables import instruction_cost_for


@pytest.fixture
def model():
    return AnalyticalCostModel("hsw")


class TestCostFunctions:
    def test_cost_eta_is_front_end_bound(self, model):
        block = BasicBlock.from_text("\n".join(["add rax, rbx"] * 8))
        assert model.cost_num_instructions(block) == pytest.approx(2.0)

    def test_cost_instruction_matches_table(self, model):
        block = BasicBlock.from_text("div rcx")
        expected = instruction_cost_for(block[0], "hsw").throughput
        assert model.cost_instruction(block, 0) == pytest.approx(expected)

    def test_war_waw_dependencies_cost_zero(self, model):
        block = BasicBlock.from_text("mov ecx, edx\nxor edx, edx")
        war = [d for d in block.dependencies if d.kind.value == "WAR"][0]
        assert model.cost_dependency(block, war) == 0.0

    def test_raw_dependency_sums_endpoint_costs(self, model):
        block = BasicBlock.from_text("div rcx\nmov rdx, rax")
        raw = [d for d in block.dependencies if d.kind.value == "RAW"][0]
        expected = model.cost_instruction(block, 0) + model.cost_instruction(block, 1)
        assert model.cost_dependency(block, raw) == pytest.approx(expected)


class TestPrediction:
    def test_prediction_is_max_of_feature_costs(self, model):
        block = BasicBlock.from_text(
            "mov ecx, edx\nxor edx, edx\nlea rax, [rcx + rax - 1]\n"
            "div rcx\nmov rdx, rcx\nimul rax, rcx"
        )
        costs = [cost for _, cost in feature_costs(block, model)]
        assert model.predict(block) == pytest.approx(max(costs))

    def test_division_block_dominated_by_dependency(self, model):
        block = BasicBlock.from_text("div rcx\nimul rax, rcx")
        # RAW div->imul costs more than either instruction alone.
        assert model.predict(block) > instruction_cost_for(block[0], "hsw").throughput

    def test_cheap_block_dominated_by_count(self, model):
        block = BasicBlock.from_text("\n".join(["add rax, rbx"] * 12))
        assert model.predict(block) == pytest.approx(3.0)

    def test_skylake_predicts_cheaper_divisions(self):
        block = BasicBlock.from_text("div rcx\nimul rax, rcx")
        hsw = AnalyticalCostModel("hsw").predict(block)
        skl = AnalyticalCostModel("skl").predict(block)
        assert skl < hsw


class TestGroundTruth:
    def test_ground_truth_never_empty(self, model):
        block = BasicBlock.from_text("add rcx, rax\nmov rdx, rcx\npop rbx")
        assert ground_truth_explanations(block, model)

    def test_ground_truth_features_attain_maximum(self, model):
        block = BasicBlock.from_text("div rcx\nmov rdx, rax\nadd rbx, rcx")
        prediction = model.predict(block)
        costs = dict((f, c) for f, c in feature_costs(block, model))
        for feature in ground_truth_explanations(block, model):
            assert costs[feature] == pytest.approx(prediction)

    def test_division_dependency_is_the_ground_truth(self, model):
        block = BasicBlock.from_text(
            "mov ecx, edx\nxor edx, edx\nlea rax, [rcx + rax - 1]\n"
            "div rcx\nmov rdx, rcx\nimul rax, rcx"
        )
        truth = ground_truth_explanations(block, model)
        assert any(isinstance(f, DependencyFeature) for f in truth)

    def test_count_is_ground_truth_for_cheap_blocks(self, model):
        block = BasicBlock.from_text("\n".join(["add rax, rbx"] * 12))
        truth = ground_truth_explanations(block, model)
        assert any(isinstance(f, NumInstructionsFeature) for f in truth)

    def test_ties_produce_multiple_features(self, model):
        # Two identical expensive instructions with no dependency: both tie.
        block = BasicBlock.from_text("divss xmm0, xmm1\ndivss xmm2, xmm3")
        truth = ground_truth_explanations(block, model)
        instruction_features = [f for f in truth if isinstance(f, InstructionFeature)]
        assert len(instruction_features) == 2

    def test_feature_kind_histogram(self, model):
        block = BasicBlock.from_text("div rcx\nimul rax, rcx")
        histogram = ground_truth_feature_kinds(block, model)
        assert sum(histogram.values()) == len(ground_truth_explanations(block, model))

    def test_ground_truth_features_match_extracted_features(self, model):
        from repro.bb.features import extract_features

        block = BasicBlock.from_text("div rcx\nmov rdx, rax")
        extracted = set(extract_features(block))
        for feature in ground_truth_explanations(block, model):
            assert feature in extracted
