"""Tests for the out-of-order pipeline simulator (uiCA substrate)."""

import pytest

from repro.bb.block import BasicBlock
from repro.models.pipeline import PipelineSimulator, SimulationConfig
from repro.uarch.tables import instruction_cost


def simulate(text, microarch="hsw", **config_kwargs):
    simulator = PipelineSimulator(microarch, SimulationConfig(**config_kwargs))
    return simulator.simulate(BasicBlock.from_text(text))


class TestThroughputBasics:
    def test_single_cheap_instruction(self):
        result = simulate("add rax, rbx")
        assert 0.05 <= result.throughput <= 1.5

    def test_independent_adds_bound_by_frontend(self):
        text = "\n".join(
            f"add {dst}, {src}"
            for dst, src in [("rax", "rbx"), ("rcx", "rdx"), ("rsi", "rdi"),
                             ("r8", "r9"), ("r10", "r11"), ("r12", "r13"),
                             ("r14", "r15"), ("rbx", "rax")]
        )
        result = simulate(text)
        # 8 single-uop instructions at issue width 4 -> about 2 cycles/iter.
        assert 1.5 <= result.throughput <= 3.5

    def test_dependent_chain_bound_by_latency(self):
        text = "add rax, rbx\nadd rax, rcx\nadd rax, rdx\nadd rax, rsi"
        chained = simulate(text).throughput
        independent = simulate(
            "add rax, rbx\nadd rcx, rbx\nadd rdx, rbx\nadd rsi, rbx"
        ).throughput
        assert chained > independent

    def test_division_block_is_slow(self):
        result = simulate("div rcx\nimul rax, rcx")
        assert result.throughput > 15.0

    def test_store_block_bound_by_store_port(self):
        text = (
            "mov qword ptr [rdi], rax\nmov qword ptr [rdi + 8], rbx\n"
            "mov qword ptr [rdi + 16], rcx"
        )
        result = simulate(text)
        assert result.throughput >= 2.5  # one store per cycle

    def test_loop_carried_dependency_costs_latency(self):
        # rax accumulates across iterations -> ~3 cycles/iter (imul latency).
        result = simulate("imul rax, rbx")
        assert result.throughput >= 2.5

    def test_paper_case_study_1_close_to_two_cycles(self):
        text = """
            lea rdx, [rax + 1]
            mov qword ptr [rdi + 24], rdx
            mov byte ptr [rax], 80
            mov rsi, qword ptr [r14 + 32]
            mov rdi, rbp
        """
        result = simulate(text)
        assert 1.5 <= result.throughput <= 3.5


class TestMicroarchitectureDifferences:
    def test_skylake_divides_faster(self):
        text = "div rcx\nimul rax, rcx"
        assert simulate(text, "skl").throughput < simulate(text, "hsw").throughput

    def test_cheap_blocks_similar_across_uarchs(self):
        text = "add rax, rbx\nsub rcx, rdx\nxor rsi, rdi\nand r8, r9"
        hsw = simulate(text, "hsw").throughput
        skl = simulate(text, "skl").throughput
        assert abs(hsw - skl) < 1.0


class TestEliminationIdioms:
    def test_move_elimination_speeds_up_mov_chain(self):
        text = "mov rax, rbx\nmov rcx, rax\nmov rdx, rcx\nmov rsi, rdx"
        plain = simulate(text, move_elimination=False).throughput
        eliminated = simulate(text, move_elimination=True).throughput
        assert eliminated <= plain

    def test_zero_idiom_breaks_dependency(self):
        # xor rax, rax resets the dependency chain on rax.
        text = "imul rax, rbx\nxor rax, rax\nimul rax, rcx"
        plain = simulate(text, zero_idiom_elimination=False).throughput
        eliminated = simulate(text, zero_idiom_elimination=True).throughput
        assert eliminated <= plain


class TestSimulationResult:
    def test_port_pressure_reported_per_port(self):
        result = simulate("divss xmm0, xmm1\naddss xmm2, xmm3")
        assert set(result.port_pressure) == set("01234567")
        assert result.port_pressure["0"] > 0.0

    def test_bottleneck_classification_division(self):
        result = simulate("div rcx")
        assert result.bottleneck in ("ports", "dependencies")

    def test_bottleneck_classification_frontend(self):
        text = "\n".join(["add rax, rbx\nadd rcx, rdx\nadd rsi, rdi\nadd r8, r9"] * 2)
        result = simulate(text)
        assert result.bottleneck == "frontend"

    def test_throughput_positive_and_finite(self):
        result = simulate("nop")
        assert result.throughput > 0.0
        assert result.total_cycles > 0.0


class TestConfigValidation:
    def test_invalid_iteration_counts(self):
        with pytest.raises(ValueError):
            SimulationConfig(measured_iterations=0)
        with pytest.raises(ValueError):
            SimulationConfig(warmup_iterations=-1)

    def test_more_iterations_converges(self):
        text = "div rcx\nadd rax, rbx"
        short = simulate(text, measured_iterations=6, warmup_iterations=2).throughput
        long = simulate(text, measured_iterations=30, warmup_iterations=8).throughput
        assert abs(short - long) / long < 0.25
