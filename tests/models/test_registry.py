"""Tests for the cost-model registry."""

import pytest

from repro.bb.block import BasicBlock
from repro.data.bhive import BHiveDataset
from repro.models.analytical import AnalyticalCostModel
from repro.models.base import CachedCostModel
from repro.models.ithemal import IthemalConfig
from repro.models.registry import available_cost_models, build_cost_model
from repro.utils.errors import ReproError


class TestRegistry:
    def test_available_names(self):
        assert set(available_cost_models()) == {"crude", "uica", "port-pressure", "ithemal"}

    def test_build_crude(self):
        model = build_cost_model("crude", "hsw", cached=False)
        assert isinstance(model, AnalyticalCostModel)

    def test_build_uica_cached_by_default(self):
        model = build_cost_model("uica", "skl")
        assert isinstance(model, CachedCostModel)
        assert model.microarch.short_name == "skl"

    def test_build_port_pressure_aliases(self):
        assert build_cost_model("llvm-mca", "hsw", cached=False).name.startswith("port-pressure")

    def test_unknown_name_rejected(self):
        with pytest.raises(ReproError):
            build_cost_model("magic-model")

    def test_ithemal_requires_training_data(self):
        with pytest.raises(ReproError):
            build_cost_model("ithemal", "hsw")

    def test_ithemal_builds_with_training_data(self):
        dataset = BHiveDataset.synthesize(
            30, include_categories=False, min_instructions=2, max_instructions=6, rng=9
        )
        model = build_cost_model(
            "ithemal",
            "hsw",
            training_blocks=dataset.blocks(),
            training_throughputs=dataset.throughputs("hsw"),
            ithemal_config=IthemalConfig(embedding_size=8, hidden_size=8, epochs=1),
        )
        assert model.predict(BasicBlock.from_text("add rcx, rax")) > 0

    def test_all_prebuilt_models_share_query_interface(self):
        block = BasicBlock.from_text("add rcx, rax\nmov rdx, rcx")
        for name in ("crude", "uica", "port-pressure"):
            model = build_cost_model(name, "hsw")
            assert model.predict(block) > 0
