"""Tests for the uiCA-style and LLVM-MCA-style cost models."""

import pytest

from repro.bb.block import BasicBlock
from repro.models.mca import PortPressureCostModel
from repro.models.uica import UiCACostModel

DIV_BLOCK = "mov ecx, edx\nxor edx, edx\nlea rax, [rcx + rax - 1]\ndiv rcx\nmov rdx, rcx\nimul rax, rcx"
STORE_BLOCK = (
    "lea rdx, [rax + 1]\nmov qword ptr [rdi + 24], rdx\nmov byte ptr [rax], 80\n"
    "mov rsi, qword ptr [r14 + 32]\nmov rdi, rbp"
)


class TestUiCAModel:
    def test_implements_query_interface(self):
        model = UiCACostModel("hsw")
        value = model.predict(BasicBlock.from_text(STORE_BLOCK))
        assert value > 0 and model.query_count == 1

    def test_division_block_much_slower_than_store_block(self):
        model = UiCACostModel("hsw")
        assert model.predict(BasicBlock.from_text(DIV_BLOCK)) > 5 * model.predict(
            BasicBlock.from_text(STORE_BLOCK)
        )

    def test_skylake_division_faster(self):
        block = BasicBlock.from_text(DIV_BLOCK)
        assert UiCACostModel("skl").predict(block) < UiCACostModel("hsw").predict(block)

    def test_analyze_exposes_bottleneck(self):
        model = UiCACostModel("hsw")
        result = model.analyze(BasicBlock.from_text(DIV_BLOCK))
        assert result.bottleneck in ("ports", "dependencies", "frontend")
        assert result.throughput == pytest.approx(
            model.predict(BasicBlock.from_text(DIV_BLOCK)), rel=0.05
        )

    def test_name_includes_microarch(self):
        assert UiCACostModel("skl").name == "uica-skl"

    def test_deterministic(self):
        block = BasicBlock.from_text(STORE_BLOCK)
        model = UiCACostModel("hsw")
        assert model.predict(block) == model.predict(block)


class TestPortPressureModel:
    def test_positive_predictions(self):
        model = PortPressureCostModel("hsw")
        assert model.predict(BasicBlock.from_text(STORE_BLOCK)) > 0

    def test_division_block_is_expensive(self):
        model = PortPressureCostModel("hsw")
        assert model.predict(BasicBlock.from_text(DIV_BLOCK)) > 10

    def test_respects_dependency_weight_bounds(self):
        with pytest.raises(ValueError):
            PortPressureCostModel("hsw", dependency_weight=2.0)

    def test_simulator_never_far_below_static_bound(self):
        """The simulator should not beat the static port-pressure bound by much."""
        pressure = PortPressureCostModel("hsw", dependency_weight=0.0)
        simulator = UiCACostModel("hsw")
        for text in (STORE_BLOCK, DIV_BLOCK, "add rax, rbx\nsub rcx, rdx"):
            block = BasicBlock.from_text(text)
            assert simulator.predict(block) >= 0.6 * pressure.predict(block)
