"""Batch/sequential parity of every registered cost model.

The batched query engine is only sound if ``predict_batch`` is equivalent to
the sequential ``predict_many`` path for every model behind the query
interface; these tests pin that contract, including the thread-pool fan-out
of the simulator-style models and the batch-aware cache wrapper.
"""

import numpy as np
import pytest

from repro.bb.block import BasicBlock
from repro.models.analytical import AnalyticalCostModel
from repro.models.base import CachedCostModel, CallableCostModel
from repro.models.ithemal import IthemalConfig, IthemalCostModel
from repro.models.mca import PortPressureCostModel
from repro.models.uica import UiCACostModel
from repro.utils.errors import ModelError


def _exact_models():
    return [
        AnalyticalCostModel("hsw"),
        AnalyticalCostModel("skl"),
        UiCACostModel("hsw"),
        UiCACostModel("hsw", batch_workers=4),
        PortPressureCostModel("hsw"),
        PortPressureCostModel("hsw", batch_workers=4),
        CallableCostModel(lambda b: float(b.num_instructions), name="count"),
    ]


class TestPredictBatchParity:
    @pytest.mark.parametrize("model", _exact_models(), ids=lambda m: m.describe())
    def test_exact_parity_with_predict_many(self, model, block_fleet):
        sequential = model.predict_many(block_fleet)
        batched = model.predict_batch(block_fleet)
        assert batched == sequential

    def test_ithemal_parity_within_float_tolerance(self, block_fleet):
        model = IthemalCostModel(
            "hsw", IthemalConfig(embedding_size=8, hidden_size=8, epochs=0)
        )
        sequential = model.predict_many(block_fleet)
        batched = model.predict_batch(block_fleet)
        np.testing.assert_allclose(batched, sequential, rtol=1e-9)

    def test_empty_batch(self):
        model = AnalyticalCostModel("hsw")
        assert model.predict_batch([]) == []
        assert model.query_count == 0

    def test_batch_counts_one_query_per_block(self, block_fleet):
        model = AnalyticalCostModel("hsw")
        model.predict_batch(block_fleet)
        assert model.query_count == len(block_fleet)

    def test_batch_validates_predictions(self, block_fleet):
        model = CallableCostModel(lambda b: -1.0, name="negative")
        with pytest.raises(ModelError):
            model.predict_batch(block_fleet[:3])

    def test_default_batch_loops_predict(self, block_fleet):
        """A model without a batched formulation still serves batches."""
        model = CallableCostModel(lambda b: float(len(b)), name="plain")
        assert model.predict_batch(block_fleet[:5]) == [float(len(b)) for b in block_fleet[:5]]


class TestAnalyticalBatchKernels:
    """Three-way parity of the analytical model's batch formulations.

    The fused per-block loop (the default ``_predict_batch``), the numpy
    gather/reduceat kernel kept as ``_predict_batch_reference`` (the pre-SoA
    hot path, still the benchmark baseline lane) and the sequential
    ``_predict`` must be bit-for-bit identical: the same table floats flow
    through the same IEEE additions and maxima.
    """

    @pytest.mark.parametrize("uarch", ["hsw", "skl"])
    def test_loop_reference_and_sequential_agree(self, uarch, block_fleet):
        model = AnalyticalCostModel(uarch)
        sequential = [model._predict(block) for block in block_fleet]
        loop = model._predict_batch(block_fleet)
        reference = model._predict_batch_reference(block_fleet)
        assert loop == sequential
        assert reference == sequential

    def test_reference_kernel_flag_switches_the_batch_path(self, block_fleet):
        model = AnalyticalCostModel("hsw")
        default = model.predict_batch(block_fleet)
        model._use_reference_batch_kernel = True
        flagged = model.predict_batch(block_fleet)
        assert flagged == default

    def test_reference_kernel_empty_batch(self):
        model = AnalyticalCostModel("hsw")
        assert model._predict_batch_reference([]) == []

class TestCachedBatchPath:
    def test_batch_matches_sequential_values(self, block_fleet):
        cached = CachedCostModel(AnalyticalCostModel("hsw"))
        expected = AnalyticalCostModel("hsw").predict_many(block_fleet)
        assert cached.predict_batch(block_fleet) == expected

    def test_batch_dedupes_duplicate_blocks(self, block_fleet):
        cached = CachedCostModel(AnalyticalCostModel("hsw"))
        batch = list(block_fleet[:4]) + list(block_fleet[:4])
        values = cached.predict_batch(batch)
        assert values[:4] == values[4:]
        # Only the four distinct blocks reach the inner model.
        assert cached.inner.query_count == 4
        assert cached.query_count == 4
        assert cached.hits == 4 and cached.misses == 4

    def test_batch_serves_previous_results_from_cache(self, block_fleet):
        cached = CachedCostModel(AnalyticalCostModel("hsw"))
        cached.predict_batch(block_fleet[:6])
        cached.predict_batch(block_fleet[:6])
        assert cached.inner.query_count == 6
        assert cached.hits == 6

    def test_query_count_ignores_cache_hits(self, block_fleet):
        """Regression: the wrapper used to count cache hits as queries."""
        cached = CachedCostModel(AnalyticalCostModel("hsw"))
        block = block_fleet[0]
        cached.predict(block)
        cached.predict(block)
        cached.predict(block)
        assert cached.query_count == 1
        assert cached.inner.query_count == 1

    def test_lru_evicts_least_recently_used(self):
        inner = CallableCostModel(lambda b: float(b.num_instructions))
        cached = CachedCostModel(inner, max_entries=2)
        a = BasicBlock.from_text("add rcx, rax")
        b = BasicBlock.from_text("sub rcx, rax")
        c = BasicBlock.from_text("xor rcx, rax")
        cached.predict(a)
        cached.predict(b)
        cached.predict(a)  # refresh a; b becomes least recently used
        cached.predict(c)  # evicts b
        assert len(cached._cache) == 2
        queries = inner.query_count
        cached.predict(a)
        assert inner.query_count == queries  # a still cached
        cached.predict(b)
        assert inner.query_count == queries + 1  # b was evicted

    def test_lru_keeps_accepting_after_capacity(self):
        """Regression: the old cache silently stopped storing when full."""
        inner = CallableCostModel(lambda b: float(b.num_instructions))
        cached = CachedCostModel(inner, max_entries=1)
        a = BasicBlock.from_text("add rcx, rax")
        b = BasicBlock.from_text("sub rcx, rax")
        cached.predict(a)
        cached.predict(b)
        queries = inner.query_count
        cached.predict(b)  # most recent entry must be cached
        assert inner.query_count == queries
