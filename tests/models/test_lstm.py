"""Tests for the NumPy LSTM layer, including a numerical gradient check."""

import numpy as np
import pytest

from repro.models.lstm import AdamOptimizer, LSTMCell, LSTMLayer, sequence_final_state, sigmoid


class TestSigmoid:
    def test_range(self):
        x = np.linspace(-50, 50, 101)
        y = sigmoid(x)
        assert np.all((y >= 0) & (y <= 1))

    def test_midpoint(self):
        assert sigmoid(np.array([0.0]))[0] == pytest.approx(0.5)

    def test_no_overflow_for_large_negative(self):
        assert sigmoid(np.array([-1000.0]))[0] == pytest.approx(0.0, abs=1e-12)


class TestForward:
    def test_shapes(self):
        layer = LSTMLayer.create(4, 8, rng=0)
        inputs = np.random.default_rng(0).normal(size=(5, 4))
        hs, caches = layer.forward(inputs)
        assert hs.shape == (5, 8)
        assert len(caches) == 5

    def test_hidden_values_bounded(self):
        layer = LSTMLayer.create(3, 6, rng=1)
        inputs = np.random.default_rng(1).normal(size=(10, 3)) * 10
        hs, _ = layer.forward(inputs)
        assert np.all(np.abs(hs) <= 1.0)  # |h| = |o * tanh(c)| <= 1

    def test_deterministic_given_seed(self):
        a = LSTMLayer.create(3, 4, rng=7).cell.w_x
        b = LSTMLayer.create(3, 4, rng=7).cell.w_x
        assert np.array_equal(a, b)

    def test_final_hidden_matches_forward(self):
        layer = LSTMLayer.create(3, 4, rng=2)
        inputs = np.random.default_rng(2).normal(size=(6, 3))
        hs, _ = layer.forward(inputs)
        assert np.allclose(layer.final_hidden(inputs), hs[-1])
        assert np.allclose(sequence_final_state(layer, inputs), hs[-1])

    def test_sequence_final_state_validates_shape(self):
        layer = LSTMLayer.create(3, 4, rng=2)
        with pytest.raises(ValueError):
            sequence_final_state(layer, np.zeros(3))

    def test_initial_state_respected(self):
        layer = LSTMLayer.create(2, 3, rng=3)
        inputs = np.ones((1, 2))
        h0 = np.full(3, 0.5)
        c0 = np.full(3, -0.5)
        default, _ = layer.forward(inputs)
        seeded, _ = layer.forward(inputs, initial_state=(h0, c0))
        assert not np.allclose(default, seeded)


class TestBackward:
    def test_gradient_shapes(self):
        layer = LSTMLayer.create(4, 5, rng=4)
        inputs = np.random.default_rng(4).normal(size=(3, 4))
        hs, caches = layer.forward(inputs)
        d_inputs, grads = layer.backward(np.ones_like(hs), caches)
        assert d_inputs.shape == inputs.shape
        assert grads["w_x"].shape == layer.cell.w_x.shape
        assert grads["w_h"].shape == layer.cell.w_h.shape
        assert grads["bias"].shape == layer.cell.bias.shape

    def test_numerical_gradient_check(self):
        """Analytic gradients must match central finite differences."""
        rng = np.random.default_rng(5)
        layer = LSTMLayer.create(3, 4, rng=5)
        inputs = rng.normal(size=(4, 3))
        target = rng.normal(size=4)

        def loss_fn():
            hs, _ = layer.forward(inputs)
            return 0.5 * float(np.sum((hs[-1] - target) ** 2))

        hs, caches = layer.forward(inputs)
        d_hs = np.zeros_like(hs)
        d_hs[-1] = hs[-1] - target
        _, grads = layer.backward(d_hs, caches)

        epsilon = 1e-5
        for name, param in layer.cell.parameters().items():
            flat = param.ravel()
            for index in rng.choice(flat.size, size=min(8, flat.size), replace=False):
                original = flat[index]
                flat[index] = original + epsilon
                plus = loss_fn()
                flat[index] = original - epsilon
                minus = loss_fn()
                flat[index] = original
                numeric = (plus - minus) / (2 * epsilon)
                analytic = grads[name].ravel()[index]
                assert analytic == pytest.approx(numeric, rel=1e-3, abs=1e-6), name

    def test_input_gradient_numerical_check(self):
        rng = np.random.default_rng(6)
        layer = LSTMLayer.create(2, 3, rng=6)
        inputs = rng.normal(size=(3, 2))

        def loss_fn(x):
            hs, _ = layer.forward(x)
            return 0.5 * float(np.sum(hs[-1] ** 2))

        hs, caches = layer.forward(inputs)
        d_hs = np.zeros_like(hs)
        d_hs[-1] = hs[-1]
        d_inputs, _ = layer.backward(d_hs, caches)

        epsilon = 1e-5
        perturbed = inputs.copy()
        perturbed[1, 0] += epsilon
        plus = loss_fn(perturbed)
        perturbed[1, 0] -= 2 * epsilon
        minus = loss_fn(perturbed)
        numeric = (plus - minus) / (2 * epsilon)
        assert d_inputs[1, 0] == pytest.approx(numeric, rel=1e-3, abs=1e-6)


class TestAdam:
    def test_minimises_quadratic(self):
        params = {"x": np.array([5.0])}
        optimizer = AdamOptimizer(params, learning_rate=0.1)
        for _ in range(500):
            optimizer.step({"x": 2 * params["x"]})  # gradient of x^2
        assert abs(params["x"][0]) < 0.1

    def test_gradient_clipping(self):
        params = {"x": np.array([0.0])}
        optimizer = AdamOptimizer(params, learning_rate=0.1)
        optimizer.step({"x": np.array([1e9])}, clip_norm=1.0)
        assert abs(params["x"][0]) <= 0.2

    def test_cell_initialisation_properties(self):
        cell = LSTMCell.initialise(4, 8, rng=0)
        hidden = cell.hidden_size
        assert np.all(cell.bias[hidden : 2 * hidden] == 1.0)  # forget bias
        assert cell.w_x.shape == (4, 32)
