"""Tests for the CostModel query interface and wrappers."""

import pytest

from repro.bb.block import BasicBlock
from repro.models.base import CachedCostModel, CallableCostModel, CostModel, QueryCounter
from repro.utils.errors import ModelError


class TestCallableCostModel:
    def test_wraps_function(self, tiny_block):
        model = CallableCostModel(lambda b: float(b.num_instructions), name="toy")
        assert model.predict(tiny_block) == 2.0
        assert model.name == "toy"

    def test_call_syntax(self, tiny_block):
        model = CallableCostModel(lambda b: 1.0)
        assert model(tiny_block) == 1.0

    def test_query_counter_increments(self, tiny_block):
        model = CallableCostModel(lambda b: 1.0)
        model.predict(tiny_block)
        model.predict(tiny_block)
        assert model.query_count == 2

    def test_predict_many(self, tiny_block):
        model = CallableCostModel(lambda b: float(b.num_instructions))
        assert model.predict_many([tiny_block, tiny_block]) == [2.0, 2.0]

    def test_invalid_prediction_rejected(self, tiny_block):
        model = CallableCostModel(lambda b: float("nan"))
        with pytest.raises(ModelError):
            model.predict(tiny_block)

    def test_negative_prediction_rejected(self, tiny_block):
        model = CallableCostModel(lambda b: -1.0)
        with pytest.raises(ModelError):
            model.predict(tiny_block)

    def test_microarch_resolution(self, tiny_block):
        model = CallableCostModel(lambda b: 1.0, microarch="skl")
        assert model.microarch.short_name == "skl"
        assert "Skylake" in model.describe()

    def test_paper_toy_model_m1(self):
        """The hypothetical model M1 of Section 4: 2 cycles iff 8 instructions."""
        m1 = CallableCostModel(
            lambda b: 2.0 if b.num_instructions == 8 else 1.0, name="M1"
        )
        eight = BasicBlock.from_text("\n".join(["add rax, rbx"] * 8))
        seven = BasicBlock.from_text("\n".join(["add rax, rbx"] * 7))
        assert m1.predict(eight) == 2.0
        assert m1.predict(seven) == 1.0


class TestCachedCostModel:
    def test_caches_identical_blocks(self, tiny_block):
        inner = CallableCostModel(lambda b: float(b.num_instructions), name="toy")
        cached = CachedCostModel(inner)
        cached.predict(tiny_block)
        cached.predict(BasicBlock.from_text(tiny_block.text))
        assert inner.query_count == 1
        assert cached.hits == 1 and cached.misses == 1
        assert cached.hit_rate == pytest.approx(0.5)

    def test_different_blocks_not_conflated(self, tiny_block):
        inner = CallableCostModel(lambda b: float(b.num_instructions))
        cached = CachedCostModel(inner)
        other = BasicBlock.from_text("add rcx, rax")
        assert cached.predict(tiny_block) != cached.predict(other)

    def test_name_propagated(self, tiny_block):
        inner = CallableCostModel(lambda b: 1.0, name="inner-model")
        assert CachedCostModel(inner).name == "inner-model"

    def test_capacity_limit_respected(self):
        inner = CallableCostModel(lambda b: float(b.num_instructions))
        cached = CachedCostModel(inner, max_entries=1)
        a = BasicBlock.from_text("add rcx, rax")
        b = BasicBlock.from_text("sub rcx, rax")
        cached.predict(a)
        cached.predict(b)
        assert len(cached._cache) == 1

    def test_lru_eviction_order_respects_recency(self):
        inner = CallableCostModel(lambda b: float(b.num_instructions))
        cached = CachedCostModel(inner, max_entries=2)
        a = BasicBlock.from_text("add rcx, rax")
        b = BasicBlock.from_text("sub rcx, rax")
        c = BasicBlock.from_text("xor rcx, rax")
        cached.predict(a)
        cached.predict(b)
        cached.predict(a)  # refresh a: b is now least recently used
        cached.predict(c)  # evicts b, not a
        queries_before = inner.query_count
        cached.predict(a)
        assert inner.query_count == queries_before  # a still cached
        cached.predict(b)
        assert inner.query_count == queries_before + 1  # b was evicted

    def test_batch_lookup_refreshes_recency(self):
        inner = CallableCostModel(lambda b: float(b.num_instructions))
        cached = CachedCostModel(inner, max_entries=2)
        a = BasicBlock.from_text("add rcx, rax")
        b = BasicBlock.from_text("sub rcx, rax")
        cached.predict_batch([a, b])
        cached.predict_batch([a])  # a refreshed through the batch path
        cached.predict(BasicBlock.from_text("xor rcx, rax"))  # evicts b
        queries_before = inner.query_count
        cached.predict(a)
        assert inner.query_count == queries_before

    def test_hit_rate_under_intra_batch_dedupe(self):
        inner = CallableCostModel(lambda b: float(b.num_instructions))
        cached = CachedCostModel(inner)
        x = BasicBlock.from_text("add rcx, rax")
        y = BasicBlock.from_text("sub rcx, rax")
        values = cached.predict_batch([x, x, y])
        # The duplicate of x counts as a hit, exactly as on the sequential
        # path; the two distinct blocks are misses.
        assert values == [1.0, 1.0, 1.0]
        assert cached.hits == 1 and cached.misses == 2
        assert cached.hit_rate == pytest.approx(1 / 3)

    def test_query_count_counts_distinct_blocks_per_batch(self):
        inner = CallableCostModel(lambda b: float(b.num_instructions))
        cached = CachedCostModel(inner)
        x = BasicBlock.from_text("add rcx, rax")
        y = BasicBlock.from_text("sub rcx, rax")
        cached.predict_batch([x, x, y, x])
        assert cached.query_count == 2  # one inner query per distinct block
        assert inner.query_count == 2
        cached.predict_batch([x, y, y])
        assert cached.query_count == 2  # everything already cached
        assert cached.hits == 2 + 3

    def test_batch_and_sequential_accounting_agree(self):
        x = BasicBlock.from_text("add rcx, rax")
        y = BasicBlock.from_text("sub rcx, rax")
        batched = CachedCostModel(CallableCostModel(lambda b: 1.0))
        batched.predict_batch([x, x, y])
        sequential = CachedCostModel(CallableCostModel(lambda b: 1.0))
        for one in (x, x, y):
            sequential.predict(one)
        assert (batched.hits, batched.misses, batched.query_count) == (
            sequential.hits,
            sequential.misses,
            sequential.query_count,
        )


class TestModelLifecycle:
    def test_models_are_context_managers(self, tiny_block):
        with CallableCostModel(lambda b: 1.0) as model:
            assert model.predict(tiny_block) == 1.0

    def test_close_is_idempotent(self):
        model = CallableCostModel(lambda b: 1.0)
        model.close()
        model.close()

    def test_cached_close_reaches_inner_model(self):
        from repro.runtime.backend import ThreadBackend

        cached = CachedCostModel(CallableCostModel(lambda b: 1.0))
        backend = ThreadBackend(2)
        cached.set_backend(backend, own=True)
        cached.close()
        assert backend.closed


class TestQueryCounter:
    def test_counts_queries_in_scope(self, tiny_block):
        model = CallableCostModel(lambda b: 1.0)
        model.predict(tiny_block)
        with QueryCounter(model) as counter:
            model.predict(tiny_block)
            model.predict(tiny_block)
        assert counter.queries == 2
