"""Tests for the explanation-targeted rewrite generators."""

import pytest

from repro.bb.block import BasicBlock
from repro.bb.features import (
    DependencyFeature,
    InstructionFeature,
    NumInstructionsFeature,
    extract_features,
)
from repro.bb.dependencies import DependencyKind
from repro.guidance.rewrites import (
    RewriteKind,
    dependency_breaking_rewrites,
    deletion_rewrites,
    opcode_replacement_rewrites,
    rewrites_for_feature,
)
from repro.uarch.tables import instruction_cost_for
from repro.uarch.microarch import get_microarch


RAW_BLOCK = "add rcx, rax\nmov rdx, rcx\npop rbx"
DIV_BLOCK = "mov ecx, edx\nxor edx, edx\ndiv rcx\nimul rax, rcx"


def _dependency_feature(block, kind=DependencyKind.RAW):
    for feature in extract_features(block):
        if isinstance(feature, DependencyFeature) and feature.dep_kind is kind:
            return feature
    raise AssertionError(f"no {kind} dependency in block")


class TestDependencyBreakingRewrites:
    def test_produces_candidates_for_register_raw(self):
        block = BasicBlock.from_text(RAW_BLOCK)
        feature = _dependency_feature(block)
        rewrites = dependency_breaking_rewrites(block, feature)
        assert rewrites, "expected at least one dependency-breaking rewrite"
        assert all(r.kind is RewriteKind.RENAME_DEPENDENCY for r in rewrites)

    def test_rewrites_actually_remove_the_dependency(self):
        block = BasicBlock.from_text(RAW_BLOCK)
        feature = _dependency_feature(block)
        for rewrite in dependency_breaking_rewrites(block, feature):
            kinds = {
                (d.source, d.destination, d.kind) for d in rewrite.block.dependencies
            }
            assert (feature.source, feature.destination, feature.dep_kind) not in kinds

    def test_rewritten_blocks_keep_instruction_count(self):
        block = BasicBlock.from_text(RAW_BLOCK)
        feature = _dependency_feature(block)
        for rewrite in dependency_breaking_rewrites(block, feature):
            assert rewrite.block.num_instructions == block.num_instructions

    def test_no_candidates_for_feature_absent_from_block(self):
        block = BasicBlock.from_text(RAW_BLOCK)
        other = BasicBlock.from_text(DIV_BLOCK)
        feature = _dependency_feature(other)
        assert dependency_breaking_rewrites(block, feature) == []

    def test_respects_max_candidates(self):
        block = BasicBlock.from_text(RAW_BLOCK)
        feature = _dependency_feature(block)
        rewrites = dependency_breaking_rewrites(block, feature, max_candidates=1)
        assert len(rewrites) <= 1


class TestOpcodeReplacementRewrites:
    def test_only_cheaper_candidates_by_default(self):
        block = BasicBlock.from_text(DIV_BLOCK)
        microarch = get_microarch("hsw")
        div_index = next(
            i for i, inst in enumerate(block) if inst.mnemonic == "div"
        )
        feature = InstructionFeature.of(div_index, block[div_index])
        original_cost = instruction_cost_for(block[div_index], microarch).throughput
        rewrites = opcode_replacement_rewrites(block, feature, "hsw")
        for rewrite in rewrites:
            cost = instruction_cost_for(
                rewrite.block[div_index], microarch
            ).throughput
            assert cost < original_cost

    def test_candidates_sorted_cheapest_first(self):
        block = BasicBlock.from_text(DIV_BLOCK)
        microarch = get_microarch("hsw")
        div_index = next(i for i, inst in enumerate(block) if inst.mnemonic == "div")
        feature = InstructionFeature.of(div_index, block[div_index])
        rewrites = opcode_replacement_rewrites(block, feature, "hsw", max_candidates=8)
        costs = [
            instruction_cost_for(r.block[div_index], microarch).throughput
            for r in rewrites
        ]
        assert costs == sorted(costs)

    def test_out_of_range_index_yields_nothing(self):
        block = BasicBlock.from_text(RAW_BLOCK)
        feature = InstructionFeature(
            index=99, mnemonic="add", operand_text=("rcx", "rax")
        )
        assert opcode_replacement_rewrites(block, feature, "hsw") == []

    def test_allow_sideways_moves_when_not_only_cheaper(self):
        block = BasicBlock.from_text(RAW_BLOCK)
        feature = InstructionFeature.of(0, block[0])
        strict = opcode_replacement_rewrites(block, feature, "hsw", only_cheaper=True)
        relaxed = opcode_replacement_rewrites(
            block, feature, "hsw", only_cheaper=False, max_candidates=16
        )
        assert len(relaxed) >= len(strict)


class TestDeletionRewrites:
    def test_deletion_reduces_count(self):
        block = BasicBlock.from_text(RAW_BLOCK)
        feature = InstructionFeature.of(2, block[2])
        (rewrite,) = deletion_rewrites(block, feature)
        assert rewrite.kind is RewriteKind.DELETE_INSTRUCTION
        assert rewrite.block.num_instructions == block.num_instructions - 1

    def test_single_instruction_block_cannot_be_emptied(self):
        block = BasicBlock.from_text("add rcx, rax")
        feature = InstructionFeature.of(0, block[0])
        assert deletion_rewrites(block, feature) == []

    def test_out_of_range_index_yields_nothing(self):
        block = BasicBlock.from_text(RAW_BLOCK)
        feature = InstructionFeature(index=7, mnemonic="pop", operand_text=("rbx",))
        assert deletion_rewrites(block, feature) == []


class TestRewritesForFeature:
    def test_num_instructions_feature_proposes_deletions(self):
        block = BasicBlock.from_text(RAW_BLOCK)
        feature = NumInstructionsFeature(block.num_instructions)
        rewrites = rewrites_for_feature(block, feature, "hsw")
        assert rewrites
        assert all(r.kind is RewriteKind.DELETE_INSTRUCTION for r in rewrites)
        assert len(rewrites) == block.num_instructions

    def test_num_instructions_feature_respects_allow_deletion(self):
        block = BasicBlock.from_text(RAW_BLOCK)
        feature = NumInstructionsFeature(block.num_instructions)
        assert rewrites_for_feature(block, feature, "hsw", allow_deletion=False) == []

    def test_instruction_feature_combines_replacement_and_deletion(self):
        block = BasicBlock.from_text(RAW_BLOCK)
        feature = InstructionFeature.of(0, block[0])
        kinds = {r.kind for r in rewrites_for_feature(block, feature, "hsw",
                                                      only_cheaper_opcodes=False)}
        assert RewriteKind.DELETE_INSTRUCTION in kinds

    def test_unknown_feature_type_raises(self):
        block = BasicBlock.from_text(RAW_BLOCK)
        with pytest.raises(TypeError):
            rewrites_for_feature(block, object(), "hsw")

    def test_all_rewrites_produce_valid_blocks(self):
        block = BasicBlock.from_text(DIV_BLOCK)
        for feature in extract_features(block):
            for rewrite in rewrites_for_feature(
                block, feature, "hsw", only_cheaper_opcodes=False
            ):
                # Round-tripping through the parser exercises validation.
                reparsed = BasicBlock.from_text(rewrite.block.text)
                assert reparsed.num_instructions == rewrite.block.num_instructions
