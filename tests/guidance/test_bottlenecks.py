"""Tests for bottleneck diagnosis built on COMET explanations."""

import pytest

from repro.bb.block import BasicBlock
from repro.bb.features import (
    DependencyFeature,
    InstructionFeature,
    NumInstructionsFeature,
    extract_features,
)
from repro.explain.config import ExplainerConfig
from repro.explain.explanation import Explanation
from repro.guidance.bottlenecks import BottleneckReport, diagnose
from repro.models.analytical import AnalyticalCostModel
from repro.models.base import CachedCostModel
from repro.models.uica import UiCACostModel


RAW_BLOCK = "add rcx, rax\nmov rdx, rcx\npop rbx"
DIV_BLOCK = "mov ecx, edx\nxor edx, edx\ndiv rcx\nimul rax, rcx"


def _manual_explanation(block, model, features):
    return Explanation(
        block=block,
        model_name=model.name,
        prediction=model.predict(block),
        features=tuple(features),
        precision=1.0,
        coverage=0.5,
        meets_threshold=True,
        epsilon=0.25,
    )


@pytest.fixture(scope="module")
def crude_model():
    return AnalyticalCostModel("hsw")


@pytest.fixture(scope="module")
def uica_model():
    return UiCACostModel("hsw")


class TestDiagnoseWithManualExplanations:
    def test_instruction_feature_marks_instruction_index(self, crude_model):
        block = BasicBlock.from_text(DIV_BLOCK)
        feature = InstructionFeature.of(2, block[2])
        report = diagnose(
            block, crude_model, explanation=_manual_explanation(block, crude_model, [feature])
        )
        assert report.instruction_indices == (2,)
        assert report.has_fine_grained_target
        assert not report.frontend_bound

    def test_dependency_feature_marks_pair(self, crude_model):
        block = BasicBlock.from_text(RAW_BLOCK)
        dep_feature = next(
            f for f in extract_features(block) if isinstance(f, DependencyFeature)
        )
        report = diagnose(
            block,
            crude_model,
            explanation=_manual_explanation(block, crude_model, [dep_feature]),
        )
        assert report.dependency_pairs
        source, destination, kind = report.dependency_pairs[0]
        assert source < destination
        assert kind in ("RAW", "WAR", "WAW")

    def test_count_feature_marks_frontend_bound(self, crude_model):
        block = BasicBlock.from_text(RAW_BLOCK)
        feature = NumInstructionsFeature(block.num_instructions)
        report = diagnose(
            block,
            crude_model,
            explanation=_manual_explanation(block, crude_model, [feature]),
        )
        assert report.frontend_bound
        assert not report.has_fine_grained_target

    def test_describe_mentions_prediction_and_block(self, crude_model):
        block = BasicBlock.from_text(RAW_BLOCK)
        feature = InstructionFeature.of(0, block[0])
        report = diagnose(
            block,
            crude_model,
            explanation=_manual_explanation(block, crude_model, [feature]),
        )
        text = report.describe()
        assert "Bottleneck report" in text
        assert "add" in text

    def test_hottest_instruction_prefers_named_instructions(self, crude_model):
        block = BasicBlock.from_text(DIV_BLOCK)
        feature = InstructionFeature.of(0, block[0])
        report = diagnose(
            block,
            crude_model,
            explanation=_manual_explanation(block, crude_model, [feature]),
        )
        assert report.hottest_instruction() == 0

    def test_hottest_instruction_falls_back_to_whole_block(self, crude_model):
        block = BasicBlock.from_text(DIV_BLOCK)
        feature = NumInstructionsFeature(block.num_instructions)
        report = diagnose(
            block,
            crude_model,
            explanation=_manual_explanation(block, crude_model, [feature]),
        )
        hottest = report.hottest_instruction()
        assert block[hottest].mnemonic == "div"


class TestDiagnoseWithSimulatorModels:
    def test_uica_report_includes_simulator_bottleneck(self, uica_model):
        block = BasicBlock.from_text(DIV_BLOCK)
        feature = InstructionFeature.of(2, block[2])
        report = diagnose(
            block,
            uica_model,
            explanation=_manual_explanation(block, uica_model, [feature]),
        )
        assert report.simulator_bottleneck in ("frontend", "ports", "dependencies")
        assert report.port_pressure

    def test_cached_wrapper_still_surfaces_simulator_analysis(self):
        model = CachedCostModel(UiCACostModel("hsw"))
        block = BasicBlock.from_text(RAW_BLOCK)
        feature = InstructionFeature.of(0, block[0])
        report = diagnose(
            block, model, explanation=_manual_explanation(block, model, [feature])
        )
        assert report.simulator_bottleneck is not None

    def test_analytical_model_has_no_simulator_section(self, crude_model):
        block = BasicBlock.from_text(RAW_BLOCK)
        feature = InstructionFeature.of(0, block[0])
        report = diagnose(
            block,
            crude_model,
            explanation=_manual_explanation(block, crude_model, [feature]),
        )
        assert report.simulator_bottleneck is None
        assert report.port_pressure == {}


class TestDiagnoseEndToEnd:
    def test_diagnose_runs_comet_when_no_explanation_given(self, crude_model):
        block = BasicBlock.from_text(RAW_BLOCK)
        config = ExplainerConfig(
            epsilon=0.25,
            relative_epsilon=0.0,
            coverage_samples=60,
            max_precision_samples=40,
            min_precision_samples=12,
        )
        report = diagnose(block, crude_model, config=config, rng=0)
        assert isinstance(report, BottleneckReport)
        assert report.prediction > 0.0
        assert report.explanation.num_queries > 0
