"""Tests for the explanation-guided stochastic optimizer."""

import pytest

from repro.bb.block import BasicBlock
from repro.bb.features import InstructionFeature, NumInstructionsFeature
from repro.explain.config import ExplainerConfig
from repro.explain.explanation import Explanation
from repro.guidance.optimizer import (
    ExplanationGuidedOptimizer,
    OptimizationConfig,
    OptimizationResult,
    optimize_block,
)
from repro.models.analytical import AnalyticalCostModel
from repro.models.base import CachedCostModel, CallableCostModel
from repro.models.uica import UiCACostModel


DIV_BLOCK = "mov ecx, edx\nxor edx, edx\ndiv rcx\nimul rax, rcx"
RAW_BLOCK = "add rcx, rax\nmov rdx, rcx\npop rbx"

FAST_EXPLAINER = ExplainerConfig(
    epsilon=0.25,
    relative_epsilon=0.0,
    coverage_samples=60,
    max_precision_samples=40,
    min_precision_samples=12,
)


def _manual_explanation(block, model, features):
    return Explanation(
        block=block,
        model_name=model.name,
        prediction=model.predict(block),
        features=tuple(features),
        precision=1.0,
        coverage=0.5,
        meets_threshold=True,
        epsilon=0.25,
    )


class TestOptimizationConfig:
    def test_rejects_negative_steps(self):
        with pytest.raises(ValueError):
            OptimizationConfig(steps=-1)

    def test_rejects_bad_guidance_weight(self):
        with pytest.raises(ValueError):
            OptimizationConfig(guidance_weight=1.5)

    def test_rejects_negative_temperature(self):
        with pytest.raises(ValueError):
            OptimizationConfig(temperature=-0.1)

    def test_rejects_negative_reexplain(self):
        with pytest.raises(ValueError):
            OptimizationConfig(reexplain_every=-2)


class TestOptimizerBehaviour:
    def test_never_returns_a_worse_block(self):
        model = CachedCostModel(AnalyticalCostModel("hsw"))
        block = BasicBlock.from_text(DIV_BLOCK)
        explanation = _manual_explanation(
            model=model, block=block, features=[InstructionFeature.of(2, block[2])]
        )
        optimizer = ExplanationGuidedOptimizer(
            model, OptimizationConfig(steps=25), rng=1
        )
        result = optimizer.optimize(block, explanation=explanation)
        assert result.best_cost <= result.original_cost + 1e-9

    def test_improves_division_bound_block_under_crude_model(self):
        model = CachedCostModel(AnalyticalCostModel("hsw"))
        block = BasicBlock.from_text(DIV_BLOCK)
        explanation = _manual_explanation(
            model=model, block=block, features=[InstructionFeature.of(2, block[2])]
        )
        optimizer = ExplanationGuidedOptimizer(
            model, OptimizationConfig(steps=30), rng=3
        )
        result = optimizer.optimize(block, explanation=explanation)
        # The div instruction dominates the crude model's cost; removing or
        # replacing it must lower the prediction.
        assert result.best_cost < result.original_cost

    def test_zero_steps_returns_original_block(self):
        model = AnalyticalCostModel("hsw")
        block = BasicBlock.from_text(RAW_BLOCK)
        optimizer = ExplanationGuidedOptimizer(
            model, OptimizationConfig(steps=0, guided=False), rng=0
        )
        result = optimizer.optimize(block)
        assert result.best_block == block
        assert result.steps == []
        assert result.improvement == pytest.approx(0.0)

    def test_unguided_mode_needs_no_explanation(self):
        model = AnalyticalCostModel("hsw")
        block = BasicBlock.from_text(RAW_BLOCK)
        result = optimize_block(model, block, guided=False, steps=10, rng=5)
        assert isinstance(result, OptimizationResult)
        assert result.explanations_used == 0

    def test_guided_mode_records_explanation_use(self):
        model = CachedCostModel(AnalyticalCostModel("hsw"))
        block = BasicBlock.from_text(RAW_BLOCK)
        result = optimize_block(
            model,
            block,
            guided=True,
            steps=5,
            rng=2,
            explainer_config=FAST_EXPLAINER,
        )
        assert result.explanations_used == 1

    def test_disallowing_deletion_keeps_instruction_count(self):
        model = AnalyticalCostModel("hsw")
        block = BasicBlock.from_text(DIV_BLOCK)
        explanation = _manual_explanation(
            model=model,
            block=block,
            features=[NumInstructionsFeature(block.num_instructions)],
        )
        optimizer = ExplanationGuidedOptimizer(
            model,
            OptimizationConfig(steps=20, allow_deletion=False),
            rng=4,
        )
        result = optimizer.optimize(block, explanation=explanation)
        assert result.best_block.num_instructions == block.num_instructions

    def test_describe_mentions_costs_and_blocks(self):
        model = AnalyticalCostModel("hsw")
        block = BasicBlock.from_text(RAW_BLOCK)
        result = optimize_block(model, block, guided=False, steps=8, rng=6)
        text = result.describe()
        assert "Predicted cost" in text
        assert "Original block" in text
        assert "Optimized block" in text

    def test_model_query_accounting_is_positive(self):
        model = AnalyticalCostModel("hsw")
        block = BasicBlock.from_text(RAW_BLOCK)
        result = optimize_block(model, block, guided=False, steps=8, rng=7)
        assert result.model_queries >= 1

    def test_temperature_allows_uphill_moves_to_be_recorded(self):
        # A model that penalises shorter blocks so deletions are uphill moves.
        model = CallableCostModel(lambda b: 10.0 - b.num_instructions, name="inverse")
        block = BasicBlock.from_text(RAW_BLOCK)
        optimizer = ExplanationGuidedOptimizer(
            model,
            OptimizationConfig(steps=30, guided=False, temperature=5.0),
            rng=11,
        )
        result = optimizer.optimize(block)
        assert result.best_cost <= result.original_cost + 1e-9


class TestGuidedVersusUnguided:
    def test_guided_search_is_at_least_as_good_on_division_block(self):
        """The headline claim of the guidance package, on the crude model.

        The crude model's cost for this block is dominated by the div
        instruction, and the explanation points straight at it; the guided
        search should reach a predicted cost at least as low as the unguided
        search given the same budget.
        """
        block = BasicBlock.from_text(DIV_BLOCK)
        base = AnalyticalCostModel("hsw")
        guided_model = CachedCostModel(AnalyticalCostModel("hsw"))
        explanation = _manual_explanation(
            model=base, block=block, features=[InstructionFeature.of(2, block[2])]
        )
        guided = ExplanationGuidedOptimizer(
            guided_model, OptimizationConfig(steps=15), rng=0
        ).optimize(block, explanation=explanation)
        unguided = ExplanationGuidedOptimizer(
            CachedCostModel(AnalyticalCostModel("hsw")),
            OptimizationConfig(steps=15, guided=False),
            rng=0,
        ).optimize(block)
        assert guided.best_cost <= unguided.best_cost + 1e-9

    def test_optimizer_works_against_simulation_model(self):
        model = CachedCostModel(UiCACostModel("hsw"))
        block = BasicBlock.from_text(DIV_BLOCK)
        explanation = _manual_explanation(
            model=model, block=block, features=[InstructionFeature.of(2, block[2])]
        )
        result = ExplanationGuidedOptimizer(
            model, OptimizationConfig(steps=10), rng=9
        ).optimize(block, explanation=explanation)
        assert result.best_cost <= result.original_cost + 1e-9
