"""Tests for the per-micro-architecture instruction cost tables."""

import pytest

from repro.isa.opcodes import OPCODES
from repro.isa.parser import parse_block_text, parse_instruction
from repro.uarch.tables import (
    InstructionCost,
    Uop,
    block_reciprocal_throughput_bound,
    cost_table,
    instruction_cost,
    instruction_cost_for,
)


class TestTableCoverage:
    @pytest.mark.parametrize("uarch", ["hsw", "skl"])
    def test_every_block_legal_opcode_has_a_cost(self, uarch):
        table = cost_table(uarch)
        for mnemonic, spec in OPCODES.items():
            if spec.allowed_in_block:
                assert mnemonic in table, mnemonic

    @pytest.mark.parametrize("uarch", ["hsw", "skl"])
    def test_costs_are_positive(self, uarch):
        for mnemonic, cost in cost_table(uarch).items():
            assert cost.throughput > 0, mnemonic
            assert cost.latency >= 0, mnemonic
            assert cost.total_uops >= 1, mnemonic

    def test_control_transfer_not_in_table(self):
        assert "jmp" not in cost_table("hsw")


class TestRelativeCosts:
    def test_division_dominates_alu(self):
        for uarch in ("hsw", "skl"):
            assert (
                instruction_cost("div", uarch).throughput
                > 10 * instruction_cost("add", uarch).throughput
            )

    def test_skylake_divider_is_faster(self):
        assert (
            instruction_cost("div", "skl").throughput
            < instruction_cost("div", "hsw").throughput
        )
        assert (
            instruction_cost("divss", "skl").throughput
            < instruction_cost("divss", "hsw").throughput
        )

    def test_multiply_slower_than_add(self):
        assert (
            instruction_cost("imul", "hsw").latency
            > instruction_cost("add", "hsw").latency
        )

    def test_fp_divide_uses_single_port(self):
        cost = instruction_cost("divss", "hsw")
        assert cost.uops[0].ports == frozenset({"0"})


class TestMemoryForms:
    def test_load_adds_latency(self):
        reg_form = instruction_cost_for(parse_instruction("add rcx, rax"), "hsw")
        mem_form = instruction_cost_for(
            parse_instruction("add rcx, qword ptr [rdi + 8]"), "hsw"
        )
        assert mem_form.latency > reg_form.latency
        assert mem_form.total_uops > reg_form.total_uops

    def test_store_forces_throughput_one(self):
        store = instruction_cost_for(
            parse_instruction("mov qword ptr [rdi], rdx"), "hsw"
        )
        assert store.throughput >= 1.0
        reg = instruction_cost_for(parse_instruction("mov rax, rdx"), "hsw")
        assert reg.throughput < 1.0

    def test_lea_is_not_a_memory_access(self):
        lea = instruction_cost_for(parse_instruction("lea rax, [rdi + 8]"), "hsw")
        base = instruction_cost("lea", "hsw")
        assert lea.latency == base.latency
        assert lea.total_uops == base.total_uops

    def test_pop_and_push_not_double_counted(self):
        pop = instruction_cost_for(parse_instruction("pop rbx"), "hsw")
        assert pop.total_uops == instruction_cost("pop", "hsw").total_uops


class TestUopValidation:
    def test_uop_requires_ports(self):
        with pytest.raises(ValueError):
            Uop(1, frozenset())

    def test_uop_requires_positive_count(self):
        with pytest.raises(ValueError):
            Uop(0, frozenset({"0"}))

    def test_cost_requires_positive_throughput(self):
        with pytest.raises(ValueError):
            InstructionCost(1.0, 0.0, (Uop(1, frozenset({"0"})),))


class TestThroughputBound:
    def test_bound_at_least_frontend(self):
        block = parse_block_text(
            "add rax, rbx\nadd rcx, rdx\nadd rsi, rdi\nadd r8, r9\n"
            "add r10, r11\nadd r12, r13\nadd r14, r15\nadd rbx, rax"
        )
        bound = block_reciprocal_throughput_bound(block, "hsw")
        assert bound >= 8 / 4  # 8 single-uop instructions, issue width 4

    def test_store_block_bound_by_store_port(self):
        block = parse_block_text(
            "mov qword ptr [rdi], rax\nmov qword ptr [rdi + 8], rbx\n"
            "mov qword ptr [rdi + 16], rcx"
        )
        bound = block_reciprocal_throughput_bound(block, "hsw")
        assert bound >= 3.0  # one store-data port -> one store per cycle

    def test_division_block_bound_large(self):
        block = parse_block_text("div rcx")
        assert block_reciprocal_throughput_bound(block, "hsw") > 10.0
