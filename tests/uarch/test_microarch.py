"""Tests for micro-architecture specs and ports."""

import pytest

from repro.uarch.microarch import (
    HASWELL,
    SKYLAKE,
    available_microarchitectures,
    get_microarch,
)
from repro.uarch.ports import format_ports, parse_ports
from repro.utils.errors import ReproError


class TestPorts:
    def test_parse_simple(self):
        assert parse_ports("015") == frozenset({"0", "1", "5"})

    def test_parse_with_p_prefix(self):
        assert parse_ports("p23") == frozenset({"2", "3"})

    def test_invalid_port(self):
        with pytest.raises(ValueError):
            parse_ports("0x")

    def test_empty_spec(self):
        with pytest.raises(ValueError):
            parse_ports("")

    def test_format_round_trip(self):
        assert format_ports(parse_ports("p510")) == "p015"


class TestMicroArchitectures:
    def test_lookup_by_aliases(self):
        assert get_microarch("hsw") is HASWELL
        assert get_microarch("Haswell") is HASWELL
        assert get_microarch("SKL") is SKYLAKE
        assert get_microarch("skylake") is SKYLAKE

    def test_lookup_passthrough(self):
        assert get_microarch(HASWELL) is HASWELL

    def test_unknown_raises(self):
        with pytest.raises(ReproError):
            get_microarch("zen3")

    def test_available(self):
        assert set(available_microarchitectures()) == {"hsw", "skl"}

    def test_issue_width(self):
        assert HASWELL.issue_width == 4
        assert SKYLAKE.issue_width == 4

    def test_skylake_has_larger_window(self):
        assert SKYLAKE.rob_size > HASWELL.rob_size
        assert SKYLAKE.scheduler_size > HASWELL.scheduler_size

    def test_skylake_faster_loads(self):
        assert SKYLAKE.load_latency <= HASWELL.load_latency

    def test_port_sets_are_subsets_of_ports(self):
        for uarch in (HASWELL, SKYLAKE):
            all_ports = frozenset(uarch.ports)
            assert uarch.load_ports <= all_ports
            assert uarch.store_data_ports <= all_ports
            assert uarch.store_agu_ports <= all_ports
