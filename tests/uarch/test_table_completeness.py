"""Exhaustive consistency checks of the ISA/uarch substrate tables.

The cost models and the perturbation algorithm assume that *every* opcode in
the ISA subset has a well-formed cost entry on every modelled
micro-architecture and that the register file's aliasing structure is
coherent.  These checks run over the full tables rather than spot-checking a
few mnemonics, so a new opcode or micro-architecture cannot be added half-way.
"""

import pytest

from repro.isa.opcodes import OPCODES, opcode_spec
from repro.isa.registers import REGISTERS, register, same_size_registers
from repro.uarch.microarch import available_microarchitectures, get_microarch
from repro.uarch.tables import instruction_cost


MICROARCHS = available_microarchitectures()

#: Opcodes that can appear inside a basic block (control-transfer opcodes are
#: modelled in the ISA for validation purposes but deliberately have no cost
#: entry — they can never reach a cost model).
BLOCK_OPCODES = sorted(m for m in OPCODES if opcode_spec(m).allowed_in_block)


class TestCostTableCompleteness:
    @pytest.mark.parametrize("microarch", MICROARCHS)
    def test_every_block_opcode_has_a_cost_entry(self, microarch):
        for mnemonic in BLOCK_OPCODES:
            cost = instruction_cost(mnemonic, microarch)
            assert cost is not None, f"{mnemonic} missing from {microarch} cost table"

    @pytest.mark.parametrize("microarch", MICROARCHS)
    def test_costs_are_positive_and_ordered(self, microarch):
        for mnemonic in BLOCK_OPCODES:
            cost = instruction_cost(mnemonic, microarch)
            assert cost.throughput > 0.0, mnemonic
            assert cost.latency >= 0.0, mnemonic
            # Reciprocal throughput can never exceed latency for a single
            # instruction (a result cannot be produced faster than its
            # dependency chain allows, but it can be pipelined).  The only
            # exception is nop, which produces no result and is modelled with
            # zero latency.
            if mnemonic != "nop":
                assert cost.throughput <= cost.latency + 1e-9, mnemonic

    @pytest.mark.parametrize("microarch", MICROARCHS)
    def test_every_uop_maps_to_machine_ports(self, microarch):
        machine = get_microarch(microarch)
        for mnemonic in BLOCK_OPCODES:
            cost = instruction_cost(mnemonic, microarch)
            for uop in cost.uops:
                assert uop.ports, f"{mnemonic} has a uop with no ports"
                for port in uop.ports:
                    assert port in machine.ports, (
                        f"{mnemonic} uses port {port} not present on {machine.name}"
                    )

    def test_microarchitectures_actually_differ(self):
        """Haswell and Skylake tables must not be identical copies."""
        differences = 0
        for mnemonic in BLOCK_OPCODES:
            hsw = instruction_cost(mnemonic, "hsw")
            skl = instruction_cost(mnemonic, "skl")
            if hsw.throughput != skl.throughput or hsw.latency != skl.latency:
                differences += 1
        assert differences >= 3

    def test_division_is_among_the_most_expensive_opcodes(self):
        """Sanity anchor used throughout the paper's case studies."""
        for microarch in MICROARCHS:
            div_cost = instruction_cost("div", microarch).throughput
            more_expensive = [
                mnemonic
                for mnemonic in BLOCK_OPCODES
                if instruction_cost(mnemonic, microarch).throughput > div_cost
            ]
            # Only the signed divide may be costlier than div.
            assert set(more_expensive) <= {"idiv"}, more_expensive


class TestOpcodeSpecConsistency:
    def test_access_length_matches_arity(self):
        for mnemonic in BLOCK_OPCODES:
            spec = opcode_spec(mnemonic)
            for signature in spec.signatures:
                assert len(signature) == len(spec.access), mnemonic

    def test_signatures_are_not_empty_for_operand_taking_opcodes(self):
        for mnemonic in BLOCK_OPCODES:
            spec = opcode_spec(mnemonic)
            assert spec.signatures is not None
            if spec.access:
                assert spec.signatures, mnemonic


class TestRegisterFileConsistency:
    def test_lookup_round_trip(self):
        for name, reg in REGISTERS.items():
            assert register(name) is reg
            assert reg.name == name

    def test_roots_are_reflexive_and_shared_within_families(self):
        for reg in REGISTERS.values():
            family = [r for r in REGISTERS.values() if r.root == reg.root]
            assert reg in family
            widths = [r.width for r in family]
            assert len(widths) == len(set(widths)) or reg.cls.value == "vector", (
                "general-purpose families must not contain duplicate widths: "
                f"{reg.root}"
            )

    def test_same_size_registers_share_class_and_width(self):
        for reg in REGISTERS.values():
            for candidate in same_size_registers(reg):
                assert candidate.width == reg.width
                assert candidate.cls is reg.cls
                assert candidate.root != reg.root or candidate is reg
