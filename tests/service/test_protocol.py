"""Tests for the JSON-lines wire protocol and the ``repro serve`` loop."""

import io
import json

import pytest

from repro.bb.block import BasicBlock
from repro.service import (
    ExplanationService,
    ServiceOp,
    request_from_dict,
    request_from_line,
    result_to_dict,
    serve_stream,
    stats_to_dict,
)
from repro.service.core import RequestStatus, ServiceResult
from repro.utils.errors import ServiceError


class TestRequestDecoding:
    def test_single_block_with_semicolons(self):
        request = request_from_dict({"block": "add rcx, rax; mov rdx, rcx"})
        assert len(request.blocks) == 1
        assert request.blocks[0].num_instructions == 2
        assert request.seed == 0

    def test_blocks_list_and_options(self):
        request = request_from_dict(
            {
                "blocks": ["div rcx", "add rax, rbx"],
                "seed": 7,
                "model": "uica",
                "uarch": "skl",
                "shards": "auto",
            }
        )
        assert len(request.blocks) == 2
        assert (request.seed, request.model, request.uarch) == (7, "uica", "skl")
        assert request.shards == "auto"

    def test_integer_shards(self):
        assert request_from_dict({"block": "div rcx", "shards": 3}).shards == 3

    def test_block_and_blocks_together_rejected(self):
        with pytest.raises(ServiceError):
            request_from_dict({"block": "div rcx", "blocks": ["div rcx"]})

    def test_missing_blocks_rejected(self):
        with pytest.raises(ServiceError):
            request_from_dict({"seed": 1})

    def test_json_line(self):
        client_id, request = request_from_line('{"id": 5, "block": "div rcx"}')
        assert client_id == "5"
        assert len(request.blocks) == 1

    def test_bare_text_line(self):
        client_id, request = request_from_line("add rcx, rax; pop rbx\n")
        assert client_id is None
        assert request.blocks[0].num_instructions == 2

    def test_invalid_json_rejected_with_client_id_tagged(self):
        with pytest.raises(ServiceError):
            request_from_line("{not json")
        with pytest.raises(ServiceError) as excinfo:
            request_from_line('{"id": "r9", "seed": 1}')
        assert excinfo.value.client_id == "r9"

    def test_non_object_json_rejected(self):
        with pytest.raises(ServiceError):
            request_from_line("[1, 2, 3]")

    def test_empty_line_rejected(self):
        with pytest.raises(ServiceError):
            request_from_line("   ")

    def test_stats_op_line(self):
        client_id, request = request_from_line('{"id": "s1", "op": "stats"}')
        assert client_id == "s1"
        assert isinstance(request, ServiceOp)
        assert request.op == "stats"

    def test_unknown_op_rejected_with_client_id_tagged(self):
        with pytest.raises(ServiceError) as excinfo:
            request_from_line('{"id": "s2", "op": "frobnicate"}')
        assert "unknown op" in str(excinfo.value)
        assert excinfo.value.client_id == "s2"

    def test_op_mixed_with_explanation_fields_rejected(self):
        with pytest.raises(ServiceError) as excinfo:
            request_from_line('{"id": "s3", "op": "stats", "block": "div rcx", "seed": 3}')
        assert "cannot carry explanation fields" in str(excinfo.value)
        assert "block" in str(excinfo.value) and "seed" in str(excinfo.value)
        assert excinfo.value.client_id == "s3"


class TestResultEncoding:
    def test_failed_result_carries_error(self):
        result = ServiceResult(
            request_id="req-1",
            status=RequestStatus.FAILED,
            explanations=(),
            error="boom",
            model="crude",
            uarch="hsw",
            seconds=0.25,
        )
        payload = result_to_dict(result, "client-7")
        assert payload["id"] == "client-7"
        assert payload["status"] == "failed"
        assert payload["error"] == "boom"
        assert "explanations" not in payload


class TestServeStream:
    def _serve(self, lines, fast_config, **service_kwargs):
        out = io.StringIO()
        with ExplanationService(
            model="crude", config=fast_config, **service_kwargs
        ) as service:
            served = serve_stream(service, lines, out)
        responses = [json.loads(line) for line in out.getvalue().splitlines()]
        return served, responses

    def test_requests_answered_in_submission_order(self, fast_config):
        lines = [
            '{"id": "a", "block": "add rcx, rax; mov rdx, rcx; pop rbx", "seed": 0}',
            "",  # blank lines are skipped
            '{"id": "b", "block": "div rcx", "seed": 1}',
            "xor edx, edx; div rcx",
        ]
        served, responses = self._serve(lines, fast_config)
        assert served == 3
        assert [r["id"] for r in responses] == ["a", "b", None]
        for response in responses:
            assert response["status"] == "done"
            assert len(response["explanations"]) == 1
            assert response["model"] == "crude"

    def test_explanations_serialize_the_result_payload(self, fast_config):
        _, responses = self._serve(['{"block": "div rcx", "seed": 3}'], fast_config)
        explanation = responses[0]["explanations"][0]
        assert explanation["block"] == ["div rcx"]
        assert "precision" in explanation and "coverage" in explanation
        assert isinstance(explanation["features"], list)

    def test_bad_lines_fail_in_band_and_stream_continues(self, fast_config):
        lines = [
            "{broken json",
            '{"id": "x", "seed": 2}',  # no block
            '{"id": "y", "block": "not actual asm ???"}',  # parse failure
            '{"id": "ok", "block": "div rcx"}',
        ]
        served, responses = self._serve(lines, fast_config)
        assert served == 1
        by_id = {r["id"]: r for r in responses}
        assert by_id[None]["status"] == "failed"  # broken json
        assert by_id["x"]["status"] == "failed"
        assert "block" in by_id["x"]["error"]
        assert by_id["y"]["status"] == "failed"
        assert "cannot parse" in by_id["y"]["error"]
        assert by_id["ok"]["status"] == "done"

    def test_multi_block_request_roundtrip(self, fast_config):
        lines = ['{"id": "fleet", "blocks": ["div rcx", "add rax, rbx"], "seed": 2}']
        served, responses = self._serve(lines, fast_config)
        assert served == 1
        assert len(responses[0]["explanations"]) == 2

    def test_stats_op_answered_in_submission_order(self, fast_config):
        lines = [
            '{"id": "a", "block": "div rcx", "seed": 0}',
            '{"id": "s", "op": "stats"}',
            '{"id": "b", "block": "add rax, rbx", "seed": 1}',
        ]
        served, responses = self._serve(lines, fast_config, dispatchers=2)
        # Ops are answered but not counted as served requests (the stream's
        # served total agrees with the service's own accounting).
        assert served == 2
        assert [r["id"] for r in responses] == ["a", "s", "b"]
        stats_response = responses[1]
        assert stats_response["status"] == "done"
        assert stats_response["op"] == "stats"
        stats = stats_response["stats"]
        # The snapshot is taken when its turn to answer comes: request "a"
        # has been served by then.
        assert stats["served"] >= 1
        assert stats["dispatchers"] == 2
        assert len(stats["dispatcher_stats"]) == 2
        assert stats["pool"]["sessions"] == 1
        assert stats["sessions"] == [["crude", "hsw"]]

    def test_pending_backlog_is_bounded_by_backpressure(self, fast_config):
        """An op flood on stdio stalls reading (flush) instead of buffering
        without limit — and every op is still answered, in order."""
        lines = ['{"id": "e", "block": "div rcx", "seed": 0}'] + [
            f'{{"id": "s{index}", "op": "stats"}}' for index in range(10)
        ]
        out = io.StringIO()
        with ExplanationService(model="crude", config=fast_config) as service:
            served = serve_stream(service, lines, out, max_pending=3)
        responses = [json.loads(line) for line in out.getvalue().splitlines()]
        assert served == 1  # ops are not counted as served requests
        assert [r["id"] for r in responses] == ["e"] + [f"s{i}" for i in range(10)]
        assert all(r["status"] == "done" for r in responses)

    def test_stats_to_dict_is_json_safe(self, fast_config):
        with ExplanationService(model="crude", config=fast_config) as service:
            service.explain(BasicBlock.from_text("div rcx"))
            payload = stats_to_dict(service.stats(), "c9")
        decoded = json.loads(json.dumps(payload))
        assert decoded["id"] == "c9"
        assert decoded["stats"]["submitted"] == 1
        assert decoded["stats"]["pool"]["builds"] == 1


class TestServeCli:
    def test_serve_subcommand_reads_request_file(self, tmp_path, capsys):
        from repro.cli import main

        requests = tmp_path / "requests.jsonl"
        requests.write_text(
            '{"id": "r1", "block": "add rcx, rax; mov rdx, rcx; pop rbx"}\n'
            "div rcx; add rax, rbx\n"
        )
        code = main(
            [
                "serve",
                "--model",
                "crude",
                "--requests",
                str(requests),
                "--coverage-samples",
                "80",
                "--max-precision-samples",
                "40",
                "--max-queue",
                "4",
            ]
        )
        captured = capsys.readouterr()
        assert code == 0
        responses = [json.loads(line) for line in captured.out.splitlines()]
        assert [r["id"] for r in responses] == ["r1", None]
        assert all(r["status"] == "done" for r in responses)
        assert "served 2 requests" in captured.err

    def test_serve_parser_defaults(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["serve"])
        assert args.max_queue == 64
        assert args.max_sessions == 4
        assert args.requests is None
        assert args.backend == "serial"
