"""The scheduler in isolation: affinity routing, per-key mutual exclusion,
work stealing, fairness and admission control, tested with synthetic items
(no explanation machinery) so the concurrency invariants are visible.
"""

import threading
import time
from collections import defaultdict

import pytest

from repro.service.scheduler import Scheduler
from repro.utils.errors import QueueFullError, ServiceClosedError


class _Recorder:
    """Collects executions and watches for per-key concurrency violations."""

    def __init__(self, delay=0.0, gate=None):
        self.delay = delay
        self.gate = gate
        self.lock = threading.Lock()
        self.executed = []          # (key, item, thread name) in finish order
        self.running = set()        # keys currently in flight
        self.violations = []        # keys seen running concurrently

    def __call__(self, item):
        key, payload = item
        with self.lock:
            if key in self.running:
                self.violations.append(key)
            self.running.add(key)
        if self.gate is not None:
            self.gate.wait(timeout=30)
        if self.delay:
            time.sleep(self.delay)
        with self.lock:
            self.running.discard(key)
            self.executed.append((key, payload, threading.current_thread().name))


def _submit(scheduler, key, payload, **kwargs):
    scheduler.submit(key, (key, payload), **kwargs)


class TestRouting:
    def test_home_is_stable_and_in_range(self):
        scheduler = Scheduler(lambda item: None, dispatchers=4)
        try:
            keys = [("crude", "hsw"), ("crude", "skl"), ("uica", "hsw"), ("m", "u")]
            homes = {key: scheduler.home(key) for key in keys}
            for key, home in homes.items():
                assert 0 <= home < 4
                assert scheduler.home(key) == home  # stable on re-ask
        finally:
            scheduler.close()

    def test_all_items_of_one_key_execute_fifo(self):
        recorder = _Recorder()
        scheduler = Scheduler(recorder, dispatchers=4, max_queue=64)
        try:
            for index in range(20):
                _submit(scheduler, "k", index)
            assert scheduler.drain(timeout=30)
        finally:
            scheduler.close()
        assert [payload for _, payload, _ in recorder.executed] == list(range(20))
        assert not recorder.violations

    def test_per_key_mutual_exclusion_under_load(self):
        recorder = _Recorder(delay=0.002)
        scheduler = Scheduler(recorder, dispatchers=4, max_queue=256)
        try:
            for index in range(120):
                _submit(scheduler, f"key-{index % 6}", index)
            assert scheduler.drain(timeout=60)
        finally:
            scheduler.close()
        assert not recorder.violations
        assert len(recorder.executed) == 120
        # And each key's items finished in submission order.
        per_key = defaultdict(list)
        for key, payload, _ in recorder.executed:
            per_key[key].append(payload)
        for key, payloads in per_key.items():
            assert payloads == sorted(payloads), key

    def test_distinct_keys_spread_across_threads(self):
        recorder = _Recorder(delay=0.01)
        scheduler = Scheduler(recorder, dispatchers=4, max_queue=64)
        try:
            for index in range(16):
                _submit(scheduler, f"key-{index}", index)
            assert scheduler.drain(timeout=60)
        finally:
            scheduler.close()
        threads_used = {name for _, _, name in recorder.executed}
        assert len(threads_used) > 1  # the fleet actually fanned out


class TestStealing:
    def test_idle_dispatcher_steals_foreign_keys(self):
        """One key's backlog blocks its home dispatcher; other keys homed to
        the same dispatcher still make progress via stealing."""
        recorder = _Recorder(delay=0.02)
        scheduler = Scheduler(recorder, dispatchers=2, max_queue=64)
        try:
            # Find keys homed to dispatcher 0 (stable hash → deterministic).
            homed0 = [f"k{i}" for i in range(40) if scheduler.home(f"k{i}") == 0][:4]
            assert len(homed0) == 4
            for rounds in range(3):
                for key in homed0:
                    _submit(scheduler, key, rounds)
            assert scheduler.drain(timeout=60)
            stats = scheduler.stats()
        finally:
            scheduler.close()
        assert not recorder.violations
        # Dispatcher 1 had nothing of its own, so everything it ran was stolen.
        assert stats.dispatcher_stats[1].executed == stats.dispatcher_stats[1].stolen
        assert stats.dispatcher_stats[1].stolen > 0
        assert sum(d.executed for d in stats.dispatcher_stats) == 12

    def test_stealing_disabled_pins_keys_to_home(self):
        recorder = _Recorder(delay=0.005)
        scheduler = Scheduler(recorder, dispatchers=2, max_queue=64, steal=False)
        try:
            keys = [f"k{i}" for i in range(8)]
            for key in keys:
                _submit(scheduler, key, 0)
            assert scheduler.drain(timeout=60)
            stats = scheduler.stats()
        finally:
            scheduler.close()
        assert all(d.stolen == 0 for d in stats.dispatcher_stats)
        # Every item ran on its key's home dispatcher thread.
        for key, _, thread_name in recorder.executed:
            assert thread_name == f"repro-dispatcher-{scheduler.home(key)}"


class TestFairness:
    def test_hot_key_cannot_starve_others(self):
        """With a deep backlog on one key, a later-submitted key still gets
        served long before the hot key's backlog is done (round-robin)."""
        recorder = _Recorder(delay=0.002)
        gate = threading.Event()

        def executor(item):
            # Hold the first claim until both key queues exist.
            gate.wait(timeout=30)
            recorder(item)

        scheduler = Scheduler(executor, dispatchers=1, max_queue=256)
        try:
            for index in range(50):
                _submit(scheduler, "hot", index)
            _submit(scheduler, "cold", 0)
            gate.set()
            assert scheduler.drain(timeout=60)
        finally:
            scheduler.close()
        finish_order = [key for key, _, _ in recorder.executed]
        cold_position = finish_order.index("cold")
        # Round-robin: the cold key is served within a couple of hot items,
        # not behind the whole backlog.
        assert cold_position <= 3, finish_order[:10]


class TestAdmissionControl:
    def test_non_blocking_submit_raises_when_full(self):
        gate = threading.Event()
        recorder = _Recorder(gate=gate)
        scheduler = Scheduler(recorder, dispatchers=1, max_queue=2)
        try:
            _submit(scheduler, "k", 0)  # claimed, blocked on the gate
            deadline = time.monotonic() + 10
            while scheduler.stats().in_flight != 1:
                assert time.monotonic() < deadline
                time.sleep(0.002)
            _submit(scheduler, "k", 1)
            _submit(scheduler, "k", 2)
            with pytest.raises(QueueFullError):
                _submit(scheduler, "k", 3, block=False)
            with pytest.raises(QueueFullError):
                _submit(scheduler, "k", 4, timeout=0.05)
        finally:
            gate.set()
            scheduler.close()
        assert len(recorder.executed) == 3

    def test_blocking_submit_waits_for_space(self):
        gate = threading.Event()
        recorder = _Recorder(gate=gate)
        scheduler = Scheduler(recorder, dispatchers=1, max_queue=1)
        try:
            _submit(scheduler, "k", 0)
            releaser = threading.Timer(0.1, gate.set)
            releaser.start()
            _submit(scheduler, "k", 1, timeout=10.0)  # blocks, then succeeds
            assert scheduler.drain(timeout=30)
        finally:
            gate.set()
            scheduler.close()
        assert len(recorder.executed) == 2

    def test_queue_depth_reported(self):
        gate = threading.Event()
        recorder = _Recorder(gate=gate)
        scheduler = Scheduler(recorder, dispatchers=1, max_queue=8)
        try:
            for index in range(4):
                _submit(scheduler, "k", index)
            deadline = time.monotonic() + 10
            while scheduler.stats().in_flight != 1:
                assert time.monotonic() < deadline
                time.sleep(0.002)
            stats = scheduler.stats()
            assert stats.queue_depth == 3
            assert stats.keys == 1
            assert stats.dispatchers == 1
        finally:
            gate.set()
            scheduler.close()


class TestAbsorption:
    """``claim_extra``: an executor holding a key may pull newly queued
    same-key work into its own run instead of parking it behind the claim."""

    def test_claim_extra_absorbs_queued_same_key_work(self):
        claimed = threading.Event()
        release = threading.Event()
        holder = {}
        executed = []
        absorbed = []

        def executor(item):
            executed.append(item)
            claimed.set()
            release.wait(timeout=30)
            scheduler = holder["scheduler"]
            extras = scheduler.claim_extra("hot", 10)
            absorbed.extend(extras)
            for _ in extras:
                scheduler.extra_done("hot")

        scheduler = holder["scheduler"] = Scheduler(
            executor, dispatchers=1, max_queue=16
        )
        try:
            scheduler.submit("hot", "primary")
            assert claimed.wait(timeout=30)
            # Queued behind an inflight key: normally these wait for the
            # claim to finish; the executor absorbs them instead.
            scheduler.submit("hot", "x1")
            scheduler.submit("hot", "x2")
            release.set()
            assert scheduler.drain(timeout=30)
            stats = scheduler.stats()
        finally:
            scheduler.close()
        # Absorbed items left the queue in FIFO order and never reached the
        # executor on their own; the drain still accounted for all three.
        assert executed == ["primary"]
        assert absorbed == ["x1", "x2"]
        assert stats.absorbed == 2
        assert stats.queue_depth == 0

    def test_claim_extra_respects_limit(self):
        claimed = threading.Event()
        release = threading.Event()
        holder = {}
        absorbed = []

        def executor(item):
            claimed.set()
            release.wait(timeout=30)
            scheduler = holder["scheduler"]
            extras = scheduler.claim_extra("hot", 1)
            absorbed.extend(extras)
            for _ in extras:
                scheduler.extra_done("hot")

        scheduler = holder["scheduler"] = Scheduler(
            executor, dispatchers=1, max_queue=16
        )
        try:
            scheduler.submit("hot", "primary")
            assert claimed.wait(timeout=30)
            scheduler.submit("hot", "x1")
            scheduler.submit("hot", "x2")
            release.set()
            assert scheduler.drain(timeout=30)
        finally:
            scheduler.close()
        # Only one absorbed; the other executed through a normal claim.
        assert absorbed == ["x1"]

    def test_claim_extra_requires_an_inflight_key(self):
        scheduler = Scheduler(lambda item: None, dispatchers=1)
        try:
            assert scheduler.claim_extra("idle", 4) == []
            assert scheduler.claim_extra("idle", 0) == []
        finally:
            scheduler.close()
        assert scheduler.stats().absorbed == 0


class TestLifecycle:
    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            Scheduler(lambda item: None, dispatchers=0)
        with pytest.raises(ValueError):
            Scheduler(lambda item: None, max_queue=0)

    def test_submit_after_close_raises(self):
        scheduler = Scheduler(lambda item: None)
        scheduler.close()
        with pytest.raises(ServiceClosedError):
            _submit(scheduler, "k", 0)

    def test_close_drains_backlog_by_default(self):
        recorder = _Recorder(delay=0.002)
        scheduler = Scheduler(recorder, dispatchers=2, max_queue=64)
        for index in range(10):
            _submit(scheduler, f"k{index % 3}", index)
        cancelled = scheduler.close()
        assert cancelled == []
        assert len(recorder.executed) == 10

    def test_close_with_cancel_returns_backlog(self):
        gate = threading.Event()
        recorder = _Recorder(gate=gate)
        scheduler = Scheduler(recorder, dispatchers=1, max_queue=64)
        _submit(scheduler, "k", 0)
        deadline = time.monotonic() + 10
        while scheduler.stats().in_flight != 1:
            assert time.monotonic() < deadline
            time.sleep(0.002)
        for index in (1, 2, 3):
            _submit(scheduler, "k", index)
        gate.set()
        cancelled = scheduler.close(cancel=True)
        assert [payload for _, payload in cancelled] == [1, 2, 3]
        assert [payload for _, payload, _ in recorder.executed] == [0]

    def test_close_wakes_blocked_submitters(self):
        gate = threading.Event()
        scheduler = Scheduler(_Recorder(gate=gate), dispatchers=1, max_queue=1)
        _submit(scheduler, "k", 0)
        outcome = []

        def blocked_submit():
            try:
                _submit(scheduler, "k", 1)  # queue full: blocks
            except ServiceClosedError:
                outcome.append("closed")

        thread = threading.Thread(target=blocked_submit)
        thread.start()
        time.sleep(0.05)
        gate.set()
        scheduler.close()
        thread.join(timeout=10)
        assert not thread.is_alive()
        # Either the submit squeezed in before close (then it executed) or
        # it was woken with ServiceClosedError; both are clean outcomes.
        assert outcome in ([], ["closed"])

    def test_close_is_idempotent(self):
        scheduler = Scheduler(lambda item: None)
        scheduler.close()
        assert scheduler.close() == []
        assert scheduler.close(cancel=True) == []

    def test_drain_times_out(self):
        gate = threading.Event()
        scheduler = Scheduler(_Recorder(gate=gate), dispatchers=1)
        try:
            _submit(scheduler, "k", 0)
            assert scheduler.drain(timeout=0.05) is False
            gate.set()
            assert scheduler.drain(timeout=30)
        finally:
            gate.set()
            scheduler.close()
