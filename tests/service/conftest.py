"""Fixture guards shared by the service suite.

Several fixtures in this directory park requests on in-process
synchronisation primitives — a ``threading.Event`` gate the test opens, a
backend handle held for a later SIGKILL.  Those only work when the session
backend runs model queries in the test's own address space
(``ExecutionBackend.shares_memory``): a process backend would ship a *copy*
of the gate to its workers, and the test would hang forever waiting on an
Event nobody can set.  The gated fixtures therefore pin ``backend="serial"``
no matter what ``REPRO_BACKEND`` says; the guard below turns that pin into
an explicit, reported skip instead of a silent hang should it ever be
dropped or the serial backend stop sharing memory.
"""

import pytest

from repro.runtime.backend import resolve_backend


def require_in_process_backend(backend="serial"):
    """Skip — with the reason in the report — unless ``backend`` shares memory.

    Call this from a fixture body (the test's own thread), not from inside a
    ``session_factory``: factories run on dispatcher threads, where a
    ``pytest.skip`` would surface as a request *failure* instead of a skip.
    Returns ``backend`` unchanged so call sites can pin and guard in one
    expression.
    """
    probe = resolve_backend(backend)
    try:
        if not probe.shares_memory:
            pytest.skip(
                f"backend {probe.name!r} does not run model queries in the "
                "test process; an in-process gate Event would never open"
            )
    finally:
        probe.close()
    return backend
