"""Continuous batching: fused same-key serving equals the unfused oracle.

The acceptance bar for cross-request fusion mirrors the multi-dispatcher
one: a client must never be able to tell (from the explanation itself)
whether their request had a warm session to itself or shared every
cost-model invocation with seven other requests mid-flight.  On top of
bit-for-bit parity this suite pins the parts fusion could silently break:
exact per-request ``num_queries`` accounting, per-request cancellation and
deadline expiry inside a fused group, and the fused-tick observability
counters.
"""

import threading
import time

import pytest

from repro.bb.block import BasicBlock
from repro.explain.config import ExplainerConfig
from repro.models.analytical import AnalyticalCostModel
from repro.models.base import CachedCostModel
from repro.runtime.session import ExplanationSession
from repro.service import (
    ExplanationService,
    FusionCounters,
    RequestStatus,
    ServiceClient,
    SocketServer,
    run_fused_group,
)
from repro.service.batching import FusedEntry

from tests.conftest import (
    FAST_CONFIG,
    explanation_dict_fingerprint,
    explanation_fingerprint,
)


def _oracle(workload, fast_config):
    """Single-dispatcher, fusion-off, cache-free serving — the behavioral
    reference.  The result cache is pinned off so that under the CI cache
    lanes (``REPRO_RESULT_CACHE`` exported) the oracle cannot pre-warm the
    ambient store the subject service would then trivially serve from —
    parity must be proven against an independent computation."""
    with ExplanationService(
        model="crude",
        config=fast_config,
        dispatchers=1,
        continuous_batching=False,
        result_cache=False,
    ) as service:
        return {
            (block.key(), seed, uarch): explanation_fingerprint(
                service.explain(block, seed=seed, uarch=uarch)[0]
            )
            for block, seed, uarch in workload
        }


class TestFusedParity:
    def _workload(self, tiny_blocks):
        return [
            (block, seed, uarch)
            for uarch in ("hsw", "skl")
            for seed in range(2)
            for block in tiny_blocks
        ]

    def test_fused_serial_submission_matches_oracle(self, fast_config, tiny_blocks):
        workload = self._workload(tiny_blocks)
        oracle = _oracle(workload, fast_config)
        with ExplanationService(
            model="crude", config=fast_config, continuous_batching=True
        ) as service:
            served = {
                (block.key(), seed, uarch): explanation_fingerprint(
                    service.explain(block, seed=seed, uarch=uarch)[0]
                )
                for block, seed, uarch in workload
            }
        assert served == oracle

    def test_fused_same_key_backlog_matches_oracle_and_actually_fuses(
        self, fast_config, tiny_blocks
    ):
        """Submit a same-key backlog up front: the first claim seeds the
        fused group, everything else is absorbed into shared ticks."""
        workload = [
            (block, seed, "hsw") for seed in range(4) for block in tiny_blocks
        ]
        oracle = _oracle(workload, fast_config)
        with ExplanationService(
            model="crude",
            config=fast_config,
            dispatchers=1,
            continuous_batching=True,
            # Cache off: this test asserts the fusion *mechanism* (ticks,
            # occupancy, absorption), which an ambient REPRO_RESULT_CACHE
            # would short-circuit — cache-hit requests retire without ticks.
            result_cache=False,
        ) as service:
            ids = {
                service.submit(block, seed=seed, uarch=uarch): (block, seed, uarch)
                for block, seed, uarch in workload
            }
            served = {}
            for request_id, (block, seed, uarch) in ids.items():
                result = service.result(request_id, timeout=120)
                assert result.ok, result.error
                served[(block.key(), seed, uarch)] = explanation_fingerprint(
                    result.explanations[0]
                )
            stats = service.stats()
        assert served == oracle
        fusion = stats.fusion
        assert fusion is not None and fusion.enabled
        assert fusion.requests_fused == len(workload)
        assert fusion.ticks > 0
        # The backlog was outstanding while the first request ran, so fused
        # ticks really carried more than one request on average.
        assert fusion.mean_occupancy > 1.0
        assert stats.absorbed >= 1
        assert sum(ticks for _, ticks in fusion.occupancy) == fusion.ticks
        assert "fused ticks" in stats.describe()

    def test_fused_socket_stress_matches_oracle(self, fast_config, tiny_blocks):
        """Mixed-key 8-client stress over TCP, fused at 4 dispatchers."""
        from repro.reporting.export import explanation_to_dict

        workload = self._workload(tiny_blocks)
        with ExplanationService(
            model="crude",
            config=fast_config,
            dispatchers=1,
            continuous_batching=False,
            result_cache=False,  # independent oracle, even in CI cache lanes
        ) as service:
            oracle = {
                (block.key(), seed, uarch): explanation_dict_fingerprint(
                    explanation_to_dict(
                        service.explain(block, seed=seed, uarch=uarch)[0]
                    )
                )
                for block, seed, uarch in workload
            }
        with ExplanationService(
            model="crude",
            config=fast_config,
            dispatchers=4,
            continuous_batching=True,
        ) as service:
            with SocketServer(service, port=0) as server:
                results = {}
                results_lock = threading.Lock()
                errors = []
                barrier = threading.Barrier(8)

                def client(items):
                    try:
                        with ServiceClient(*server.address, timeout=120) as remote:
                            barrier.wait(timeout=30)
                            for block, seed, uarch in items:
                                payload = remote.explain(
                                    block, seed=seed, uarch=uarch
                                )[0]
                                with results_lock:
                                    results[(block.key(), seed, uarch)] = (
                                        explanation_dict_fingerprint(payload)
                                    )
                    except Exception as error:  # surfaced to the main thread
                        errors.append(error)

                threads = [
                    threading.Thread(target=client, args=(workload[i::8],))
                    for i in range(8)
                ]
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join(timeout=300)
                assert not errors
                with ServiceClient(*server.address, timeout=30) as remote:
                    wire_stats = remote.stats()
        # Wire fingerprints against locally-computed oracle dicts: floats
        # survive the JSON round-trip exactly.
        assert results == oracle
        fusion = wire_stats["fusion"]
        assert fusion["enabled"] is True
        # Stats ops never enter the batcher; every explanation request did.
        assert fusion["requests_fused"] == len(workload)

    def test_fleet_requests_fused_match_oracle(self, fast_config, tiny_blocks):
        workload = list(tiny_blocks) + [tiny_blocks[0]]  # include a repeat
        with ExplanationService(
            model="crude", config=fast_config, dispatchers=1,
            continuous_batching=False,
            result_cache=False,  # independent oracle, even in CI cache lanes
        ) as service:
            oracle = service.explain(workload, seed=11)
        with ExplanationService(
            model="crude", config=fast_config, continuous_batching=True
        ) as service:
            served = service.explain(workload, seed=11)
        assert [explanation_fingerprint(e) for e in served] == [
            explanation_fingerprint(e) for e in oracle
        ]


class TestFusedQueryAccounting:
    def _counting_factory(self, holder):
        def factory(name, uarch):
            model = CachedCostModel(AnalyticalCostModel(uarch))
            holder[(name, uarch)] = model
            return ExplanationSession(model, FAST_CONFIG)

        return factory

    def test_fused_num_queries_sum_to_inner_model_work(self, tiny_blocks):
        """Per-request accounting is exact under fusion: summing
        ``num_queries`` over every fused request recovers precisely the
        inner-model evaluations the shared cache performed."""
        holder = {}
        with ExplanationService(
            model="crude",
            config=FAST_CONFIG,
            session_factory=self._counting_factory(holder),
            dispatchers=1,
            continuous_batching=True,
        ) as service:
            ids = [
                service.submit(block, seed=seed)
                for seed in range(3)
                for block in tiny_blocks
            ]
            total = 0
            for request_id in ids:
                result = service.result(request_id, timeout=120)
                assert result.ok, result.error
                total += sum(e.num_queries for e in result.explanations)
        model = holder[("crude", "hsw")]
        assert total == model.query_count

    def test_single_fused_request_num_queries_match_unfused(self, tiny_blocks):
        """A lone request in a fused group pays exactly what it pays unfused."""
        block = tiny_blocks[0]

        def serve(continuous_batching):
            with ExplanationService(
                model="crude",
                config=FAST_CONFIG,
                continuous_batching=continuous_batching,
                # Cache off: a memoized hit would return the stored count
                # and make this accounting comparison vacuous.
                result_cache=False,
            ) as service:
                return service.explain(block, seed=7)[0].num_queries

        assert serve(True) == serve(False)


class TestFusedFaultInjection:
    def test_cancel_one_fused_member_leaves_others_bit_for_bit(
        self, fast_config, tiny_blocks, block_fleet
    ):
        """Cancel a running fleet request mid-group: it retires CANCELLED at
        its next round boundary while the absorbed members finish unperturbed."""
        victim_blocks = list(block_fleet[:10])
        bystanders = [(block, seed) for seed in range(2) for block in tiny_blocks]
        oracle = _oracle(
            [(block, seed, "hsw") for block, seed in bystanders], fast_config
        )
        with ExplanationService(
            model="crude",
            config=fast_config,
            dispatchers=1,
            continuous_batching=True,
            # Cache off: the victim must actually *run* long enough to be
            # cancelled mid-group; ambient warmth could retire it instantly.
            result_cache=False,
        ) as service:
            victim = service.submit(victim_blocks, seed=0)
            deadline = time.monotonic() + 30
            while service.poll(victim) is RequestStatus.QUEUED:
                assert time.monotonic() < deadline, "victim never started"
                time.sleep(0.001)
            ids = [
                service.submit(block, seed=seed) for block, seed in bystanders
            ]
            assert service.cancel(victim) is True
            victim_result = service.result(victim, timeout=120)
            served = {}
            for request_id, (block, seed) in zip(ids, bystanders):
                result = service.result(request_id, timeout=120)
                assert result.ok, result.error
                served[(block.key(), seed, "hsw")] = explanation_fingerprint(
                    result.explanations[0]
                )
            stats = service.stats()
        assert victim_result.status is RequestStatus.CANCELLED
        assert served == oracle
        assert stats.cancelled == 1
        assert stats.served == len(bystanders)

    def test_deadline_expiry_inside_fused_group_is_isolated(
        self, fast_config, tiny_blocks, block_fleet
    ):
        """A member whose server-side deadline lapses mid-group fails with
        the deadline error; the rest of the group still matches the oracle."""
        bystanders = [(block, seed) for seed in range(2) for block in tiny_blocks]
        oracle = _oracle(
            [(block, seed, "hsw") for block, seed in bystanders], fast_config
        )
        with ExplanationService(
            model="crude",
            config=fast_config,
            dispatchers=1,
            continuous_batching=True,
            # Cache off: the doomed request's deadline must lapse while it
            # still has work; ambient warmth could finish it first.
            result_cache=False,
        ) as service:
            doomed = service.submit(
                list(block_fleet[:10]), seed=0, deadline=0.001
            )
            ids = [
                service.submit(block, seed=seed) for block, seed in bystanders
            ]
            doomed_result = service.result(doomed, timeout=120)
            served = {}
            for request_id, (block, seed) in zip(ids, bystanders):
                result = service.result(request_id, timeout=120)
                assert result.ok, result.error
                served[(block.key(), seed, "hsw")] = explanation_fingerprint(
                    result.explanations[0]
                )
            stats = service.stats()
        assert doomed_result.status is RequestStatus.FAILED
        assert "Deadline" in doomed_result.error
        assert served == oracle
        assert stats.deadline_expired == 1


class _SegmentedFaultModel(CachedCostModel):
    """A cache whose fused entry point always fails, forcing the batcher
    onto its per-segment isolation fallback."""

    def __init__(self, inner):
        super().__init__(inner)
        self.segmented_calls = 0

    def predict_batch_segmented(self, segments):
        self.segmented_calls += 1
        raise RuntimeError("fused path poisoned")


class TestRunFusedGroupUnit:
    def _entry(self, blocks, seed, sink):
        def finish(explanations):
            assert "outcome" not in sink, "retired twice"
            sink["outcome"] = ("done", explanations)

        def fail(error):
            assert "outcome" not in sink, "retired twice"
            sink["outcome"] = ("failed", error)

        return FusedEntry(
            blocks=tuple(blocks), seed=seed, token=None, finish=finish, fail=fail
        )

    def test_fused_group_matches_session_explain(self, fast_config, tiny_blocks):
        with ExplanationSession(
            AnalyticalCostModel("hsw"), fast_config
        ) as session:
            expected = [
                explanation_fingerprint(session.explain(block, rng=seed))
                for seed, block in enumerate(tiny_blocks)
            ]
        with ExplanationSession(
            AnalyticalCostModel("hsw"), fast_config
        ) as session:
            sinks = [{} for _ in tiny_blocks]
            entries = [
                self._entry([block], seed, sink)
                for (seed, block), sink in zip(enumerate(tiny_blocks), sinks)
            ]
            counters = FusionCounters()
            run_fused_group(session, entries, counters=counters)
            assert session.explanations_produced == len(tiny_blocks)
        fused = []
        for sink in sinks:
            status, explanations = sink["outcome"]
            assert status == "done"
            fused.append(explanation_fingerprint(explanations[0]))
        assert fused == expected
        snapshot = counters.snapshot(enabled=True, max_fused_requests=8)
        assert snapshot.requests_fused == len(tiny_blocks)
        assert snapshot.mean_occupancy > 1.0
        assert "mean occupancy" in snapshot.describe()

    def test_segmented_failure_falls_back_per_request(
        self, fast_config, tiny_blocks
    ):
        """predict_batch_segmented blowing up retires nobody spuriously:
        each segment re-runs alone and every request still completes."""
        with ExplanationSession(
            AnalyticalCostModel("hsw"), fast_config
        ) as session:
            expected = [
                explanation_fingerprint(session.explain(block, rng=seed))
                for seed, block in enumerate(tiny_blocks)
            ]
        model = _SegmentedFaultModel(AnalyticalCostModel("hsw"))
        with ExplanationSession(model, fast_config) as session:
            sinks = [{} for _ in tiny_blocks]
            entries = [
                self._entry([block], seed, sink)
                for (seed, block), sink in zip(enumerate(tiny_blocks), sinks)
            ]
            run_fused_group(session, entries)
        assert model.segmented_calls > 0
        fused = []
        for sink in sinks:
            status, explanations = sink["outcome"]
            assert status == "done"
            fused.append(explanation_fingerprint(explanations[0]))
        assert fused == expected

    def test_fusion_stats_describe_when_off(self):
        snapshot = FusionCounters().snapshot(enabled=False, max_fused_requests=8)
        assert snapshot.describe() == "continuous batching off"
        assert snapshot.mean_occupancy == 0.0


class TestFusionConfigSurface:
    def test_env_defaults(self, monkeypatch):
        from repro.service import (
            FUSED_ENV_VAR,
            MAX_FUSED_ENV_VAR,
            default_continuous_batching,
            default_max_fused,
        )
        from repro.utils.errors import ServiceError

        monkeypatch.delenv(FUSED_ENV_VAR, raising=False)
        monkeypatch.delenv(MAX_FUSED_ENV_VAR, raising=False)
        assert default_continuous_batching() is False
        assert default_max_fused() == 8
        monkeypatch.setenv(FUSED_ENV_VAR, "1")
        monkeypatch.setenv(MAX_FUSED_ENV_VAR, "4")
        assert default_continuous_batching() is True
        assert default_max_fused() == 4
        monkeypatch.setenv(FUSED_ENV_VAR, "off")
        assert default_continuous_batching() is False
        monkeypatch.setenv(FUSED_ENV_VAR, "sideways")
        with pytest.raises(ServiceError, match="boolean"):
            default_continuous_batching()
        monkeypatch.setenv(MAX_FUSED_ENV_VAR, "0")
        with pytest.raises(ServiceError, match="positive"):
            default_max_fused()

    def test_service_env_threading(self, monkeypatch, tiny_blocks):
        from repro.service import FUSED_ENV_VAR, MAX_FUSED_ENV_VAR

        monkeypatch.setenv(FUSED_ENV_VAR, "true")
        monkeypatch.setenv(MAX_FUSED_ENV_VAR, "3")
        with ExplanationService(model="crude", config=FAST_CONFIG) as service:
            assert service.continuous_batching is True
            assert service.max_fused_requests == 3
            service.explain(tiny_blocks[0], seed=0)
            assert service.stats().fusion.requests_fused == 1

    def test_explicit_arguments_beat_env(self, monkeypatch):
        from repro.service import FUSED_ENV_VAR

        monkeypatch.setenv(FUSED_ENV_VAR, "1")
        with ExplanationService(
            model="crude", config=FAST_CONFIG, continuous_batching=False
        ) as service:
            assert service.continuous_batching is False
            assert service.stats().fusion.enabled is False

    def test_max_fused_requests_validated(self):
        with pytest.raises(ValueError, match="max_fused_requests"):
            ExplanationService(
                model="crude", config=FAST_CONFIG, max_fused_requests=0
            )

    def test_max_fused_requests_caps_occupancy(self, fast_config, tiny_blocks):
        with ExplanationService(
            model="crude",
            config=fast_config,
            dispatchers=1,
            continuous_batching=True,
            max_fused_requests=2,
        ) as service:
            ids = [
                service.submit(block, seed=seed)
                for seed in range(3)
                for block in tiny_blocks
            ]
            for request_id in ids:
                assert service.result(request_id, timeout=120).ok
            fusion = service.stats().fusion
        assert fusion.max_fused_requests == 2
        assert all(occupancy <= 2 for occupancy, _ in fusion.occupancy)


class TestFusedWireStats:
    def test_stdio_stats_carry_fusion_block(self, fast_config, tiny_blocks):
        import io
        import json

        from repro.service import serve_stream

        lines = [
            json.dumps({"id": "a", "block": "add rcx, rax; mov rdx, rcx", "seed": 1}),
            json.dumps({"id": "b", "block": "add rcx, rax; mov rdx, rcx", "seed": 2}),
            json.dumps({"id": "s", "op": "stats"}),
        ]
        out = io.StringIO()
        with ExplanationService(
            model="crude",
            config=fast_config,
            continuous_batching=True,
            result_cache=False,  # ticks >= 1 requires real tick work below
        ) as service:
            serve_stream(service, lines, out)
        responses = {r["id"]: r for r in map(json.loads, out.getvalue().splitlines())}
        fusion = responses["s"]["stats"]["fusion"]
        assert fusion["enabled"] is True
        assert fusion["requests_fused"] == 2
        assert fusion["ticks"] >= 1
        assert fusion["max_fused_requests"] == 8
        assert set(fusion) >= {
            "rounds_fused", "shared_hits", "mean_occupancy", "occupancy", "absorbed",
        }
