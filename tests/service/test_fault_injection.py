"""Fault injection against the socket front-end: the server must not die.

Each scenario attacks one trust boundary — a client that vanishes
mid-request, a half-written line, a payload bomb, a model that throws — and
then proves the same three things: the server process is still serving, an
unrelated well-behaved client gets correct answers, and whatever could be
reported was reported in-band rather than by tearing anything down.
"""

import json
import socket
import time

import pytest

from repro.explain.config import ExplainerConfig
from repro.models.base import CostModel
from repro.runtime.session import ExplanationSession
from repro.service import ExplanationService, ServiceClient, SocketServer
from repro.utils.errors import ModelError

from tests.conftest import FAST_CONFIG


def _probe(server, text="div rcx; add rax, rbx", seed=9):
    """One well-behaved request proving the server still serves correctly."""
    with ServiceClient(*server.address, timeout=60) as client:
        payloads = client.explain(text, seed=seed)
    assert payloads and payloads[0]["prediction"] > 0
    return payloads


def _wait_connections(server, count, timeout=10.0):
    deadline = time.monotonic() + timeout
    while server.connections != count:
        assert time.monotonic() < deadline, (
            f"server never reached {count} connections ({server.connections} live)"
        )
        time.sleep(0.01)


@pytest.fixture
def served():
    with ExplanationService(model="crude", config=FAST_CONFIG) as service:
        with SocketServer(service, port=0, max_line_bytes=4096) as server:
            yield service, server


class TestClientDisconnects:
    def test_disconnect_with_request_in_flight(self, served):
        service, server = served
        sock = socket.create_connection(server.address, timeout=10)
        sock.sendall(b'{"id": "doomed", "block": "div rcx; add rax, rbx"}\n')
        sock.close()  # gone before the answer exists
        # The orphaned request still runs to completion and its ticket is
        # consumed (no leak), then the connection unwinds fully.
        assert service.drain(timeout=60)
        _wait_connections(server, 0)
        assert not service._tickets
        _probe(server)

    def test_disconnect_mid_line(self, served):
        service, server = served
        sock = socket.create_connection(server.address, timeout=10)
        sock.sendall(b'{"id": "half", "block": "div rc')  # no newline, ever
        sock.close()
        _wait_connections(server, 0)
        _probe(server)
        assert service.stats().failed == 0  # nothing was even submitted

    def test_abrupt_reset_while_others_are_served(self, served, tiny_blocks):
        _, server = served
        victims = []
        for _ in range(3):
            sock = socket.create_connection(server.address, timeout=10)
            sock.sendall(b'{"id": "v", "block": "div rcx"}\n')
            # RST instead of FIN: linger 0 makes close() send a hard reset.
            sock.setsockopt(
                socket.SOL_SOCKET, socket.SO_LINGER,
                __import__("struct").pack("ii", 1, 0),
            )
            victims.append(sock)
        for sock in victims:
            sock.close()
        _wait_connections(server, 0)
        _probe(server)


class TestMalformedInput:
    def test_half_written_then_completed_line_fails_in_band(self, served):
        _, server = served
        sock = socket.create_connection(server.address, timeout=10)
        lines = sock.makefile("r", encoding="utf-8")
        sock.sendall(b'{"id": "x", "bl')
        time.sleep(0.05)  # force the split across reads
        sock.sendall(b"ock\": broken}\n")
        response = json.loads(lines.readline())
        assert response["status"] == "failed"
        # The same connection keeps working afterwards.
        sock.sendall(b'{"id": "y", "block": "div rcx"}\n')
        assert json.loads(lines.readline())["status"] == "done"
        sock.close()

    def test_non_integer_seed_fails_in_band(self, served):
        """A ValueError-shaped payload must come back as a ServiceError line,
        not escape the protocol layer (which would kill a stdio stream and
        silently drop a socket connection)."""
        _, server = served
        sock = socket.create_connection(server.address, timeout=10)
        lines = sock.makefile("r", encoding="utf-8")
        for payload in (
            b'{"id": "s1", "block": "div rcx", "seed": "abc"}\n',
            b'{"id": "s2", "block": "div rcx", "seed": null}\n',
            b'{"id": "s3", "block": "div rcx", "shards": {}}\n',
        ):
            sock.sendall(payload)
        responses = [json.loads(lines.readline()) for _ in range(3)]
        assert [r["status"] for r in responses] == ["failed"] * 3
        assert [r["id"] for r in responses] == ["s1", "s2", "s3"]
        sock.sendall(b'{"id": "ok", "block": "div rcx"}\n')
        assert json.loads(lines.readline())["status"] == "done"
        sock.close()

    def test_non_integer_seed_fails_in_band_on_stdio_too(self):
        """The stdio loop survives the same payloads (serve_stream only
        catches ReproError, so the coercion must raise inside that family)."""
        import io

        from repro.service import ExplanationService, serve_stream

        lines = [
            '{"id": "s1", "block": "div rcx", "seed": "abc"}',
            '{"id": "ok", "block": "add rax, rbx", "seed": 1}',
        ]
        out = io.StringIO()
        with ExplanationService(model="crude", config=FAST_CONFIG) as service:
            served = serve_stream(service, lines, out)
        responses = [json.loads(line) for line in out.getvalue().splitlines()]
        assert served == 1
        assert [r["status"] for r in responses] == ["failed", "done"]
        assert "seed" in responses[0]["error"]

    def test_non_utf8_bytes_fail_in_band(self, served):
        _, server = served
        sock = socket.create_connection(server.address, timeout=10)
        lines = sock.makefile("r", encoding="utf-8")
        sock.sendall(b"\xff\xfe\x80garbage\n")
        response = json.loads(lines.readline())
        assert response["status"] == "failed"
        assert "UTF-8" in response["error"]
        sock.close()

    def test_oversized_payload_reported_and_discarded(self, served):
        _, server = served
        sock = socket.create_connection(server.address, timeout=10)
        lines = sock.makefile("r", encoding="utf-8")
        # 1 MiB of junk against a 4 KiB line cap, then a good request.
        sock.sendall(b'{"id": "bomb", "block": "' + b"A" * (1 << 20) + b'"}\n')
        sock.sendall(b'{"id": "good", "block": "div rcx"}\n')
        bomb = json.loads(lines.readline())
        assert bomb["status"] == "failed"
        assert "exceeds" in bomb["error"]
        good = json.loads(lines.readline())
        assert good["id"] == "good"
        assert good["status"] == "done"
        sock.close()

    def test_oversized_client_request_resolves_instead_of_hanging(self, served):
        """The server discards an overlong line before it can read the
        client's correlation id, so the error comes back id-less; the
        client must attribute it by submission order — a waiter that hangs
        forever would be a livelock, not fault isolation."""
        _, server = served
        giant = "add rax, rbx; " * 1000  # ~14 KB against the 4 KB line cap
        with ServiceClient(*server.address) as client:
            big_id = client.submit(giant, seed=0)
            ok_id = client.submit("div rcx", seed=0)
            big = client.result(big_id, timeout=60)
            assert big["status"] == "failed"
            assert "exceeds" in big["error"]
            assert client.result(ok_id, timeout=60)["status"] == "done"

    def test_oversized_payload_never_buffers_whole_line(self, served):
        """The cap bounds memory: a 64 MiB line streams through a reader
        whose buffer stays under one recv chunk past the cap."""
        _, server = served
        sock = socket.create_connection(server.address, timeout=10)
        lines = sock.makefile("r", encoding="utf-8")
        chunk = b"B" * (1 << 16)
        for _ in range(1024):  # 64 MiB total, no newline until the end
            sock.sendall(chunk)
        sock.sendall(b"\n")
        assert json.loads(lines.readline())["status"] == "failed"
        sock.close()


class _ExplodingModel(CostModel):
    """Predicts fine until it meets a ``div`` — then throws mid-search."""

    name = "exploding"

    def _predict(self, block) -> float:
        if any(inst.mnemonic == "div" for inst in block.instructions):
            raise ModelError("simulated model crash on div")
        return float(block.num_instructions)


class TestModelFailures:
    @pytest.fixture
    def exploding_served(self):
        def factory(name, uarch):
            return ExplanationSession(_ExplodingModel(), FAST_CONFIG)

        with ExplanationService(
            model="exploding", config=FAST_CONFIG, session_factory=factory
        ) as service:
            with SocketServer(service, port=0) as server:
                yield service, server

    def test_raising_predict_fails_in_band_and_server_survives(
        self, exploding_served
    ):
        service, server = exploding_served
        with ServiceClient(*server.address, timeout=60) as client:
            # The poisoned block: the model raises mid-anchor-search.
            boom = client.result(client.submit("div rcx; add rax, rbx", seed=0))
            assert boom["status"] == "failed"
            assert "simulated model crash" in boom["error"]
            # The same warm session keeps serving blocks the model accepts.
            fine = client.result(client.submit("add rax, rbx; mov rdx, rcx", seed=0))
            assert fine["status"] == "done"
            assert fine["explanations"][0]["prediction"] == 2.0
        stats = service.stats()
        assert stats.failed == 1
        assert stats.served >= 1

    def test_failure_isolated_from_concurrent_client(self, exploding_served):
        _, server = exploding_served
        with ServiceClient(*server.address, timeout=60) as bad_client:
            with ServiceClient(*server.address, timeout=60) as good_client:
                bad_id = bad_client.submit("div rcx; add rax, rbx", seed=1)
                good_id = good_client.submit("add rax, rbx; mov rdx, rcx", seed=1)
                assert bad_client.result(bad_id)["status"] == "failed"
                assert good_client.result(good_id)["status"] == "done"


class TestServerStaysUpUnderMixedAbuse:
    def test_every_fault_in_one_session(self, served):
        """All scenarios back to back against one server, then a clean run."""
        service, server = served
        # 1: disconnect mid-request
        sock = socket.create_connection(server.address, timeout=10)
        sock.sendall(b'{"id": "gone", "block": "div rcx"}\n')
        sock.close()
        # 2: half-written line then disconnect
        sock = socket.create_connection(server.address, timeout=10)
        sock.sendall(b'{"half": ')
        sock.close()
        # 3: garbage + oversize + good request interleaved
        sock = socket.create_connection(server.address, timeout=10)
        lines = sock.makefile("r", encoding="utf-8")
        sock.sendall(b"not json at all{{{\n")
        sock.sendall(b"C" * 9000 + b"\n")
        sock.sendall(b'{"id": "ok", "block": "add rax, rbx"}\n')
        statuses = [json.loads(lines.readline())["status"] for _ in range(3)]
        assert statuses == ["failed", "failed", "done"]
        lines.close()  # makefile keeps the fd alive; close it to send FIN
        sock.close()
        assert service.drain(timeout=60)
        _wait_connections(server, 0)
        _probe(server)
        assert not service.closed
