"""Fault injection against the socket front-end: the server must not die.

Each scenario attacks one trust boundary — a client that vanishes
mid-request, a half-written line, a payload bomb, a model that throws — and
then proves the same three things: the server process is still serving, an
unrelated well-behaved client gets correct answers, and whatever could be
reported was reported in-band rather than by tearing anything down.
"""

import json
import os
import signal
import socket
import threading
import time

import pytest

from repro.explain.config import ExplainerConfig
from repro.models.analytical import AnalyticalCostModel
from repro.models.base import CostModel
from repro.runtime.backend import BackendRetryPolicy, ProcessBackend
from repro.runtime.session import ExplanationSession
from repro.service import (
    ExplanationService,
    RequestStatus,
    RetryPolicy,
    ServiceClient,
    SocketServer,
)
from repro.utils.errors import (
    ModelError,
    ServiceError,
    ServiceTimeoutError,
)

from tests.conftest import FAST_CONFIG, explanation_dict_fingerprint
from tests.service.conftest import require_in_process_backend


def _probe(server, text="div rcx; add rax, rbx", seed=9):
    """One well-behaved request proving the server still serves correctly."""
    with ServiceClient(*server.address, timeout=60) as client:
        payloads = client.explain(text, seed=seed)
    assert payloads and payloads[0]["prediction"] > 0
    return payloads


def _wait_connections(server, count, timeout=10.0):
    deadline = time.monotonic() + timeout
    while server.connections != count:
        assert time.monotonic() < deadline, (
            f"server never reached {count} connections ({server.connections} live)"
        )
        time.sleep(0.01)


@pytest.fixture
def served():
    with ExplanationService(model="crude", config=FAST_CONFIG) as service:
        with SocketServer(service, port=0, max_line_bytes=4096) as server:
            yield service, server


class TestClientDisconnects:
    def test_disconnect_with_request_in_flight(self, served):
        service, server = served
        sock = socket.create_connection(server.address, timeout=10)
        sock.sendall(b'{"id": "doomed", "block": "div rcx; add rax, rbx"}\n')
        sock.close()  # gone before the answer exists
        # The orphaned request still runs to completion and its ticket is
        # consumed (no leak), then the connection unwinds fully.
        assert service.drain(timeout=60)
        _wait_connections(server, 0)
        assert not service._tickets
        _probe(server)

    def test_disconnect_mid_line(self, served):
        service, server = served
        sock = socket.create_connection(server.address, timeout=10)
        sock.sendall(b'{"id": "half", "block": "div rc')  # no newline, ever
        sock.close()
        _wait_connections(server, 0)
        _probe(server)
        assert service.stats().failed == 0  # nothing was even submitted

    def test_abrupt_reset_while_others_are_served(self, served, tiny_blocks):
        _, server = served
        victims = []
        for _ in range(3):
            sock = socket.create_connection(server.address, timeout=10)
            sock.sendall(b'{"id": "v", "block": "div rcx"}\n')
            # RST instead of FIN: linger 0 makes close() send a hard reset.
            sock.setsockopt(
                socket.SOL_SOCKET, socket.SO_LINGER,
                __import__("struct").pack("ii", 1, 0),
            )
            victims.append(sock)
        for sock in victims:
            sock.close()
        _wait_connections(server, 0)
        _probe(server)


class TestMalformedInput:
    def test_half_written_then_completed_line_fails_in_band(self, served):
        _, server = served
        sock = socket.create_connection(server.address, timeout=10)
        lines = sock.makefile("r", encoding="utf-8")
        sock.sendall(b'{"id": "x", "bl')
        time.sleep(0.05)  # force the split across reads
        sock.sendall(b"ock\": broken}\n")
        response = json.loads(lines.readline())
        assert response["status"] == "failed"
        # The same connection keeps working afterwards.
        sock.sendall(b'{"id": "y", "block": "div rcx"}\n')
        assert json.loads(lines.readline())["status"] == "done"
        sock.close()

    def test_non_integer_seed_fails_in_band(self, served):
        """A ValueError-shaped payload must come back as a ServiceError line,
        not escape the protocol layer (which would kill a stdio stream and
        silently drop a socket connection)."""
        _, server = served
        sock = socket.create_connection(server.address, timeout=10)
        lines = sock.makefile("r", encoding="utf-8")
        for payload in (
            b'{"id": "s1", "block": "div rcx", "seed": "abc"}\n',
            b'{"id": "s2", "block": "div rcx", "seed": null}\n',
            b'{"id": "s3", "block": "div rcx", "shards": {}}\n',
        ):
            sock.sendall(payload)
        responses = [json.loads(lines.readline()) for _ in range(3)]
        assert [r["status"] for r in responses] == ["failed"] * 3
        assert [r["id"] for r in responses] == ["s1", "s2", "s3"]
        sock.sendall(b'{"id": "ok", "block": "div rcx"}\n')
        assert json.loads(lines.readline())["status"] == "done"
        sock.close()

    def test_non_integer_seed_fails_in_band_on_stdio_too(self):
        """The stdio loop survives the same payloads (serve_stream only
        catches ReproError, so the coercion must raise inside that family)."""
        import io

        from repro.service import ExplanationService, serve_stream

        lines = [
            '{"id": "s1", "block": "div rcx", "seed": "abc"}',
            '{"id": "ok", "block": "add rax, rbx", "seed": 1}',
        ]
        out = io.StringIO()
        with ExplanationService(model="crude", config=FAST_CONFIG) as service:
            served = serve_stream(service, lines, out)
        responses = [json.loads(line) for line in out.getvalue().splitlines()]
        assert served == 1
        assert [r["status"] for r in responses] == ["failed", "done"]
        assert "seed" in responses[0]["error"]

    def test_non_utf8_bytes_fail_in_band(self, served):
        _, server = served
        sock = socket.create_connection(server.address, timeout=10)
        lines = sock.makefile("r", encoding="utf-8")
        sock.sendall(b"\xff\xfe\x80garbage\n")
        response = json.loads(lines.readline())
        assert response["status"] == "failed"
        assert "UTF-8" in response["error"]
        sock.close()

    def test_oversized_payload_reported_and_discarded(self, served):
        _, server = served
        sock = socket.create_connection(server.address, timeout=10)
        lines = sock.makefile("r", encoding="utf-8")
        # 1 MiB of junk against a 4 KiB line cap, then a good request.
        sock.sendall(b'{"id": "bomb", "block": "' + b"A" * (1 << 20) + b'"}\n')
        sock.sendall(b'{"id": "good", "block": "div rcx"}\n')
        bomb = json.loads(lines.readline())
        assert bomb["status"] == "failed"
        assert "exceeds" in bomb["error"]
        good = json.loads(lines.readline())
        assert good["id"] == "good"
        assert good["status"] == "done"
        sock.close()

    def test_oversized_client_request_resolves_instead_of_hanging(self, served):
        """The server discards an overlong line before it can read the
        client's correlation id, so the error comes back id-less; the
        client must attribute it by submission order — a waiter that hangs
        forever would be a livelock, not fault isolation."""
        _, server = served
        giant = "add rax, rbx; " * 1000  # ~14 KB against the 4 KB line cap
        with ServiceClient(*server.address) as client:
            big_id = client.submit(giant, seed=0)
            ok_id = client.submit("div rcx", seed=0)
            big = client.result(big_id, timeout=60)
            assert big["status"] == "failed"
            assert "exceeds" in big["error"]
            assert client.result(ok_id, timeout=60)["status"] == "done"

    def test_oversized_payload_never_buffers_whole_line(self, served):
        """The cap bounds memory: a 64 MiB line streams through a reader
        whose buffer stays under one recv chunk past the cap."""
        _, server = served
        sock = socket.create_connection(server.address, timeout=10)
        lines = sock.makefile("r", encoding="utf-8")
        chunk = b"B" * (1 << 16)
        for _ in range(1024):  # 64 MiB total, no newline until the end
            sock.sendall(chunk)
        sock.sendall(b"\n")
        assert json.loads(lines.readline())["status"] == "failed"
        sock.close()


class _ExplodingModel(CostModel):
    """Predicts fine until it meets a ``div`` — then throws mid-search."""

    name = "exploding"

    def _predict(self, block) -> float:
        if any(inst.mnemonic == "div" for inst in block.instructions):
            raise ModelError("simulated model crash on div")
        return float(block.num_instructions)


class TestModelFailures:
    @pytest.fixture
    def exploding_served(self):
        def factory(name, uarch):
            return ExplanationSession(_ExplodingModel(), FAST_CONFIG)

        with ExplanationService(
            model="exploding", config=FAST_CONFIG, session_factory=factory
        ) as service:
            with SocketServer(service, port=0) as server:
                yield service, server

    def test_raising_predict_fails_in_band_and_server_survives(
        self, exploding_served
    ):
        service, server = exploding_served
        with ServiceClient(*server.address, timeout=60) as client:
            # The poisoned block: the model raises mid-anchor-search.
            boom = client.result(client.submit("div rcx; add rax, rbx", seed=0))
            assert boom["status"] == "failed"
            assert "simulated model crash" in boom["error"]
            # The same warm session keeps serving blocks the model accepts.
            fine = client.result(client.submit("add rax, rbx; mov rdx, rcx", seed=0))
            assert fine["status"] == "done"
            assert fine["explanations"][0]["prediction"] == 2.0
        stats = service.stats()
        assert stats.failed == 1
        assert stats.served >= 1

    def test_failure_isolated_from_concurrent_client(self, exploding_served):
        _, server = exploding_served
        with ServiceClient(*server.address, timeout=60) as bad_client:
            with ServiceClient(*server.address, timeout=60) as good_client:
                bad_id = bad_client.submit("div rcx; add rax, rbx", seed=1)
                good_id = good_client.submit("add rax, rbx; mov rdx, rcx", seed=1)
                assert bad_client.result(bad_id)["status"] == "failed"
                assert good_client.result(good_id)["status"] == "done"


class _GateModel(CostModel):
    """Every prediction blocks until the test opens the gate.

    Lets tests park a request deterministically *inside* its first KL-LUCB
    round — no sleeps, no timing races — while later requests queue behind
    it on the same session key.
    """

    name = "gated"

    def __init__(self, gate: threading.Event) -> None:
        super().__init__("hsw")
        self._gate = gate

    def _predict(self, block) -> float:
        self._gate.wait()
        return float(block.num_instructions)


@pytest.fixture
def gated_service():
    """A single-dispatcher service over a gate-controlled model.

    Yields ``(service, gate)`` with the gate initially closed: the first
    submitted request runs until its first model query and parks there.
    """
    gate = threading.Event()
    # The gate Event must stay in-process, so the session is pinned to the
    # serial backend regardless of REPRO_BACKEND; the guard skips — with the
    # reason in the report — rather than hanging if that pin ever breaks.
    backend = require_in_process_backend("serial")

    def factory(name, uarch):
        session = ExplanationSession(_GateModel(gate), FAST_CONFIG, backend=backend)
        assert session.backend.shares_memory, "gate Event would never open"
        return session

    with ExplanationService(
        model="gated", config=FAST_CONFIG, session_factory=factory, dispatchers=1
    ) as service:
        yield service, gate
        gate.set()  # never leave a dispatcher parked at teardown


def _wait_running(service, request_id, timeout=10.0):
    deadline = time.monotonic() + timeout
    while service.poll(request_id) is not RequestStatus.RUNNING:
        assert time.monotonic() < deadline, f"{request_id} never started running"
        time.sleep(0.005)


class TestDeadlines:
    def test_deadline_expires_while_queued(self, gated_service, tiny_block):
        """A queued request whose budget lapses fails fast at dequeue —
        without touching a session — and frees its key for the next one."""
        service, gate = gated_service
        blocker = service.submit(tiny_block, seed=0)
        victim = service.submit(tiny_block, seed=1, deadline=0.05)
        time.sleep(0.1)  # the victim's budget lapses while it sits queued
        gate.set()
        result = service.result(victim, timeout=30)
        assert result.status is RequestStatus.FAILED
        assert "DeadlineExceededError" in result.error
        assert service.result(blocker, timeout=30).status is RequestStatus.DONE
        # The key is free: a fresh request on it completes normally.
        follow_up = service.submit(tiny_block, seed=2)
        assert service.result(follow_up, timeout=30).status is RequestStatus.DONE
        stats = service.stats()
        assert stats.deadline_expired == 1
        assert "1 deadlines expired" in stats.describe()

    def test_deadline_expires_mid_run(self, gated_service, tiny_block):
        """A budget lapsing mid-search stops the request cooperatively at
        the next KL-LUCB round boundary."""
        service, gate = gated_service
        request_id = service.submit(tiny_block, seed=0, deadline=0.05)
        _wait_running(service, request_id)
        time.sleep(0.1)  # expire while parked inside the first query batch
        gate.set()
        result = service.result(request_id, timeout=30)
        assert result.status is RequestStatus.FAILED
        assert "DeadlineExceededError" in result.error
        follow_up = service.submit(tiny_block, seed=1)
        assert service.result(follow_up, timeout=30).status is RequestStatus.DONE
        assert service.stats().deadline_expired == 1

    def test_default_deadline_applies_and_explicit_wins(self, tiny_block):
        gate = threading.Event()
        # In-process gate — pin and guard the serial backend like
        # gated_service does.
        backend = require_in_process_backend("serial")

        def factory(name, uarch):
            session = ExplanationSession(
                _GateModel(gate), FAST_CONFIG, backend=backend
            )
            assert session.backend.shares_memory, "gate Event would never open"
            return session

        with ExplanationService(
            model="gated",
            config=FAST_CONFIG,
            session_factory=factory,
            dispatchers=1,
            default_deadline=0.05,
        ) as service:
            # The blocker overrides the tight service default and survives.
            blocker = service.submit(tiny_block, seed=0, deadline=60.0)
            victim = service.submit(tiny_block, seed=1)  # inherits 0.05s
            time.sleep(0.1)
            gate.set()
            assert service.result(blocker, timeout=30).status is RequestStatus.DONE
            result = service.result(victim, timeout=30)
            assert result.status is RequestStatus.FAILED
            assert "DeadlineExceededError" in result.error

    def test_non_positive_deadline_rejected_at_submit(self, tiny_block):
        with ExplanationService(model="crude", config=FAST_CONFIG) as service:
            with pytest.raises(ServiceError, match="deadline must be positive"):
                service.submit(tiny_block, deadline=0.0)
            with pytest.raises(ValueError, match="default_deadline"):
                ExplanationService(model="crude", default_deadline=-1.0)


class TestCancellation:
    def test_cancel_queued_request_frees_without_running(
        self, gated_service, tiny_block
    ):
        service, gate = gated_service
        blocker = service.submit(tiny_block, seed=0)
        victim = service.submit(tiny_block, seed=1)
        assert service.cancel(victim) is True
        # Resolved immediately — no need to open the gate first.
        result = service.result(victim, timeout=30)
        assert result.status is RequestStatus.CANCELLED
        assert "before it ran" in result.error
        gate.set()
        assert service.result(blocker, timeout=30).status is RequestStatus.DONE
        assert service.stats().cancelled == 1

    def test_cancel_mid_kl_lucb_stops_at_round_boundary(
        self, gated_service, tiny_block
    ):
        """Cancelling a *running* request stops it cooperatively and frees
        its dispatcher and key for the next request."""
        service, gate = gated_service
        request_id = service.submit(tiny_block, seed=0)
        _wait_running(service, request_id)
        assert service.cancel(request_id) is True  # still cancellable
        gate.set()  # the parked batch completes; the next round check raises
        result = service.result(request_id, timeout=30)
        assert result.status is RequestStatus.CANCELLED
        assert "RequestCancelledError" in result.error
        follow_up = service.submit(tiny_block, seed=1)
        assert service.result(follow_up, timeout=30).status is RequestStatus.DONE
        assert service.stats().cancelled == 1

    def test_cancel_finished_request_returns_false(self, tiny_block):
        with ExplanationService(model="crude", config=FAST_CONFIG) as service:
            request_id = service.submit(tiny_block, seed=0)
            assert service.drain(timeout=60)
            assert service.cancel(request_id) is False
            # The normal result stands.
            assert service.result(request_id, timeout=30).status is RequestStatus.DONE

    def test_cancel_unknown_request_raises(self):
        with ExplanationService(model="crude", config=FAST_CONFIG) as service:
            with pytest.raises(ServiceError, match="unknown request id"):
                service.cancel("req-999")

    def test_cancel_is_idempotent(self, gated_service, tiny_block):
        service, gate = gated_service
        blocker = service.submit(tiny_block, seed=0)
        victim = service.submit(tiny_block, seed=1)
        assert service.cancel(victim) is True
        assert service.cancel(victim) is False  # already resolved
        gate.set()
        assert service.result(victim, timeout=30).status is RequestStatus.CANCELLED
        assert service.result(blocker, timeout=30).status is RequestStatus.DONE


class TestWireCancelAndDeadline:
    """The cancel op and deadlines over the TCP transport."""

    @pytest.fixture
    def gated_server(self, gated_service):
        service, gate = gated_service
        with SocketServer(service, port=0) as server:
            yield service, server, gate

    def test_cancel_op_cancels_a_queued_request(self, gated_server):
        service, server, gate = gated_server
        # Responses flush in per-connection submission order, so the cancel
        # ack cannot arrive before the parked blocker answers; open the gate
        # the moment the cancellation lands server-side (it acts at read
        # time, while the blocker is still parked).
        def open_when_cancelled():
            deadline = time.monotonic() + 30.0
            while service.stats().cancelled < 1:
                assert time.monotonic() < deadline, "cancel never landed"
                time.sleep(0.005)
            gate.set()

        opener = threading.Thread(target=open_when_cancelled)
        opener.start()
        try:
            with ServiceClient(*server.address, timeout=60) as client:
                blocker = client.submit("add rax, rbx", seed=0)
                victim = client.submit("mov rdx, rcx", seed=1)
                assert client.cancel(victim) is True
                victim_response = client.result(victim, timeout=30)
                assert victim_response["status"] == "cancelled"
                assert client.result(blocker, timeout=30)["status"] == "done"
        finally:
            gate.set()
            opener.join()

    def test_cancel_op_unknown_target_fails_in_band(self, gated_server):
        _, server, gate = gated_server
        gate.set()
        with ServiceClient(*server.address, timeout=60) as client:
            with pytest.raises(ServiceError, match="unknown cancel target"):
                client.cancel("never-submitted")
            # The connection is still healthy afterwards.
            assert client.result(client.submit("div rcx", seed=0))["status"] == "done"

    def test_wire_deadline_expires_while_queued(self, gated_server):
        _, server, gate = gated_server
        with ServiceClient(*server.address, timeout=60) as client:
            blocker = client.submit("add rax, rbx", seed=0)
            victim = client.submit("mov rdx, rcx", seed=1, deadline=0.05)
            time.sleep(0.1)
            gate.set()
            victim_response = client.result(victim, timeout=30)
            assert victim_response["status"] == "failed"
            assert "DeadlineExceededError" in victim_response["error"]
            assert client.result(blocker, timeout=30)["status"] == "done"
            assert client.stats()["resilience"]["deadline_expired"] == 1

    def test_stdio_cancel_op_round_trip(self):
        """The stdio loop speaks the same cancel op: acts at read time,
        acknowledged in submission order, unknown targets fail in-band."""
        import io

        from repro.service import serve_stream

        lines = [
            '{"id": "a", "block": "add rax, rbx", "seed": 1}',
            '{"op": "cancel", "id": "c1", "target": "a"}',
            '{"op": "cancel", "id": "c2", "target": "ghost"}',
        ]
        out = io.StringIO()
        with ExplanationService(model="crude", config=FAST_CONFIG) as service:
            serve_stream(service, lines, out)
        responses = {r["id"]: r for r in map(json.loads, out.getvalue().splitlines())}
        assert responses["a"]["status"] == "cancelled"
        assert responses["c1"]["status"] == "done"
        assert responses["c1"]["cancelled"] is True
        assert responses["c2"]["status"] == "failed"
        assert "unknown cancel target" in responses["c2"]["error"]

    def test_stdio_deadline_field_round_trip(self):
        import io

        from repro.service import serve_stream

        lines = [
            '{"id": "ok", "block": "add rax, rbx", "deadline": 60.0}',
            '{"id": "bad", "block": "add rax, rbx", "deadline": "soon"}',
        ]
        out = io.StringIO()
        with ExplanationService(model="crude", config=FAST_CONFIG) as service:
            serve_stream(service, lines, out)
        responses = {r["id"]: r for r in map(json.loads, out.getvalue().splitlines())}
        assert responses["ok"]["status"] == "done"
        assert responses["bad"]["status"] == "failed"
        assert "deadline" in responses["bad"]["error"]


class TestWorkerDeathThroughTheService:
    """SIGKILL the process-backend workers under a serving stack."""

    @pytest.fixture
    def process_served(self):
        holder = {}

        def factory(name, uarch):
            backend = ProcessBackend(
                2, retry=BackendRetryPolicy(backoff=0.0, max_backoff=0.0)
            )
            holder["backend"] = backend
            return ExplanationSession(
                AnalyticalCostModel("hsw"), FAST_CONFIG, backend=backend
            )

        # Worker death only matters on the backend sharding path; fused
        # execution answers rounds inline through the model and would never
        # warm the pool this test SIGKILLs.
        with ExplanationService(
            model="crude",
            config=FAST_CONFIG,
            session_factory=factory,
            continuous_batching=False,
        ) as service:
            with SocketServer(service, port=0) as server:
                yield service, server, holder
        if "backend" in holder:
            holder["backend"].close()

    def _kill_workers(self, backend):
        pool = backend._pool
        assert pool is not None, "pool must be warm before the kill"
        for pid in list(pool._processes):
            os.kill(pid, signal.SIGKILL)
        deadline = time.monotonic() + 10.0
        for process in list(pool._processes.values()):
            process.join(max(deadline - time.monotonic(), 0.1))

    def test_sigkilled_workers_recover_bit_for_bit(self, process_served, block_fleet):
        service, server, holder = process_served
        fleet = list(block_fleet[:6])
        with ServiceClient(*server.address, timeout=120) as client:
            before = client.explain(fleet, seed=3)
            self._kill_workers(holder["backend"])
            after = client.explain(fleet, seed=3)
            assert [explanation_dict_fingerprint(p) for p in after] == [
                explanation_dict_fingerprint(p) for p in before
            ]
            resilience = client.stats()["resilience"]
        assert resilience["worker_restarts"] >= 1
        assert resilience["worker_retries"] >= 1
        stats = service.stats()
        assert stats.worker_restarts >= 1
        assert "worker restarts" in stats.describe()


class TestClientResilience:
    def test_retry_policy_delay_and_validation(self):
        policy = RetryPolicy(attempts=3, backoff=0.1, max_backoff=0.35)
        assert policy.delay(0) == pytest.approx(0.1)
        assert policy.delay(1) == pytest.approx(0.2)
        assert policy.delay(2) == pytest.approx(0.35)
        with pytest.raises(ValueError):
            RetryPolicy(attempts=-1)
        with pytest.raises(ValueError):
            RetryPolicy(backoff=-0.1)

    def test_result_timeout_raises_service_timeout_error(self, served):
        _, server = served
        with ServiceClient(*server.address) as client:
            request_id = client.submit("div rcx; add rax, rbx", seed=0)
            with pytest.raises(ServiceTimeoutError, match="did not answer"):
                client.result(request_id, timeout=0.000001)
            # The response stays collectable after the caller's wait expired.
            assert client.result(request_id, timeout=60)["status"] == "done"

    def test_client_reconnects_and_resubmits_after_connection_loss(self, served):
        """A severed TCP connection fails in-flight waiters but the next
        request dials fresh and succeeds — no manual reconnect needed."""
        _, server = served
        client = ServiceClient(
            *server.address, timeout=60, retry=RetryPolicy(attempts=3, backoff=0.01)
        )
        try:
            client.connect()
            assert client.explain("div rcx", seed=0)
            client._sock.shutdown(socket.SHUT_RDWR)  # sever underneath
            time.sleep(0.05)
            assert client.explain("add rax, rbx", seed=1)
        finally:
            client.close()

    def test_connect_retries_before_giving_up(self):
        # Nothing listens on this port: connect() must retry per policy and
        # then surface the original OSError, not hang or wrap it beyond
        # recognition.
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        host, port = probe.getsockname()
        probe.close()  # now guaranteed unused
        client = ServiceClient(
            host, port, retry=RetryPolicy(attempts=1, backoff=0.01)
        )
        with pytest.raises(OSError):
            client.connect()


class TestServerStaysUpUnderMixedAbuse:
    def test_every_fault_in_one_session(self, served):
        """All scenarios back to back against one server, then a clean run."""
        service, server = served
        # 1: disconnect mid-request
        sock = socket.create_connection(server.address, timeout=10)
        sock.sendall(b'{"id": "gone", "block": "div rcx"}\n')
        sock.close()
        # 2: half-written line then disconnect
        sock = socket.create_connection(server.address, timeout=10)
        sock.sendall(b'{"half": ')
        sock.close()
        # 3: garbage + oversize + good request interleaved
        sock = socket.create_connection(server.address, timeout=10)
        lines = sock.makefile("r", encoding="utf-8")
        sock.sendall(b"not json at all{{{\n")
        sock.sendall(b"C" * 9000 + b"\n")
        sock.sendall(b'{"id": "ok", "block": "add rax, rbx"}\n')
        statuses = [json.loads(lines.readline())["status"] for _ in range(3)]
        assert statuses == ["failed", "failed", "done"]
        lines.close()  # makefile keeps the fd alive; close it to send FIN
        sock.close()
        assert service.drain(timeout=60)
        _wait_connections(server, 0)
        _probe(server)
        assert not service.closed
