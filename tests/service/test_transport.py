"""The TCP front-end: SocketServer + ServiceClient over a shared service.

The contract under test: the socket transport is *transparent* — a client
talking TCP gets byte-identical protocol behaviour to one piping JSON lines
through stdin/stdout (per-connection submission-order responses, in-band
failures), and the seeded explanation payloads are bit-for-bit what the
direct, in-process :class:`CometExplainer` produces, no matter how many
clients hammer the server at once.
"""

import json
import socket
import threading
import time

import pytest

from repro.explain.explainer import CometExplainer
from repro.models.analytical import AnalyticalCostModel
from repro.models.base import CachedCostModel
from repro.reporting.export import explanation_to_dict
from repro.service import ExplanationService, ServiceClient, SocketServer
from repro.service.transport import _EOF, _OVERSIZED, _TIMEOUT, _LineReader
from repro.utils.errors import ServiceError

from tests.conftest import FAST_CONFIG, explanation_dict_fingerprint


@pytest.fixture
def served():
    """A started service + socket server on an ephemeral loopback port."""
    with ExplanationService(model="crude", config=FAST_CONFIG) as service:
        with SocketServer(service, port=0) as server:
            yield service, server


def _raw_connect(server, timeout=30.0):
    sock = socket.create_connection(server.address, timeout=timeout)
    return sock, sock.makefile("r", encoding="utf-8")


class TestLineReader:
    def _pair(self, max_line_bytes=64, idle_timeout=None):
        left, right = socket.socketpair()
        return left, _LineReader(right, max_line_bytes, idle_timeout), right

    def test_lines_split_across_chunks(self):
        left, reader, right = self._pair()
        left.sendall(b"hello ")
        left.sendall(b"world\nsecond")
        assert reader.readline() == b"hello world"
        left.sendall(b" line\n")
        assert reader.readline() == b"second line"
        left.close()
        assert reader.readline() is _EOF
        right.close()

    def test_oversized_line_is_discarded_not_buffered(self):
        left, reader, right = self._pair(max_line_bytes=16)
        left.sendall(b"x" * 4096 + b"\nafter\n")
        assert reader.readline() is _OVERSIZED
        assert reader.readline() == b"after"
        left.close()
        right.close()

    def test_half_written_line_at_eof_reports_eof(self):
        left, reader, right = self._pair()
        left.sendall(b'{"id": "x", "bl')
        left.close()
        assert reader.readline() is _EOF
        assert reader.readline() is _EOF  # stable, no spin
        right.close()

    def test_timeout_surfaces_without_losing_buffer(self):
        left, reader, right = self._pair(idle_timeout=0.05)
        left.sendall(b"partial")
        assert reader.readline() is _TIMEOUT
        left.sendall(b" done\n")
        assert reader.readline() == b"partial done"
        left.close()
        right.close()


class TestSocketRoundTrip:
    def test_single_block_request(self, served, tiny_blocks):
        _, server = served
        with ServiceClient(*server.address) as client:
            response = client.result(
                client.submit(tiny_blocks[0], seed=5), timeout=60
            )
        assert response["status"] == "done"
        direct = CometExplainer(
            CachedCostModel(AnalyticalCostModel("hsw")), FAST_CONFIG
        ).explain(tiny_blocks[0], rng=5)
        assert explanation_dict_fingerprint(
            response["explanations"][0]
        ) == explanation_dict_fingerprint(explanation_to_dict(direct))

    def test_bare_text_line_sugar(self, served):
        _, server = served
        sock, lines = _raw_connect(server)
        sock.sendall(b"div rcx; add rax, rbx\n")
        response = json.loads(lines.readline())
        assert response["status"] == "done"
        assert response["id"] is None
        sock.close()

    def test_responses_in_submission_order_per_connection(self, served, tiny_blocks):
        _, server = served
        with ServiceClient(*server.address) as client:
            ids = [client.submit(block, seed=index) for index, block in enumerate(tiny_blocks)]
            # Collect out of submission order on purpose; correlation ids
            # still route each response to its request.
            responses = {rid: client.result(rid, timeout=60) for rid in reversed(ids)}
        assert all(responses[rid]["status"] == "done" for rid in ids)
        # And on the raw wire the three lines arrived in submission order:
        # their echoed ids are c1, c2, c3.
        assert [responses[rid]["id"] for rid in ids] == ["c1", "c2", "c3"]

    def test_malformed_json_fails_in_band_and_connection_survives(self, served):
        _, server = served
        sock, lines = _raw_connect(server)
        sock.sendall(b'{"id": "bad", not json}\n')
        response = json.loads(lines.readline())
        assert response["status"] == "failed"
        assert "JSON" in response["error"]
        sock.sendall(b'{"id": "ok", "block": "div rcx"}\n')
        response = json.loads(lines.readline())
        assert response == {**response, "id": "ok", "status": "done"}
        sock.close()

    def test_poll_before_and_after_arrival(self, served, tiny_blocks):
        _, server = served
        with ServiceClient(*server.address) as client:
            request_id = client.submit(tiny_blocks[0], seed=0)
            deadline = time.monotonic() + 60
            while client.poll(request_id) is None:
                assert time.monotonic() < deadline
                time.sleep(0.01)
            assert client.poll(request_id)["status"] == "done"
            assert client.result(request_id, timeout=1)["status"] == "done"
            with pytest.raises(ServiceError):
                client.poll(request_id)  # consumed

    def test_client_timeout_leaves_result_collectable(self, served, tiny_blocks):
        _, server = served
        with ServiceClient(*server.address) as client:
            request_id = client.submit(tiny_blocks[0], seed=1)
            with pytest.raises(ServiceError):
                client.result(request_id, timeout=0.0)
            assert client.result(request_id, timeout=60)["status"] == "done"


class TestStatsOp:
    def test_stats_round_trip_over_tcp(self, served, tiny_blocks):
        """The acceptance pin: a ``stats`` op answered through ServiceClient."""
        service, server = served
        with ServiceClient(*server.address, timeout=60) as client:
            client.explain(tiny_blocks[0], seed=0)
            stats = client.stats()
        local = service.stats()
        assert stats["served"] == local.served == 1
        assert stats["dispatchers"] == local.dispatchers
        assert stats["queue_depth"] == 0
        assert [tuple(key) for key in stats["sessions"]] == list(local.sessions)
        assert stats["pool"]["sessions"] == 1
        assert stats["pool"]["max_sessions"] == 4
        assert sum(d["executed"] for d in stats["dispatcher_stats"]) == 1

    def test_stats_keeps_submission_order(self, served, tiny_blocks):
        _, server = served
        with ServiceClient(*server.address, timeout=60) as client:
            explain_id = client.submit(tiny_blocks[0], seed=0)
            stats_id = client._post({"op": "stats"})
            stats_response = client.result(stats_id, timeout=60)
            # The stats answer waited behind the explanation, so the
            # snapshot already accounts for it.
            assert stats_response["stats"]["served"] >= 1
            assert client.result(explain_id, timeout=60)["status"] == "done"

    def test_raw_stats_line(self, served):
        _, server = served
        sock, lines = _raw_connect(server)
        sock.sendall(b'{"id": "s", "op": "stats"}\n')
        response = json.loads(lines.readline())
        assert response["id"] == "s"
        assert response["op"] == "stats"
        assert response["stats"]["dispatchers"] >= 1
        sock.close()

    def test_unknown_op_fails_in_band(self, served):
        _, server = served
        sock, lines = _raw_connect(server)
        sock.sendall(b'{"id": "s", "op": "nope"}\n')
        response = json.loads(lines.readline())
        assert response["status"] == "failed"
        assert "unknown op" in response["error"]
        sock.close()


class TestClientDeadlinesAndFailures:
    """The ServiceClient under deadlines and a dying server: expiry leaves
    results collectable, mid-wait closure raises instead of hanging, and a
    closed client stays closed."""

    @staticmethod
    def _gated_service(gate):
        from repro.models.base import CachedCostModel, CallableCostModel
        from repro.runtime.session import ExplanationSession

        def predict(block):
            gate.wait(timeout=30)
            return float(block.num_instructions)

        def factory(model_name, uarch):
            return ExplanationSession(
                CachedCostModel(CallableCostModel(predict, name=model_name)),
                FAST_CONFIG,
                backend="serial",
            )

        return ExplanationService(config=FAST_CONFIG, session_factory=factory)

    def test_result_deadline_expiry_then_collectable(self, tiny_blocks):
        gate = threading.Event()
        with self._gated_service(gate) as service:
            with SocketServer(service, port=0) as server:
                with ServiceClient(*server.address) as client:
                    request_id = client.submit(tiny_blocks[0], seed=0)
                    with pytest.raises(ServiceError) as excinfo:
                        client.result(request_id, timeout=0.2)
                    assert "did not answer" in str(excinfo.value)
                    gate.set()
                    # The expiry consumed nothing: the response arrives.
                    assert client.result(request_id, timeout=60)["status"] == "done"

    def test_default_timeout_applies_and_overrides(self, tiny_blocks):
        gate = threading.Event()
        with self._gated_service(gate) as service:
            with SocketServer(service, port=0) as server:
                with ServiceClient(*server.address, timeout=0.2) as client:
                    request_id = client.submit(tiny_blocks[0], seed=0)
                    with pytest.raises(ServiceError):
                        client.result(request_id)  # constructor default: 0.2s
                    gate.set()
                    assert (
                        client.result(request_id, timeout=60)["status"] == "done"
                    )  # per-call override beats the default

    def test_server_closing_mid_wait_raises_not_hangs(self, tiny_blocks):
        gate = threading.Event()
        service = self._gated_service(gate)
        server = SocketServer(service, port=0)
        server.start()
        try:
            client = ServiceClient(*server.address).connect()
            request_id = client.submit(tiny_blocks[0], seed=0)
            failures = []

            def waiter():
                try:
                    client.result(request_id, timeout=60)
                except ServiceError as error:
                    failures.append(str(error))

            thread = threading.Thread(target=waiter)
            thread.start()
            time.sleep(0.1)  # let the waiter block on the pending response
            # Drop the socket under the client.  The close itself drains the
            # orphaned ticket, which needs the gate — so close in the
            # background and open the gate once the waiter has failed.
            closer = threading.Thread(target=lambda: server.close(drain=False))
            closer.start()
            thread.join(timeout=30)
            assert not thread.is_alive()
            assert len(failures) == 1
            assert "closed" in failures[0] or "gone" in failures[0]
            gate.set()
            closer.join(timeout=60)
            assert not closer.is_alive()
            client.close()
        finally:
            gate.set()
            server.close()
            service.close()

    def test_submit_after_server_death_raises_cleanly(self, fast_config, tiny_blocks):
        service = ExplanationService(model="crude", config=fast_config)
        server = SocketServer(service, port=0)
        server.start()
        client = ServiceClient(*server.address).connect()
        try:
            assert client.explain(tiny_blocks[0], seed=0, timeout=60)
            server.close(drain=False)
            # The dead-connection report may take a send or two to propagate
            # (the OS buffers the first write); soon submit must raise.
            deadline = time.monotonic() + 10
            while True:
                try:
                    client.submit(tiny_blocks[0], seed=1)
                except ServiceError:
                    break
                assert time.monotonic() < deadline, (
                    "submit kept succeeding after server death"
                )
                time.sleep(0.01)
        finally:
            client.close()
            server.close()
            service.close()

    def test_concurrent_first_submits_share_one_connection(
        self, served, tiny_blocks
    ):
        """Racing the implicit connect: all threads must share one socket
        (a duplicate connection would leak a server slot and split the
        per-connection response order).

        The client contract permits a losing dial that is closed on the
        spot, so the server may briefly see a second connection before its
        handler reaps the EOF — the invariant is that the count *settles*
        to one, not that it never exceeds one."""
        _, server = served
        client = ServiceClient(*server.address)
        try:
            barrier = threading.Barrier(4)
            ids, errors = [], []
            ids_lock = threading.Lock()

            def racer():
                try:
                    barrier.wait(timeout=10)
                    request_id = client.submit(tiny_blocks[0], seed=0)
                    with ids_lock:
                        ids.append(request_id)
                except Exception as error:  # surfaced to the main thread
                    errors.append(error)

            threads = [threading.Thread(target=racer) for _ in range(4)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=30)
            assert not errors
            assert len(ids) == len(set(ids)) == 4
            for request_id in ids:
                assert client.result(request_id, timeout=60)["status"] == "done"
            deadline = time.monotonic() + 10.0
            while server.connections > 1 and time.monotonic() < deadline:
                time.sleep(0.01)
            assert server.connections == 1
        finally:
            client.close()

    def test_unserializable_payload_leaves_no_phantom_request(
        self, served, tiny_blocks
    ):
        """A submit whose payload cannot be JSON-encoded must raise before
        registering anything: a phantom _order entry would swallow the next
        id-less server response."""
        _, server = served
        with ServiceClient(*server.address) as client:
            with pytest.raises(TypeError):
                client.submit(tiny_blocks[0], seed=0, shards={1, 2})  # a set
            assert not client._order and not client._events
            # The connection still works and ordering is intact.
            assert client.explain(tiny_blocks[0], seed=0, timeout=60)

    def test_reconnect_after_close_raises(self, served, tiny_blocks):
        _, server = served
        client = ServiceClient(*server.address).connect()
        assert client.explain(tiny_blocks[0], seed=0, timeout=60)
        client.close()
        with pytest.raises(ServiceError) as excinfo:
            client.connect()
        assert "closed" in str(excinfo.value)
        with pytest.raises(ServiceError):
            client.submit(tiny_blocks[0])
        with pytest.raises(ServiceError):
            client.stats()
        # close() stays idempotent after the refused reconnect.
        client.close()


class TestServerLimits:
    def test_max_connections_refused_in_band(self, fast_config):
        with ExplanationService(model="crude", config=fast_config) as service:
            with SocketServer(service, port=0, max_connections=2) as server:
                keep = [_raw_connect(server) for _ in range(2)]
                # Wait until both connections are registered (accept loop).
                deadline = time.monotonic() + 10
                while server.connections < 2 and time.monotonic() < deadline:
                    time.sleep(0.01)
                extra_sock, extra_lines = _raw_connect(server)
                refusal = json.loads(extra_lines.readline())
                assert refusal["status"] == "failed"
                assert "capacity" in refusal["error"]
                assert extra_lines.readline() == ""  # then hung up
                extra_sock.close()
                # The capped connections still work.
                sock, lines = keep[0]
                sock.sendall(b'{"id": "r", "block": "div rcx"}\n')
                assert json.loads(lines.readline())["status"] == "done"
                for sock, _ in keep:
                    sock.close()

    def test_idle_timeout_closes_quiet_connections(self, fast_config):
        with ExplanationService(model="crude", config=fast_config) as service:
            with SocketServer(service, port=0, idle_timeout=0.2) as server:
                sock, lines = _raw_connect(server)
                assert lines.readline() == ""  # server hung up on the idler
                sock.close()
                # A busy connection within the window is unaffected.
                sock, lines = _raw_connect(server)
                sock.sendall(b'{"id": "r", "block": "div rcx"}\n')
                assert json.loads(lines.readline())["status"] == "done"
                sock.close()

    def test_double_start_rejected(self, fast_config):
        with ExplanationService(model="crude", config=fast_config) as service:
            with SocketServer(service, port=0) as server:
                with pytest.raises(ServiceError):
                    server.start()

    def test_invalid_parameters_rejected(self, fast_config):
        with ExplanationService(model="crude", config=fast_config) as service:
            with pytest.raises(ServiceError):
                SocketServer(service, max_connections=0)
            with pytest.raises(ServiceError):
                SocketServer(service, idle_timeout=0.0)
            with pytest.raises(ServiceError):
                SocketServer(service, max_line_bytes=1)
            with pytest.raises(ServiceError):
                SocketServer(service, max_pending_responses=0)

    def test_deep_explanation_pipeline_is_not_capped(self, fast_config, tiny_blocks):
        """Only connection-local (op/error) responses count against the
        pending cap: a legitimate explanation pipeline deeper than the cap
        must be served completely."""
        with ExplanationService(model="crude", config=fast_config) as service:
            with SocketServer(service, port=0, max_pending_responses=2) as server:
                with ServiceClient(*server.address, timeout=120) as client:
                    ids = [
                        client.submit(tiny_blocks[index % len(tiny_blocks)], seed=index)
                        for index in range(6)  # 3x the cap
                    ]
                    for request_id in ids:
                        assert client.result(request_id, timeout=120)["status"] == "done"

    def test_op_flood_past_pending_cap_hangs_up(self, fast_config):
        """Ops bypass the service queue, so the per-connection pending cap
        is what bounds a stats/error pipelining flood.  The writer is
        pinned behind a gated explanation so the flood cannot drain."""
        gate = threading.Event()
        service = TestClientDeadlinesAndFailures._gated_service(gate)
        server = SocketServer(service, port=0, max_pending_responses=8)
        try:
            service.start()
            server.start()
            sock, lines = _raw_connect(server)
            sock.sendall(b'{"id": "slow", "block": "div rcx"}\n')
            deadline = time.monotonic() + 30
            while service.stats().submitted < 1:  # writer now owes "slow"
                assert time.monotonic() < deadline
                time.sleep(0.01)
            for _ in range(64):  # well past the cap of 8
                sock.sendall(b'{"op": "stats"}\n')
            gate.set()  # release the writer; it drains what was accepted
            answered = 0
            while lines.readline():
                answered += 1
            # "slow" plus at most cap stats answers, then hang-up — not 65.
            assert 1 <= answered <= 9, answered
            sock.close()
            # The server itself survives: a fresh connection works.
            sock, lines = _raw_connect(server)
            sock.sendall(b'{"id": "r", "block": "div rcx"}\n')
            assert json.loads(lines.readline())["status"] == "done"
            sock.close()
        finally:
            gate.set()
            server.close()
            service.close()


class TestGracefulShutdown:
    def test_close_drains_pending_responses(self, fast_config, tiny_blocks):
        service = ExplanationService(model="crude", config=fast_config)
        server = SocketServer(service, port=0)
        server.start()
        try:
            with ServiceClient(*server.address) as client:
                ids = [client.submit(block, seed=2) for block in tiny_blocks]
                # Drain covers requests the server has *ingested*; wait until
                # the reader has submitted all three before pulling the plug
                # (bytes still in the socket buffer are legitimately dropped).
                deadline = time.monotonic() + 30
                while service.stats().submitted < len(ids):
                    assert time.monotonic() < deadline
                    time.sleep(0.01)
                closer = threading.Thread(target=server.close)
                closer.start()
                # Every already-submitted request is answered before the
                # socket goes away.
                for request_id in ids:
                    assert client.result(request_id, timeout=60)["status"] == "done"
                closer.join(timeout=60)
                assert not closer.is_alive()
            assert server.wait(timeout=1)
        finally:
            server.close()
            service.close()

    def test_abrupt_close_consumes_tickets(self, fast_config, tiny_blocks):
        """drain=False drops sockets, but the service leaks no ticket state."""
        service = ExplanationService(model="crude", config=fast_config)
        server = SocketServer(service, port=0)
        server.start()
        try:
            client = ServiceClient(*server.address).connect()
            for block in tiny_blocks:
                client.submit(block, seed=3)
            server.close(drain=False)
            client.close()
            assert service.drain(timeout=60)
            # All tickets were consumed by the connection's writer: nothing
            # is left pending inside the service.
            assert not service._tickets
        finally:
            server.close()
            service.close()

    def test_connections_refused_after_close(self, fast_config):
        with ExplanationService(model="crude", config=fast_config) as service:
            server = SocketServer(service, port=0)
            server.start()
            server.close()
            with pytest.raises(OSError):
                socket.create_connection(server.address, timeout=2)


class TestServeCliSocket:
    def test_parser_defaults(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["serve"])
        assert args.port is None  # stdin/stdout stays the default transport
        assert args.host == "127.0.0.1"
        assert args.max_connections == 8
        assert args.idle_timeout is None

    def test_requests_file_and_port_are_mutually_exclusive(self, tmp_path, capsys):
        from repro.cli import main

        requests_file = tmp_path / "reqs.jsonl"
        requests_file.write_text('{"block": "div rcx"}\n')
        code = main(["serve", "--requests", str(requests_file), "--port", "0"])
        assert code == 2
        assert "one or the other" in capsys.readouterr().err

    def test_serve_port_sigterm_drains(self, tmp_path):
        """``repro serve --port`` serves TCP and SIGTERM drains gracefully."""
        import os
        import signal
        import subprocess
        import sys

        env = dict(os.environ, PYTHONPATH="src")
        env.pop("REPRO_BACKEND", None)  # keep the subprocess serial and fast
        process = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--model", "crude", "--port", "0",
                "--epsilon", "0.2", "--relative-epsilon", "0.0",
                "--coverage-samples", "80", "--max-precision-samples", "40",
            ],
            stderr=subprocess.PIPE,
            text=True,
            env=env,
        )
        try:
            banner = process.stderr.readline()
            assert "serving on" in banner, banner
            host, port = banner.split()[2].rsplit(":", 1)
            with ServiceClient(host, int(port), timeout=60) as client:
                payloads = client.explain("div rcx; add rax, rbx", seed=1)
                assert payloads and payloads[0]["features"]
                process.send_signal(signal.SIGTERM)
                assert process.wait(timeout=60) == 0
            remainder = process.stderr.read()
            assert "drained" in remainder
        finally:
            if process.poll() is None:
                process.kill()
                process.wait(timeout=10)


def _stress_expectations(fast_config, tiny_blocks):
    """The serial, direct, in-process fingerprints every client must see."""
    workload = [(block, seed) for seed, block in enumerate(tiny_blocks)]
    direct_model = CachedCostModel(AnalyticalCostModel("hsw"))
    expected_single = {
        (block.key(), seed): explanation_dict_fingerprint(
            explanation_to_dict(
                CometExplainer(direct_model, fast_config).explain(block, rng=seed)
            )
        )
        for block, seed in workload
    }
    expected_fleet = [
        explanation_dict_fingerprint(explanation_to_dict(explanation))
        for explanation in CometExplainer(
            CachedCostModel(AnalyticalCostModel("hsw")), fast_config
        ).explain_many(tiny_blocks, rng=77)
    ]
    return workload, expected_single, expected_fleet


def _run_eight_clients(service, tiny_blocks, workload, expected_single, expected_fleet):
    """8 concurrent TCP clients over one server; returns (errors, mismatches)."""
    with SocketServer(service, port=0, max_connections=8) as server:
        errors = []
        mismatches = []
        barrier = threading.Barrier(8)

        def client_run(index):
            try:
                with ServiceClient(*server.address) as client:
                    barrier.wait(timeout=30)
                    ids = [
                        (block.key(), seed, client.submit(block, seed=seed))
                        for block, seed in workload
                    ]
                    fleet_id = client.submit(tiny_blocks, seed=77)
                    for key, seed, request_id in ids:
                        response = client.result(request_id, timeout=120)
                        assert response["status"] == "done", response
                        got = explanation_dict_fingerprint(
                            response["explanations"][0]
                        )
                        if got != expected_single[(key, seed)]:
                            mismatches.append((index, key, seed))
                    fleet = client.result(fleet_id, timeout=120)
                    assert fleet["status"] == "done", fleet
                    got_fleet = [
                        explanation_dict_fingerprint(payload)
                        for payload in fleet["explanations"]
                    ]
                    if got_fleet != expected_fleet:
                        mismatches.append((index, "fleet"))
            except Exception as error:  # surfaced to the main thread
                errors.append((index, error))

        threads = [
            threading.Thread(target=client_run, args=(i,)) for i in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=300)
        assert not any(thread.is_alive() for thread in threads)
    return errors, mismatches


class TestMultiClientStress:
    @pytest.mark.parametrize("dispatchers", [1, 4])
    def test_eight_concurrent_clients_match_serial_direct_explainer(
        self, fast_config, tiny_blocks, dispatchers
    ):
        """The acceptance bar: 8 TCP clients, one warm server, same fleet.

        Every client submits the same seeded fleet — each block as a
        single-block request plus the whole list as one fleet request — and
        every client's payloads must be bit-for-bit the serial, direct,
        in-process explanations.  Nothing about racing seven other sockets
        may leak into the result — under the single-dispatcher oracle
        configuration and the 4-dispatcher fleet alike.
        """
        workload, expected_single, expected_fleet = _stress_expectations(
            fast_config, tiny_blocks
        )
        with ExplanationService(
            model="crude", config=fast_config, dispatchers=dispatchers
        ) as service:
            errors, mismatches = _run_eight_clients(
                service, tiny_blocks, workload, expected_single, expected_fleet
            )
            stats = service.stats()

        assert not errors
        assert not mismatches
        assert stats.served == 8 * (len(workload) + 1)
        assert stats.failed == 0

    @pytest.mark.parametrize("continuous_batching", [False, True])
    @pytest.mark.parametrize(
        "cache_state", ["disabled", "cold", "warm", "warm-restart"]
    )
    def test_eight_clients_cache_state_matrix(
        self, fast_config, tiny_blocks, tmp_path, cache_state, continuous_batching
    ):
        """The stress bar again, across every result-cache temperature.

        Eight racing clients see bit-for-bit the direct serial payloads
        whether the result cache is off, empty, warmed in-process, or
        warmed by a *previous* service sharing the same on-disk store —
        and whether requests retire through the continuous batcher (where
        a hit consumes no KL-LUCB round) or the plain path.  With 8
        clients repeating one workload, the cache-enabled arms must also
        actually hit.
        """
        workload, expected_single, expected_fleet = _stress_expectations(
            fast_config, tiny_blocks
        )
        path = tmp_path / "stress.cache"
        result_cache = False if cache_state == "disabled" else str(path)
        if cache_state == "warm-restart":
            # A previous service life fills the store, then fully closes:
            # only the disk tier carries the warmth across.
            with ExplanationService(
                model="crude", config=fast_config, result_cache=str(path)
            ) as warmer:
                for block, seed in workload:
                    warmer.explain(block, seed=seed)
                warmer.explain(tiny_blocks, seed=77)
        warm_requests = 0
        with ExplanationService(
            model="crude",
            config=fast_config,
            dispatchers=4,
            continuous_batching=continuous_batching,
            result_cache=result_cache,
        ) as service:
            if cache_state == "warm":
                for block, seed in workload:
                    service.explain(block, seed=seed)
                service.explain(tiny_blocks, seed=77)
                warm_requests = len(workload) + 1
            errors, mismatches = _run_eight_clients(
                service, tiny_blocks, workload, expected_single, expected_fleet
            )
            stats = service.stats()

        assert not errors
        assert not mismatches
        assert stats.served == 8 * (len(workload) + 1) + warm_requests
        assert stats.failed == 0
        if cache_state == "disabled":
            assert stats.result_cache is None
        else:
            assert stats.result_cache is not None
            # Eight repeats of one workload: all but the first computation
            # of each distinct request must be served from the cache.
            assert stats.result_cache.hits > 0
            if cache_state == "warm-restart":
                assert stats.result_cache.disk is not None
                assert stats.result_cache.disk.hits > 0
