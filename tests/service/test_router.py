"""The consistent-hash ring and the fleet router.

Two contracts under test.  The *ring* contract is structural: placement is
deterministic (CRC-32, no process-randomized ``hash()``), and removing a
node remaps only the keys that node owned.  The *router* contract is the
determinism parity bar every serving layer in this repo answers to: an
N-node fleet serves byte-identical explanation payloads to a single node —
routing chooses where a request runs, never what it computes.
"""

import io
import json

import pytest

from repro.bb.block import BasicBlock
from repro.explain.explainer import CometExplainer
from repro.models.analytical import AnalyticalCostModel
from repro.models.base import CachedCostModel
from repro.reporting.export import explanation_to_dict
from repro.service import (
    ExplanationService,
    HashRing,
    Router,
    SocketServer,
    parse_nodes,
    route_stream,
    routing_key,
    stable_key_hash,
)
from repro.service.router import parse_node
from repro.utils.errors import ServiceError

from tests.conftest import FAST_CONFIG, explanation_dict_fingerprint


class TestStableKeyHash:
    def test_deterministic_and_repr_based(self):
        assert stable_key_hash(("crude", "hsw")) == stable_key_hash(("crude", "hsw"))
        assert stable_key_hash("a") != stable_key_hash("b")

    def test_scheduler_home_uses_it(self):
        from repro.service.scheduler import Scheduler

        scheduler = Scheduler(lambda item: None, dispatchers=4)
        try:
            for key in [("crude", "hsw"), ("uica", "skl"), "anything"]:
                assert scheduler.home(key) == stable_key_hash(key) % 4
        finally:
            scheduler.close()


class TestParseNodes:
    def test_comma_separated_and_sequence_forms(self):
        assert parse_nodes("a:1,b:2") == ["a:1", "b:2"]
        assert parse_nodes(["a:1", "b:2"]) == ["a:1", "b:2"]
        assert parse_nodes(" a:1 , b:2 ") == ["a:1", "b:2"]

    def test_rejects_malformed_specs(self):
        with pytest.raises(ServiceError):
            parse_nodes("")
        with pytest.raises(ServiceError):
            parse_nodes("no-port")
        with pytest.raises(ServiceError):
            parse_nodes("host:notaport")
        with pytest.raises(ServiceError):
            parse_nodes("host:99999")
        with pytest.raises(ServiceError):
            parse_nodes("a:1,a:1")

    def test_parse_node_splits_host_and_port(self):
        assert parse_node("127.0.0.1:7421") == ("127.0.0.1", 7421)


class TestHashRing:
    def test_placement_is_deterministic(self):
        ring_a = HashRing(["a:1", "b:2", "c:3"])
        ring_b = HashRing(["a:1", "b:2", "c:3"])
        keys = [f"key-{i}" for i in range(100)]
        assert [ring_a.node_for(k) for k in keys] == [
            ring_b.node_for(k) for k in keys
        ]

    def test_all_nodes_receive_keys(self):
        ring = HashRing(["a:1", "b:2", "c:3"], replicas=64)
        owners = {ring.node_for(f"key-{i}") for i in range(300)}
        assert owners == {"a:1", "b:2", "c:3"}

    def test_removal_remaps_only_the_removed_nodes_keys(self):
        """The consistent-hashing property — the reason this is a ring and
        not the scheduler's modulo: shrinking the fleet invalidates one
        node's warmth, not everyone's."""
        ring = HashRing(["a:1", "b:2", "c:3", "d:4"], replicas=64)
        keys = [f"key-{i}" for i in range(500)]
        before = {key: ring.node_for(key) for key in keys}
        ring.remove("b:2")
        after = {key: ring.node_for(key) for key in keys}
        for key in keys:
            if before[key] == "b:2":
                assert after[key] != "b:2"
            else:
                assert after[key] == before[key], "non-owned key remapped"

    def test_addition_only_steals_keys_for_the_new_node(self):
        ring = HashRing(["a:1", "b:2"], replicas=64)
        keys = [f"key-{i}" for i in range(500)]
        before = {key: ring.node_for(key) for key in keys}
        ring.add("c:3")
        after = {key: ring.node_for(key) for key in keys}
        for key in keys:
            if after[key] != before[key]:
                assert after[key] == "c:3"

    def test_membership_api(self):
        ring = HashRing(["a:1"])
        assert "a:1" in ring and len(ring) == 1
        with pytest.raises(ValueError):
            ring.add("a:1")
        with pytest.raises(ValueError):
            ring.remove("zz:9")
        ring.remove("a:1")
        with pytest.raises(ServiceError):
            ring.node_for("anything")

    def test_replicas_validated(self):
        with pytest.raises(ValueError):
            HashRing(replicas=0)


class TestRoutingKey:
    def test_text_and_parsed_block_share_a_key(self):
        text = "add rcx, rax; mov rdx, rcx"
        block = BasicBlock.from_text(text.replace(";", "\n"))
        assert routing_key(text) == routing_key(block)
        assert routing_key([text]) == routing_key([block])

    def test_model_uarch_and_blocks_reach_the_key(self):
        base = routing_key("div rcx", "crude", "hsw")
        assert routing_key("add rax, rbx", "crude", "hsw") != base
        assert routing_key("div rcx", "uica", "hsw") != base
        assert routing_key("div rcx", "crude", "skl") != base

    def test_seed_is_deliberately_excluded(self):
        """Different seeds of one block share a node (and its query LRU);
        the routing key has no seed component at all."""
        assert routing_key("div rcx") == routing_key("div rcx")


@pytest.fixture
def fleet():
    """Three warm services behind sockets + the single-node oracle."""
    services = []
    servers = []
    for _ in range(3):
        service = ExplanationService(model="crude", config=FAST_CONFIG)
        server = SocketServer(service, port=0)
        server.start()
        services.append(service)
        servers.append(server)
    nodes = [f"{s.address[0]}:{s.address[1]}" for s in servers]
    try:
        yield nodes, services
    finally:
        for server in servers:
            server.close()
        for service in services:
            service.close()


class TestRouterParity:
    def test_fleet_byte_identical_to_direct_serial_oracle(self, fleet, block_fleet):
        """Requests spread over 3 nodes produce exactly the serial direct
        explanations — and the spread is real (more than one node serves)."""
        nodes, services = fleet
        workload = [(block, seed) for seed, block in enumerate(block_fleet[:8])]
        direct = CachedCostModel(AnalyticalCostModel("hsw"))
        expected = {
            (block.key(), seed): explanation_dict_fingerprint(
                explanation_to_dict(
                    CometExplainer(direct, FAST_CONFIG).explain(block, rng=seed)
                )
            )
            for block, seed in workload
        }
        with Router(",".join(nodes), timeout=120) as router:
            for block, seed in workload:
                payloads = router.explain(block, seed=seed)
                got = explanation_dict_fingerprint(payloads[0])
                assert got == expected[(block.key(), seed)]
            stats = router.stats()
        assert stats["served"] == len(workload)
        assert stats["failed"] == 0
        serving_nodes = [
            node
            for node, snapshot in stats["per_node"].items()
            if snapshot["served"] > 0
        ]
        assert len(serving_nodes) > 1, "workload never spread across the fleet"

    def test_repeat_requests_pin_to_one_node(self, fleet):
        nodes, _ = fleet
        with Router(",".join(nodes)) as router:
            owners = {router.node_for("div rcx; add rax, rbx") for _ in range(5)}
            assert len(owners) == 1

    def test_submit_poll_result_and_cancel_roundtrip(self, fleet):
        nodes, _ = fleet
        with Router(",".join(nodes), timeout=120) as router:
            handle = router.submit("div rcx; add rax, rbx", seed=3)
            assert router.node_of(handle) in nodes
            response = router.result(handle)
            assert response["status"] == "done"
            with pytest.raises(ServiceError):
                router.result(handle)  # consumed
            with pytest.raises(ServiceError):
                router.node_of("r999")

    def test_fleet_stats_aggregate_result_cache_tiers(self, tmp_path):
        """Each node's cache counters flow into one fleet snapshot."""
        services, servers = [], []
        for index in range(2):
            service = ExplanationService(
                model="crude",
                config=FAST_CONFIG,
                result_cache=str(tmp_path / f"node-{index}.cache"),
            )
            server = SocketServer(service, port=0)
            server.start()
            services.append(service)
            servers.append(server)
        nodes = ",".join(f"{s.address[0]}:{s.address[1]}" for s in servers)
        try:
            with Router(nodes, timeout=120) as router:
                for _ in range(2):  # second pass hits every node it lands on
                    router.explain("div rcx; add rax, rbx", seed=1)
                    router.explain("mov rdx, rcx; pop rbx", seed=2)
                stats = router.stats()
        finally:
            for server in servers:
                server.close()
            for service in services:
                service.close()
        cache = stats["result_cache"]
        assert cache is not None
        assert cache["lookups"] >= 4
        assert cache["hits"] >= 2
        assert cache["hit_rate"] > 0
        assert len(cache["path"]) >= 1


class TestRouteStream:
    def test_stream_parity_and_ops(self, fleet, tiny_blocks):
        nodes, _ = fleet
        direct = CachedCostModel(AnalyticalCostModel("hsw"))
        block = tiny_blocks[0]
        expected = explanation_dict_fingerprint(
            explanation_to_dict(
                CometExplainer(direct, FAST_CONFIG).explain(block, rng=5)
            )
        )
        lines = [
            json.dumps({"id": "r1", "block": block.text, "seed": 5}),
            json.dumps({"id": "s1", "op": "stats"}),
            json.dumps({"id": "c1", "op": "cancel", "target": "never-seen"}),
            "not json at all {{{",
        ]
        out = io.StringIO()
        with Router(",".join(nodes), timeout=120) as router:
            served = route_stream(router, lines, out)
        responses = [json.loads(line) for line in out.getvalue().splitlines()]
        by_id = {response.get("id"): response for response in responses}
        assert served == 1
        assert by_id["r1"]["status"] == "done"
        assert by_id["r1"]["node"] in nodes
        assert explanation_dict_fingerprint(
            by_id["r1"]["explanations"][0]
        ) == expected
        assert by_id["s1"]["op"] == "stats"
        assert "per_node" in by_id["s1"]["stats"]
        assert by_id["c1"]["status"] == "failed"
        # the undecodable line failed in-band; the stream kept serving
        assert sum(1 for r in responses if r.get("status") == "failed") == 2

    def test_responses_keep_submission_order(self, fleet, tiny_blocks):
        nodes, _ = fleet
        lines = [
            json.dumps({"id": f"r{index}", "block": block.text, "seed": index})
            for index, block in enumerate(tiny_blocks)
        ]
        out = io.StringIO()
        with Router(",".join(nodes), timeout=120) as router:
            served = route_stream(router, lines, out)
        ids = [json.loads(line)["id"] for line in out.getvalue().splitlines()]
        assert served == len(tiny_blocks)
        assert ids == [f"r{index}" for index in range(len(tiny_blocks))]
