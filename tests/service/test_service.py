"""Tests for the warm-session explanation service: lifecycle, queueing,
session pooling and request semantics.

Tests that inject toy (lambda-backed) models via ``session_factory`` pin the
session backend to ``serial`` explicitly — lambdas cannot cross a process
boundary, and the suite must pass under ``REPRO_BACKEND=process`` (CI runs
it that way).
"""

import threading
import time

import pytest

from repro.bb.block import BasicBlock
from repro.models.base import CachedCostModel, CallableCostModel
from repro.runtime.session import ExplanationSession
from repro.service import ExplanationRequest, ExplanationService, RequestStatus
from repro.utils.errors import (
    QueueFullError,
    ServiceClosedError,
    ServiceError,
)

from tests.conftest import FAST_CONFIG


def _toy_factory(fast_config, *, gate: "threading.Event" = None, built=None):
    """A session factory over a cheap in-process model.

    ``gate``, when given, makes every prediction wait — the dispatcher then
    blocks mid-request, which is how the queueing tests create a backlog.
    ``built`` collects one entry per factory call, for session-reuse tests.
    """

    def predict(block):
        if gate is not None:
            gate.wait(timeout=30)
        return float(block.num_instructions)

    def factory(model_name, uarch):
        if built is not None:
            built.append((model_name, uarch))
        model = CachedCostModel(CallableCostModel(predict, name=model_name))
        return ExplanationSession(model, fast_config, backend="serial")

    return factory


@pytest.fixture
def service(fast_config):
    instance = ExplanationService(
        config=fast_config, session_factory=_toy_factory(fast_config)
    )
    yield instance
    instance.close()


class TestLifecycle:
    def test_start_is_idempotent(self, service):
        assert service.start() is service
        first = service._scheduler
        service.start()
        assert service._scheduler is first

    def test_close_is_idempotent(self, service):
        service.start()
        service.close()
        service.close()
        assert service.closed

    def test_close_is_idempotent_without_drain(self, service):
        service.start()
        service.close(drain=False)
        service.close(drain=False)
        service.close()  # and mixing drain modes after the fact is fine too
        assert service.closed

    def test_concurrent_close_is_safe(self, fast_config, tiny_block):
        """Racing close() calls: every caller returns only once the service
        is fully shut down, and the shutdown happens exactly once."""
        instance = ExplanationService(
            config=fast_config, session_factory=_toy_factory(fast_config)
        )
        instance.explain(tiny_block)
        errors = []
        barrier = threading.Barrier(4)

        def closer():
            try:
                barrier.wait(timeout=10)
                instance.close()
                # By the time any close() returns, the pool must be gone.
                assert instance.pool.closed
            except Exception as error:  # surfaced to the main thread
                errors.append(error)

        threads = [threading.Thread(target=closer) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert not any(thread.is_alive() for thread in threads)
        assert not errors
        assert instance.closed

    def test_close_without_start_is_fine(self, fast_config):
        instance = ExplanationService(config=fast_config)
        instance.close()
        assert instance.closed

    def test_drain_on_idle_service_returns_immediately(self, service):
        assert service.drain(timeout=1.0)

    def test_submit_after_close_rejected(self, service, tiny_block):
        service.close()
        with pytest.raises(ServiceClosedError):
            service.submit(tiny_block)

    def test_submit_after_close_without_drain_rejected(self, service, tiny_block):
        # ServiceClosedError is a ServiceError: both spellings must catch.
        service.close(drain=False)
        with pytest.raises(ServiceError):
            service.submit(tiny_block)
        with pytest.raises(ServiceClosedError):
            service.explain(tiny_block)

    def test_submit_racing_close_never_hangs(self, fast_config, tiny_block):
        """Submissions racing close() either raise ServiceClosedError or get
        a resolvable ticket — no request may be silently dropped."""
        gate = threading.Event()
        instance = ExplanationService(
            config=fast_config,
            session_factory=_toy_factory(fast_config, gate=gate),
        )
        first = instance.submit(tiny_block, seed=0)
        while instance.poll(first) is RequestStatus.QUEUED:
            time.sleep(0.005)
        outcomes = []
        outcomes_lock = threading.Lock()

        def submitter(seed):
            try:
                request_id = instance.submit(tiny_block, seed=seed)
                result = instance.result(request_id, timeout=30)
                with outcomes_lock:
                    outcomes.append(result.status)
            except ServiceClosedError:
                with outcomes_lock:
                    outcomes.append("rejected")

        threads = [threading.Thread(target=submitter, args=(s,)) for s in range(8)]
        for thread in threads:
            thread.start()
        gate.set()
        instance.close()  # drain: whatever got in, finishes
        for thread in threads:
            thread.join(timeout=30)
        assert not any(thread.is_alive() for thread in threads)
        assert len(outcomes) == 8
        assert all(
            outcome in ("rejected", RequestStatus.DONE, RequestStatus.CANCELLED)
            for outcome in outcomes
        )

    def test_start_after_close_rejected(self, service):
        service.close()
        with pytest.raises(ServiceClosedError):
            service.start()
        # And no dispatcher fleet was built by the refused start.
        assert service._scheduler is None

    def test_context_manager_closes(self, fast_config, tiny_block):
        with ExplanationService(
            config=fast_config, session_factory=_toy_factory(fast_config)
        ) as instance:
            instance.explain(tiny_block)
        assert instance.closed

    def test_close_drains_queued_requests(self, fast_config, tiny_block):
        instance = ExplanationService(
            config=fast_config, session_factory=_toy_factory(fast_config)
        )
        ids = [instance.submit(tiny_block, seed=seed) for seed in range(4)]
        instance.close()  # drain=True default: everything finishes first
        assert instance.stats().served == 4
        for request_id in ids:
            assert instance.result(request_id, timeout=1.0).ok

    def test_close_without_drain_cancels_queued(self, fast_config, tiny_block):
        gate = threading.Event()
        instance = ExplanationService(
            config=fast_config,
            session_factory=_toy_factory(fast_config, gate=gate),
        )
        first = instance.submit(tiny_block, seed=0)
        backlog = [instance.submit(tiny_block, seed=s) for s in (1, 2)]
        # Wait for the dispatcher to pick the first request up, then let it
        # finish while the backlog is cancelled.
        while instance.poll(first) is RequestStatus.QUEUED:
            time.sleep(0.005)
        gate.set()
        instance.close(drain=False)
        assert instance.result(first, timeout=5.0).ok
        for request_id in backlog:
            result = instance.result(request_id, timeout=1.0)
            assert result.status is RequestStatus.CANCELLED
            assert not result.ok
        stats = instance.stats()
        assert stats.cancelled == 2

    def test_close_closes_sessions_and_backends(self, fast_config, tiny_block):
        sessions = []

        def factory(model_name, uarch):
            session = ExplanationSession(
                CachedCostModel(CallableCostModel(lambda b: 1.0)),
                fast_config,
                backend="thread",
                workers=2,
            )
            sessions.append(session)
            return session

        with ExplanationService(config=fast_config, session_factory=factory) as svc:
            svc.explain(tiny_block)
            backend = sessions[0].backend
            assert not backend.closed
        assert sessions[0].closed
        assert backend.closed


class TestQueueing:
    def test_invalid_bounds_rejected(self, fast_config):
        with pytest.raises(ValueError):
            ExplanationService(config=fast_config, max_queue=0)
        with pytest.raises(ValueError):
            ExplanationService(config=fast_config, max_sessions=0)

    def test_bounded_queue_backpressure(self, fast_config, tiny_block):
        gate = threading.Event()
        instance = ExplanationService(
            config=fast_config,
            max_queue=1,
            session_factory=_toy_factory(fast_config, gate=gate),
        )
        try:
            first = instance.submit(tiny_block, seed=0)
            # Dispatcher is now blocked on the gate; fill the 1-slot queue.
            while instance.poll(first) is RequestStatus.QUEUED:
                time.sleep(0.005)
            instance.submit(tiny_block, seed=1)
            with pytest.raises(QueueFullError):
                instance.submit(tiny_block, seed=2, block=False)
            with pytest.raises(QueueFullError):
                instance.submit(tiny_block, seed=3, timeout=0.05)
        finally:
            gate.set()
            instance.close()
        # The rejected submissions left no tickets behind.
        assert instance.stats().submitted == 2
        assert instance.stats().served == 2

    def test_blocking_submit_waits_for_room(self, fast_config, tiny_block):
        gate = threading.Event()
        instance = ExplanationService(
            config=fast_config,
            max_queue=1,
            session_factory=_toy_factory(fast_config, gate=gate),
        )
        try:
            instance.submit(tiny_block, seed=0)
            releaser = threading.Timer(0.1, gate.set)
            releaser.start()
            # Blocks until the gate opens the pipeline, then succeeds.
            second = instance.submit(tiny_block, seed=1, timeout=10.0)
            assert instance.result(second, timeout=10.0).ok
        finally:
            gate.set()
            instance.close()


class TestRequestSemantics:
    def test_submit_poll_result_roundtrip(self, service, tiny_block):
        request_id = service.submit(tiny_block, seed=3)
        result = service.result(request_id, timeout=10.0)
        assert result.ok
        assert result.request_id == request_id
        assert len(result.explanations) == 1
        assert result.seconds >= 0.0

    def test_result_consumes_the_ticket(self, service, tiny_block):
        request_id = service.submit(tiny_block)
        service.result(request_id, timeout=10.0)
        with pytest.raises(ServiceError):
            service.poll(request_id)
        with pytest.raises(ServiceError):
            service.result(request_id)

    def test_poll_unknown_id_rejected(self, service):
        with pytest.raises(ServiceError):
            service.poll("req-nope")

    def test_empty_request_rejected(self):
        with pytest.raises(ServiceError):
            ExplanationRequest(blocks=())

    def test_failed_request_reported_in_band(self, fast_config):
        block = BasicBlock.from_text("div rcx")
        # The default (registry) factory actually validates model names.
        with ExplanationService(config=fast_config) as instance:
            request_id = instance.submit(block, model="no-such-model")
            result = instance.result(request_id, timeout=10.0)
            assert result.status is RequestStatus.FAILED
            assert "unknown cost model" in result.error
            assert not result.ok
            with pytest.raises(ServiceError):
                # The synchronous wrapper surfaces the failure as an exception.
                instance.explain(block, model="no-such-model")
            # The service keeps serving after a failure.
            assert len(instance.explain(block)) == 1

    def test_multi_block_request(self, service, tiny_blocks):
        explanations = service.explain(tiny_blocks, seed=5)
        assert len(explanations) == len(tiny_blocks)

    def test_prepared_request_objects_accepted(self, service, tiny_blocks):
        request = ExplanationRequest(blocks=tuple(tiny_blocks), seed=2)
        request_id = service.submit(request)
        assert service.result(request_id, timeout=30.0).ok


class TestSessionPooling:
    def test_same_model_reuses_one_session(self, fast_config, tiny_block):
        built = []
        with ExplanationService(
            config=fast_config, session_factory=_toy_factory(fast_config, built=built)
        ) as instance:
            for seed in range(3):
                instance.explain(tiny_block, seed=seed)
            stats = instance.stats()
        assert built == [("crude", "hsw")]
        assert stats.sessions == (("crude", "hsw"),)
        assert stats.session_stats[("crude", "hsw")].explanations == 3

    def test_distinct_models_get_distinct_sessions(self, fast_config, tiny_block):
        built = []
        with ExplanationService(
            config=fast_config, session_factory=_toy_factory(fast_config, built=built)
        ) as instance:
            instance.explain(tiny_block, model="crude")
            instance.explain(tiny_block, model="uica")
            instance.explain(tiny_block, model="crude", uarch="skl")
        assert sorted(built) == [("crude", "hsw"), ("crude", "skl"), ("uica", "hsw")]

    def test_lru_session_evicted_and_closed(self, fast_config, tiny_block):
        built = []
        sessions = {}

        def factory(model_name, uarch):
            session = _toy_factory(fast_config, built=built)(model_name, uarch)
            sessions[(model_name, uarch)] = session
            return session

        with ExplanationService(
            config=fast_config, max_sessions=1, session_factory=factory
        ) as instance:
            instance.explain(tiny_block, model="a")
            instance.explain(tiny_block, model="b")
            assert sessions[("a", "hsw")].closed
            assert instance.pool.keys() == (("b", "hsw"),)
            assert instance.pool.stats().evictions == 1
        assert built == [("a", "hsw"), ("b", "hsw")]

    def test_stats_describe(self, service, tiny_block):
        service.explain(tiny_block)
        description = service.stats().describe()
        assert "1/1 requests served" in description
        assert "1 warm sessions" in description


class TestMultiDispatcher:
    def test_invalid_dispatcher_count_rejected(self, fast_config):
        with pytest.raises(ValueError):
            ExplanationService(config=fast_config, dispatchers=0)

    def test_env_default_dispatchers(self, fast_config, monkeypatch):
        monkeypatch.setenv("REPRO_DISPATCHERS", "3")
        instance = ExplanationService(
            config=fast_config, session_factory=_toy_factory(fast_config)
        )
        try:
            assert instance.dispatchers == 3
        finally:
            instance.close()
        # An explicit argument beats the environment.
        instance = ExplanationService(
            config=fast_config, dispatchers=2,
            session_factory=_toy_factory(fast_config),
        )
        try:
            assert instance.dispatchers == 2
        finally:
            instance.close()

    def test_invalid_env_dispatchers_rejected(self, fast_config, monkeypatch):
        for bad in ("zero", "0", "-2"):
            monkeypatch.setenv("REPRO_DISPATCHERS", bad)
            with pytest.raises(ServiceError):
                ExplanationService(config=fast_config)

    def test_distinct_keys_run_concurrently(self, fast_config, tiny_block):
        """Two models in flight at once — the whole point of the fleet."""
        gate = threading.Event()
        instance = ExplanationService(
            config=fast_config,
            dispatchers=2,
            session_factory=_toy_factory(fast_config, gate=gate),
        )
        try:
            first = instance.submit(tiny_block, model="a", seed=0)
            second = instance.submit(tiny_block, model="b", seed=0)
            deadline = time.monotonic() + 30
            while not (
                instance.poll(first) is RequestStatus.RUNNING
                and instance.poll(second) is RequestStatus.RUNNING
            ):
                assert time.monotonic() < deadline, (
                    instance.poll(first), instance.poll(second)
                )
                time.sleep(0.005)
            stats = instance.stats()
            assert stats.in_flight == 2
            assert sum(d.busy for d in stats.dispatcher_stats) == 2
        finally:
            gate.set()
            instance.close()
        assert instance.stats().served == 2

    def test_same_key_never_runs_concurrently(self, fast_config, tiny_block):
        """Per-key mutual exclusion: the second request of one key stays
        queued while the first runs, even with idle dispatchers around."""
        gate = threading.Event()
        instance = ExplanationService(
            config=fast_config,
            dispatchers=4,
            session_factory=_toy_factory(fast_config, gate=gate),
        )
        try:
            first = instance.submit(tiny_block, seed=0)
            second = instance.submit(tiny_block, seed=1)
            while instance.poll(first) is not RequestStatus.RUNNING:
                time.sleep(0.005)
            # Give the three idle dispatchers every chance to misbehave.
            time.sleep(0.1)
            assert instance.poll(second) is RequestStatus.QUEUED
            assert instance.stats().in_flight == 1
        finally:
            gate.set()
            instance.close()
        assert instance.stats().served == 2

    def test_dispatcher_counters_account_for_all_requests(
        self, fast_config, tiny_block
    ):
        with ExplanationService(
            config=fast_config,
            dispatchers=2,
            session_factory=_toy_factory(fast_config),
        ) as instance:
            for seed in range(5):
                instance.explain(tiny_block, seed=seed, model=f"m{seed % 3}")
            stats = instance.stats()
        assert stats.dispatchers == 2
        assert len(stats.dispatcher_stats) == 2
        assert sum(d.executed for d in stats.dispatcher_stats) == 5
        assert stats.pool is not None
        assert stats.pool.sessions == 3
        assert stats.pool.builds == 3


class TestRegistryIntegration:
    def test_default_factory_builds_registry_models(self, fast_config, tiny_block):
        with ExplanationService(model="crude", config=fast_config) as instance:
            explanations = instance.explain(tiny_block, seed=0)
        assert len(explanations) == 1
        assert explanations[0].model_name == "crude-analytical-hsw"

    def test_unknown_default_model_fails_per_request(self, fast_config, tiny_block):
        with ExplanationService(model="nonsense", config=fast_config) as instance:
            request_id = instance.submit(tiny_block)
            result = instance.result(request_id, timeout=10.0)
        assert result.status is RequestStatus.FAILED
        assert "unknown cost model" in result.error
