"""Tests for the warm-session explanation service: lifecycle, queueing,
session pooling and request semantics.

Tests that inject toy (lambda-backed) models via ``session_factory`` pin the
session backend to ``serial`` explicitly — lambdas cannot cross a process
boundary, and the suite must pass under ``REPRO_BACKEND=process`` (CI runs
it that way).
"""

import threading
import time

import pytest

from repro.bb.block import BasicBlock
from repro.models.base import CachedCostModel, CallableCostModel
from repro.runtime.session import ExplanationSession
from repro.service import ExplanationRequest, ExplanationService, RequestStatus
from repro.utils.errors import (
    QueueFullError,
    ServiceClosedError,
    ServiceError,
)

from tests.conftest import FAST_CONFIG


def _toy_factory(fast_config, *, gate: "threading.Event" = None, built=None):
    """A session factory over a cheap in-process model.

    ``gate``, when given, makes every prediction wait — the dispatcher then
    blocks mid-request, which is how the queueing tests create a backlog.
    ``built`` collects one entry per factory call, for session-reuse tests.
    """

    def predict(block):
        if gate is not None:
            gate.wait(timeout=30)
        return float(block.num_instructions)

    def factory(model_name, uarch):
        if built is not None:
            built.append((model_name, uarch))
        model = CachedCostModel(CallableCostModel(predict, name=model_name))
        return ExplanationSession(model, fast_config, backend="serial")

    return factory


@pytest.fixture
def service(fast_config):
    instance = ExplanationService(
        config=fast_config, session_factory=_toy_factory(fast_config)
    )
    yield instance
    instance.close()


class TestLifecycle:
    def test_start_is_idempotent(self, service):
        assert service.start() is service
        first = service._dispatcher
        service.start()
        assert service._dispatcher is first

    def test_close_is_idempotent(self, service):
        service.start()
        service.close()
        service.close()
        assert service.closed

    def test_close_without_start_is_fine(self, fast_config):
        instance = ExplanationService(config=fast_config)
        instance.close()
        assert instance.closed

    def test_drain_on_idle_service_returns_immediately(self, service):
        assert service.drain(timeout=1.0)

    def test_submit_after_close_rejected(self, service, tiny_block):
        service.close()
        with pytest.raises(ServiceClosedError):
            service.submit(tiny_block)

    def test_start_after_close_rejected(self, service):
        service.close()
        with pytest.raises(ServiceClosedError):
            service.start()

    def test_context_manager_closes(self, fast_config, tiny_block):
        with ExplanationService(
            config=fast_config, session_factory=_toy_factory(fast_config)
        ) as instance:
            instance.explain(tiny_block)
        assert instance.closed

    def test_close_drains_queued_requests(self, fast_config, tiny_block):
        instance = ExplanationService(
            config=fast_config, session_factory=_toy_factory(fast_config)
        )
        ids = [instance.submit(tiny_block, seed=seed) for seed in range(4)]
        instance.close()  # drain=True default: everything finishes first
        assert instance.stats().served == 4
        for request_id in ids:
            assert instance.result(request_id, timeout=1.0).ok

    def test_close_without_drain_cancels_queued(self, fast_config, tiny_block):
        gate = threading.Event()
        instance = ExplanationService(
            config=fast_config,
            session_factory=_toy_factory(fast_config, gate=gate),
        )
        first = instance.submit(tiny_block, seed=0)
        backlog = [instance.submit(tiny_block, seed=s) for s in (1, 2)]
        # Wait for the dispatcher to pick the first request up, then let it
        # finish while the backlog is cancelled.
        while instance.poll(first) is RequestStatus.QUEUED:
            time.sleep(0.005)
        gate.set()
        instance.close(drain=False)
        assert instance.result(first, timeout=5.0).ok
        for request_id in backlog:
            result = instance.result(request_id, timeout=1.0)
            assert result.status is RequestStatus.CANCELLED
            assert not result.ok
        stats = instance.stats()
        assert stats.cancelled == 2

    def test_close_closes_sessions_and_backends(self, fast_config, tiny_block):
        sessions = []

        def factory(model_name, uarch):
            session = ExplanationSession(
                CachedCostModel(CallableCostModel(lambda b: 1.0)),
                fast_config,
                backend="thread",
                workers=2,
            )
            sessions.append(session)
            return session

        with ExplanationService(config=fast_config, session_factory=factory) as svc:
            svc.explain(tiny_block)
            backend = sessions[0].backend
            assert not backend.closed
        assert sessions[0].closed
        assert backend.closed


class TestQueueing:
    def test_invalid_bounds_rejected(self, fast_config):
        with pytest.raises(ValueError):
            ExplanationService(config=fast_config, max_queue=0)
        with pytest.raises(ValueError):
            ExplanationService(config=fast_config, max_sessions=0)

    def test_bounded_queue_backpressure(self, fast_config, tiny_block):
        gate = threading.Event()
        instance = ExplanationService(
            config=fast_config,
            max_queue=1,
            session_factory=_toy_factory(fast_config, gate=gate),
        )
        try:
            first = instance.submit(tiny_block, seed=0)
            # Dispatcher is now blocked on the gate; fill the 1-slot queue.
            while instance.poll(first) is RequestStatus.QUEUED:
                time.sleep(0.005)
            instance.submit(tiny_block, seed=1)
            with pytest.raises(QueueFullError):
                instance.submit(tiny_block, seed=2, block=False)
            with pytest.raises(QueueFullError):
                instance.submit(tiny_block, seed=3, timeout=0.05)
        finally:
            gate.set()
            instance.close()
        # The rejected submissions left no tickets behind.
        assert instance.stats().submitted == 2
        assert instance.stats().served == 2

    def test_blocking_submit_waits_for_room(self, fast_config, tiny_block):
        gate = threading.Event()
        instance = ExplanationService(
            config=fast_config,
            max_queue=1,
            session_factory=_toy_factory(fast_config, gate=gate),
        )
        try:
            instance.submit(tiny_block, seed=0)
            releaser = threading.Timer(0.1, gate.set)
            releaser.start()
            # Blocks until the gate opens the pipeline, then succeeds.
            second = instance.submit(tiny_block, seed=1, timeout=10.0)
            assert instance.result(second, timeout=10.0).ok
        finally:
            gate.set()
            instance.close()


class TestRequestSemantics:
    def test_submit_poll_result_roundtrip(self, service, tiny_block):
        request_id = service.submit(tiny_block, seed=3)
        result = service.result(request_id, timeout=10.0)
        assert result.ok
        assert result.request_id == request_id
        assert len(result.explanations) == 1
        assert result.seconds >= 0.0

    def test_result_consumes_the_ticket(self, service, tiny_block):
        request_id = service.submit(tiny_block)
        service.result(request_id, timeout=10.0)
        with pytest.raises(ServiceError):
            service.poll(request_id)
        with pytest.raises(ServiceError):
            service.result(request_id)

    def test_poll_unknown_id_rejected(self, service):
        with pytest.raises(ServiceError):
            service.poll("req-nope")

    def test_empty_request_rejected(self):
        with pytest.raises(ServiceError):
            ExplanationRequest(blocks=())

    def test_failed_request_reported_in_band(self, fast_config):
        block = BasicBlock.from_text("div rcx")
        # The default (registry) factory actually validates model names.
        with ExplanationService(config=fast_config) as instance:
            request_id = instance.submit(block, model="no-such-model")
            result = instance.result(request_id, timeout=10.0)
            assert result.status is RequestStatus.FAILED
            assert "unknown cost model" in result.error
            assert not result.ok
            with pytest.raises(ServiceError):
                # The synchronous wrapper surfaces the failure as an exception.
                instance.explain(block, model="no-such-model")
            # The service keeps serving after a failure.
            assert len(instance.explain(block)) == 1

    def test_multi_block_request(self, service, tiny_blocks):
        explanations = service.explain(tiny_blocks, seed=5)
        assert len(explanations) == len(tiny_blocks)

    def test_prepared_request_objects_accepted(self, service, tiny_blocks):
        request = ExplanationRequest(blocks=tuple(tiny_blocks), seed=2)
        request_id = service.submit(request)
        assert service.result(request_id, timeout=30.0).ok


class TestSessionPooling:
    def test_same_model_reuses_one_session(self, fast_config, tiny_block):
        built = []
        with ExplanationService(
            config=fast_config, session_factory=_toy_factory(fast_config, built=built)
        ) as instance:
            for seed in range(3):
                instance.explain(tiny_block, seed=seed)
            stats = instance.stats()
        assert built == [("crude", "hsw")]
        assert stats.sessions == (("crude", "hsw"),)
        assert stats.session_stats[("crude", "hsw")].explanations == 3

    def test_distinct_models_get_distinct_sessions(self, fast_config, tiny_block):
        built = []
        with ExplanationService(
            config=fast_config, session_factory=_toy_factory(fast_config, built=built)
        ) as instance:
            instance.explain(tiny_block, model="crude")
            instance.explain(tiny_block, model="uica")
            instance.explain(tiny_block, model="crude", uarch="skl")
        assert sorted(built) == [("crude", "hsw"), ("crude", "skl"), ("uica", "hsw")]

    def test_lru_session_evicted_and_closed(self, fast_config, tiny_block):
        built = []
        with ExplanationService(
            config=fast_config,
            max_sessions=1,
            session_factory=_toy_factory(fast_config, built=built),
        ) as instance:
            instance.explain(tiny_block, model="a")
            first = instance._sessions[("a", "hsw")]
            instance.explain(tiny_block, model="b")
            assert first.closed
            assert list(instance._sessions) == [("b", "hsw")]
        assert built == [("a", "hsw"), ("b", "hsw")]

    def test_stats_describe(self, service, tiny_block):
        service.explain(tiny_block)
        description = service.stats().describe()
        assert "1/1 requests served" in description
        assert "1 warm sessions" in description


class TestRegistryIntegration:
    def test_default_factory_builds_registry_models(self, fast_config, tiny_block):
        with ExplanationService(model="crude", config=fast_config) as instance:
            explanations = instance.explain(tiny_block, seed=0)
        assert len(explanations) == 1
        assert explanations[0].model_name == "crude-analytical-hsw"

    def test_unknown_default_model_fails_per_request(self, fast_config, tiny_block):
        with ExplanationService(model="nonsense", config=fast_config) as instance:
            request_id = instance.submit(tiny_block)
            result = instance.result(request_id, timeout=10.0)
        assert result.status is RequestStatus.FAILED
        assert "unknown cost model" in result.error
