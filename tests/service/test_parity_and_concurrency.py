"""Service determinism: warm-session results equal direct explainer results,
under serial and heavily concurrent submission alike.

This is the acceptance surface of the service layer: a client must never be
able to tell (from the explanation itself) whether their request went through
a cold one-shot :class:`CometExplainer`, a warm shared session, or a warm
session hammered by other clients at the same time.
"""

import threading

import pytest

from repro.explain.explainer import CometExplainer
from repro.models.analytical import AnalyticalCostModel
from repro.models.base import CachedCostModel
from repro.service import ExplanationService

from tests.conftest import explanation_fingerprint


def _direct(block, seed, fast_config):
    model = CachedCostModel(AnalyticalCostModel("hsw"))
    return CometExplainer(model, fast_config).explain(block, rng=seed)


class TestServiceParity:
    def test_single_block_matches_direct_explainer_bit_for_bit(
        self, fast_config, tiny_blocks
    ):
        with ExplanationService(model="crude", config=fast_config) as service:
            for seed, block in enumerate(tiny_blocks):
                served = service.explain(block, seed=seed)[0]
                direct = _direct(block, seed, fast_config)
                assert explanation_fingerprint(served) == explanation_fingerprint(direct)
                # Same prediction, precision and coverage to the last bit.
                assert served.prediction == direct.prediction
                assert served.precision == direct.precision
                assert served.coverage == direct.coverage

    def test_fleet_request_matches_direct_explain_many(self, fast_config, tiny_blocks):
        direct = CometExplainer(
            CachedCostModel(AnalyticalCostModel("hsw")), fast_config
        ).explain_many(tiny_blocks, rng=9)
        with ExplanationService(model="crude", config=fast_config) as service:
            served = service.explain(tiny_blocks, seed=9)
        assert [explanation_fingerprint(e) for e in served] == [
            explanation_fingerprint(e) for e in direct
        ]

    @pytest.mark.parametrize("shards", ["auto", 2])
    def test_sharded_fleet_request_matches_unsharded(
        self, fast_config, tiny_blocks, shards
    ):
        workload = list(tiny_blocks) + [tiny_blocks[0]]  # include a repeat
        with ExplanationService(
            model="crude", config=fast_config, backend="thread", workers=2
        ) as service:
            unsharded = service.explain(workload, seed=4, shards=None)
            sharded = service.explain(workload, seed=4, shards=shards)
        assert [explanation_fingerprint(e) for e in sharded] == [
            explanation_fingerprint(e) for e in unsharded
        ]


class TestMultiDispatcherParity:
    """The multi-dispatcher acceptance bar: a 4-dispatcher service answers
    every request bit-for-bit like the single-dispatcher oracle, under
    serial and concurrent submission, same-key and cross-key workloads."""

    def _workload(self, tiny_blocks):
        # Mixed keys: the same blocks explained on both microarchitectures,
        # several seeds each — distinct keys actually exercise concurrent
        # dispatchers while same-key requests exercise mutual exclusion.
        return [
            (block, seed, uarch)
            for uarch in ("hsw", "skl")
            for seed in range(2)
            for block in tiny_blocks
        ]

    def _serve_all(
        self, fast_config, workload, dispatchers, concurrent=False, fused=False
    ):
        with ExplanationService(
            model="crude",
            config=fast_config,
            dispatchers=dispatchers,
            continuous_batching=fused,
        ) as service:
            if not concurrent:
                return {
                    (block.key(), seed, uarch): explanation_fingerprint(
                        service.explain(block, seed=seed, uarch=uarch)[0]
                    )
                    for block, seed, uarch in workload
                }
            results = {}
            results_lock = threading.Lock()
            errors = []
            barrier = threading.Barrier(8)

            def client(items):
                try:
                    barrier.wait(timeout=30)
                    for block, seed, uarch in items:
                        explanation = service.explain(
                            block, seed=seed, uarch=uarch, timeout=120
                        )[0]
                        with results_lock:
                            results[(block.key(), seed, uarch)] = (
                                explanation_fingerprint(explanation)
                            )
                except Exception as error:  # surfaced to the main thread
                    errors.append(error)

            threads = [
                threading.Thread(target=client, args=(workload[i::8],))
                for i in range(8)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=300)
            assert not errors
            return results

    def test_four_dispatchers_match_single_dispatcher_oracle(
        self, fast_config, tiny_blocks
    ):
        workload = self._workload(tiny_blocks)
        oracle = self._serve_all(fast_config, workload, dispatchers=1)
        served = self._serve_all(fast_config, workload, dispatchers=4)
        assert served == oracle

    def test_concurrent_clients_on_four_dispatchers_match_oracle(
        self, fast_config, tiny_blocks
    ):
        workload = self._workload(tiny_blocks)
        oracle = self._serve_all(fast_config, workload, dispatchers=1)
        served = self._serve_all(
            fast_config, workload, dispatchers=4, concurrent=True
        )
        assert served == oracle

    def test_fused_concurrent_clients_match_oracle(self, fast_config, tiny_blocks):
        """Continuous batching on top of 4 dispatchers: same-key requests
        share fused ticks, yet every client still gets the oracle's bits."""
        workload = self._workload(tiny_blocks)
        oracle = self._serve_all(fast_config, workload, dispatchers=1)
        served = self._serve_all(
            fast_config, workload, dispatchers=4, concurrent=True, fused=True
        )
        assert served == oracle

    def test_fleet_requests_match_oracle_across_dispatchers(
        self, fast_config, tiny_blocks
    ):
        workload = list(tiny_blocks) + [tiny_blocks[0]]  # include a repeat
        with ExplanationService(
            model="crude", config=fast_config, dispatchers=1
        ) as service:
            oracle = service.explain(workload, seed=11)
        with ExplanationService(
            model="crude", config=fast_config, dispatchers=4
        ) as service:
            served = service.explain(workload, seed=11)
        assert [explanation_fingerprint(e) for e in served] == [
            explanation_fingerprint(e) for e in oracle
        ]


class TestConcurrentClients:
    def test_concurrent_submission_equals_serial_submission(
        self, fast_config, tiny_blocks
    ):
        """N threads through one warm session == the same requests serially.

        Every client's (block, seed) pair must produce the identical seeded
        explanation whether it queued alone or raced seven other threads —
        the single-dispatcher design makes execution order irrelevant to
        results because each request's rng is self-contained.
        """
        workload = [
            (block, seed)
            for seed in range(4)
            for block in tiny_blocks
        ]

        # Serial reference: one warm service, requests submitted one by one.
        with ExplanationService(model="crude", config=fast_config) as service:
            serial = {
                (block.key(), seed): explanation_fingerprint(
                    service.explain(block, seed=seed)[0]
                )
                for block, seed in workload
            }

        # Concurrent run: one warm service, eight client threads.
        with ExplanationService(model="crude", config=fast_config) as service:
            results = {}
            results_lock = threading.Lock()
            errors = []
            barrier = threading.Barrier(8)

            def client(items):
                try:
                    barrier.wait(timeout=30)
                    for block, seed in items:
                        explanation = service.explain(block, seed=seed, timeout=60)[0]
                        with results_lock:
                            results[(block.key(), seed)] = explanation_fingerprint(
                                explanation
                            )
                except Exception as error:  # surfaced to the main thread
                    errors.append(error)

            threads = [
                threading.Thread(target=client, args=(workload[i::8],))
                for i in range(8)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=120)
            stats = service.stats()

        assert not errors
        assert results == serial
        assert stats.served == len(workload)
        assert stats.sessions == (("crude", "hsw"),)  # one warm session did it all

    def test_concurrent_submit_then_collect(self, fast_config, tiny_blocks):
        """The async surface (submit now, collect later) is race-free too."""
        with ExplanationService(model="crude", config=fast_config) as service:
            expected = {
                seed: explanation_fingerprint(
                    service.explain(tiny_blocks[0], seed=seed)[0]
                )
                for seed in range(6)
            }
            ids = {}
            ids_lock = threading.Lock()

            def submitter(seed):
                request_id = service.submit(tiny_blocks[0], seed=seed, timeout=30)
                with ids_lock:
                    ids[seed] = request_id

            threads = [threading.Thread(target=submitter, args=(s,)) for s in range(6)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=30)
            assert len(ids) == 6
            for seed, request_id in ids.items():
                result = service.result(request_id, timeout=60)
                assert result.ok
                assert explanation_fingerprint(result.explanations[0]) == expected[seed]
