"""Service determinism: warm-session results equal direct explainer results,
under serial and heavily concurrent submission alike.

This is the acceptance surface of the service layer: a client must never be
able to tell (from the explanation itself) whether their request went through
a cold one-shot :class:`CometExplainer`, a warm shared session, or a warm
session hammered by other clients at the same time.
"""

import threading

import pytest

from repro.explain.explainer import CometExplainer
from repro.models.analytical import AnalyticalCostModel
from repro.models.base import CachedCostModel
from repro.service import ExplanationService

from tests.conftest import explanation_fingerprint


def _direct(block, seed, fast_config):
    model = CachedCostModel(AnalyticalCostModel("hsw"))
    return CometExplainer(model, fast_config).explain(block, rng=seed)


class TestServiceParity:
    def test_single_block_matches_direct_explainer_bit_for_bit(
        self, fast_config, tiny_blocks
    ):
        with ExplanationService(model="crude", config=fast_config) as service:
            for seed, block in enumerate(tiny_blocks):
                served = service.explain(block, seed=seed)[0]
                direct = _direct(block, seed, fast_config)
                assert explanation_fingerprint(served) == explanation_fingerprint(direct)
                # Same prediction, precision and coverage to the last bit.
                assert served.prediction == direct.prediction
                assert served.precision == direct.precision
                assert served.coverage == direct.coverage

    def test_fleet_request_matches_direct_explain_many(self, fast_config, tiny_blocks):
        direct = CometExplainer(
            CachedCostModel(AnalyticalCostModel("hsw")), fast_config
        ).explain_many(tiny_blocks, rng=9)
        with ExplanationService(model="crude", config=fast_config) as service:
            served = service.explain(tiny_blocks, seed=9)
        assert [explanation_fingerprint(e) for e in served] == [
            explanation_fingerprint(e) for e in direct
        ]

    @pytest.mark.parametrize("shards", ["auto", 2])
    def test_sharded_fleet_request_matches_unsharded(
        self, fast_config, tiny_blocks, shards
    ):
        workload = list(tiny_blocks) + [tiny_blocks[0]]  # include a repeat
        with ExplanationService(
            model="crude", config=fast_config, backend="thread", workers=2
        ) as service:
            unsharded = service.explain(workload, seed=4, shards=None)
            sharded = service.explain(workload, seed=4, shards=shards)
        assert [explanation_fingerprint(e) for e in sharded] == [
            explanation_fingerprint(e) for e in unsharded
        ]


class TestConcurrentClients:
    def test_concurrent_submission_equals_serial_submission(
        self, fast_config, tiny_blocks
    ):
        """N threads through one warm session == the same requests serially.

        Every client's (block, seed) pair must produce the identical seeded
        explanation whether it queued alone or raced seven other threads —
        the single-dispatcher design makes execution order irrelevant to
        results because each request's rng is self-contained.
        """
        workload = [
            (block, seed)
            for seed in range(4)
            for block in tiny_blocks
        ]

        # Serial reference: one warm service, requests submitted one by one.
        with ExplanationService(model="crude", config=fast_config) as service:
            serial = {
                (block.key(), seed): explanation_fingerprint(
                    service.explain(block, seed=seed)[0]
                )
                for block, seed in workload
            }

        # Concurrent run: one warm service, eight client threads.
        with ExplanationService(model="crude", config=fast_config) as service:
            results = {}
            results_lock = threading.Lock()
            errors = []
            barrier = threading.Barrier(8)

            def client(items):
                try:
                    barrier.wait(timeout=30)
                    for block, seed in items:
                        explanation = service.explain(block, seed=seed, timeout=60)[0]
                        with results_lock:
                            results[(block.key(), seed)] = explanation_fingerprint(
                                explanation
                            )
                except Exception as error:  # surfaced to the main thread
                    errors.append(error)

            threads = [
                threading.Thread(target=client, args=(workload[i::8],))
                for i in range(8)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=120)
            stats = service.stats()

        assert not errors
        assert results == serial
        assert stats.served == len(workload)
        assert stats.sessions == (("crude", "hsw"),)  # one warm session did it all

    def test_concurrent_submit_then_collect(self, fast_config, tiny_blocks):
        """The async surface (submit now, collect later) is race-free too."""
        with ExplanationService(model="crude", config=fast_config) as service:
            expected = {
                seed: explanation_fingerprint(
                    service.explain(tiny_blocks[0], seed=seed)[0]
                )
                for seed in range(6)
            }
            ids = {}
            ids_lock = threading.Lock()

            def submitter(seed):
                request_id = service.submit(tiny_blocks[0], seed=seed, timeout=30)
                with ids_lock:
                    ids[seed] = request_id

            threads = [threading.Thread(target=submitter, args=(s,)) for s in range(6)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=30)
            assert len(ids) == 6
            for seed, request_id in ids.items():
                result = service.result(request_id, timeout=60)
                assert result.ok
                assert explanation_fingerprint(result.explanations[0]) == expected[seed]
