"""Two OS processes sharing one on-disk result store.

The store's cross-process contract: appends are whole-record atomic (flock
single-writer, ``O_APPEND``), a reader that misses rescans from its frontier
when the file has grown, and concurrent same-fingerprint writers dedupe
instead of double-appending.  These tests run real child processes — the
in-process two-handle tests in ``test_store.py`` cannot exercise flock,
which is a no-op within one process holding one fd.
"""

import multiprocessing
import pickle

from repro.cache import ResultCache

from tests.cache.test_store import fp, make_explanation


def _child_write(path, start, count, barrier):
    """Open the shared store and write ``count`` entries, racing the parent."""
    with ResultCache(path) as cache:
        barrier.wait(timeout=30)
        for index in range(start, start + count):
            cache.put(fp(index), make_explanation(index))


def _child_read_then_write(path, expect, write_start, write_count, queue):
    """Verify the parent's entries are visible, then add our own."""
    with ResultCache(path) as cache:
        seen = sum(1 for index in expect if cache.get(fp(index)) is not None)
        for index in range(write_start, write_start + write_count):
            cache.put(fp(index), make_explanation(index))
    queue.put(seen)


class TestTwoProcessConsistency:
    def test_handoff_both_directions(self, tmp_path):
        """Parent writes → child sees; child writes → parent sees."""
        path = tmp_path / "shared.cache"
        with ResultCache(path) as cache:
            for index in range(5):
                cache.put(fp(index), make_explanation(index))
            context = multiprocessing.get_context()
            queue = context.Queue()
            child = context.Process(
                target=_child_read_then_write,
                args=(str(path), range(5), 100, 5, queue),
            )
            child.start()
            seen = queue.get(timeout=60)
            child.join(timeout=60)
            assert child.exitcode == 0
            assert seen == 5, "child did not see the parent's entries"
            # The parent's next misses rescan past its frontier and find
            # the child's appends — no reopen required.
            for index in range(100, 105):
                revived = cache.get(fp(index))
                assert revived is not None
                assert revived.model_name == f"model-{index}"

    def test_racing_writers_interleave_whole_records(self, tmp_path):
        """Two processes appending concurrently corrupt nothing: flock
        serialises appends, so every record of both writers survives."""
        path = tmp_path / "shared.cache"
        context = multiprocessing.get_context()
        barrier = context.Barrier(2)
        child = context.Process(
            target=_child_write, args=(str(path), 200, 20, barrier)
        )
        child.start()
        try:
            with ResultCache(path) as cache:
                barrier.wait(timeout=30)
                for index in range(20):
                    cache.put(fp(index), make_explanation(index))
            child.join(timeout=120)
            assert child.exitcode == 0
        finally:
            if child.is_alive():
                child.terminate()
                child.join(timeout=10)
        # A fresh scan must index all 40 records, none corrupt.
        with ResultCache(path) as verify:
            stats = verify.stats()
            assert stats.disk.entries == 40
            assert stats.disk.corrupt == 0
            for index in list(range(20)) + list(range(200, 220)):
                revived = verify.get(fp(index))
                assert pickle.dumps(revived) == pickle.dumps(
                    make_explanation(index)
                )

    def test_racing_same_fingerprint_writers_store_once(self, tmp_path):
        """Both processes computing the same keys: the store ends with one
        record per fingerprint (the rescan-then-skip dedupe under flock),
        and both values are by construction identical."""
        path = tmp_path / "shared.cache"
        context = multiprocessing.get_context()
        barrier = context.Barrier(2)
        child = context.Process(
            target=_child_write, args=(str(path), 0, 10, barrier)
        )
        child.start()
        try:
            with ResultCache(path) as cache:
                barrier.wait(timeout=30)
                for index in range(10):
                    cache.put(fp(index), make_explanation(index))
            child.join(timeout=120)
            assert child.exitcode == 0
        finally:
            if child.is_alive():
                child.terminate()
                child.join(timeout=10)
        with ResultCache(path) as verify:
            assert verify.stats().disk.entries == 10
            assert verify.stats().disk.corrupt == 0
