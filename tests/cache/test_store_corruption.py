"""Disk-store damage tolerance: torn tails, corrupt entries, foreign files.

The invariant under test is *never garbage*: whatever happened to the log —
a crash mid-append, a flipped byte, a truncation, a file that was never a
cache — every ``get`` either returns the exact stored explanation, returns
``None`` (recompute), or raises the typed
:class:`~repro.utils.errors.CacheError`.  The hypothesis properties drive
arbitrary damage points; the example tests pin the named failure modes.
"""

import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache import STORE_MAGIC, CacheError, ResultCache

from tests.cache.test_store import fp, make_explanation


def build_store(path, entries: int) -> list:
    """A store with ``entries`` records; returns their pickled payloads."""
    blobs = []
    with ResultCache(path) as cache:
        for index in range(entries):
            explanation = make_explanation(index)
            cache.put(fp(index), explanation)
            blobs.append(pickle.dumps(explanation))
    return blobs


class TestTornTail:
    def test_truncated_final_record_is_dropped_not_fatal(self, tmp_path):
        path = tmp_path / "s.cache"
        build_store(path, 3)
        size = path.stat().st_size
        with open(path, "r+b") as handle:
            handle.truncate(size - 7)  # crash landed mid-append
        with ResultCache(path) as cache:
            assert cache.get(fp(0)) is not None
            assert cache.get(fp(1)) is not None
            assert cache.get(fp(2)) is None  # the torn record: a miss
            assert cache.stats().disk.entries == 2

    def test_torn_tail_is_recomputable_and_restorable(self, tmp_path):
        """After dropping a torn record, the same fingerprint can be
        re-stored and served again — the store stays writable."""
        path = tmp_path / "s.cache"
        build_store(path, 2)
        with open(path, "r+b") as handle:
            handle.truncate(path.stat().st_size - 3)
        with ResultCache(path) as cache:
            assert cache.get(fp(1)) is None
            cache.put(fp(1), make_explanation(1))
            assert cache.get(fp(1)) is not None

    @given(cut=st.integers(min_value=0, max_value=400))
    @settings(max_examples=30, deadline=None)
    def test_any_truncation_yields_prefix_or_refusal(self, tmp_path_factory, cut):
        """Truncating anywhere leaves a servable prefix — or a refused file
        (cut inside the store magic) — never a wrong answer."""
        path = tmp_path_factory.mktemp("trunc") / "s.cache"
        blobs = build_store(path, 2)
        size = path.stat().st_size
        with open(path, "r+b") as handle:
            handle.truncate(min(cut, size))
        if min(cut, size) < len(STORE_MAGIC) and min(cut, size) > 0:
            with pytest.raises(CacheError):
                ResultCache(path).close()
            return
        with ResultCache(path) as cache:
            for index in range(2):
                revived = cache.get(fp(index))
                if revived is not None:
                    assert pickle.dumps(revived) == blobs[index]


class TestCorruptEntries:
    def test_flipped_byte_blocks_the_frontier(self, tmp_path):
        """A corrupt record stops the scan: entries before it serve,
        entries after it are unreachable (recompute), nothing is garbage."""
        path = tmp_path / "s.cache"
        build_store(path, 3)
        with ResultCache(path) as probe:
            # Corrupt the middle record's payload via its indexed offset.
            offset, total = sorted(probe._index.values())[1]
        with open(path, "r+b") as handle:
            handle.seek(offset + total - 2)
            original = handle.read(1)
            handle.seek(offset + total - 2)
            handle.write(bytes([original[0] ^ 0xFF]))
        with ResultCache(path) as cache:
            assert cache.get(fp(0)) is not None
            assert cache.get(fp(1)) is None
            assert cache.get(fp(2)) is None
            assert cache.stats().disk.corrupt >= 1

    def test_corruption_detected_at_read_time(self, tmp_path):
        """Damage landing *after* the open-time scan raises the typed
        error on ``get`` — the record re-validates on every read."""
        path = tmp_path / "s.cache"
        build_store(path, 1)
        with ResultCache(path, max_memory_entries=1) as cache:
            # Push fp(0) out of tier 0 so the next get must hit the disk.
            cache.put(fp(9), make_explanation(9))
            offset, total = cache._index[fp(0)]
            with open(path, "r+b") as handle:
                handle.seek(offset + total - 1)
                handle.write(b"\xff")
            with pytest.raises(CacheError):
                cache.get(fp(0))
            assert cache.stats().disk.corrupt >= 1

    @given(
        position=st.integers(min_value=0, max_value=4095),
        flip=st.integers(min_value=1, max_value=255),
    )
    @settings(max_examples=40, deadline=None)
    def test_any_single_byte_flip_never_serves_garbage(
        self, tmp_path_factory, position, flip
    ):
        path = tmp_path_factory.mktemp("flip") / "s.cache"
        blobs = build_store(path, 2)
        size = path.stat().st_size
        target = position % size
        with open(path, "r+b") as handle:
            handle.seek(target)
            original = handle.read(1)
            handle.seek(target)
            handle.write(bytes([original[0] ^ flip]))
        try:
            cache = ResultCache(path)
        except CacheError:
            return  # flip hit the store magic: refusal is correct
        with cache:
            for index in range(2):
                try:
                    revived = cache.get(fp(index))
                except CacheError:
                    continue  # typed refusal is correct
                if revived is not None:
                    # Serving requires the payload to be byte-exact — a flip
                    # in this record must have been caught, so any served
                    # value must equal what was stored.
                    assert pickle.dumps(revived) == blobs[index]


class TestForeignFiles:
    def test_wrong_magic_is_refused(self, tmp_path):
        path = tmp_path / "not-a-cache.txt"
        path.write_bytes(b"important data that is not a cache\n")
        with pytest.raises(CacheError):
            ResultCache(path)
        # Refusal means untouched: the file must not have been appended to.
        assert path.read_bytes() == b"important data that is not a cache\n"

    def test_unpicklable_payload_is_refused_not_served(self, tmp_path):
        """A record whose bytes checksum but do not unpickle to an
        Explanation raises the typed error."""
        import struct
        import zlib

        path = tmp_path / "s.cache"
        payload = b"\x00not a pickle"
        record = (
            b"RC1\n"
            + fp(0).encode("ascii")
            + struct.pack(">II", len(payload), zlib.crc32(payload))
            + payload
        )
        path.write_bytes(STORE_MAGIC + record)
        with ResultCache(path) as cache:
            with pytest.raises(CacheError):
                cache.get(fp(0))
