"""The tiered result store: round-trips, LRU demotion/promotion, counters.

The store's contract has three load-bearing clauses the explanation layers
above lean on: a ``get`` returns exactly what ``put`` stored (the
memoization premise), tier-0 eviction *demotes* disk-backed entries rather
than losing them (warmth is recoverable), and every counter in
:class:`~repro.cache.store.CacheStats` adds up (the service's ``stats`` op
reports these numbers to operators).  Corruption behaviour has its own
module (``test_store_corruption.py``).
"""

import pickle

import pytest

from repro.bb.block import BasicBlock
from repro.cache import (
    STORE_MAGIC,
    CacheError,
    ResultCache,
    merge_cache_stats,
    merge_tier_stats,
)
from repro.cache.store import TierStats
from repro.explain.explanation import Explanation


def make_explanation(index: int) -> Explanation:
    """A small, distinct, picklable explanation for slot ``index``."""
    block = BasicBlock.from_text("add rcx, rax\nmov rdx, rcx")
    return Explanation(
        block=block,
        model_name=f"model-{index}",
        prediction=1.0 + index,
        features=(),
        precision=0.9,
        coverage=0.5,
        meets_threshold=True,
        epsilon=0.2,
        num_queries=10 * index,
        precision_samples=40,
        candidates_evaluated=3,
    )


def fp(index: int) -> str:
    """A syntactically valid (64-hex-char) fingerprint for slot ``index``."""
    return f"{index:064x}"


class TestRoundTrip:
    def test_memory_only_round_trip(self):
        with ResultCache() as cache:
            explanation = make_explanation(1)
            assert cache.get(fp(1)) is None
            cache.put(fp(1), explanation)
            assert cache.get(fp(1)) is explanation
            assert len(cache) == 1

    def test_disk_round_trip_same_handle(self, tmp_path):
        with ResultCache(tmp_path / "store.cache") as cache:
            explanation = make_explanation(2)
            cache.put(fp(2), explanation)
            assert cache.get(fp(2)) is explanation

    def test_disk_round_trip_across_restart(self, tmp_path):
        path = tmp_path / "store.cache"
        original = make_explanation(3)
        with ResultCache(path) as cache:
            cache.put(fp(3), original)
        with ResultCache(path) as reopened:
            revived = reopened.get(fp(3))
        assert revived is not None
        assert revived is not original  # a fresh unpickle, not a live alias
        assert pickle.dumps(revived) == pickle.dumps(original)

    def test_put_is_idempotent_on_disk(self, tmp_path):
        path = tmp_path / "store.cache"
        with ResultCache(path) as cache:
            cache.put(fp(4), make_explanation(4))
            size_after_first = path.stat().st_size
            cache.put(fp(4), make_explanation(4))
            assert path.stat().st_size == size_after_first

    def test_distinct_fingerprints_stay_distinct(self, tmp_path):
        with ResultCache(tmp_path / "store.cache") as cache:
            for index in range(5):
                cache.put(fp(index), make_explanation(index))
            for index in range(5):
                assert cache.get(fp(index)).model_name == f"model-{index}"

    def test_invalid_fingerprint_refused(self):
        with ResultCache() as cache:
            with pytest.raises(CacheError):
                cache.get("short")
            with pytest.raises(CacheError):
                cache.put("short", make_explanation(0))

    def test_non_explanation_payload_refused(self):
        with ResultCache() as cache:
            with pytest.raises(CacheError):
                cache.put(fp(0), {"not": "an explanation"})


class TestLRU:
    def test_eviction_demotes_disk_backed_entries(self, tmp_path):
        """Evicting a written-through entry loses warmth, not the value."""
        with ResultCache(tmp_path / "s.cache", max_memory_entries=2) as cache:
            for index in range(4):
                cache.put(fp(index), make_explanation(index))
            stats = cache.stats()
            assert stats.memory.entries == 2
            assert stats.memory.evictions == 2
            # The evicted entries promote back from tier 1.
            revived = cache.get(fp(0))
            assert revived.model_name == "model-0"
            assert cache.stats().disk.hits == 1

    def test_memory_only_cache_forgets_evicted_entries(self):
        with ResultCache(max_memory_entries=2) as cache:
            for index in range(3):
                cache.put(fp(index), make_explanation(index))
            assert cache.get(fp(0)) is None  # oldest fell off; nothing below
            assert cache.get(fp(2)) is not None

    def test_get_promotes_to_most_recently_used(self):
        with ResultCache(max_memory_entries=2) as cache:
            cache.put(fp(0), make_explanation(0))
            cache.put(fp(1), make_explanation(1))
            cache.get(fp(0))  # 0 is now MRU; 1 is the eviction candidate
            cache.put(fp(2), make_explanation(2))
            assert cache.get(fp(0)) is not None
            assert cache.get(fp(1)) is None

    def test_eviction_under_lease_leaves_caller_copy_intact(self, tmp_path):
        """A caller holding a returned explanation survives its eviction."""
        with ResultCache(tmp_path / "s.cache", max_memory_entries=1) as cache:
            cache.put(fp(0), make_explanation(0))
            leased = cache.get(fp(0))
            blob = pickle.dumps(leased)
            cache.put(fp(1), make_explanation(1))  # evicts fp(0) from tier 0
            assert pickle.dumps(leased) == blob
            # And the entry itself is still servable (promoted from disk).
            assert pickle.dumps(cache.get(fp(0))) == blob


class TestCounters:
    def test_hit_miss_store_accounting(self, tmp_path):
        with ResultCache(tmp_path / "s.cache") as cache:
            cache.get(fp(0))  # memory miss + disk miss
            cache.put(fp(0), make_explanation(0))
            cache.get(fp(0))  # memory hit
            stats = cache.stats()
            assert stats.memory.hits == 1
            assert stats.memory.misses == 1
            assert stats.memory.stores == 1
            assert stats.disk.misses == 1
            assert stats.disk.stores == 1
            assert stats.lookups == 2
            assert stats.hits == 1
            assert stats.hit_rate == 0.5
            assert "result cache" in stats.describe()

    def test_disk_bytes_and_entries_track_the_file(self, tmp_path):
        path = tmp_path / "s.cache"
        with ResultCache(path) as cache:
            cache.put(fp(0), make_explanation(0))
            cache.put(fp(1), make_explanation(1))
            stats = cache.stats()
            assert stats.disk.entries == 2
            assert stats.disk.bytes == path.stat().st_size
            assert stats.disk.bytes > len(STORE_MAGIC)

    def test_merge_tier_and_cache_stats(self):
        left = TierStats(hits=1, misses=2, stores=3, entries=4, bytes=100)
        right = TierStats(hits=10, misses=20, stores=30, entries=40, bytes=1)
        merged = merge_tier_stats(left, right)
        assert merged.hits == 11 and merged.misses == 22
        assert merged.stores == 33 and merged.entries == 44
        assert merge_tier_stats(left, None) is left
        assert merge_tier_stats(None, right) is right
        with ResultCache() as a, ResultCache() as b:
            a.put(fp(0), make_explanation(0))
            a.get(fp(0))
            b.get(fp(1))
            fleet = merge_cache_stats(a.stats(), b.stats())
            assert fleet.lookups == 2
            assert fleet.hits == 1
        assert merge_cache_stats(None, None) is None


class TestLifecycle:
    def test_closed_cache_refuses_typed(self, tmp_path):
        cache = ResultCache(tmp_path / "s.cache")
        cache.put(fp(0), make_explanation(0))
        cache.close()
        cache.close()  # idempotent
        assert cache.closed
        with pytest.raises(CacheError):
            cache.get(fp(0))
        with pytest.raises(CacheError):
            cache.put(fp(1), make_explanation(1))

    def test_parent_directories_are_created(self, tmp_path):
        nested = tmp_path / "a" / "b" / "store.cache"
        with ResultCache(nested) as cache:
            cache.put(fp(0), make_explanation(0))
        assert nested.exists()

    def test_max_memory_entries_validated(self):
        with pytest.raises(ValueError):
            ResultCache(max_memory_entries=0)


class TestCrossHandleVisibility:
    """Two handles on one file — the in-process stand-in for two processes
    (the real two-process test lives in the service suite)."""

    def test_second_handle_sees_existing_entries(self, tmp_path):
        path = tmp_path / "shared.cache"
        with ResultCache(path) as writer, ResultCache(path) as reader:
            writer.put(fp(0), make_explanation(0))
            assert reader.get(fp(0)) is not None

    def test_refresh_reports_newly_visible_records(self, tmp_path):
        path = tmp_path / "shared.cache"
        with ResultCache(path) as writer, ResultCache(path) as reader:
            assert reader.refresh() == 0
            writer.put(fp(0), make_explanation(0))
            writer.put(fp(1), make_explanation(1))
            assert reader.refresh() == 2

    def test_concurrent_put_of_same_fingerprint_appends_once(self, tmp_path):
        path = tmp_path / "shared.cache"
        with ResultCache(path) as first, ResultCache(path) as second:
            first.put(fp(0), make_explanation(0))
            size = path.stat().st_size
            # The second handle has no index entry yet; the rescan inside
            # its append must dedupe instead of writing a twin record.
            second.put(fp(0), make_explanation(0))
            assert path.stat().st_size == size
