"""Result-fingerprint identity: sensitive to every component, stable otherwise.

The fingerprint is the memoization key for whole explanations; a collision
between two requests that differ in any result-defining component would
serve one request the other's answer.  The property tests drive the five
components independently and assert the digest moves exactly when the
inputs do.
"""

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bb.block import BasicBlock
from repro.cache import cacheable_seed, result_fingerprint
from repro.explain.config import ExplainerConfig

BLOCK = BasicBlock.from_text("add rcx, rax\nmov rdx, rcx")
OTHER_BLOCK = BasicBlock.from_text("div rcx\nadd rax, rbx")
CONFIG = ExplainerConfig()


def fingerprint(
    *, block=BLOCK, model_name="crude", uarch="Haswell", config=CONFIG, seed=0
):
    return result_fingerprint(
        block=block, model_name=model_name, uarch=uarch, config=config, seed=seed
    )


class TestShape:
    def test_is_a_sha256_hex_digest(self):
        digest = fingerprint()
        assert len(digest) == 64
        assert set(digest) <= set("0123456789abcdef")

    def test_deterministic_across_calls(self):
        assert fingerprint() == fingerprint()

    def test_block_identity_is_content_not_object(self):
        twin = BasicBlock.from_text("add rcx, rax\nmov rdx, rcx")
        assert fingerprint(block=twin) == fingerprint(block=BLOCK)

    def test_non_integer_seed_refused(self):
        with pytest.raises(TypeError):
            fingerprint(seed=np.random.default_rng(0))
        with pytest.raises(TypeError):
            fingerprint(seed=None)


class TestSensitivity:
    """Every component of the identity must reach the digest."""

    def test_block_changes_digest(self):
        assert fingerprint(block=OTHER_BLOCK) != fingerprint()

    def test_model_name_changes_digest(self):
        assert fingerprint(model_name="uica") != fingerprint()

    def test_uarch_changes_digest(self):
        assert fingerprint(uarch="Skylake") != fingerprint()

    def test_config_changes_digest(self):
        changed = dataclasses.replace(CONFIG, epsilon=CONFIG.epsilon + 0.1)
        assert fingerprint(config=changed) != fingerprint()

    def test_seed_changes_digest(self):
        assert fingerprint(seed=1) != fingerprint(seed=0)

    @given(seed_a=st.integers(0, 2**63 - 1), seed_b=st.integers(0, 2**63 - 1))
    @settings(max_examples=50, deadline=None)
    def test_seeds_collide_only_on_equality(self, seed_a, seed_b):
        same = fingerprint(seed=seed_a) == fingerprint(seed=seed_b)
        assert same == (seed_a == seed_b)

    @given(
        name_a=st.text(min_size=0, max_size=20),
        name_b=st.text(min_size=0, max_size=20),
        uarch_a=st.text(min_size=0, max_size=20),
        uarch_b=st.text(min_size=0, max_size=20),
    )
    @settings(max_examples=50, deadline=None)
    def test_no_field_boundary_aliasing(self, name_a, name_b, uarch_a, uarch_b):
        """(model, uarch) pairs never alias across the field boundary —
        the tuple-repr hashing makes "ab"+"c" distinct from "a"+"bc"."""
        same = fingerprint(model_name=name_a, uarch=uarch_a) == fingerprint(
            model_name=name_b, uarch=uarch_b
        )
        assert same == ((name_a, uarch_a) == (name_b, uarch_b))

    @given(
        epsilon=st.floats(0.05, 2.0, allow_nan=False),
        coverage_samples=st.integers(10, 500),
    )
    @settings(max_examples=50, deadline=None)
    def test_any_config_field_reaches_the_digest(self, epsilon, coverage_samples):
        changed = dataclasses.replace(
            CONFIG, epsilon=epsilon, coverage_samples=coverage_samples
        )
        same = fingerprint(config=changed) == fingerprint()
        assert same == (changed == CONFIG)


class TestCacheableSeed:
    @given(st.integers(min_value=-(2**63), max_value=2**63 - 1))
    @settings(max_examples=50, deadline=None)
    def test_integers_are_cacheable(self, seed):
        assert cacheable_seed(seed)

    def test_numpy_integers_are_cacheable(self):
        assert cacheable_seed(np.int64(7))

    def test_generators_none_and_bools_are_not(self):
        assert not cacheable_seed(np.random.default_rng(0))
        assert not cacheable_seed(None)
        assert not cacheable_seed(True)
        assert not cacheable_seed(False)
        assert not cacheable_seed(1.0)
