"""Tests for the COMET feedback collector."""

import pytest

from repro.bb.block import BasicBlock
from repro.bb.features import (
    DependencyFeature,
    InstructionFeature,
    NumInstructionsFeature,
    extract_features,
)
from repro.explain.config import ExplainerConfig
from repro.explain.explanation import Explanation
from repro.models.analytical import AnalyticalCostModel
from repro.models.base import CachedCostModel, CallableCostModel
from repro.train.feedback import BlockFeedback, FeedbackSummary, GranularityFeedback


FAST_EXPLAINER = ExplainerConfig(
    epsilon=0.25,
    relative_epsilon=0.0,
    coverage_samples=50,
    max_precision_samples=36,
    min_precision_samples=12,
    batch_size=8,
)

BLOCKS = [
    BasicBlock.from_text("add rcx, rax\nmov rdx, rcx\npop rbx"),
    BasicBlock.from_text("mov ecx, edx\nxor edx, edx\ndiv rcx\nimul rax, rcx"),
    BasicBlock.from_text("shl eax, 3\nimul rax, r15\nadd rax, 7\nshr rax, 3"),
]


def _explanation(block, features, prediction=1.0):
    return Explanation(
        block=block,
        model_name="test",
        prediction=prediction,
        features=tuple(features),
        precision=0.9,
        coverage=0.3,
        meets_threshold=True,
        epsilon=0.25,
    )


class TestBlockFeedback:
    def test_count_only_explanation_is_coarse(self):
        block = BLOCKS[0]
        feedback = BlockFeedback(
            block, _explanation(block, [NumInstructionsFeature(block.num_instructions)])
        )
        assert feedback.is_coarse
        assert not feedback.is_fine_grained
        assert not feedback.is_empty

    def test_instruction_explanation_is_fine_grained(self):
        block = BLOCKS[0]
        feedback = BlockFeedback(
            block, _explanation(block, [InstructionFeature.of(0, block[0])])
        )
        assert feedback.is_fine_grained
        assert not feedback.is_coarse

    def test_mixed_explanation_is_not_coarse(self):
        block = BLOCKS[0]
        dep = next(
            f for f in extract_features(block) if isinstance(f, DependencyFeature)
        )
        feedback = BlockFeedback(
            block,
            _explanation(
                block, [NumInstructionsFeature(block.num_instructions), dep]
            ),
        )
        assert not feedback.is_coarse
        assert feedback.is_fine_grained

    def test_empty_explanation_flagged(self):
        block = BLOCKS[0]
        feedback = BlockFeedback(block, _explanation(block, []))
        assert feedback.is_empty
        assert not feedback.is_coarse


class TestFeedbackSummary:
    def test_percentages(self):
        summary = FeedbackSummary(total=4, coarse=1, fine_grained=2, empty=1)
        assert summary.pct_coarse == pytest.approx(25.0)
        assert summary.pct_fine_grained == pytest.approx(50.0)

    def test_empty_round_gives_nan(self):
        summary = FeedbackSummary(total=0, coarse=0, fine_grained=0, empty=0)
        assert summary.pct_coarse != summary.pct_coarse  # NaN


class TestGranularityFeedback:
    def test_collect_explains_every_block_by_default(self):
        model = CachedCostModel(AnalyticalCostModel("hsw"))
        collector = GranularityFeedback(FAST_EXPLAINER, seed=0)
        feedback = collector.collect(model, BLOCKS)
        assert len(feedback) == len(BLOCKS)
        assert all(isinstance(f, BlockFeedback) for f in feedback)

    def test_sample_size_limits_work(self):
        model = CachedCostModel(AnalyticalCostModel("hsw"))
        collector = GranularityFeedback(FAST_EXPLAINER, seed=0)
        feedback = collector.collect(model, BLOCKS, sample_size=2)
        assert len(feedback) == 2

    def test_invalid_sample_size_rejected(self):
        model = AnalyticalCostModel("hsw")
        collector = GranularityFeedback(FAST_EXPLAINER, seed=0)
        with pytest.raises(ValueError):
            collector.collect(model, BLOCKS, sample_size=0)

    def test_empty_block_list_returns_empty_feedback(self):
        model = AnalyticalCostModel("hsw")
        collector = GranularityFeedback(FAST_EXPLAINER, seed=0)
        assert collector.collect(model, []) == []

    def test_count_driven_model_yields_coarse_feedback(self):
        """A model that only reads η must be reported as coarse-reliant."""
        model = CallableCostModel(
            lambda b: 0.25 * b.num_instructions, name="frontend-only"
        )
        collector = GranularityFeedback(FAST_EXPLAINER, seed=3)
        feedback = collector.collect(model, BLOCKS)
        summary = GranularityFeedback.summarize(feedback)
        assert summary.total == len(BLOCKS)
        assert summary.coarse >= summary.fine_grained

    def test_summarize_counts_match_flags(self):
        model = CachedCostModel(AnalyticalCostModel("hsw"))
        collector = GranularityFeedback(FAST_EXPLAINER, seed=1)
        feedback = collector.collect(model, BLOCKS)
        summary = GranularityFeedback.summarize(feedback)
        assert summary.total == len(feedback)
        assert summary.coarse == sum(1 for f in feedback if f.is_coarse)
        assert summary.fine_grained == sum(1 for f in feedback if f.is_fine_grained)
