"""Tests for feedback-driven augmentation and the guided training loop."""

import pytest

from repro.bb.block import BasicBlock
from repro.bb.features import NumInstructionsFeature, extract_features, features_present, FeatureKind
from repro.data.bhive import BHiveDataset
from repro.data.oracle import HardwareOracle
from repro.explain.config import ExplainerConfig
from repro.explain.explanation import Explanation
from repro.models.ithemal import IthemalConfig
from repro.train.augmentation import AugmentationConfig, augment_coarse_blocks
from repro.train.feedback import BlockFeedback
from repro.train.guided import (
    ExplanationGuidedTrainer,
    GuidedTrainingConfig,
    GuidedTrainingResult,
)


FAST_EXPLAINER = ExplainerConfig(
    epsilon=0.25,
    relative_epsilon=0.0,
    coverage_samples=40,
    max_precision_samples=30,
    min_precision_samples=10,
    batch_size=8,
)

BLOCKS = [
    BasicBlock.from_text("add rcx, rax\nmov rdx, rcx\npop rbx\nadd rsi, 8"),
    BasicBlock.from_text("mov ecx, edx\nxor edx, edx\ndiv rcx\nimul rax, rcx"),
]


def _coarse_feedback(block):
    explanation = Explanation(
        block=block,
        model_name="test",
        prediction=1.0,
        features=(NumInstructionsFeature(block.num_instructions),),
        precision=0.9,
        coverage=0.3,
        meets_threshold=True,
        epsilon=0.25,
    )
    return BlockFeedback(block=block, explanation=explanation)


def _fine_feedback(block):
    explanation = Explanation(
        block=block,
        model_name="test",
        prediction=1.0,
        features=(extract_features(block)[0],),
        precision=0.9,
        coverage=0.3,
        meets_threshold=True,
        epsilon=0.25,
    )
    return BlockFeedback(block=block, explanation=explanation)


class TestAugmentationConfig:
    def test_negative_variants_rejected(self):
        with pytest.raises(ValueError):
            AugmentationConfig(variants_per_block=-1)

    def test_zero_attempts_rejected(self):
        with pytest.raises(ValueError):
            AugmentationConfig(max_attempts_per_variant=0)


class TestAugmentCoarseBlocks:
    def test_only_coarse_blocks_generate_variants(self):
        oracle = HardwareOracle("hsw")
        feedback = [_fine_feedback(BLOCKS[0]), _fine_feedback(BLOCKS[1])]
        blocks, labels = augment_coarse_blocks(feedback, oracle, rng=0)
        assert blocks == []
        assert labels == []

    def test_variants_are_labelled_and_distinct_from_source(self):
        oracle = HardwareOracle("hsw")
        feedback = [_coarse_feedback(BLOCKS[0])]
        blocks, labels = augment_coarse_blocks(
            feedback,
            oracle,
            config=AugmentationConfig(variants_per_block=3),
            rng=1,
        )
        assert len(blocks) == len(labels)
        assert all(label > 0.0 for label in labels)
        assert all(block.key() != BLOCKS[0].key() for block in blocks)

    def test_variants_preserve_fine_grained_features(self):
        oracle = HardwareOracle("hsw")
        source = BLOCKS[0]
        feedback = [_coarse_feedback(source)]
        fine = tuple(
            f
            for f in extract_features(source)
            if f.kind is not FeatureKind.NUM_INSTRUCTIONS
        )
        blocks, _ = augment_coarse_blocks(
            feedback,
            oracle,
            config=AugmentationConfig(variants_per_block=4),
            rng=2,
        )
        for variant in blocks:
            assert features_present(fine, variant)

    def test_zero_variants_produces_nothing(self):
        oracle = HardwareOracle("hsw")
        feedback = [_coarse_feedback(BLOCKS[0])]
        blocks, labels = augment_coarse_blocks(
            feedback, oracle, config=AugmentationConfig(variants_per_block=0), rng=0
        )
        assert blocks == [] and labels == []


class TestGuidedTrainingConfig:
    def test_invalid_rounds_rejected(self):
        with pytest.raises(ValueError):
            GuidedTrainingConfig(rounds=-1)

    def test_invalid_feedback_sample_rejected(self):
        with pytest.raises(ValueError):
            GuidedTrainingConfig(feedback_sample=0)


@pytest.fixture(scope="module")
def tiny_dataset():
    return BHiveDataset.synthesize(
        36, min_instructions=3, max_instructions=7, microarchs=("hsw",), rng=11
    )


class TestExplanationGuidedTrainer:
    def test_rejects_mismatched_inputs(self):
        trainer = ExplanationGuidedTrainer("hsw")
        with pytest.raises(ValueError):
            trainer.train(BLOCKS, [1.0])

    def test_rejects_empty_dataset(self):
        trainer = ExplanationGuidedTrainer("hsw")
        with pytest.raises(ValueError):
            trainer.train([], [])

    def test_guided_loop_runs_and_records_history(self, tiny_dataset):
        blocks = tiny_dataset.blocks()
        targets = tiny_dataset.throughputs("hsw")
        config = GuidedTrainingConfig(
            rounds=1,
            initial_epochs=1,
            epochs_per_round=1,
            feedback_sample=3,
            explainer=FAST_EXPLAINER,
            augmentation=AugmentationConfig(variants_per_block=1),
            seed=0,
        )
        trainer = ExplanationGuidedTrainer(
            "hsw",
            ithemal_config=IthemalConfig(embedding_size=8, hidden_size=8, epochs=1),
            guided_config=config,
        )
        result = trainer.train(blocks, targets, rng=0)
        assert isinstance(result, GuidedTrainingResult)
        assert len(result.rounds) == 1
        record = result.rounds[0]
        assert record.training_set_size >= len(blocks)
        assert record.feedback.total == 3
        assert record.validation_mape >= 0.0
        assert result.model.trained

    def test_render_produces_table(self, tiny_dataset):
        blocks = tiny_dataset.blocks()[:12]
        targets = tiny_dataset.throughputs("hsw")[:12]
        config = GuidedTrainingConfig(
            rounds=1,
            initial_epochs=1,
            epochs_per_round=0,
            feedback_sample=2,
            explainer=FAST_EXPLAINER,
            augmentation=AugmentationConfig(variants_per_block=1),
            seed=1,
        )
        trainer = ExplanationGuidedTrainer(
            "hsw",
            ithemal_config=IthemalConfig(embedding_size=8, hidden_size=8, epochs=1),
            guided_config=config,
        )
        result = trainer.train(blocks, targets, rng=1)
        text = result.render()
        assert "Explanation-guided training history" in text
        assert result.final_pct_coarse == result.rounds[-1].feedback.pct_coarse
