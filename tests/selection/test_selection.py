"""Tests for explanation-based model selection."""

import pytest

from repro.bb.block import BasicBlock
from repro.explain.config import ExplainerConfig
from repro.models.analytical import AnalyticalCostModel
from repro.models.base import CachedCostModel, CallableCostModel
from repro.models.uica import UiCACostModel
from repro.selection.criteria import GranularityProfile, ModelScore, score_model
from repro.selection.selector import ModelSelector, SelectionConfig, SelectionReport


FAST_EXPLAINER = ExplainerConfig(
    epsilon=0.25,
    relative_epsilon=0.0,
    coverage_samples=60,
    max_precision_samples=40,
    min_precision_samples=12,
    batch_size=8,
)

BLOCK_TEXTS = [
    "add rcx, rax\nmov rdx, rcx\npop rbx",
    "mov ecx, edx\nxor edx, edx\ndiv rcx\nimul rax, rcx",
    "lea rdx, [rax + 8]\nmov qword ptr [rdi + 24], rdx\nmov rsi, qword ptr [r14 + 32]",
    "shl eax, 3\nimul rax, r15\nadd rax, 7\nshr rax, 3",
]


@pytest.fixture(scope="module")
def blocks():
    return [BasicBlock.from_text(text) for text in BLOCK_TEXTS]


@pytest.fixture(scope="module")
def targets(blocks):
    oracle = UiCACostModel("hsw")
    return [oracle.predict(block) for block in blocks]


class TestScoreModel:
    def test_score_fields_are_populated(self, blocks, targets):
        model = CachedCostModel(AnalyticalCostModel("hsw"))
        score = score_model(model, blocks, targets, config=FAST_EXPLAINER, seed=0)
        assert isinstance(score, ModelScore)
        assert score.blocks_evaluated == len(blocks)
        assert score.mape >= 0.0
        assert 0.0 <= score.mean_precision <= 1.0
        assert 0.0 <= score.mean_coverage <= 1.0

    def test_granularity_percentages_are_bounded(self, blocks, targets):
        model = CachedCostModel(UiCACostModel("hsw"))
        score = score_model(model, blocks, targets, config=FAST_EXPLAINER, seed=0)
        profile = score.granularity
        for value in (
            profile.pct_num_instructions,
            profile.pct_instructions,
            profile.pct_dependencies,
            profile.pct_fine_grained,
            profile.pct_coarse_only,
        ):
            assert 0.0 <= value <= 100.0

    def test_mismatched_lengths_raise(self, blocks):
        model = AnalyticalCostModel("hsw")
        with pytest.raises(ValueError):
            score_model(model, blocks, [1.0], config=FAST_EXPLAINER)

    def test_empty_block_set_raises(self):
        model = AnalyticalCostModel("hsw")
        with pytest.raises(ValueError):
            score_model(model, [], [], config=FAST_EXPLAINER)

    def test_perfect_model_has_zero_mape(self, blocks, targets):
        lookup = {block.key(): target for block, target in zip(blocks, targets)}
        # The explainer also queries perturbed blocks, which are not in the
        # lookup; fall back to a constant for those (MAPE only uses the
        # original blocks, so it stays exactly zero).
        model = CallableCostModel(lambda b: lookup.get(b.key(), 1.0), name="oracle-copy")
        score = score_model(model, blocks, targets, config=FAST_EXPLAINER, seed=1)
        assert score.mape == pytest.approx(0.0, abs=1e-9)


class TestGranularityProfile:
    def test_empty_explanation_list_gives_nan(self):
        profile = GranularityProfile.of([])
        assert profile.pct_fine_grained != profile.pct_fine_grained  # NaN


class TestSelectionConfig:
    def test_negative_tolerance_rejected(self):
        with pytest.raises(ValueError):
            SelectionConfig(mape_tolerance=-1.0)


class TestModelSelector:
    def test_requires_nonempty_blocks(self):
        with pytest.raises(ValueError):
            ModelSelector([], [])

    def test_requires_matching_lengths(self, blocks):
        with pytest.raises(ValueError):
            ModelSelector(blocks, [1.0])

    def test_rank_requires_candidates(self, blocks, targets):
        selector = ModelSelector(blocks, targets)
        with pytest.raises(ValueError):
            selector.rank({})

    def test_ranking_contains_every_candidate(self, blocks, targets):
        selector = ModelSelector(
            blocks, targets, SelectionConfig(explainer=FAST_EXPLAINER, seed=0)
        )
        report = selector.rank(
            {
                "crude": CachedCostModel(AnalyticalCostModel("hsw")),
                "uica": CachedCostModel(UiCACostModel("hsw")),
            }
        )
        assert isinstance(report, SelectionReport)
        assert {score.model_name for score in report.ranking} == {"crude", "uica"}

    def test_lower_error_model_wins_outside_tolerance(self, blocks, targets):
        # A constant model has huge error; the uiCA stand-in tracks the
        # oracle closely, so with a tight tolerance the error criterion
        # decides alone.
        selector = ModelSelector(
            blocks,
            targets,
            SelectionConfig(mape_tolerance=0.5, explainer=FAST_EXPLAINER, seed=0),
        )
        report = selector.rank(
            {
                "constant": CallableCostModel(lambda b: 100.0, name="constant"),
                "uica": CachedCostModel(UiCACostModel("hsw")),
            }
        )
        assert report.best_name == "uica"
        assert "lowest MAPE" in report.rationale

    def test_near_tie_broken_by_granularity(self, blocks, targets):
        # With an enormous tolerance every candidate counts as "similar
        # performing", so the winner must simply be the candidate with the
        # largest share of fine-grained explanations.
        count_only = CallableCostModel(
            lambda b: 1.0 + 0.25 * b.num_instructions, name="count-only"
        )
        fine_grained = CachedCostModel(UiCACostModel("hsw"))
        selector = ModelSelector(
            blocks,
            targets,
            SelectionConfig(mape_tolerance=1000.0, explainer=FAST_EXPLAINER, seed=0),
        )
        report = selector.rank({"count-only": count_only, "uica": fine_grained})
        count_score = report.score_for("count-only")
        uica_score = report.score_for("uica")
        assert report.best is max(
            [count_score, uica_score],
            key=lambda s: s.granularity.pct_fine_grained,
        )
        assert "fine-grained" in report.rationale

    def test_score_for_unknown_model_raises(self, blocks, targets):
        selector = ModelSelector(
            blocks, targets, SelectionConfig(explainer=FAST_EXPLAINER)
        )
        report = selector.rank({"crude": CachedCostModel(AnalyticalCostModel("hsw"))})
        with pytest.raises(KeyError):
            report.score_for("missing")

    def test_render_includes_table_and_selection(self, blocks, targets):
        selector = ModelSelector(
            blocks, targets, SelectionConfig(explainer=FAST_EXPLAINER, seed=0)
        )
        report = selector.rank({"crude": CachedCostModel(AnalyticalCostModel("hsw"))})
        text = report.render()
        assert "Model selection report" in text
        assert "Selected: crude" in text
