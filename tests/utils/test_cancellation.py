"""Tests for the cooperative cancellation/deadline token."""

import time

import pytest

from repro.utils.cancellation import CancelToken
from repro.utils.errors import (
    DeadlineExceededError,
    RequestCancelledError,
    ServiceError,
)


class TestConstruction:
    def test_default_token_never_finishes(self):
        token = CancelToken()
        assert token.deadline is None
        assert token.remaining() is None
        assert not token.cancelled
        assert not token.expired
        assert not token.finished
        token.check()  # free

    def test_with_timeout_none_means_unbounded(self):
        token = CancelToken.with_timeout(None)
        assert token.deadline is None
        token.check()

    def test_with_timeout_sets_monotonic_deadline(self):
        before = time.monotonic()
        token = CancelToken.with_timeout(60.0)
        assert token.deadline is not None
        assert token.deadline >= before + 59.0
        remaining = token.remaining()
        assert 0 < remaining <= 60.0

    @pytest.mark.parametrize("seconds", [0, 0.0, -1, -0.5])
    def test_non_positive_timeout_rejected(self, seconds):
        with pytest.raises(ValueError, match="must be positive"):
            CancelToken.with_timeout(seconds)

    def test_name_is_carried(self):
        assert CancelToken.with_timeout(1.0, name="req-7").name == "req-7"


class TestCancellation:
    def test_cancel_flips_once_and_first_reason_wins(self):
        token = CancelToken()
        token.cancel("first")
        token.cancel("second")
        assert token.cancelled
        assert token.finished
        assert token.reason == "first"

    def test_check_raises_request_cancelled_with_name_and_reason(self):
        token = CancelToken(name="req-3")
        token.cancel("client gave up")
        with pytest.raises(RequestCancelledError, match="req-3") as excinfo:
            token.check()
        assert "client gave up" in str(excinfo.value)
        # Cancellation errors are part of the service failure surface.
        assert isinstance(excinfo.value, ServiceError)

    def test_check_is_repeatable(self):
        token = CancelToken()
        token.cancel()
        for _ in range(3):
            with pytest.raises(RequestCancelledError):
                token.check()


class TestDeadlines:
    def test_expired_deadline_raises_deadline_exceeded(self):
        token = CancelToken(deadline=time.monotonic() - 0.01, name="req-9")
        assert token.expired
        assert token.finished
        assert token.remaining() == 0.0
        with pytest.raises(DeadlineExceededError, match="req-9"):
            token.check()

    def test_future_deadline_is_free(self):
        token = CancelToken.with_timeout(60.0)
        token.check()
        assert not token.finished

    def test_explicit_cancel_wins_over_expired_deadline(self):
        # A client that cancelled should see its own reason even if the
        # deadline also lapsed while the request sat queued.
        token = CancelToken(deadline=time.monotonic() - 0.01)
        token.cancel("client cancelled")
        with pytest.raises(RequestCancelledError, match="client cancelled"):
            token.check()


class TestDeterminismContract:
    def test_token_is_not_picklable(self):
        """The token contains a lock and must never cross a process
        boundary; process-sharded fleets check between shards only."""
        import pickle

        with pytest.raises(Exception):
            pickle.dumps(CancelToken())
