"""Tests for deterministic random-source handling."""

import numpy as np
import pytest

from repro.utils.rng import as_rng, choice, coin, derive_seed, spawn_rngs


class TestAsRng:
    def test_none_gives_generator(self):
        assert isinstance(as_rng(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        a = as_rng(42).integers(0, 1000, size=10)
        b = as_rng(42).integers(0, 1000, size=10)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = as_rng(1).integers(0, 10**9)
        b = as_rng(2).integers(0, 10**9)
        assert a != b

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert as_rng(gen) is gen

    def test_numpy_integer_seed(self):
        assert isinstance(as_rng(np.int64(7)), np.random.Generator)

    def test_invalid_source_raises(self):
        with pytest.raises(TypeError):
            as_rng("not-a-seed")


class TestSpawnRngs:
    def test_count(self):
        assert len(spawn_rngs(0, 5)) == 5

    def test_streams_are_independent(self):
        streams = spawn_rngs(0, 3)
        values = [s.integers(0, 10**9) for s in streams]
        assert len(set(values)) == 3

    def test_deterministic_across_calls(self):
        a = [s.integers(0, 10**6) for s in spawn_rngs(9, 4)]
        b = [s.integers(0, 10**6) for s in spawn_rngs(9, 4)]
        assert a == b

    def test_zero_count(self):
        assert spawn_rngs(0, 0) == []

    def test_negative_count_raises(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)


class TestCoin:
    def test_probability_zero(self):
        rng = as_rng(0)
        assert not any(coin(rng, 0.0) for _ in range(50))

    def test_probability_one(self):
        rng = as_rng(0)
        assert all(coin(rng, 1.0) for _ in range(50))

    def test_probability_half_is_roughly_balanced(self):
        rng = as_rng(0)
        hits = sum(coin(rng, 0.5) for _ in range(2000))
        assert 800 < hits < 1200

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            coin(as_rng(0), 1.5)


class TestChoice:
    def test_single_choice_from_list(self):
        assert choice(as_rng(0), ["a", "b", "c"]) in {"a", "b", "c"}

    def test_choice_preserves_tuples(self):
        items = [(1, 2), (3, 4)]
        assert choice(as_rng(0), items) in items

    def test_choice_with_size(self):
        out = choice(as_rng(0), [1, 2, 3], size=5)
        assert len(out) == 5
        assert all(v in (1, 2, 3) for v in out)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            choice(as_rng(0), [])


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(3, "block", 1) == derive_seed(3, "block", 1)

    def test_salt_changes_seed(self):
        assert derive_seed(3, "a") != derive_seed(3, "b")

    def test_non_negative(self):
        assert derive_seed(0, "x") >= 0
