"""Tests for the exception hierarchy."""

import pytest

from repro.utils.errors import (
    ModelError,
    ParseError,
    PerturbationError,
    ReproError,
    UnknownOpcodeError,
    UnknownRegisterError,
    ValidationError,
)


def test_all_errors_derive_from_repro_error():
    for exc_type in (
        ParseError,
        ValidationError,
        UnknownOpcodeError,
        UnknownRegisterError,
        PerturbationError,
        ModelError,
    ):
        assert issubclass(exc_type, ReproError)


def test_parse_error_message_contains_text_and_reason():
    err = ParseError("mov rax", "missing operand")
    assert "mov rax" in str(err)
    assert "missing operand" in str(err)
    assert err.text == "mov rax"


def test_unknown_opcode_error_records_mnemonic():
    err = UnknownOpcodeError("frobnicate")
    assert err.mnemonic == "frobnicate"
    assert "frobnicate" in str(err)


def test_unknown_register_error_records_name():
    err = UnknownRegisterError("r99")
    assert err.name == "r99"


def test_catching_base_class_catches_all():
    with pytest.raises(ReproError):
        raise ValidationError("bad block")
