"""Tests for the text table/series renderers."""

import pytest

from repro.utils.tables import format_mean_std, render_series, render_table


class TestRenderTable:
    def test_contains_headers_and_cells(self):
        text = render_table(["a", "b"], [[1, 2.5], [3, 4.25]])
        assert "a" in text and "b" in text
        assert "2.50" in text and "4.25" in text

    def test_title_rendered(self):
        text = render_table(["x"], [[1]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_precision_controls_floats(self):
        text = render_table(["x"], [[1.23456]], precision=4)
        assert "1.2346" in text

    def test_row_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [[1]])

    def test_string_cells_pass_through(self):
        text = render_table(["name"], [["hello ± 1"]])
        assert "hello ± 1" in text

    def test_column_alignment(self):
        text = render_table(["col"], [[1], [100000]])
        lines = text.splitlines()
        assert len(lines[-1]) >= len("100000")


class TestRenderSeries:
    def test_basic_series(self):
        text = render_series("Fig", [1, 2, 3], {"y": [0.1, 0.2, 0.3]}, x_label="x")
        assert "Fig" in text and "x" in text and "0.300" in text

    def test_multiple_series(self):
        text = render_series("S", [1], {"a": [1.0], "b": [2.0]})
        assert "a" in text and "b" in text

    def test_short_series_padded_with_nan(self):
        text = render_series("S", [1, 2], {"a": [1.0]})
        assert "nan" in text


class TestFormatMeanStd:
    def test_format(self):
        assert format_mean_std(96.9, 0.92) == "96.90 ± 0.92"

    def test_precision(self):
        assert format_mean_std(0.1234, 0.005, precision=3) == "0.123 ± 0.005"
