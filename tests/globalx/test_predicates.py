"""Tests for the interpretable block predicates."""

import pytest

from repro.bb.block import BasicBlock
from repro.bb.dependencies import DependencyKind
from repro.globalx.predicates import (
    AndPredicate,
    CategoryIs,
    ContainsDependencyKind,
    ContainsOpcode,
    NumInstructionsEquals,
    NumInstructionsInRange,
    candidate_predicates,
)


RAW_BLOCK = BasicBlock.from_text("add rcx, rax\nmov rdx, rcx\npop rbx")
DIV_BLOCK = BasicBlock.from_text("mov ecx, edx\nxor edx, edx\ndiv rcx\nimul rax, rcx")


class TestSimplePredicates:
    def test_num_instructions_equals(self):
        assert NumInstructionsEquals(3).holds(RAW_BLOCK)
        assert not NumInstructionsEquals(4).holds(RAW_BLOCK)

    def test_num_instructions_in_range(self):
        assert NumInstructionsInRange(2, 4).holds(RAW_BLOCK)
        assert not NumInstructionsInRange(5, 9).holds(RAW_BLOCK)

    def test_range_validation(self):
        with pytest.raises(ValueError):
            NumInstructionsInRange(5, 2)

    def test_contains_opcode(self):
        assert ContainsOpcode("div").holds(DIV_BLOCK)
        assert not ContainsOpcode("div").holds(RAW_BLOCK)

    def test_contains_dependency_kind(self):
        assert ContainsDependencyKind(DependencyKind.RAW).holds(RAW_BLOCK)

    def test_category_is(self):
        assert CategoryIs(RAW_BLOCK.category.value).holds(RAW_BLOCK)
        assert not CategoryIs("Vector").holds(RAW_BLOCK)

    def test_descriptions_are_informative(self):
        assert "8" in NumInstructionsEquals(8).describe()
        assert "div" in ContainsOpcode("div").describe()
        assert "RAW" in ContainsDependencyKind(DependencyKind.RAW).describe()


class TestAndPredicate:
    def test_conjunction_semantics(self):
        rule = AndPredicate((NumInstructionsEquals(3), ContainsOpcode("add")))
        assert rule.holds(RAW_BLOCK)
        assert not rule.holds(DIV_BLOCK)

    def test_empty_conjunction_rejected(self):
        with pytest.raises(ValueError):
            AndPredicate(())

    def test_describe_joins_terms(self):
        rule = AndPredicate((NumInstructionsEquals(3), ContainsOpcode("add")))
        assert " AND " in rule.describe()
        assert len(rule) == 2


class TestCandidatePredicates:
    def test_counts_derived_from_data(self):
        predicates = candidate_predicates([RAW_BLOCK, DIV_BLOCK])
        counts = {
            p.count for p in predicates if isinstance(p, NumInstructionsEquals)
        }
        assert counts == {3, 4}

    def test_opcodes_derived_from_data(self):
        predicates = candidate_predicates([RAW_BLOCK, DIV_BLOCK])
        opcodes = {p.mnemonic for p in predicates if isinstance(p, ContainsOpcode)}
        assert "div" in opcodes
        assert "add" in opcodes

    def test_max_opcodes_cap(self):
        predicates = candidate_predicates([RAW_BLOCK, DIV_BLOCK], max_opcodes=2)
        opcodes = [p for p in predicates if isinstance(p, ContainsOpcode)]
        assert len(opcodes) <= 2

    def test_sections_can_be_disabled(self):
        predicates = candidate_predicates(
            [RAW_BLOCK],
            include_counts=False,
            include_opcodes=False,
            include_dependencies=False,
            include_categories=False,
        )
        assert predicates == []
