"""Tests for the global explanation search."""

import pytest

from repro.data.bhive import BHiveDataset
from repro.globalx.global_explainer import (
    GlobalExplainer,
    GlobalExplainerConfig,
    GlobalExplanation,
)
from repro.globalx.predicates import NumInstructionsEquals
from repro.globalx.threshold_model import InstructionCountThresholdModel
from repro.models.base import CachedCostModel, CallableCostModel
from repro.models.uica import UiCACostModel


@pytest.fixture(scope="module")
def small_dataset():
    return BHiveDataset.synthesize(
        80, min_instructions=4, max_instructions=10, microarchs=("hsw",), rng=5
    )


@pytest.fixture(scope="module")
def blocks(small_dataset):
    return small_dataset.blocks()


class TestThresholdModel:
    def test_matches_paper_example(self, blocks):
        model = InstructionCountThresholdModel(target_count=8)
        for block in blocks:
            expected = 2.0 if block.num_instructions == 8 else 1.0
            assert model.predict(block) == pytest.approx(expected)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            InstructionCountThresholdModel(target_count=0)
        with pytest.raises(ValueError):
            InstructionCountThresholdModel(match_cost=-1.0)


class TestGlobalExplainerConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_terms": 0},
            {"beam_width": 0},
            {"min_precision": 1.5},
            {"min_support": 0},
        ],
    )
    def test_invalid_configs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            GlobalExplainerConfig(**kwargs)


class TestGlobalExplainerOnM1:
    def test_recovers_the_count_rule(self, blocks):
        """The paper's Section 4 example: T={2} is explained by η == 8."""
        model = InstructionCountThresholdModel(target_count=8)
        # Ensure the dataset actually contains positive examples.
        assert any(block.num_instructions == 8 for block in blocks)
        explainer = GlobalExplainer(model, blocks)
        explanation = explainer.explain_value(2.0, epsilon=0.25)
        assert explanation.meets_threshold
        assert explanation.precision == pytest.approx(1.0)
        assert explanation.recall == pytest.approx(1.0)
        rule = explanation.rule
        terms = rule.terms if hasattr(rule, "terms") else (rule,)
        assert any(
            isinstance(term, NumInstructionsEquals) and term.count == 8
            for term in terms
        )

    def test_explain_range_validates_bounds(self, blocks):
        model = InstructionCountThresholdModel()
        explainer = GlobalExplainer(model, blocks)
        with pytest.raises(ValueError):
            explainer.explain_range(3.0, 1.0)

    def test_describe_contains_rule_and_metrics(self, blocks):
        model = InstructionCountThresholdModel(target_count=8)
        explanation = GlobalExplainer(model, blocks).explain_value(2.0)
        text = explanation.describe()
        assert "rule:" in text
        assert "precision" in text

    def test_f1_is_zero_when_nothing_matches(self, blocks):
        model = InstructionCountThresholdModel(target_count=8)
        explainer = GlobalExplainer(model, blocks)
        explanation = explainer.explain_range(500.0, 600.0)
        assert isinstance(explanation, GlobalExplanation)
        assert explanation.positives == 0
        assert explanation.f1 == pytest.approx(0.0)


class TestGlobalExplainerOnComplexModels:
    def test_complex_model_rules_are_less_faithful_than_m1(self, blocks):
        """Empirical counterpart of the paper's argument for local explanations.

        A rule for the pipeline-simulation model over a mid-range prediction
        band should score a lower F1 than the perfect rule recovered for M1.
        """
        m1 = InstructionCountThresholdModel(target_count=8)
        m1_explanation = GlobalExplainer(m1, blocks).explain_value(2.0)

        uica = CachedCostModel(UiCACostModel("hsw"))
        uica_explainer = GlobalExplainer(uica, blocks)
        predictions = sorted(uica_explainer.predictions())
        low = predictions[len(predictions) // 3]
        high = predictions[2 * len(predictions) // 3]
        uica_explanation = uica_explainer.explain_range(low, high)

        assert m1_explanation.f1 >= uica_explanation.f1

    def test_requires_nonempty_blocks(self):
        with pytest.raises(ValueError):
            GlobalExplainer(InstructionCountThresholdModel(), [])

    def test_custom_predicate_pool_is_respected(self, blocks):
        model = InstructionCountThresholdModel(target_count=8)
        pool = [NumInstructionsEquals(8), NumInstructionsEquals(5)]
        explainer = GlobalExplainer(model, blocks, predicates=pool)
        explanation = explainer.explain_value(2.0)
        terms = (
            explanation.rule.terms
            if hasattr(explanation.rule, "terms")
            else (explanation.rule,)
        )
        assert all(isinstance(term, NumInstructionsEquals) for term in terms)

    def test_min_support_prevents_tiny_rules(self, blocks):
        model = CallableCostModel(lambda b: float(b.num_instructions), name="length")
        config = GlobalExplainerConfig(min_support=10_000)
        explanation = GlobalExplainer(model, blocks, config=config).explain_range(4, 6)
        assert not explanation.meets_threshold
