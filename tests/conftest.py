"""Shared test harness: the tiny-model/tiny-block builders every suite uses.

Before this existed, ``tests/explain/``, ``tests/runtime/`` and
``tests/models/`` each re-declared the same ad-hoc builders (a fast
``ExplainerConfig``, a synthesized handful of blocks, a crude model wrapped
in a session).  They live here once now:

``fast_config``
    An :class:`ExplainerConfig` with small sample budgets — explanation
    semantics at test speed.
``tiny_model``
    A fresh analytical cost model (the cheapest deterministic model).
``tiny_block`` / ``tiny_blocks`` / ``block_fleet``
    One hand-written two-instruction block; three seeded synthesized blocks
    (the shared-state workloads); twenty-five seeded synthesized blocks (the
    parity sweeps).  The synthesized sets are deterministic — fixed seeds —
    and session-scoped since blocks are immutable.
``seeded_session``
    A context-managed :class:`ExplanationSession` over ``tiny_model`` with
    ``fast_config`` and rng 0, closed after the test.

The constants (``FAST_CONFIG``) back the fixtures so module-level test
parameterisation can reuse them without requesting a fixture.
"""

import os

import pytest

from repro.bb.block import BasicBlock
from repro.data.synthesis import BlockSynthesizer
from repro.explain.config import ExplainerConfig
from repro.models.analytical import AnalyticalCostModel
from repro.perturb.algorithm import forced_engine
from repro.runtime.session import ExplanationSession


@pytest.fixture(scope="session", autouse=True)
def _perturb_engine_lane():
    """Pin every perturber onto one Γ engine for the whole test session.

    ``REPRO_PERTURB_ENGINE=reference`` runs the suites on the scalar
    oracle (the explicit ``vectorized=False`` CI lane); ``legacy``/``soa``
    select the vectorized engines.  Tests that pass an explicit ``engine``
    argument (the parity suites) still exercise the engine they name —
    the explicit argument outranks this override.
    """
    engine = os.environ.get("REPRO_PERTURB_ENGINE")
    if not engine:
        yield
        return
    with forced_engine(engine):
        yield

FAST_CONFIG = ExplainerConfig(
    epsilon=0.2,
    relative_epsilon=0.0,
    coverage_samples=80,
    max_precision_samples=40,
    min_precision_samples=12,
    batch_size=8,
)


@pytest.fixture
def fast_config() -> ExplainerConfig:
    return FAST_CONFIG


@pytest.fixture
def tiny_model() -> AnalyticalCostModel:
    return AnalyticalCostModel("hsw")


@pytest.fixture
def tiny_block() -> BasicBlock:
    return BasicBlock.from_text("add rcx, rax\nmov rdx, rcx")


@pytest.fixture(scope="session")
def tiny_blocks():
    return BlockSynthesizer(rng=5).generate_many(
        3, min_instructions=3, max_instructions=7, rng=6
    )


@pytest.fixture(scope="session")
def block_fleet():
    return BlockSynthesizer(rng=0).generate_many(
        25, min_instructions=2, max_instructions=10, rng=1
    )


@pytest.fixture
def seeded_session(tiny_model, fast_config):
    with ExplanationSession(tiny_model, fast_config, rng=0) as session:
        yield session


def explanation_fingerprint(explanation):
    """The scientific payload of an explanation, for parity assertions.

    Everything result-defining is included; ``num_queries`` is deliberately
    not — query accounting depends on what a shared cache already held and
    on shard interleaving, which is substrate-dependent by design.
    """
    return (
        explanation.block.key(),
        explanation.model_name,
        explanation.prediction,
        tuple(f.describe() for f in explanation.features),
        explanation.precision,
        explanation.coverage,
        explanation.meets_threshold,
        explanation.epsilon,
        explanation.precision_samples,
        explanation.candidates_evaluated,
    )


def explanation_dict_fingerprint(payload):
    """The wire-format companion of :func:`explanation_fingerprint`.

    Socket clients receive explanations as the JSON dictionaries of
    :func:`repro.reporting.export.explanation_to_dict`; this extracts the
    same result-defining payload (floats survive a JSON round-trip exactly,
    so equality against a locally-computed dict is still bit-for-bit).
    ``num_queries`` is excluded for the same reason as in
    :func:`explanation_fingerprint`: it reflects shared-cache warmth.
    """
    return (
        tuple(payload["block"]),
        payload["model"],
        payload["prediction"],
        tuple(f["description"] for f in payload["features"]),
        payload["precision"],
        payload["coverage"],
        payload["meets_threshold"],
        payload["epsilon"],
        payload["precision_samples"],
        payload["candidates_evaluated"],
    )
