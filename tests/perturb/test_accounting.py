"""Γ accounting: counters, fallback surfacing, and the plan-cache bound.

PR 9's satellite fixes around the perturbation engine: ``perturb_many``
falling back to the original block used to be silent (each fallback
injects a trivially-preserving sample into precision estimates), and the
per-perturber constraint-plan cache used to grow without limit in warm
sessions.  This suite pins the accounting at every level it surfaces —
per perturber, process-wide, per thread (``QueryTally``), per session
(``SessionStats``) — plus the once-per-block warning and the LRU bound.
"""

import threading
import warnings

import pytest

from repro.bb.block import BasicBlock
from repro.bb.features import extract_features
from repro.data.synthesis import BlockSynthesizer
from repro.models.analytical import AnalyticalCostModel
from repro.perturb.algorithm import (
    _FALLBACK_WARNING_MIN,
    BlockPerturber,
    perturb_tally,
    plan_cache_entries,
    thread_perturb_tally,
)
from repro.runtime.session import ExplanationSession

from tests.conftest import FAST_CONFIG


@pytest.fixture
def block():
    return BlockSynthesizer(rng=3).generate(6)


class TestCounters:
    def test_perturb_many_counts_at_every_level(self, block):
        process_before = perturb_tally()
        thread_before = thread_perturb_tally()
        perturber = BlockPerturber(block, rng=0)

        perturber.perturb_many(25)

        assert perturber.perturbations == 25
        assert perturb_tally().delta(process_before).perturbations == 25
        assert thread_perturb_tally().delta(thread_before).perturbations == 25

    def test_thread_tally_is_isolated_per_thread(self, block):
        before = thread_perturb_tally()

        def work():
            BlockPerturber(block, rng=1).perturb_many(10)

        worker = threading.Thread(target=work)
        worker.start()
        worker.join()

        # The worker's perturbations land in the process total, not ours.
        assert thread_perturb_tally().delta(before).perturbations == 0

    def test_query_tally_carries_perturb_counters(self, block):
        model = AnalyticalCostModel("hsw")
        before = model.query_tally()
        BlockPerturber(block, rng=2).perturb_many(7)
        delta = model.query_tally().delta(before)
        assert delta.perturbations == 7
        assert delta.perturb_fallbacks == 0


class TestFallbacks:
    def _all_attempts_fail(self, block, **kwargs):
        """A perturber whose every attempt fails validity → pure fallbacks."""
        perturber = BlockPerturber(block, rng=0, engine="reference", **kwargs)
        perturber._perturb_once = lambda plan, rng: None
        return perturber

    def test_fallbacks_counted(self, block):
        before = perturb_tally()
        perturber = self._all_attempts_fail(block)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            out = perturber.perturb_many(5)
        assert out == [block] * 5
        assert perturber.fallbacks == 5
        delta = perturb_tally().delta(before)
        assert delta.perturbations == 5
        assert delta.fallbacks == 5

    def test_warning_fires_once_above_rate_threshold(self, block):
        perturber = self._all_attempts_fail(block)
        with pytest.warns(RuntimeWarning, match="fell back to the original"):
            perturber.perturb_many(_FALLBACK_WARNING_MIN)
        # Second batch: counters keep rising, but the warning is once-per-block.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            perturber.perturb_many(10)
        assert perturber.fallbacks == _FALLBACK_WARNING_MIN + 10

    def test_no_warning_below_minimum_volume(self, block):
        perturber = self._all_attempts_fail(block)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            perturber.perturb_many(_FALLBACK_WARNING_MIN - 1)


class TestPlanCache:
    def test_plan_cache_is_lru_bounded(self, block):
        features = extract_features(block)
        perturber = BlockPerturber(block, rng=0, max_cached_plans=4)
        for feature in features:
            perturber.perturb_many(1, [feature])
        assert perturber.plan_cache_size <= 4

    def test_plan_cache_gauge_sees_live_perturbers(self, block):
        perturber = BlockPerturber(block, rng=0)
        perturber.perturb_many(1)
        assert plan_cache_entries() >= perturber.plan_cache_size >= 1


class TestSessionStats:
    def test_session_stats_expose_perturb_accounting(self, block):
        with ExplanationSession(
            AnalyticalCostModel("hsw"), FAST_CONFIG, rng=0
        ) as session:
            session.explain(block)
            stats = session.stats()
        assert stats.perturbations > 0
        assert 0 <= stats.perturb_fallbacks <= stats.perturbations
        assert stats.plan_cache_entries >= 0
