"""Property-based tests (hypothesis) for the perturbation substrate.

These check the invariants the explanation framework relies on:

* every perturbed block is valid x86 that could appear in a basic block,
* features requested to be preserved are present in the perturbed block,
* the parser/formatter round-trip on every perturbed block,
* coverage is antitone in the feature set (Theorem 1's practical analogue).
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.bb.block import BasicBlock
from repro.bb.features import extract_features, features_present
from repro.data.synthesis import BlockSynthesizer
from repro.isa.formatter import format_block_lines
from repro.isa.parser import parse_block_text
from repro.isa.validation import validate_block_instructions
from repro.perturb.algorithm import BlockPerturber
from repro.perturb.sampler import PerturbationSampler
from repro.perturb.space import estimate_space_size

_SETTINGS = dict(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@st.composite
def synthetic_blocks(draw):
    """Random valid blocks from the dataset synthesiser."""
    seed = draw(st.integers(min_value=0, max_value=10_000))
    size = draw(st.integers(min_value=2, max_value=8))
    source = draw(st.sampled_from(["clang", "openblas"]))
    return BlockSynthesizer(seed).generate(size, source=source)


@given(block=synthetic_blocks(), seed=st.integers(min_value=0, max_value=1000))
@settings(**_SETTINGS)
def test_perturbed_blocks_are_always_valid(block, seed):
    perturber = BlockPerturber(block, rng=seed)
    for perturbed in perturber.perturb_many(5):
        validate_block_instructions(perturbed.instructions)
        assert perturbed.num_instructions >= 1


@given(block=synthetic_blocks(), seed=st.integers(min_value=0, max_value=1000))
@settings(**_SETTINGS)
def test_perturbed_blocks_round_trip_through_parser(block, seed):
    perturber = BlockPerturber(block, rng=seed)
    for perturbed in perturber.perturb_many(3):
        reparsed = parse_block_text(format_block_lines(perturbed.instructions))
        assert [i.key() for i in reparsed] == [i.key() for i in perturbed.instructions]


@given(
    block=synthetic_blocks(),
    seed=st.integers(min_value=0, max_value=1000),
    data=st.data(),
)
@settings(**_SETTINGS)
def test_requested_features_are_preserved(block, seed, data):
    features = extract_features(block)
    subset_size = data.draw(st.integers(min_value=1, max_value=min(3, len(features))))
    indices = data.draw(
        st.lists(
            st.integers(min_value=0, max_value=len(features) - 1),
            min_size=subset_size,
            max_size=subset_size,
            unique=True,
        )
    )
    preserved = [features[i] for i in indices]
    perturber = BlockPerturber(block, rng=seed)
    for perturbed in perturber.perturb_many(4, preserved):
        assert features_present(preserved, perturbed)


@given(block=synthetic_blocks())
@settings(**_SETTINGS)
def test_space_size_antitone_in_features(block):
    features = extract_features(block)
    empty = estimate_space_size(block)
    with_one = estimate_space_size(block, features[:1])
    with_two = estimate_space_size(block, features[:2])
    assert empty >= with_one >= with_two >= 1.0


@given(block=synthetic_blocks(), seed=st.integers(min_value=0, max_value=200))
@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large])
def test_coverage_antitone_in_features(block, seed):
    sampler = PerturbationSampler(block, rng=seed)
    features = extract_features(block)
    baseline = sampler.coverage_of([], 150)
    one = sampler.coverage_of(features[:1], 150)
    both = sampler.coverage_of(features[:2], 150)
    assert baseline >= one >= both >= 0.0
