"""Tests for perturbation-space size estimation (Appendix F)."""

import math

import pytest

from repro.bb.block import BasicBlock
from repro.bb.features import InstructionFeature, NumInstructionsFeature, extract_features
from repro.perturb.space import (
    estimate_space_size,
    log10_space_size,
    per_instruction_choices,
    space_report,
)

LISTING_4 = """
    vdivss xmm0, xmm0, xmm6
    vmulss xmm7, xmm0, xmm0
    vxorps xmm0, xmm0, xmm5
    vaddss xmm7, xmm7, xmm3
    vmulss xmm6, xmm6, xmm7
    vdivss xmm6, xmm3, xmm6
    vmulss xmm0, xmm6, xmm0
"""

LISTING_5 = """
    shl eax, 3
    imul rax, r15
    xor edx, edx
    add rax, 7
    shr rax, 3
    lea rax, [rbp + rax - 1]
    div rbp
    imul rax, rbp
    mov rbp, qword ptr [rsp + 8]
    sub rbp, rax
"""


class TestSpaceSizes:
    def test_listing4_is_astronomical(self):
        block = BasicBlock.from_text(LISTING_4)
        assert estimate_space_size(block) > 1e30

    def test_listing5_is_astronomical(self):
        block = BasicBlock.from_text(LISTING_5)
        assert estimate_space_size(block) > 1e25

    def test_preserving_an_instruction_shrinks_the_space(self):
        block = BasicBlock.from_text(LISTING_4)
        empty = estimate_space_size(block)
        feature = InstructionFeature.of(0, block[0])
        assert estimate_space_size(block, [feature]) < empty

    def test_preserving_count_shrinks_the_space(self):
        block = BasicBlock.from_text(LISTING_5)
        assert estimate_space_size(block, [NumInstructionsFeature(10)]) < estimate_space_size(block)

    def test_monotone_under_feature_addition(self):
        block = BasicBlock.from_text(LISTING_4)
        features = [f for f in extract_features(block) if isinstance(f, InstructionFeature)]
        sizes = [
            estimate_space_size(block, features[:k]) for k in range(len(features) + 1)
        ]
        for earlier, later in zip(sizes, sizes[1:]):
            assert later <= earlier

    def test_log10_consistent_with_linear_estimate(self):
        block = BasicBlock.from_text(LISTING_4)
        assert log10_space_size(block) == pytest.approx(
            math.log10(estimate_space_size(block)), rel=1e-6
        )

    def test_single_instruction_block(self):
        block = BasicBlock.from_text("lea rax, [rbx + 8]")
        # lea cannot be replaced; only its operand registers can be renamed,
        # and it can be deleted... but a 1-instruction block with deletion
        # still counts the deletion choice.
        assert estimate_space_size(block) >= 1.0


class TestPerInstructionChoices:
    def test_fully_locked_instruction_has_one_choice(self):
        block = BasicBlock.from_text(LISTING_4)
        assert per_instruction_choices(block, 0, fully_locked=True) == 1.0

    def test_opcode_locked_fewer_choices_than_free(self):
        block = BasicBlock.from_text(LISTING_4)
        free = per_instruction_choices(block, 0)
        locked = per_instruction_choices(block, 0, opcode_locked=True)
        assert locked < free

    def test_report_fields(self):
        block = BasicBlock.from_text(LISTING_5)
        report = space_report(block)
        assert report["num_instructions"] == 10
        assert report["log10_space_size"] > 20
        assert set(report) == {
            "num_instructions",
            "num_dependencies",
            "log10_space_size",
            "space_size",
        }
