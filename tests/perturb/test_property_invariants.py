"""Property-based invariants of the perturbation layer, across all engines.

Γ exists three times: the struct-of-arrays wave engine the explanation
pipeline runs (``engine="soa"``), the pre-SoA per-perturbation vectorized
engine kept as a benchmark baseline (``engine="legacy"``), and the scalar
reference engine (``engine="reference"``, also reachable as
``PerturbationConfig(vectorized=False)``) kept as oracle.  This suite pins
the contract between them over *generated* blocks, feature sets and
probability configurations:

* every perturbed block from every engine is valid x86 with ≥ 1 instruction,
* every feature requested to be preserved is present in every perturbation,
  from every engine — including the memory-dependency case where breaking a
  *register* dependency must not rename a base/index register through a
  preserved memory operand (a real bug this suite's generators caught),
* under degenerate probabilities (every coin 0 or 1, where no engine
  consumes random state for flips — the ``_vector_flips`` contract) all
  three engines are bit-for-bit identical, perturbation by perturbation,
* the identity configuration (retain everything, attempt nothing) returns
  the original block from every engine.

Bit-identity under *arbitrary* probabilities is deliberately not asserted:
the engines draw the same distributions but consume the stream in different
orders (per-coin rectangles and whole-wave pick pre-draws vs sequential
scalar calls), so only the degenerate corner — where the flip contract says
no state is consumed at all — is stream-exact across engines.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.bb.block import BasicBlock
from repro.bb.features import extract_features, features_present
from repro.data.synthesis import BlockSynthesizer
from repro.isa.validation import validate_block_instructions
from repro.perturb.algorithm import BlockPerturber
from repro.perturb.config import PerturbationConfig, ReplacementScheme

_SETTINGS = dict(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)

#: All three Γ engines, oracle first (see module docstring).
ENGINES = ("reference", "legacy", "soa")


@st.composite
def synthetic_blocks(draw):
    """Random valid blocks from the dataset synthesiser."""
    seed = draw(st.integers(min_value=0, max_value=10_000))
    size = draw(st.integers(min_value=2, max_value=8))
    source = draw(st.sampled_from(["clang", "openblas"]))
    return BlockSynthesizer(seed).generate(size, source=source)


@st.composite
def probability_configs(draw):
    """Arbitrary probability mixes for both replacement schemes."""
    return PerturbationConfig(
        p_instruction_retain=draw(st.floats(0.0, 1.0)),
        p_dependency_retain=draw(st.floats(0.0, 1.0)),
        p_delete=draw(st.floats(0.0, 1.0)),
        p_dependency_explicit_retain=draw(st.floats(0.0, 1.0)),
        replacement_scheme=draw(st.sampled_from(list(ReplacementScheme))),
    )


@st.composite
def degenerate_configs(draw):
    """Configs whose every coin is 0 or 1 — no flip consumes random state,
    so all three engines must walk identical rng streams."""
    zero_one = st.sampled_from([0.0, 1.0])
    return PerturbationConfig(
        p_instruction_retain=draw(zero_one),
        p_dependency_retain=draw(zero_one),
        p_delete=draw(zero_one),
        p_dependency_explicit_retain=draw(zero_one),
        replacement_scheme=draw(st.sampled_from(list(ReplacementScheme))),
    )


@st.composite
def feature_subsets(draw, block):
    features = extract_features(block)
    size = draw(st.integers(min_value=0, max_value=min(3, len(features))))
    if size == 0:
        return []
    indices = draw(
        st.lists(
            st.integers(min_value=0, max_value=len(features) - 1),
            min_size=size,
            max_size=size,
            unique=True,
        )
    )
    return [features[i] for i in indices]


@given(
    block=synthetic_blocks(),
    config=probability_configs(),
    seed=st.integers(min_value=0, max_value=1000),
)
@settings(**_SETTINGS)
def test_all_engines_always_produce_valid_blocks(block, config, seed):
    for engine in ENGINES:
        perturber = BlockPerturber(block, config, rng=seed, engine=engine)
        for perturbed in perturber.perturb_many(4):
            validate_block_instructions(perturbed.instructions)
            assert perturbed.num_instructions >= 1


@given(
    block=synthetic_blocks(),
    config=probability_configs(),
    seed=st.integers(min_value=0, max_value=1000),
    data=st.data(),
)
@settings(**_SETTINGS)
def test_all_engines_preserve_requested_features(block, config, seed, data):
    preserved = data.draw(feature_subsets(block))
    for engine in ENGINES:
        perturber = BlockPerturber(block, config, rng=seed, engine=engine)
        for perturbed in perturber.perturb_many(4, preserved):
            assert features_present(preserved, perturbed), (
                f"{engine} lost a preserved feature in:\n{perturbed.text}"
            )


@given(
    block=synthetic_blocks(),
    config=degenerate_configs(),
    seed=st.integers(min_value=0, max_value=1000),
    data=st.data(),
)
@settings(**_SETTINGS)
def test_engines_bit_identical_under_degenerate_probabilities(
    block, config, seed, data
):
    """With every coin fixed, all engines consume identical rng streams, so
    the perturbation sequences must match key for key, three ways."""
    preserved = data.draw(feature_subsets(block))
    sequences = {}
    for engine in ENGINES:
        perturber = BlockPerturber(block, config, rng=seed, engine=engine)
        sequences[engine] = [p.key() for p in perturber.perturb_many(6, preserved)]
    assert sequences["soa"] == sequences["reference"]
    assert sequences["legacy"] == sequences["reference"]


@given(block=synthetic_blocks(), seed=st.integers(min_value=0, max_value=1000))
@settings(**_SETTINGS)
def test_identity_config_returns_original_block(block, seed):
    identity = PerturbationConfig(
        p_instruction_retain=1.0, p_dependency_retain=1.0
    )
    for engine in ENGINES:
        perturber = BlockPerturber(block, identity, rng=seed, engine=engine)
        for perturbed in perturber.perturb_many(3):
            assert perturbed.key() == block.key()


class TestLockedMemoryRenameRegression:
    """The bug the generated-block suite surfaced, pinned explicitly.

    The block's two instructions share a memory location *and* the base
    register ``rbp`` carries a separate register dependency.  Preserving the
    memory WAR dependency must survive Γ breaking the register dependency:
    renaming ``rbp`` inside either locked memory operand would silently move
    the preserved address.
    """

    BLOCK = BasicBlock.from_text(
        "mov rbp, qword ptr [rbp + 64]\nmovups xmmword ptr [rbp + 64], xmm15"
    )

    def _memory_dependency_features(self):
        return [
            feature
            for feature in extract_features(self.BLOCK)
            if getattr(feature, "location_space", None) == "mem"
        ]

    def test_block_has_the_conflicting_dependencies(self):
        features = extract_features(self.BLOCK)
        assert self._memory_dependency_features()
        assert any(
            getattr(feature, "location_space", None) == "reg" for feature in features
        )

    @pytest.mark.parametrize("engine", ENGINES)
    def test_preserved_memory_dependency_survives_register_breaking(self, engine):
        preserved = self._memory_dependency_features()
        config = PerturbationConfig()
        for seed in range(10):
            perturber = BlockPerturber(self.BLOCK, config, rng=seed, engine=engine)
            for perturbed in perturber.perturb_many(10, preserved):
                assert features_present(preserved, perturbed), perturbed.text
