"""Tests for replacement pools and operand renaming helpers."""

import pytest

from repro.bb.block import BasicBlock
from repro.isa.parser import parse_instruction
from repro.isa.registers import register
from repro.perturb.replacements import (
    block_register_roots,
    cache_opcode_replacements,
    opcode_replacements,
    perturb_memory_displacement,
    random_immediate,
    random_register_rename,
    register_renaming_candidates,
    registers_in_operand,
    rename_register_in_instruction,
)
from repro.utils.rng import as_rng


class TestOpcodeReplacements:
    def test_alu_instruction_has_pool(self):
        assert len(opcode_replacements(parse_instruction("add rcx, rax"))) > 5

    def test_lea_pool_empty(self):
        assert opcode_replacements(parse_instruction("lea rax, [rbx + 8]")) == []

    def test_cache_covers_all_instructions(self):
        block = BasicBlock.from_text("add rcx, rax\nlea rdx, [rcx + 8]\npop rbx")
        cache = cache_opcode_replacements(block)
        assert set(cache) == {0, 1, 2}
        assert cache[1] == []


class TestRegisterRenaming:
    def test_candidates_same_width_and_class(self):
        for candidate in register_renaming_candidates(register("ecx")):
            assert candidate.width == 32
            assert candidate.root != "rcx"

    def test_forbidden_roots_excluded(self):
        candidates = register_renaming_candidates(
            register("rcx"), forbidden_roots=["rax", "rbx"]
        )
        assert all(c.root not in ("rax", "rbx", "rcx") for c in candidates)

    def test_prefers_registers_unused_in_block(self):
        block = BasicBlock.from_text("add rcx, rax\nmov rdx, rcx")
        used = block_register_roots(block)
        candidates = register_renaming_candidates(
            register("rcx"), prefer_unused_in=block
        )
        assert all(c.root not in used for c in candidates)

    def test_random_rename_returns_candidate_or_none(self):
        rng = as_rng(0)
        picked = random_register_rename(rng, register("rcx"))
        assert picked is not None and picked.root != "rcx"

    def test_random_rename_none_when_everything_forbidden(self):
        rng = as_rng(0)
        all_roots = [r.root for r in register_renaming_candidates(register("rcx"))]
        assert (
            random_register_rename(rng, register("rcx"), forbidden_roots=all_roots)
            is None
        )


class TestRenameInInstruction:
    def test_register_operand_renamed_with_width(self):
        inst = parse_instruction("mov ecx, edx")
        renamed = rename_register_in_instruction(inst, "rdx", register("rbx"))
        assert str(renamed) == "mov ecx, ebx"

    def test_memory_base_renamed(self):
        inst = parse_instruction("mov rax, qword ptr [rdi + 8]")
        renamed = rename_register_in_instruction(inst, "rdi", register("rsi"))
        assert "rsi" in str(renamed) and "rdi" not in str(renamed)

    def test_unrelated_registers_untouched(self):
        inst = parse_instruction("add rcx, rax")
        renamed = rename_register_in_instruction(inst, "rbx", register("rdx"))
        assert renamed.key() == inst.key()

    def test_all_occurrences_renamed(self):
        inst = parse_instruction("lea rax, [rcx + rcx*4]")
        renamed = rename_register_in_instruction(inst, "rcx", register("r9"))
        assert "rcx" not in str(renamed)


class TestOtherPerturbations:
    def test_memory_displacement_changes_address_key(self):
        operand = parse_instruction("mov rax, qword ptr [rdi + 8]").operands[1]
        changed = perturb_memory_displacement(as_rng(0), operand)
        assert changed.address_key() != operand.address_key()
        assert changed.base is operand.base

    def test_random_immediate_preserves_width(self):
        operand = parse_instruction("shl eax, 3").operands[1]
        new = random_immediate(as_rng(0), operand)
        assert new.width == operand.width
        assert 0 <= new.value < 128

    def test_registers_in_operand(self):
        inst = parse_instruction("mov rax, qword ptr [rdi + rsi*8]")
        roots = {r.root for r in registers_in_operand(inst.operands[1])}
        assert roots == {"rdi", "rsi"}
        assert registers_in_operand(inst.operands[0])[0].root == "rax"
