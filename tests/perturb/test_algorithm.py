"""Tests for the perturbation algorithm Γ (Algorithm 1)."""

import pytest

from repro.bb.block import BasicBlock
from repro.bb.features import (
    DependencyFeature,
    InstructionFeature,
    NumInstructionsFeature,
    extract_features,
    feature_present,
    features_present,
)
from repro.isa.validation import validate_block_instructions
from repro.perturb.algorithm import BlockPerturber, PreservationConstraints
from repro.perturb.config import PerturbationConfig, ReplacementScheme
from repro.utils.errors import PerturbationError


@pytest.fixture
def block():
    # Listing 1(a) of the paper.
    return BasicBlock.from_text("add rcx, rax\nmov rdx, rcx\npop rbx")


@pytest.fixture
def div_block():
    return BasicBlock.from_text(
        """
        mov ecx, edx
        xor edx, edx
        lea rax, [rcx + rax - 1]
        div rcx
        mov rdx, rcx
        imul rax, rcx
        """
    )


def features_by_type(block):
    features = extract_features(block)
    return (
        [f for f in features if isinstance(f, InstructionFeature)],
        [f for f in features if isinstance(f, DependencyFeature)],
        [f for f in features if isinstance(f, NumInstructionsFeature)][0],
    )


class TestConstraints:
    def test_instruction_feature_locks_instruction(self, block):
        insts, _, _ = features_by_type(block)
        constraints = PreservationConstraints.from_features(block, [insts[0]])
        assert 0 in constraints.locked_instructions
        assert 0 in constraints.locked_opcodes
        assert not constraints.preserve_count

    def test_dependency_feature_locks_endpoints(self, block):
        _, deps, _ = features_by_type(block)
        constraints = PreservationConstraints.from_features(block, [deps[0]])
        assert {0, 1} <= constraints.locked_opcodes
        assert "rcx" in constraints.roots_locked_at(0)
        assert "rcx" in constraints.roots_locked_at(1)

    def test_count_feature_sets_preserve_count(self, block):
        _, _, count = features_by_type(block)
        constraints = PreservationConstraints.from_features(block, [count])
        assert constraints.preserve_count

    def test_out_of_range_instruction_feature_rejected(self, block):
        bogus = InstructionFeature(index=9, mnemonic="add", operand_text=("rcx", "rax"))
        with pytest.raises(PerturbationError):
            PreservationConstraints.from_features(block, [bogus])

    def test_foreign_dependency_feature_rejected(self, block):
        from repro.bb.dependencies import DependencyKind

        bogus = DependencyFeature(
            source=0,
            destination=2,
            dep_kind=DependencyKind.RAW,
            location_space="reg",
            source_mnemonic="add",
            destination_mnemonic="pop",
        )
        with pytest.raises(PerturbationError):
            PreservationConstraints.from_features(block, [bogus])


class TestPerturbationValidity:
    def test_outputs_are_valid_blocks(self, div_block):
        perturber = BlockPerturber(div_block, rng=0)
        for perturbed in perturber.perturb_many(50):
            validate_block_instructions(perturbed.instructions)

    def test_outputs_are_never_empty(self, block):
        config = PerturbationConfig(p_instruction_retain=0.0, p_delete=1.0)
        perturber = BlockPerturber(block, config, rng=0)
        for perturbed in perturber.perturb_many(30):
            assert perturbed.num_instructions >= 1

    def test_perturbations_differ_from_original(self, div_block):
        perturber = BlockPerturber(div_block, rng=1)
        samples = perturber.perturb_many(40)
        assert any(sample != div_block for sample in samples)

    def test_diversity_of_perturbations(self, div_block):
        perturber = BlockPerturber(div_block, rng=2)
        unique = {sample.key() for sample in perturber.perturb_many(60)}
        # Γ must produce a diverse set (Section 5.2), not a handful of variants.
        assert len(unique) > 20


class TestFeaturePreservation:
    def test_instruction_feature_preserved(self, div_block):
        insts, _, _ = features_by_type(div_block)
        perturber = BlockPerturber(div_block, rng=3)
        for perturbed in perturber.perturb_many(40, [insts[3]]):
            assert feature_present(insts[3], perturbed)

    def test_dependency_feature_preserved(self, block):
        _, deps, _ = features_by_type(block)
        perturber = BlockPerturber(block, rng=4)
        for perturbed in perturber.perturb_many(40, [deps[0]]):
            assert feature_present(deps[0], perturbed)

    def test_count_feature_preserved(self, div_block):
        _, _, count = features_by_type(div_block)
        perturber = BlockPerturber(div_block, rng=5)
        for perturbed in perturber.perturb_many(40, [count]):
            assert perturbed.num_instructions == div_block.num_instructions

    def test_combined_features_preserved(self, div_block):
        insts, deps, count = features_by_type(div_block)
        preserved = [insts[0], deps[0], count]
        perturber = BlockPerturber(div_block, rng=6)
        for perturbed in perturber.perturb_many(30, preserved):
            assert features_present(preserved, perturbed)

    def test_preserving_everything_returns_original(self, block):
        features = extract_features(block)
        perturber = BlockPerturber(block, rng=7)
        for perturbed in perturber.perturb_many(10, features):
            assert perturbed == block


class TestConfigurationEffects:
    def test_zero_retention_perturbs_aggressively(self, div_block):
        config = PerturbationConfig(p_instruction_retain=0.0)
        perturber = BlockPerturber(div_block, config, rng=8)
        changed = sum(1 for p in perturber.perturb_many(30) if p != div_block)
        assert changed >= 28

    def test_full_retention_changes_nothing_structural(self, div_block):
        config = PerturbationConfig(
            p_instruction_retain=1.0, p_dependency_retain=1.0,
            p_dependency_explicit_retain=1.0,
        )
        perturber = BlockPerturber(div_block, config, rng=9)
        for perturbed in perturber.perturb_many(20):
            assert perturbed == div_block

    def test_no_deletion_when_p_delete_zero(self, div_block):
        config = PerturbationConfig(p_delete=0.0)
        perturber = BlockPerturber(div_block, config, rng=10)
        for perturbed in perturber.perturb_many(30):
            assert perturbed.num_instructions == div_block.num_instructions

    def test_whole_instruction_scheme_changes_operands(self, div_block):
        config = PerturbationConfig(
            replacement_scheme=ReplacementScheme.WHOLE_INSTRUCTION,
            p_instruction_retain=0.0,
        )
        perturber = BlockPerturber(div_block, config, rng=11)
        samples = perturber.perturb_many(30)
        assert any(s != div_block for s in samples)
        for sample in samples:
            validate_block_instructions(sample.instructions)

    def test_deterministic_given_seed(self, div_block):
        a = BlockPerturber(div_block, rng=42).perturb_many(10)
        b = BlockPerturber(div_block, rng=42).perturb_many(10)
        assert [x.key() for x in a] == [y.key() for y in b]


class TestReferenceEngine:
    """The scalar reference Γ (``vectorized=False``) must satisfy the same
    contracts as the fast path — it is the benchmark baseline and oracle."""

    REFERENCE = PerturbationConfig(vectorized=False)

    def test_outputs_are_valid_blocks(self, div_block):
        perturber = BlockPerturber(div_block, self.REFERENCE, rng=0)
        for perturbed in perturber.perturb_many(40):
            validate_block_instructions(perturbed.instructions)

    def test_features_preserved(self, div_block):
        insts, deps, count = features_by_type(div_block)
        preserved = [insts[0], deps[0], count]
        perturber = BlockPerturber(div_block, self.REFERENCE, rng=1)
        for perturbed in perturber.perturb_many(30, preserved):
            assert features_present(preserved, perturbed)

    def test_deterministic_given_seed(self, div_block):
        a = BlockPerturber(div_block, self.REFERENCE, rng=7).perturb_many(10)
        b = BlockPerturber(div_block, self.REFERENCE, rng=7).perturb_many(10)
        assert [x.key() for x in a] == [y.key() for y in b]

    def test_similar_perturbation_rate_to_fast_path(self, div_block):
        """Both engines sample the same distribution family: comparable
        fractions of perturbed-away blocks under the default config."""
        fast = BlockPerturber(div_block, rng=3).perturb_many(150)
        reference = BlockPerturber(div_block, self.REFERENCE, rng=3).perturb_many(150)
        fast_changed = sum(1 for p in fast if p != div_block) / len(fast)
        reference_changed = sum(1 for p in reference if p != div_block) / len(reference)
        assert abs(fast_changed - reference_changed) < 0.15
