"""Tests for the perturbation sampler (D_F and D distributions)."""

import pytest

from repro.bb.block import BasicBlock
from repro.bb.features import NumInstructionsFeature, extract_features
from repro.perturb.config import PerturbationConfig
from repro.perturb.sampler import PerturbationSampler


@pytest.fixture
def block():
    return BasicBlock.from_text(
        """
        mov ecx, edx
        xor edx, edx
        lea rax, [rcx + rax - 1]
        div rcx
        mov rdx, rcx
        imul rax, rcx
        """
    )


class TestSampling:
    def test_sample_counts(self, block):
        sampler = PerturbationSampler(block, rng=0)
        assert len(sampler.sample((), 25)) == 25
        assert sampler.samples_drawn == 25

    def test_unconstrained_equals_empty_feature_set(self, block):
        a = PerturbationSampler(block, rng=5).sample_unconstrained(10)
        b = PerturbationSampler(block, rng=5).sample((), 10)
        assert [x.key() for x in a] == [y.key() for y in b]

    def test_background_population_is_cached(self, block):
        sampler = PerturbationSampler(block, rng=1)
        first = sampler.background_population(50)
        second = sampler.background_population(50)
        assert first == second
        assert len(first) == 50

    def test_background_population_grows_on_demand(self, block):
        sampler = PerturbationSampler(block, rng=2)
        small = list(sampler.background_population(10))
        large = sampler.background_population(30)
        assert len(large) == 30
        assert large[:10] == small


class TestCoverage:
    def test_empty_set_has_full_coverage(self, block):
        sampler = PerturbationSampler(block, rng=3)
        assert sampler.coverage_of([], 100) == pytest.approx(1.0)

    def test_coverage_decreases_with_more_features(self, block):
        sampler = PerturbationSampler(block, rng=4)
        features = extract_features(block)
        single = sampler.coverage_of(features[:1], 300)
        double = sampler.coverage_of(features[:2], 300)
        assert 0.0 <= double <= single <= 1.0

    def test_count_feature_coverage_reasonable(self, block):
        sampler = PerturbationSampler(block, rng=5)
        coverage = sampler.coverage_of([NumInstructionsFeature(block.num_instructions)], 400)
        # Roughly the probability that no instruction gets deleted.
        assert 0.2 < coverage < 0.95

    def test_coverage_of_absent_feature_is_low(self, block):
        sampler = PerturbationSampler(block, rng=6)
        foreign = NumInstructionsFeature(block.num_instructions + 5)
        assert sampler.coverage_of([foreign], 200) < 0.05


class TestPreservationRate:
    def test_preservation_rate_is_high_for_every_single_feature(self, block):
        sampler = PerturbationSampler(block, rng=7)
        for feature in extract_features(block):
            assert sampler.preservation_rate([feature], 60) >= 0.95, feature.describe()

    def test_preservation_rate_empty_features(self, block):
        sampler = PerturbationSampler(block, rng=8)
        assert sampler.preservation_rate([], 10) == 1.0

    def test_config_propagates_to_perturber(self, block):
        config = PerturbationConfig(p_instruction_retain=1.0, p_dependency_explicit_retain=1.0)
        sampler = PerturbationSampler(block, config, rng=9)
        samples = sampler.sample_unconstrained(10)
        assert all(sample == block for sample in samples)
