"""Encoded perturbation batches: round-trip parity with the materialised path.

The columnar pipeline only works if an :class:`EncodedRow` is a perfect
stand-in for the block the eager engine would have built: same content key,
same materialised block, and — critically — produced from the *same random
stream*, so switching representations can never move a single rng draw.
These tests pin that contract with hypothesis over synthetic blocks and the
full probability space of Γ configs (degenerate corners included), plus the
accounting and batch-container behaviour downstream layers rely on.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.bb.block import BasicBlock
from repro.bb.features import extract_features
from repro.data.synthesis import BlockSynthesizer
from repro.perturb.algorithm import BlockPerturber
from repro.perturb.batch import (
    EncodedRow,
    PerturbationBatch,
    encoded_enabled,
    encoded_tally,
    forced_encoded,
    materialize_row,
    row_refs,
    thread_encoded_tally,
)
from repro.perturb.config import PerturbationConfig
from repro.perturb.sampler import PerturbationSampler

_SETTINGS = dict(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)

#: Probability grid for Γ knobs — includes both degenerate corners (0.0/1.0
#: waves skip the pre-drawn pick rectangles and draw inside row resolution,
#: a distinct rng pattern the parity sweep must cover).
_PROBS = st.sampled_from([0.0, 0.1, 0.33, 0.5, 0.9, 1.0])


@st.composite
def synthetic_blocks(draw):
    seed = draw(st.integers(min_value=0, max_value=10_000))
    size = draw(st.integers(min_value=2, max_value=8))
    source = draw(st.sampled_from(["clang", "openblas"]))
    return BlockSynthesizer(seed).generate(size, source=source)


@st.composite
def gamma_configs(draw):
    return PerturbationConfig(
        p_instruction_retain=draw(_PROBS),
        p_dependency_retain=draw(_PROBS),
        p_delete=draw(_PROBS),
        p_dependency_explicit_retain=draw(_PROBS),
    )


def _feature_subset(draw, block):
    features = extract_features(block)
    if not features:
        return ()
    size = draw(st.integers(min_value=0, max_value=min(3, len(features))))
    if not size:
        return ()
    indices = draw(
        st.lists(
            st.integers(min_value=0, max_value=len(features) - 1),
            min_size=size,
            max_size=size,
            unique=True,
        )
    )
    return tuple(features[i] for i in indices)


class TestRoundTripParity:
    """``materialize(encode(row))`` bit-equals the eager engine's block."""

    @given(
        block=synthetic_blocks(),
        config=gamma_configs(),
        seed=st.integers(min_value=0, max_value=1000),
        data=st.data(),
    )
    @settings(**_SETTINGS)
    def test_batch_rows_equal_eager_blocks_and_rng_stream(
        self, block, config, seed, data
    ):
        features = _feature_subset(data.draw, block)
        eager = BlockPerturber(block, config=config)
        encoded = BlockPerturber(block, config=config)
        rng_a = np.random.default_rng(seed)
        rng_b = np.random.default_rng(seed)
        blocks = eager.perturb_many(20, features, rng=rng_a)
        batch = encoded.perturb_batch(20, features, rng=rng_b)
        assert isinstance(batch, PerturbationBatch)
        assert len(batch) == len(blocks)
        for expected, row in zip(blocks, batch.rows):
            materialised = materialize_row(row)
            assert materialised.key() == expected.key()
            assert str(materialised) == str(expected)
            assert [i.key() for i in row_refs(row)] == [
                i.key() for i in expected.instructions
            ]
        # Both engines must leave the stream at the same position: any
        # divergence silently re-seeds every later draw of a session.
        assert (
            rng_a.integers(0, 2**31, size=8).tolist()
            == rng_b.integers(0, 2**31, size=8).tolist()
        )
        # Accounting parity too — the fallback counters feed SessionStats.
        assert encoded.perturbations == eager.perturbations
        assert encoded.fallbacks == eager.fallbacks

    @given(
        block=synthetic_blocks(),
        seed=st.integers(min_value=0, max_value=1000),
    )
    @settings(**_SETTINGS)
    def test_row_key_equals_block_key(self, block, seed):
        batch = BlockPerturber(block).perturb_batch(
            10, rng=np.random.default_rng(seed)
        )
        for row in batch.rows:
            assert row.key() == materialize_row(row).key()

    def test_identity_rows_reuse_the_original_instance(self):
        block = BasicBlock.from_text("add rcx, rax\nmov rdx, rcx")
        config = PerturbationConfig(
            p_instruction_retain=1.0,
            p_dependency_retain=1.0,
            p_delete=0.0,
            p_dependency_explicit_retain=1.0,
        )
        batch = BlockPerturber(block, config=config, engine="soa").perturb_batch(
            16, rng=np.random.default_rng(0)
        )
        assert all(row is block for row in batch.rows)
        assert batch.encoded_count == 0  # plain blocks, nothing deferred
        assert batch.materialized_count == len(batch)


class TestNonWaveEngines:
    """The scalar oracles keep emitting blocks — wrapped, never encoded."""

    @pytest.mark.parametrize("engine", ["reference", "legacy"])
    def test_batch_wraps_plain_blocks(self, engine):
        block = BasicBlock.from_text(
            "mov rax, rbx\nadd rcx, rax\nimul rdx, rcx\nsub rsi, 4"
        )
        perturber = BlockPerturber(block, engine=engine)
        base = encoded_tally()
        batch = perturber.perturb_batch(12, rng=np.random.default_rng(3))
        assert isinstance(batch, PerturbationBatch)
        assert all(isinstance(row, BasicBlock) for row in batch.rows)
        delta = encoded_tally().delta(base)
        assert delta.encoded == 0
        assert delta.materialized == 12

    @pytest.mark.parametrize("engine", ["reference", "legacy"])
    def test_oracle_engines_match_wave_batch(self, engine):
        block = BasicBlock.from_text(
            "mov rax, rbx\nadd rcx, rax\nimul rdx, rcx\nsub rsi, 4"
        )
        oracle = BlockPerturber(block, engine=engine)
        oracle_blocks = oracle.perturb_many(8, rng=np.random.default_rng(9))
        oracle_batch = BlockPerturber(block, engine=engine).perturb_batch(
            8, rng=np.random.default_rng(9)
        )
        assert [b.key() for b in oracle_batch] == [b.key() for b in oracle_blocks]


class TestAccounting:
    def test_wave_batch_counts_encoded_rows(self):
        block = BasicBlock.from_text(
            "mov rax, rbx\nadd rcx, rax\nimul rdx, rcx\nsub rsi, 4"
        )
        base = encoded_tally()
        thread_base = thread_encoded_tally()
        batch = BlockPerturber(block, engine="soa").perturb_batch(
            50, rng=np.random.default_rng(1)
        )
        delta = encoded_tally().delta(base)
        thread_delta = thread_encoded_tally().delta(thread_base)
        assert delta.encoded + delta.materialized == 50
        assert delta.encoded == batch.encoded_count + sum(
            1 for row in batch.rows if isinstance(row, BasicBlock) and row is block
        )
        # Single-threaded: the thread tally mirrors the process tally.
        assert thread_delta == delta

    def test_materialize_counts_once_and_memoises(self):
        block = BasicBlock.from_text(
            "mov rax, rbx\nadd rcx, rax\nimul rdx, rcx\nsub rsi, 4"
        )
        batch = BlockPerturber(block, engine="soa").perturb_batch(
            50, rng=np.random.default_rng(2)
        )
        encoded_rows = [r for r in batch.rows if isinstance(r, EncodedRow)]
        assert encoded_rows, "workload produced no deferred rows"
        row = encoded_rows[0]
        base = encoded_tally()
        first = row.materialize()
        second = row.materialize()
        assert first is second
        assert encoded_tally().delta(base).materialized == 1
        assert row.materialized

    def test_key_memo_seeds_materialised_block(self):
        block = BasicBlock.from_text(
            "mov rax, rbx\nadd rcx, rax\nimul rdx, rcx\nsub rsi, 4"
        )
        batch = BlockPerturber(block, engine="soa").perturb_batch(
            50, rng=np.random.default_rng(4)
        )
        row = next(r for r in batch.rows if isinstance(r, EncodedRow))
        key = row.key()  # memoise before materialising
        assert row.materialize().key() == key


class TestBatchContainer:
    def _batch(self):
        block = BasicBlock.from_text(
            "mov rax, rbx\nadd rcx, rax\nimul rdx, rcx\nsub rsi, 4"
        )
        return BlockPerturber(block, engine="soa").perturb_batch(
            12, rng=np.random.default_rng(7)
        )

    def test_sequence_protocol_materialises(self):
        batch = self._batch()
        assert len(batch) == 12
        assert isinstance(batch[0], BasicBlock)
        assert all(isinstance(b, BasicBlock) for b in batch[2:5])
        assert [b.key() for b in batch] == [b.key() for b in batch.blocks()]

    def test_select_shares_row_objects(self):
        batch = self._batch()
        sub = batch.select([3, 1, 3])
        assert sub.rows[0] is batch.rows[3]
        assert sub.rows[1] is batch.rows[1]
        assert sub.rows[2] is batch.rows[3]

    def test_concat_preserves_row_identity_and_order(self):
        a, b = self._batch(), self._batch()
        fused = PerturbationBatch.concat([a, b])
        assert len(fused) == len(a) + len(b)
        assert fused.rows[: len(a)] == a.rows
        assert fused.rows[len(a) :] == b.rows

    def test_marker_attribute(self):
        assert PerturbationBatch.encoded_perturbations is True
        assert self._batch().encoded_perturbations is True


class TestSwitch:
    def test_forced_encoded_overrides_env(self):
        with forced_encoded(False):
            assert not encoded_enabled()
            with forced_encoded(True):
                assert encoded_enabled()
            assert not encoded_enabled()

    def test_env_switch(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENCODED", "0")
        assert not encoded_enabled()
        monkeypatch.setenv("REPRO_ENCODED", "1")
        assert encoded_enabled()


class TestSamplerEncoded:
    def test_sample_encoded_matches_sample(self):
        block = BasicBlock.from_text(
            "mov rax, rbx\nadd rcx, rax\nimul rdx, rcx\nsub rsi, 4"
        )
        eager = PerturbationSampler(block, rng=11)
        encoded = PerturbationSampler(block, rng=11)
        blocks = eager.sample((), 15)
        batch = encoded.sample_encoded((), 15)
        assert isinstance(batch, PerturbationBatch)
        assert [b.key() for b in batch] == [b.key() for b in blocks]
        assert encoded.samples_drawn == eager.samples_drawn
