"""Tests for the perturbation configuration."""

import pytest

from repro.perturb.config import PerturbationConfig, ReplacementScheme


class TestDefaults:
    def test_paper_defaults(self):
        config = PerturbationConfig()
        assert config.p_instruction_retain == 0.5
        assert config.p_dependency_retain == 0.5
        assert config.p_delete == pytest.approx(0.33)
        assert config.p_dependency_explicit_retain == pytest.approx(0.1)
        assert config.replacement_scheme is ReplacementScheme.OPCODE_ONLY


class TestValidation:
    @pytest.mark.parametrize(
        "field", ["p_instruction_retain", "p_dependency_retain", "p_delete",
                  "p_dependency_explicit_retain"]
    )
    def test_probabilities_must_be_in_unit_interval(self, field):
        with pytest.raises(ValueError):
            PerturbationConfig(**{field: 1.5})

    def test_max_attempts_positive(self):
        with pytest.raises(ValueError):
            PerturbationConfig(max_block_attempts=0)


class TestDerivedProbabilities:
    def test_attempt_probability_compensates_explicit_retention(self):
        config = PerturbationConfig(
            p_dependency_retain=0.5, p_dependency_explicit_retain=0.1
        )
        attempt = config.p_dependency_perturb_attempt
        # retain = explicit + (1 - explicit) * (1 - attempt) should equal 0.5
        retain = 0.1 + 0.9 * (1 - attempt)
        assert retain == pytest.approx(0.5)

    def test_full_explicit_retention_disables_attempts(self):
        config = PerturbationConfig(p_dependency_explicit_retain=1.0)
        assert config.p_dependency_perturb_attempt == 0.0

    def test_attempt_probability_clamped(self):
        config = PerturbationConfig(
            p_dependency_retain=0.0, p_dependency_explicit_retain=0.5
        )
        assert 0.0 <= config.p_dependency_perturb_attempt <= 1.0


class TestOverrides:
    def test_with_overrides_returns_new_object(self):
        config = PerturbationConfig()
        changed = config.with_overrides(p_delete=0.5)
        assert changed.p_delete == 0.5
        assert config.p_delete == pytest.approx(0.33)

    def test_with_overrides_validates(self):
        with pytest.raises(ValueError):
            PerturbationConfig().with_overrides(p_delete=2.0)
