"""Tests for the hardware oracle, the dataset object and its splits."""

import pytest

from repro.bb.block import BasicBlock, BlockCategory
from repro.data.bhive import BHiveDataset, BlockRecord
from repro.data.oracle import HardwareOracle
from repro.data.splits import (
    category_order,
    explanation_test_set,
    partition_by_category,
    partition_by_source,
    train_test_split,
)
from repro.utils.errors import ReproError


@pytest.fixture(scope="module")
def dataset():
    return BHiveDataset.synthesize(
        120, min_instructions=3, max_instructions=10, rng=11
    )


class TestOracle:
    def test_deterministic_per_block(self):
        oracle = HardwareOracle("hsw")
        block = BasicBlock.from_text("add rcx, rax\nmov rdx, rcx")
        assert oracle.measure(block) == oracle.measure(block)

    def test_noise_bounded(self):
        noisy = HardwareOracle("hsw", noise=0.02)
        clean = HardwareOracle("hsw", noise=0.0)
        block = BasicBlock.from_text("div rcx\nimul rax, rcx")
        ratio = noisy.measure(block) / clean.measure(block)
        assert 0.9 < ratio < 1.1

    def test_different_seeds_give_different_noise(self):
        block = BasicBlock.from_text("add rcx, rax\nmov rdx, rcx")
        a = HardwareOracle("hsw", seed=1).measure(block)
        b = HardwareOracle("hsw", seed=2).measure(block)
        assert a != b

    def test_division_blocks_slow(self):
        oracle = HardwareOracle("hsw")
        div = oracle.measure(BasicBlock.from_text("div rcx\nimul rax, rcx"))
        add = oracle.measure(BasicBlock.from_text("add rcx, rax\nsub rbx, rdx"))
        assert div > 5 * add

    def test_callable_interface(self):
        oracle = HardwareOracle("skl")
        assert oracle(BasicBlock.from_text("nop")) > 0


class TestDataset:
    def test_synthesis_size_and_labels(self, dataset):
        assert len(dataset) >= 120
        for record in dataset:
            assert set(record.throughputs) == {"hsw", "skl"}
            assert record.throughput("hsw") > 0

    def test_block_ids_unique(self, dataset):
        keys = [record.block.key() for record in dataset]
        assert len(set(keys)) == len(keys)

    def test_categories_populated(self, dataset):
        categories = set(dataset.categories())
        assert {"Load", "Store"} <= categories

    def test_sources_populated(self, dataset):
        assert {"clang", "openblas"} <= set(dataset.sources())

    def test_missing_microarch_raises(self, dataset):
        with pytest.raises(ReproError):
            dataset[0].throughput("icelake")

    def test_filters(self, dataset):
        loads = dataset.filter_by_category(BlockCategory.LOAD)
        assert all(r.category == "Load" for r in loads)
        clang = dataset.filter_by_source("clang")
        assert all(r.source == "clang" for r in clang)
        sized = dataset.filter_by_size(4, 6)
        assert all(4 <= r.block.num_instructions <= 6 for r in sized)

    def test_sample_bounds(self, dataset):
        assert len(dataset.sample(10, rng=0)) == 10
        assert len(dataset.sample(10**6, rng=0)) == len(dataset)

    def test_save_and_load_round_trip(self, dataset, tmp_path):
        path = tmp_path / "dataset.json"
        subset = dataset.sample(15, rng=1)
        subset.save(path)
        restored = BHiveDataset.load(path)
        assert len(restored) == len(subset)
        assert restored.blocks()[0] == subset.blocks()[0]
        assert restored[0].throughputs == pytest.approx(subset[0].throughputs)


class TestSplits:
    def test_explanation_test_set_size_constraints(self, dataset):
        subset = explanation_test_set(dataset, 20, rng=2)
        assert len(subset) <= 20
        assert all(4 <= r.block.num_instructions <= 10 for r in subset)

    def test_train_test_split_partitions(self, dataset):
        train, test = train_test_split(dataset, 0.25, rng=3)
        assert len(train) + len(test) == len(dataset)
        assert len(test) == int(len(dataset) * 0.25)
        train_keys = {r.block.key() for r in train}
        assert all(r.block.key() not in train_keys for r in test)

    def test_train_test_split_validation(self, dataset):
        with pytest.raises(ValueError):
            train_test_split(dataset, 1.5)

    def test_partition_by_source(self, dataset):
        partitions = partition_by_source(dataset)
        assert sum(len(p) for p in partitions.values()) == len(dataset)

    def test_partition_by_category(self, dataset):
        partitions = partition_by_category(dataset)
        for name, part in partitions.items():
            assert all(r.category == name for r in part)

    def test_category_order_is_papers(self):
        assert category_order() == [
            "Load", "Load/Store", "Store", "Scalar", "Vector", "Scalar/Vector"
        ]
