"""Tests for the synthetic basic-block generator."""

import pytest

from repro.bb.block import BlockCategory
from repro.data.synthesis import SOURCE_PROFILES, BlockSynthesizer, SynthesisProfile
from repro.isa.validation import validate_block_instructions


class TestProfiles:
    def test_expected_sources_present(self):
        assert set(SOURCE_PROFILES) == {"clang", "openblas"}

    def test_profiles_normalise(self):
        names, weights = SOURCE_PROFILES["clang"].normalised()
        assert len(names) == len(weights)
        assert weights.sum() == pytest.approx(1.0)

    def test_custom_profile(self):
        profile = SynthesisProfile("custom", {"int_alu": 1.0, "lea": 1.0})
        names, weights = profile.normalised()
        assert names == ["int_alu", "lea"]
        assert all(w == pytest.approx(0.5) for w in weights)


class TestGeneration:
    def test_generated_blocks_are_valid(self):
        synthesizer = BlockSynthesizer(0)
        for _ in range(20):
            block = synthesizer.generate(6)
            validate_block_instructions(block.instructions)

    def test_requested_size_respected(self):
        synthesizer = BlockSynthesizer(1)
        for size in (2, 5, 9):
            assert synthesizer.generate(size).num_instructions == size

    def test_source_metadata_recorded(self):
        block = BlockSynthesizer(2).generate(4, source="openblas")
        assert block.source == "openblas"

    def test_deterministic_given_seed(self):
        a = BlockSynthesizer(42).generate_many(5, source="clang", rng=7)
        b = BlockSynthesizer(42).generate_many(5, source="clang", rng=7)
        assert [x.key() for x in a] == [y.key() for y in b]

    def test_generate_many_size_range(self):
        blocks = BlockSynthesizer(3).generate_many(
            30, min_instructions=3, max_instructions=6
        )
        assert len(blocks) == 30
        assert all(3 <= b.num_instructions <= 6 for b in blocks)

    def test_openblas_profile_is_vector_heavy(self):
        blocks = BlockSynthesizer(4).generate_many(30, source="openblas")
        vector_share = sum(
            any(inst.is_vector for inst in block) for block in blocks
        ) / len(blocks)
        assert vector_share > 0.5

    def test_clang_profile_is_scalar_heavy(self):
        blocks = BlockSynthesizer(5).generate_many(30, source="clang")
        scalar_share = sum(
            all(not inst.is_vector for inst in block) for block in blocks
        ) / len(blocks)
        assert scalar_share > 0.5

    def test_generated_blocks_have_dependencies_sometimes(self):
        blocks = BlockSynthesizer(6).generate_many(25, min_instructions=5, max_instructions=8)
        assert sum(1 for b in blocks if b.dependencies) > len(blocks) / 3


class TestCategoryGeneration:
    @pytest.mark.parametrize("category", list(BlockCategory))
    def test_generate_category_hits_target(self, category):
        synthesizer = BlockSynthesizer(7)
        block = synthesizer.generate_category(category, 6)
        validate_block_instructions(block.instructions)
        assert block.category is category or block.category.value in (
            category.value,
            # The forced fallback can land in a memory category when asked for
            # Load/Store combinations; everything else must match exactly.
            BlockCategory.LOAD_STORE.value if category in (BlockCategory.LOAD, BlockCategory.STORE) else category.value,
        )

    def test_vector_category_contains_no_memory(self):
        block = BlockSynthesizer(8).generate_category(BlockCategory.VECTOR, 5)
        assert not any(i.loads_memory or i.stores_memory for i in block)
