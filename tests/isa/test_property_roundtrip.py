"""Property-based round-trip of the ISA text layer.

For any parseable instruction text, ``format(parse(text))`` is the canonical
spelling: re-parsing it yields the same :class:`Instruction` structure, and
re-formatting is a fixed point.  The generators deliberately spell the same
structure many ways — mixed case, ragged whitespace, hex and decimal
immediates, ``reg*scale`` in both orders, explicit and inferred memory-size
prefixes, negative displacements — which is exactly the corner-case surface
the example-based formatter/parser tests do not reach.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa.formatter import format_instruction
from repro.isa.parser import parse_block_text, parse_instruction

_SETTINGS = dict(max_examples=120, deadline=None)

#: 64/32-bit GPRs usable in any operand position (stack/ip stay out, matching
#: the synthesizer's conventions).
_GPR64 = ("rax", "rbx", "rcx", "rdx", "rsi", "rdi", "r8", "r9", "r10", "r14")
_GPR32 = ("eax", "ebx", "ecx", "edx", "esi", "edi", "r8d", "r11d")
_XMM = ("xmm0", "xmm1", "xmm3", "xmm7", "xmm15")

_gpr64 = st.sampled_from(_GPR64)
_gpr32 = st.sampled_from(_GPR32)
_xmm = st.sampled_from(_XMM)


def _spell_int(value: int, hexadecimal: bool) -> str:
    if not hexadecimal:
        return str(value)
    sign = "-" if value < 0 else ""
    return f"{sign}0x{abs(value):x}"


@st.composite
def _immediates(draw):
    value = draw(st.integers(min_value=-(2**31), max_value=2**31 - 1))
    return _spell_int(value, draw(st.booleans()))


@st.composite
def _memory_operands(draw, prefix="qword"):
    """A memory reference: optional base, optional scaled index, displacement."""
    base = draw(st.one_of(st.none(), _gpr64))
    index = draw(st.one_of(st.none(), _gpr64))
    scale = draw(st.sampled_from((1, 2, 4, 8)))
    displacement = draw(st.integers(min_value=-4096, max_value=4096))
    if base is None and index is None and displacement == 0:
        # A bare [0] is not a representable memory operand.
        displacement = draw(st.integers(min_value=1, max_value=4096))
    terms = []
    if base is not None:
        terms.append(base)
    if index is not None:
        spelled = f"{index}*{scale}" if scale != 1 else index
        if scale != 1 and draw(st.booleans()):
            spelled = f"{scale}*{index}"  # the parser accepts both orders
        terms.append(spelled)
    expr = " + ".join(terms)
    if displacement or not terms:
        spelled = _spell_int(abs(displacement), draw(st.booleans()))
        if expr:
            expr = f"{expr} {'-' if displacement < 0 else '+'} {spelled}"
        else:
            expr = _spell_int(displacement, draw(st.booleans()))
    with_prefix = draw(st.booleans())
    body = f"[{expr}]"
    if with_prefix and prefix:
        ptr = " ptr" if draw(st.booleans()) else ""
        return f"{prefix}{ptr} {body}"
    return body


@st.composite
def _instruction_texts(draw):
    """One legal instruction, spelled with deliberate syntactic variety."""
    kind = draw(
        st.sampled_from(
            ("alu_rr", "alu_ri", "alu_rm", "mov_mr", "lea", "shift", "vec_rr",
             "vec_rm", "unary", "noop")
        )
    )
    if kind == "alu_rr":
        mnemonic = draw(st.sampled_from(("add", "sub", "and", "or", "xor", "cmp", "test", "mov")))
        wide = draw(st.booleans())
        regs = _gpr64 if wide else _gpr32
        text = f"{mnemonic} {draw(regs)}, {draw(regs)}"
    elif kind == "alu_ri":
        mnemonic = draw(st.sampled_from(("add", "sub", "and", "or", "xor", "cmp", "mov")))
        text = f"{mnemonic} {draw(_gpr64)}, {draw(_immediates())}"
    elif kind == "alu_rm":
        mnemonic = draw(st.sampled_from(("add", "sub", "mov")))
        text = f"{mnemonic} {draw(_gpr64)}, {draw(_memory_operands())}"
    elif kind == "mov_mr":
        text = f"mov {draw(_memory_operands())}, {draw(_gpr64)}"
    elif kind == "lea":
        # lea requires an address expression with at least one register.
        base = draw(_gpr64)
        displacement = draw(st.integers(min_value=-512, max_value=512))
        suffix = f" + {displacement}" if displacement > 0 else (
            f" - {abs(displacement)}" if displacement < 0 else ""
        )
        text = f"lea {draw(_gpr64)}, [{base}{suffix}]"
    elif kind == "shift":
        mnemonic = draw(st.sampled_from(("shl", "shr", "sar")))
        amount = draw(st.integers(min_value=1, max_value=31))
        text = f"{mnemonic} {draw(_gpr32)}, {amount}"
    elif kind == "vec_rr":
        mnemonic = draw(st.sampled_from(("addss", "mulss", "subsd", "movaps", "xorps")))
        text = f"{mnemonic} {draw(_xmm)}, {draw(_xmm)}"
    elif kind == "vec_rm":
        text = f"movups {draw(_xmm)}, {draw(_memory_operands(prefix='xmmword'))}"
    elif kind == "unary":
        mnemonic = draw(st.sampled_from(("inc", "dec", "neg", "not", "pop", "push")))
        text = f"{mnemonic} {draw(_gpr64)}"
    else:
        text = draw(st.sampled_from(("cdq", "cqo", "nop")))
    # Syntactic noise the canonical form must absorb.
    if draw(st.booleans()):
        text = text.upper() if draw(st.booleans()) else text.title()
    if draw(st.booleans()):
        text = "  " + text.replace(", ", " ,  ").replace(" ", "  ", 1)
    return text


@given(text=_instruction_texts())
@settings(**_SETTINGS)
def test_format_parse_roundtrip_is_canonical(text):
    parsed = parse_instruction(text)
    canonical = format_instruction(parsed)
    reparsed = parse_instruction(canonical)
    # Canonical text denotes the same structure...
    assert reparsed == parsed
    # ...and is a fixed point of another format/parse trip.
    assert format_instruction(reparsed) == canonical


@given(
    texts=st.lists(_instruction_texts(), min_size=1, max_size=6),
    data=st.data(),
)
@settings(**_SETTINGS)
def test_block_text_roundtrip(texts, data):
    """Whole listings round-trip through the block parser/formatter too,
    with comments, blank lines and paper-style line numbers stripped."""
    from repro.isa.formatter import format_block_lines

    lines = []
    for number, text in enumerate(texts, start=1):
        decorated = text
        if data.draw(st.booleans(), label="line-number"):
            decorated = f"{number}: {decorated}"
        if data.draw(st.booleans(), label="comment"):
            comment_char = data.draw(st.sampled_from("#;"), label="comment-char")
            decorated = f"{decorated} {comment_char} throughput-critical"
        lines.append(decorated)
        if data.draw(st.booleans(), label="blank"):
            lines.append("")
    block_text = "\n".join(lines)
    parsed = parse_block_text(block_text)
    assert len(parsed) == len(texts)
    canonical = format_block_lines(parsed)
    assert parse_block_text(canonical) == parsed
    assert format_block_lines(parse_block_text(canonical)) == canonical
