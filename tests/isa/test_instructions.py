"""Tests for Instruction read/write sets and classification."""

import pytest

from repro.isa.instructions import Instruction
from repro.isa.parser import parse_instruction


def reads_of(text):
    return parse_instruction(text).reads


def writes_of(text):
    return parse_instruction(text).writes


class TestReadWriteSets:
    def test_mov_reg_reg(self):
        inst = parse_instruction("mov rdx, rcx")
        assert ("reg", "rcx") in inst.reads
        assert ("reg", "rdx") in inst.writes
        assert ("reg", "rdx") not in inst.reads

    def test_add_reads_and_writes_destination(self):
        inst = parse_instruction("add rcx, rax")
        assert ("reg", "rcx") in inst.reads and ("reg", "rax") in inst.reads
        assert ("reg", "rcx") in inst.writes

    def test_register_roots_are_canonical(self):
        inst = parse_instruction("mov ecx, edx")
        assert ("reg", "rcx") in inst.writes
        assert ("reg", "rdx") in inst.reads

    def test_memory_destination(self):
        inst = parse_instruction("mov qword ptr [rdi + 24], rdx")
        assert ("reg", "rdi") in inst.reads  # address register
        assert ("reg", "rdx") in inst.reads
        assert any(loc[0] == "mem" for loc in inst.writes)
        assert not any(loc[0] == "mem" for loc in inst.reads)

    def test_memory_source(self):
        inst = parse_instruction("mov rsi, qword ptr [r14 + 32]")
        assert any(loc[0] == "mem" for loc in inst.reads)
        assert ("reg", "r14") in inst.reads
        assert ("reg", "rsi") in inst.writes

    def test_lea_reads_address_registers_but_not_memory(self):
        inst = parse_instruction("lea rax, [rcx + rax - 1]")
        assert ("reg", "rcx") in inst.reads and ("reg", "rax") in inst.reads
        assert not any(loc[0] == "mem" for loc in inst.reads)
        assert ("reg", "rax") in inst.writes

    def test_div_implicit_operands(self):
        inst = parse_instruction("div rcx")
        assert ("reg", "rax") in inst.reads and ("reg", "rdx") in inst.reads
        assert ("reg", "rax") in inst.writes and ("reg", "rdx") in inst.writes
        assert ("reg", "rcx") in inst.reads

    def test_flags_written_by_alu(self):
        inst = parse_instruction("add rcx, rax")
        assert ("flags", "rflags") in inst.writes

    def test_cmov_reads_flags(self):
        inst = parse_instruction("cmove rax, rbx")
        assert ("flags", "rflags") in inst.reads

    def test_avx_three_operand(self):
        inst = parse_instruction("vmulss xmm7, xmm0, xmm1")
        assert ("reg", "v0") in inst.reads and ("reg", "v1") in inst.reads
        assert ("reg", "v7") in inst.writes
        assert ("reg", "v7") not in inst.reads

    def test_push_touches_stack(self):
        inst = parse_instruction("push rbx")
        assert ("reg", "rsp") in inst.reads and ("reg", "rsp") in inst.writes
        assert ("reg", "rbx") in inst.reads


class TestClassification:
    def test_loads_and_stores(self):
        assert parse_instruction("mov rsi, qword ptr [r14]").loads_memory
        assert parse_instruction("mov qword ptr [rdi], rsi").stores_memory
        assert parse_instruction("pop rbx").loads_memory
        assert parse_instruction("push rbx").stores_memory
        assert not parse_instruction("add rcx, rax").loads_memory
        assert not parse_instruction("lea rax, [rcx + 8]").loads_memory

    def test_vector_flag(self):
        assert parse_instruction("vmulss xmm0, xmm1, xmm2").is_vector
        assert not parse_instruction("imul rax, rbx").is_vector

    def test_category(self):
        assert parse_instruction("div rcx").category == "int_div"
        assert parse_instruction("lea rax, [rbx]").category == "lea"

    def test_memory_operand_accessor(self):
        inst = parse_instruction("mov rsi, qword ptr [r14 + 32]")
        assert inst.memory_operand() is not None
        assert parse_instruction("add rcx, rax").memory_operand() is None
        assert parse_instruction("lea rax, [rbx + 8]").memory_operand() is None


class TestRewrites:
    def test_with_mnemonic(self):
        inst = parse_instruction("add rcx, rax").with_mnemonic("sub")
        assert inst.mnemonic == "sub"
        assert len(inst.operands) == 2

    def test_with_operand(self):
        from repro.isa.operands import RegisterOperand
        from repro.isa.registers import register

        inst = parse_instruction("add rcx, rax")
        new = inst.with_operand(1, RegisterOperand(register("rbx")))
        assert str(new) == "add rcx, rbx"
        assert str(inst) == "add rcx, rax"  # original untouched

    def test_key_is_stable_and_hashable(self):
        a = parse_instruction("add rcx, rax")
        b = parse_instruction("add  rcx ,  rax")
        assert a.key() == b.key()
        assert hash(a.key()) == hash(b.key())

    def test_str_round_trips(self):
        inst = parse_instruction("mov qword ptr [rdi + 24], rdx")
        assert parse_instruction(str(inst)).key() == inst.key()
