"""Tests for Intel-syntax formatting (including parse/format round trips)."""

import pytest

from repro.isa.formatter import format_block_lines, format_instruction, format_operand
from repro.isa.operands import ImmediateOperand, MemoryOperand, RegisterOperand
from repro.isa.parser import parse_block_text, parse_instruction
from repro.isa.registers import register


class TestFormatting:
    def test_register_operand(self):
        assert format_operand(RegisterOperand(register("rcx"))) == "rcx"

    def test_immediate_operand(self):
        assert format_operand(ImmediateOperand(80, 8)) == "80"

    def test_memory_with_size(self):
        op = MemoryOperand(base=register("rdi"), displacement=24, access_size=64)
        assert format_operand(op) == "qword ptr [rdi + 24]"

    def test_memory_negative_displacement(self):
        op = MemoryOperand(base=register("rbp"), displacement=-8, access_size=64)
        assert format_operand(op) == "qword ptr [rbp - 8]"

    def test_memory_with_index_and_scale(self):
        op = MemoryOperand(
            base=register("rbp"), index=register("rax"), scale=4, displacement=-1,
            access_size=64,
        )
        assert "rax*4" in format_operand(op)

    def test_agen_has_no_size_prefix(self):
        op = MemoryOperand(base=register("rax"), displacement=1, is_agen=True)
        assert format_operand(op) == "[rax + 1]"

    def test_instruction_no_operands(self):
        assert format_instruction(parse_instruction("nop")) == "nop"

    def test_block_lines(self):
        block = parse_block_text("add rcx, rax\nmov rdx, rcx")
        assert format_block_lines(block) == "add rcx, rax\nmov rdx, rcx"


ROUND_TRIP_CASES = [
    "add rcx, rax",
    "mov rdx, rcx",
    "pop rbx",
    "push rbx",
    "lea rdx, [rax + 1]",
    "mov qword ptr [rdi + 24], rdx",
    "mov byte ptr [rax], 80",
    "mov rsi, qword ptr [r14 + 32]",
    "shl eax, 3",
    "imul rax, r15",
    "div rcx",
    "vmulss xmm7, xmm0, xmm0",
    "vdivss xmm0, xmm0, xmm6",
    "xorps xmm1, xmm2",
    "lea rax, [rbp + rax*4 - 1]",
    "cmp rsi, rax",
]


@pytest.mark.parametrize("text", ROUND_TRIP_CASES)
def test_parse_format_round_trip(text):
    """format(parse(x)) re-parses to an identical instruction."""
    first = parse_instruction(text)
    formatted = format_instruction(first)
    second = parse_instruction(formatted)
    assert first.key() == second.key()
    assert format_instruction(second) == formatted
