"""Tests for instruction/block validation."""

import pytest

from repro.isa.instructions import Instruction
from repro.isa.operands import ImmediateOperand, MemoryOperand, RegisterOperand
from repro.isa.parser import parse_block_text, parse_instruction
from repro.isa.registers import register
from repro.isa.validation import (
    invalid_instructions,
    is_valid_instruction,
    validate_block_instructions,
    validate_instruction,
)
from repro.utils.errors import ValidationError


class TestValidInstructions:
    @pytest.mark.parametrize(
        "text",
        [
            "add rcx, rax",
            "mov qword ptr [rdi + 24], rdx",
            "mov byte ptr [rax], 80",
            "lea rdx, [rax + 1]",
            "div rcx",
            "vmulss xmm7, xmm0, xmm0",
            "shl eax, 3",
            "push rbx",
            "nop",
        ],
    )
    def test_parsed_instructions_are_valid(self, text):
        validate_instruction(parse_instruction(text))


class TestInvalidInstructions:
    def test_control_transfer_rejected(self):
        inst = Instruction("ret", ())
        with pytest.raises(ValidationError):
            validate_instruction(inst)

    def test_signature_mismatch_rejected(self):
        # movzx needs a narrow source; two 64-bit registers do not match.
        inst = Instruction(
            "movzx",
            (RegisterOperand(register("rax")), RegisterOperand(register("rbx"))),
        )
        assert not is_valid_instruction(inst)

    def test_immediate_destination_rejected(self):
        inst = Instruction(
            "mov", (ImmediateOperand(5, 32), RegisterOperand(register("rax")))
        )
        assert not is_valid_instruction(inst)

    def test_two_memory_operands_rejected(self):
        mem = MemoryOperand(base=register("rdi"), displacement=0, access_size=64)
        inst = Instruction("mov", (mem, mem))
        assert not is_valid_instruction(inst)

    def test_wrong_arity_rejected(self):
        inst = Instruction("add", (RegisterOperand(register("rax")),))
        assert not is_valid_instruction(inst)


class TestBlockValidation:
    def test_valid_block(self):
        validate_block_instructions(parse_block_text("add rcx, rax\nmov rdx, rcx"))

    def test_empty_block_rejected(self):
        with pytest.raises(ValidationError):
            validate_block_instructions([])

    def test_error_names_offending_index(self):
        instructions = [parse_instruction("add rcx, rax"), Instruction("ret", ())]
        with pytest.raises(ValidationError) as excinfo:
            validate_block_instructions(instructions)
        assert "instruction 1" in str(excinfo.value)

    def test_invalid_instructions_reports_indices(self):
        instructions = [
            parse_instruction("add rcx, rax"),
            Instruction("ret", ()),
            parse_instruction("mov rdx, rcx"),
        ]
        assert invalid_instructions(instructions) == [1]
