"""Tests for the opcode database and replacement-candidate computation."""

import pytest

from repro.isa.opcodes import (
    OPCODES,
    Access,
    block_legal_mnemonics,
    categories,
    has_opcode,
    opcode_spec,
    replacement_candidates,
)
from repro.isa.parser import parse_instruction
from repro.utils.errors import UnknownOpcodeError


class TestDatabase:
    def test_contains_core_opcodes(self):
        for mnemonic in ("mov", "add", "sub", "lea", "div", "imul", "push", "pop",
                         "vmulss", "divss", "xorps", "shl", "movzx", "nop"):
            assert has_opcode(mnemonic), mnemonic

    def test_database_size_is_substantial(self):
        assert len(OPCODES) > 100

    def test_unknown_opcode_raises(self):
        with pytest.raises(UnknownOpcodeError):
            opcode_spec("bogus")

    def test_lookup_case_insensitive(self):
        assert opcode_spec("MOV") is opcode_spec("mov")

    def test_every_spec_signature_arity_matches_access(self):
        for spec in OPCODES.values():
            for signature in spec.signatures:
                assert len(signature) == spec.arity, spec.mnemonic

    def test_control_transfer_not_block_legal(self):
        for mnemonic in ("jmp", "call", "ret", "je"):
            assert not opcode_spec(mnemonic).allowed_in_block
        assert "jmp" not in block_legal_mnemonics()

    def test_block_legal_mnemonics_sorted_and_legal(self):
        legal = block_legal_mnemonics()
        assert legal == sorted(legal)
        assert all(opcode_spec(m).allowed_in_block for m in legal)

    def test_categories_cover_all_specs(self):
        assert set(categories()) >= {"int_alu", "int_div", "fp_div", "mov", "lea"}


class TestAccessSemantics:
    def test_mov_writes_destination_only(self):
        spec = opcode_spec("mov")
        assert spec.access == (Access.WRITE, Access.READ)

    def test_add_reads_and_writes_destination(self):
        spec = opcode_spec("add")
        assert spec.access[0] is Access.READ_WRITE
        assert spec.access[0].reads and spec.access[0].writes

    def test_cmp_reads_both(self):
        spec = opcode_spec("cmp")
        assert all(not access.writes for access in spec.access)
        assert spec.writes_flags

    def test_div_has_implicit_rax_rdx(self):
        spec = opcode_spec("div")
        assert set(spec.implicit_reads) == {"rax", "rdx"}
        assert set(spec.implicit_writes) == {"rax", "rdx"}

    def test_avx_three_operand_write_read_read(self):
        spec = opcode_spec("vmulss")
        assert spec.access == (Access.WRITE, Access.READ, Access.READ)
        assert spec.is_vector

    def test_adc_reads_flags(self):
        assert opcode_spec("adc").reads_flags

    def test_setcc_reads_flags_writes_byte(self):
        spec = opcode_spec("sete")
        assert spec.reads_flags and not spec.writes_flags


class TestSignatureMatching:
    def test_matches_register_register(self):
        inst = parse_instruction("add rcx, rax")
        assert opcode_spec("add").matches(inst.operands)

    def test_matches_memory_destination(self):
        inst = parse_instruction("mov qword ptr [rdi + 24], rdx")
        assert opcode_spec("mov").matches(inst.operands)

    def test_rejects_wrong_arity(self):
        inst = parse_instruction("add rcx, rax")
        assert not opcode_spec("div").matches(inst.operands)

    def test_rejects_wrong_kind(self):
        inst = parse_instruction("mov rax, 5")
        assert not opcode_spec("movzx").matches(inst.operands)


class TestReplacementCandidates:
    def test_alu_replacements_include_other_alu(self):
        inst = parse_instruction("add rcx, rax")
        candidates = replacement_candidates(inst.mnemonic, inst.operands)
        assert "sub" in candidates and "xor" in candidates and "mov" in candidates
        assert "add" not in candidates

    def test_lea_has_no_replacements(self):
        inst = parse_instruction("lea rdx, [rax + 1]")
        assert replacement_candidates(inst.mnemonic, inst.operands) == []

    def test_replacements_exclude_control_transfer(self):
        inst = parse_instruction("push rbx")
        candidates = replacement_candidates(inst.mnemonic, inst.operands)
        assert "jmp" not in candidates and "call" not in candidates

    def test_vector_replacements_stay_vector(self):
        inst = parse_instruction("vmulss xmm7, xmm0, xmm0")
        candidates = replacement_candidates(inst.mnemonic, inst.operands)
        assert candidates
        assert all(opcode_spec(c).is_vector for c in candidates)

    def test_candidates_accept_the_operands(self):
        inst = parse_instruction("mov rsi, qword ptr [r14 + 32]")
        for candidate in replacement_candidates(inst.mnemonic, inst.operands):
            assert opcode_spec(candidate).matches(inst.operands), candidate

    def test_candidates_sorted_deterministically(self):
        inst = parse_instruction("add rcx, rax")
        a = replacement_candidates(inst.mnemonic, inst.operands)
        b = replacement_candidates(inst.mnemonic, inst.operands)
        assert a == b == sorted(a)
