"""Tests for the register file and aliasing model."""

import pytest

from repro.isa.registers import (
    REGISTERS,
    RegisterClass,
    gpr_names,
    is_register_name,
    register,
    registers_of,
    same_size_registers,
    vector_names,
)
from repro.utils.errors import UnknownRegisterError


class TestLookup:
    def test_known_registers_exist(self):
        for name in ("rax", "eax", "ax", "al", "r8", "r8d", "xmm0", "ymm15"):
            assert is_register_name(name)

    def test_lookup_is_case_insensitive(self):
        assert register("RAX") is register("rax")

    def test_unknown_register_raises(self):
        with pytest.raises(UnknownRegisterError):
            register("r99")

    def test_register_count_is_plausible(self):
        # 16 GPR families x 4 widths + 16 xmm + 16 ymm + flags + ip
        assert len(REGISTERS) == 16 * 4 + 32 + 2


class TestAliasing:
    @pytest.mark.parametrize(
        "a,b",
        [("rax", "eax"), ("rax", "al"), ("ecx", "cl"), ("r8", "r8b"), ("xmm3", "ymm3")],
    )
    def test_aliasing_pairs(self, a, b):
        assert register(a).aliases(register(b))

    @pytest.mark.parametrize("a,b", [("rax", "rbx"), ("xmm1", "xmm2"), ("rax", "xmm0")])
    def test_non_aliasing_pairs(self, a, b):
        assert not register(a).aliases(register(b))

    def test_roots_are_full_width_names(self):
        assert register("eax").root == "rax"
        assert register("sil").root == "rsi"
        assert register("r10w").root == "r10"
        assert register("ymm4").root == register("xmm4").root


class TestWidths:
    @pytest.mark.parametrize(
        "name,width",
        [("rax", 64), ("eax", 32), ("ax", 16), ("al", 8), ("xmm0", 128), ("ymm0", 256)],
    )
    def test_widths(self, name, width):
        assert register(name).width == width

    def test_classes(self):
        assert register("rax").cls is RegisterClass.GPR
        assert register("xmm5").cls is RegisterClass.VECTOR
        assert register("rflags").cls is RegisterClass.FLAGS


class TestEnumeration:
    def test_registers_of_width(self):
        assert len(registers_of(RegisterClass.GPR, 64)) == 16
        assert len(registers_of(RegisterClass.VECTOR, 128)) == 16

    def test_gpr_and_vector_name_helpers(self):
        assert "rax" in gpr_names(64)
        assert "xmm0" in vector_names(128)

    def test_same_size_registers_excludes_self_and_reserved(self):
        candidates = same_size_registers(register("rax"))
        names = {r.name for r in candidates}
        assert "rax" not in names
        assert "rsp" not in names
        assert all(r.width == 64 for r in candidates)

    def test_same_size_registers_can_include_reserved(self):
        names = {r.name for r in same_size_registers(register("rax"), exclude_reserved=False)}
        assert "rsp" in names

    def test_same_size_registers_for_vectors(self):
        candidates = same_size_registers(register("xmm0"))
        assert all(r.cls is RegisterClass.VECTOR and r.width == 128 for r in candidates)
        assert len(candidates) == 15
