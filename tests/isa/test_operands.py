"""Tests for operand value objects."""

import pytest

from repro.isa.operands import (
    ImmediateOperand,
    LabelOperand,
    MemoryOperand,
    OperandKind,
    RegisterOperand,
    memory_operands,
    operand_kinds,
)
from repro.isa.registers import register


class TestRegisterOperand:
    def test_kind_and_size(self):
        op = RegisterOperand(register("eax"))
        assert op.kind is OperandKind.REGISTER
        assert op.size == 32

    def test_with_register(self):
        op = RegisterOperand(register("rax")).with_register(register("rbx"))
        assert op.register.name == "rbx"

    def test_no_address_registers(self):
        assert RegisterOperand(register("rax")).registers_read() == ()

    def test_equality(self):
        assert RegisterOperand(register("rax")) == RegisterOperand(register("rax"))
        assert RegisterOperand(register("rax")) != RegisterOperand(register("rbx"))


class TestMemoryOperand:
    def test_kind_and_size(self):
        op = MemoryOperand(base=register("rdi"), displacement=24, access_size=64)
        assert op.kind is OperandKind.MEMORY
        assert op.size == 64

    def test_agen_kind(self):
        op = MemoryOperand(base=register("rax"), displacement=1, is_agen=True)
        assert op.kind is OperandKind.AGEN

    def test_address_registers_read(self):
        op = MemoryOperand(base=register("rbp"), index=register("rax"), scale=4)
        roots = {r.root for r in op.registers_read()}
        assert roots == {"rbp", "rax"}

    def test_address_key_distinguishes_displacements(self):
        a = MemoryOperand(base=register("rdi"), displacement=0)
        b = MemoryOperand(base=register("rdi"), displacement=8)
        assert a.address_key() != b.address_key()

    def test_address_key_uses_register_roots(self):
        a = MemoryOperand(base=register("rdi"), displacement=8)
        b = MemoryOperand(base=register("edi"), displacement=8)
        assert a.address_key() == b.address_key()

    def test_invalid_scale_raises(self):
        with pytest.raises(ValueError):
            MemoryOperand(base=register("rax"), scale=3)

    def test_empty_address_raises(self):
        with pytest.raises(ValueError):
            MemoryOperand()

    def test_displacement_only_is_allowed(self):
        op = MemoryOperand(displacement=4096)
        assert op.base is None and op.displacement == 4096

    def test_with_fields(self):
        op = MemoryOperand(base=register("rdi"), displacement=8)
        moved = op.with_fields(displacement=16)
        assert moved.displacement == 16 and moved.base is op.base


class TestImmediateOperand:
    def test_kind_and_width(self):
        op = ImmediateOperand(80, 8)
        assert op.kind is OperandKind.IMMEDIATE
        assert op.size == 8

    def test_with_value(self):
        assert ImmediateOperand(1, 32).with_value(7).value == 7


class TestHelpers:
    def test_operand_kinds(self):
        ops = (RegisterOperand(register("rax")), ImmediateOperand(1, 8))
        assert operand_kinds(ops) == (OperandKind.REGISTER, OperandKind.IMMEDIATE)

    def test_memory_operands_excludes_agen(self):
        mem = MemoryOperand(base=register("rdi"), displacement=8)
        agen = MemoryOperand(base=register("rdi"), displacement=8, is_agen=True)
        assert memory_operands((mem, agen)) == (mem,)

    def test_label_operand(self):
        op = LabelOperand(".L1")
        assert op.kind is OperandKind.LABEL and op.size == 0
