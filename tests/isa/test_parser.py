"""Tests for the Intel-syntax parser."""

import pytest

from repro.isa.operands import ImmediateOperand, MemoryOperand, RegisterOperand
from repro.isa.parser import parse_block_text, parse_instruction
from repro.utils.errors import ParseError


class TestBasicParsing:
    def test_register_register(self):
        inst = parse_instruction("add rcx, rax")
        assert inst.mnemonic == "add"
        assert [op.register.name for op in inst.operands] == ["rcx", "rax"]

    def test_mnemonic_lowercased(self):
        assert parse_instruction("ADD RCX, RAX").mnemonic == "add"

    def test_zero_operand_instruction(self):
        assert parse_instruction("nop").operands == ()

    def test_immediate_operand(self):
        inst = parse_instruction("shl eax, 3")
        assert isinstance(inst.operands[1], ImmediateOperand)
        assert inst.operands[1].value == 3
        assert inst.operands[1].width == 8

    def test_negative_immediate(self):
        inst = parse_instruction("add rax, -16")
        assert inst.operands[1].value == -16

    def test_hex_immediate(self):
        inst = parse_instruction("and rax, 0xff")
        assert inst.operands[1].value == 255

    def test_large_immediate_width(self):
        inst = parse_instruction("mov rax, 100000")
        assert inst.operands[1].width == 32

    def test_comment_stripped(self):
        inst = parse_instruction("mov rax, rbx  # copy")
        assert len(inst.operands) == 2


class TestMemoryOperands:
    def test_size_prefix(self):
        inst = parse_instruction("mov qword ptr [rdi + 24], rdx")
        mem = inst.operands[0]
        assert isinstance(mem, MemoryOperand)
        assert mem.access_size == 64
        assert mem.base.name == "rdi"
        assert mem.displacement == 24

    def test_byte_prefix(self):
        inst = parse_instruction("mov byte ptr [rax], 80")
        assert inst.operands[0].access_size == 8

    def test_negative_displacement(self):
        inst = parse_instruction("mov rax, qword ptr [rbp - 8]")
        assert inst.operands[1].displacement == -8

    def test_scaled_index(self):
        inst = parse_instruction("lea rax, [rbp + rax*4 - 1]")
        mem = inst.operands[1]
        assert mem.index.name == "rax" and mem.scale == 4 and mem.displacement == -1

    def test_two_registers_without_scale(self):
        inst = parse_instruction("lea rax, [rcx + rax - 1]")
        mem = inst.operands[1]
        assert mem.base.name == "rcx" and mem.index.name == "rax"

    def test_lea_operand_is_agen(self):
        inst = parse_instruction("lea rdx, [rax + 1]")
        assert inst.operands[1].is_agen

    def test_mov_memory_is_not_agen(self):
        inst = parse_instruction("mov rdx, qword ptr [rax + 1]")
        assert not inst.operands[1].is_agen

    def test_size_inferred_from_register(self):
        inst = parse_instruction("mov esi, [r14 + 32]")
        assert inst.operands[1].access_size == 32

    def test_size_inferred_for_scalar_sse(self):
        inst = parse_instruction("movss xmm0, [rdi]")
        assert inst.operands[1].access_size == 32


class TestErrors:
    def test_unknown_opcode(self):
        with pytest.raises(ParseError):
            parse_instruction("frobnicate rax, rbx")

    def test_unknown_register(self):
        with pytest.raises(ParseError):
            parse_instruction("mov r99, rax")

    def test_empty_line(self):
        with pytest.raises(ParseError):
            parse_instruction("   ")

    def test_unterminated_memory(self):
        with pytest.raises(ParseError):
            parse_instruction("mov rax, [rbx")

    def test_garbage_address_term(self):
        with pytest.raises(ParseError):
            parse_instruction("mov rax, [rbx + $$]")

    def test_size_prefix_on_register_rejected(self):
        with pytest.raises(ParseError):
            parse_instruction("mov qword ptr rax, rbx")


class TestBlockParsing:
    def test_multi_line_block(self):
        instructions = parse_block_text(
            """
            add rcx, rax
            mov rdx, rcx
            pop rbx
            """
        )
        assert [i.mnemonic for i in instructions] == ["add", "mov", "pop"]

    def test_line_numbers_tolerated(self):
        instructions = parse_block_text("1 add rcx, rax\n2 mov rdx, rcx")
        assert len(instructions) == 2

    def test_blank_and_comment_lines_skipped(self):
        instructions = parse_block_text("add rcx, rax\n\n# comment only\nmov rdx, rcx")
        assert len(instructions) == 2

    def test_paper_listing_2_parses(self):
        text = """
            lea rdx, [rax + 1]
            mov qword ptr [rdi + 24], rdx
            mov byte ptr [rax], 80
            mov rsi, qword ptr [r14 + 32]
            mov rdi, rbp
        """
        assert len(parse_block_text(text)) == 5

    def test_paper_listing_3_parses(self):
        text = """
            mov ecx, edx
            xor edx, edx
            lea rax, [rcx + rax - 1]
            div rcx
            mov rdx, rcx
            imul rax, rcx
        """
        assert len(parse_block_text(text)) == 6

    def test_paper_listing_4_parses(self):
        text = """
            vdivss xmm0, xmm0, xmm6
            vmulss xmm7, xmm0, xmm0
            vxorps xmm0, xmm0, xmm5
            vaddss xmm7, xmm7, xmm3
            vmulss xmm6, xmm6, xmm7
            vdivss xmm6, xmm3, xmm6
            vmulss xmm0, xmm6, xmm0
        """
        assert len(parse_block_text(text)) == 7
