"""Tests for JSON/CSV export and markdown rendering."""

import csv
import json

import pytest

from repro.bb.block import BasicBlock
from repro.bb.features import (
    DependencyFeature,
    InstructionFeature,
    NumInstructionsFeature,
    extract_features,
)
from repro.explain.explanation import Explanation
from repro.reporting.export import (
    explanation_to_dict,
    explanation_to_json,
    explanations_to_csv,
    feature_to_dict,
    load_explanation_dicts,
    rows_to_csv,
)
from repro.reporting.markdown import explanation_to_markdown, markdown_table


BLOCK = BasicBlock.from_text(
    "add rcx, rax\nmov rdx, rcx\npop rbx", block_id="bb-0001"
)


def _explanation(features, meets_threshold=True):
    return Explanation(
        block=BLOCK,
        model_name="uica-hsw",
        prediction=1.25,
        features=tuple(features),
        precision=0.82,
        coverage=0.21,
        meets_threshold=meets_threshold,
        epsilon=0.5,
        num_queries=321,
    )


class TestFeatureToDict:
    def test_instruction_feature_fields(self):
        feature = InstructionFeature.of(0, BLOCK[0])
        data = feature_to_dict(feature)
        assert data["kind"] == "inst"
        assert data["mnemonic"] == "add"
        assert data["index"] == 0
        assert data["operands"] == ["rcx", "rax"]

    def test_dependency_feature_fields(self):
        feature = next(
            f for f in extract_features(BLOCK) if isinstance(f, DependencyFeature)
        )
        data = feature_to_dict(feature)
        assert data["kind"] == "dep"
        assert data["dependency_kind"] in ("RAW", "WAR", "WAW")
        assert data["source"] < data["destination"]

    def test_count_feature_fields(self):
        data = feature_to_dict(NumInstructionsFeature(3))
        assert data["kind"] == "num_instrs"
        assert data["count"] == 3

    def test_every_feature_is_json_serialisable(self):
        for feature in extract_features(BLOCK):
            json.dumps(feature_to_dict(feature))


class TestExplanationExport:
    def test_dict_round_trips_through_json(self):
        explanation = _explanation([InstructionFeature.of(0, BLOCK[0])])
        payload = json.loads(explanation_to_json(explanation))
        assert payload == explanation_to_dict(explanation)
        assert payload["model"] == "uica-hsw"
        assert payload["block_id"] == "bb-0001"
        assert len(payload["features"]) == 1

    def test_load_explanation_dicts_single_and_list(self, tmp_path):
        explanation = _explanation([InstructionFeature.of(0, BLOCK[0])])
        single = tmp_path / "single.json"
        single.write_text(explanation_to_json(explanation))
        assert len(load_explanation_dicts(single)) == 1

        many = tmp_path / "many.json"
        many.write_text(
            json.dumps([explanation_to_dict(explanation), explanation_to_dict(explanation)])
        )
        assert len(load_explanation_dicts(many)) == 2

    def test_load_explanation_dicts_rejects_scalars(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("42")
        with pytest.raises(ValueError):
            load_explanation_dicts(path)

    def test_csv_export_one_row_per_explanation(self, tmp_path):
        explanations = [
            _explanation([InstructionFeature.of(0, BLOCK[0])]),
            _explanation([NumInstructionsFeature(3)], meets_threshold=False),
        ]
        path = explanations_to_csv(explanations, tmp_path / "out" / "expl.csv")
        with path.open() as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == 2
        assert rows[0]["model"] == "uica-hsw"
        assert rows[0]["num_features"] == "1"
        assert rows[1]["meets_threshold"] == "0"
        assert "num_instrs" in rows[1]["feature_kinds"]


class TestRowsToCsv:
    def test_writes_headers_and_rows(self, tmp_path):
        path = rows_to_csv(
            ["model", "mape"], [["uica", 4.5], ["ithemal", 11.0]], tmp_path / "rows.csv"
        )
        with path.open() as handle:
            rows = list(csv.reader(handle))
        assert rows[0] == ["model", "mape"]
        assert len(rows) == 3

    def test_rejects_ragged_rows(self, tmp_path):
        with pytest.raises(ValueError):
            rows_to_csv(["a", "b"], [[1]], tmp_path / "bad.csv")


class TestMarkdown:
    def test_markdown_table_shape(self):
        text = markdown_table(["Model", "MAPE"], [["uica", 4.123], ["ithemal", 11.0]])
        lines = text.splitlines()
        assert lines[0].startswith("| Model")
        assert lines[1].count("---") == 2
        assert len(lines) == 4
        assert "4.12" in lines[2]

    def test_markdown_table_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            markdown_table(["a"], [[1, 2]])

    def test_explanation_markdown_contains_block_and_features(self):
        explanation = _explanation([InstructionFeature.of(0, BLOCK[0])])
        text = explanation_to_markdown(explanation)
        assert "```asm" in text
        assert "add rcx, rax" in text
        assert "inst1" in text

    def test_empty_explanation_markdown_mentions_emptiness(self):
        text = explanation_to_markdown(_explanation([]))
        assert "empty" in text
