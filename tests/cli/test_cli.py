"""Tests for the ``python -m repro`` command-line interface."""

import json

import pytest

from repro.cli import build_parser, main
from repro.data.bhive import BHiveDataset


BLOCK_INLINE = "add rcx, rax; mov rdx, rcx; pop rbx"


@pytest.fixture()
def block_file(tmp_path):
    path = tmp_path / "block.s"
    path.write_text("add rcx, rax\nmov rdx, rcx\npop rbx\n")
    return path


class TestParser:
    def test_requires_a_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_model_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["predict", "--model", "nonsense"])


class TestPredict:
    def test_inline_block(self, capsys):
        assert main(["predict", "--model", "crude", "--block", BLOCK_INLINE]) == 0
        out = capsys.readouterr().out
        assert "cycles/iteration" in out

    def test_block_file(self, block_file, capsys):
        assert main(["predict", "--model", "uica", "--block-file", str(block_file)]) == 0
        assert "uica" in capsys.readouterr().out

    def test_missing_block_is_a_cli_error(self, capsys):
        assert main(["predict", "--model", "crude"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_invalid_assembly_is_a_cli_error(self, capsys):
        assert main(["predict", "--model", "crude", "--block", "not actual asm ???"]) == 2
        assert "error:" in capsys.readouterr().err


class TestFeaturesAndSpace:
    def test_features_lists_all_kinds(self, capsys):
        assert main(["features", "--block", BLOCK_INLINE]) == 0
        out = capsys.readouterr().out
        assert "inst" in out
        assert "num_instrs" in out

    def test_space_reports_log_sizes(self, block_file, capsys):
        assert main(["space", "--block-file", str(block_file)]) == 0
        out = capsys.readouterr().out
        assert "instructions" in out


class TestPerturb:
    def test_generates_requested_number_of_perturbations(self, capsys):
        assert (
            main(["perturb", "--block", BLOCK_INLINE, "--count", "4", "--seed", "1"]) == 0
        )
        out = capsys.readouterr().out
        assert out.count("# perturbation") == 4

    def test_preserve_count_keeps_block_length(self, capsys):
        assert (
            main(
                [
                    "perturb",
                    "--block",
                    BLOCK_INLINE,
                    "--count",
                    "5",
                    "--preserve-count",
                    "--seed",
                    "2",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        samples = [s for s in out.split("# perturbation")[1:]]
        for sample in samples:
            lines = [l for l in sample.splitlines() if l.strip() and not l.strip().isdigit()]
            assert len(lines) == 3

    def test_preserve_instruction_keeps_that_instruction(self, capsys):
        assert (
            main(
                [
                    "perturb",
                    "--block",
                    BLOCK_INLINE,
                    "--count",
                    "5",
                    "--preserve-instruction",
                    "1",
                    "--seed",
                    "3",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        samples = out.split("# perturbation")[1:]
        for sample in samples:
            assert "add rcx, rax" in sample

    def test_out_of_range_preserve_index_is_an_error(self, capsys):
        assert (
            main(
                [
                    "perturb",
                    "--block",
                    BLOCK_INLINE,
                    "--preserve-instruction",
                    "9",
                ]
            )
            == 2
        )
        assert "outside the block" in capsys.readouterr().err


class TestExplain:
    def test_text_output(self, capsys):
        code = main(
            [
                "explain",
                "--model",
                "crude",
                "--block",
                BLOCK_INLINE,
                "--epsilon",
                "0.25",
                "--relative-epsilon",
                "0.0",
                "--coverage-samples",
                "60",
                "--max-precision-samples",
                "40",
                "--seed",
                "0",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "prediction" in out.lower() or "Explanation" in out

    def test_json_output_is_parseable(self, capsys):
        code = main(
            [
                "explain",
                "--model",
                "crude",
                "--block",
                BLOCK_INLINE,
                "--epsilon",
                "0.25",
                "--relative-epsilon",
                "0.0",
                "--coverage-samples",
                "60",
                "--max-precision-samples",
                "40",
                "--json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["model"].startswith("crude")
        assert isinstance(payload["features"], list)


class TestExplainFleet:
    _FAST = [
        "--epsilon", "0.25", "--relative-epsilon", "0.0",
        "--coverage-samples", "60", "--max-precision-samples", "40",
    ]

    @pytest.fixture
    def fleet_file(self, tmp_path):
        path = tmp_path / "fleet.txt"
        path.write_text(
            "# comment lines and blanks are skipped\n"
            "\n"
            "add rcx, rax; mov rdx, rcx\n"
            "xor edx, edx; div rcx\n"
        )
        return path

    def test_blocks_file_explains_every_block(self, fleet_file, capsys):
        code = main(
            ["explain", "--model", "crude", "--blocks-file", str(fleet_file),
             "--json", *self._FAST]
        )
        assert code == 0
        payloads = json.loads(capsys.readouterr().out)
        assert len(payloads) == 2
        assert all(p["model"].startswith("crude") for p in payloads)

    def test_checkpointed_rerun_is_a_pure_replay(self, fleet_file, tmp_path, capsys):
        journal = tmp_path / "run.jsonl"
        argv = [
            "explain", "--model", "crude", "--blocks-file", str(fleet_file),
            "--checkpoint", str(journal), "--json", "--seed", "3", *self._FAST,
        ]
        assert main(argv) == 0
        captured = capsys.readouterr()
        first = json.loads(captured.out)
        assert "0 of 2 blocks recovered" in captured.err
        assert main(argv) == 0
        captured = capsys.readouterr()
        assert json.loads(captured.out) == first  # bit-for-bit replay
        assert "2 of 2 blocks recovered" in captured.err

    def test_checkpoint_without_blocks_file_is_a_cli_error(self, tmp_path, capsys):
        code = main(
            ["explain", "--model", "crude", "--block", BLOCK_INLINE,
             "--checkpoint", str(tmp_path / "run.jsonl")]
        )
        assert code == 2
        assert "--blocks-file" in capsys.readouterr().err

    def test_empty_fleet_is_a_cli_error(self, tmp_path, capsys):
        empty = tmp_path / "empty.txt"
        empty.write_text("# nothing here\n")
        code = main(
            ["explain", "--model", "crude", "--blocks-file", str(empty)]
        )
        assert code == 2
        assert "no blocks" in capsys.readouterr().err


class TestServeFlags:
    def test_request_timeout_flag_parses(self):
        args = build_parser().parse_args(
            ["serve", "--model", "crude", "--request-timeout", "30"]
        )
        assert args.request_timeout == 30.0

    def test_request_timeout_defaults_to_none(self):
        args = build_parser().parse_args(["serve", "--model", "crude"])
        assert args.request_timeout is None

    def test_continuous_batching_flag_parses(self):
        args = build_parser().parse_args(
            ["serve", "--model", "crude", "--continuous-batching",
             "--max-fused-requests", "4"]
        )
        assert args.continuous_batching is True
        assert args.max_fused_requests == 4

    def test_no_continuous_batching_flag_parses(self):
        args = build_parser().parse_args(
            ["serve", "--model", "crude", "--no-continuous-batching"]
        )
        assert args.continuous_batching is False

    def test_continuous_batching_defaults_to_env(self):
        # None defers to REPRO_FUSED / REPRO_MAX_FUSED at service construction.
        args = build_parser().parse_args(["serve", "--model", "crude"])
        assert args.continuous_batching is None
        assert args.max_fused_requests is None

    def test_served_batch_runs_fused(self, tmp_path, capsys):
        requests = tmp_path / "requests.jsonl"
        requests.write_text(
            '{"id": "a", "block": "add rcx, rax", "seed": 1}\n'
            '{"id": "b", "block": "add rcx, rax", "seed": 2}\n'
        )
        code = main(
            ["serve", "--model", "crude", "--requests", str(requests),
             "--continuous-batching",
             "--coverage-samples", "60", "--max-precision-samples", "40"]
        )
        assert code == 0
        captured = capsys.readouterr()
        statuses = [json.loads(line)["status"] for line in captured.out.splitlines()]
        assert statuses == ["done", "done"]
        assert "fused ticks" in captured.err

    def test_served_batch_honours_request_timeout(self, tmp_path, capsys):
        requests = tmp_path / "requests.jsonl"
        requests.write_text('{"id": "a", "block": "add rcx, rax", "seed": 1}\n')
        code = main(
            ["serve", "--model", "crude", "--requests", str(requests),
             "--request-timeout", "60",
             "--coverage-samples", "60", "--max-precision-samples", "40"]
        )
        assert code == 0
        captured = capsys.readouterr()
        response = json.loads(captured.out.splitlines()[0])
        assert response["status"] == "done"


class TestOptimize:
    def test_optimize_reports_costs(self, capsys):
        code = main(
            [
                "optimize",
                "--model",
                "crude",
                "--block",
                "mov ecx, edx; xor edx, edx; div rcx; imul rax, rcx",
                "--steps",
                "10",
                "--unguided",
                "--seed",
                "1",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Predicted cost" in out


class TestBackendFlags:
    def test_serial_is_the_default_backend(self):
        args = build_parser().parse_args(
            ["explain", "--block", BLOCK_INLINE]
        )
        assert args.backend == "serial"
        assert args.workers is None

    def test_dataset_accepts_backend_flags(self):
        args = build_parser().parse_args(
            ["dataset", "--output", "x.json", "--backend", "process", "--workers", "2"]
        )
        assert args.backend == "process"
        assert args.workers == 2

    def test_unknown_backend_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["explain", "--block", BLOCK_INLINE, "--backend", "quantum"]
            )

    def test_explain_runs_on_thread_backend(self, capsys):
        code = main(
            [
                "explain",
                "--model",
                "crude",
                "--block",
                BLOCK_INLINE,
                "--epsilon",
                "0.25",
                "--relative-epsilon",
                "0.0",
                "--coverage-samples",
                "60",
                "--max-precision-samples",
                "40",
                "--backend",
                "thread",
                "--workers",
                "2",
            ]
        )
        assert code == 0
        assert "Explanation" in capsys.readouterr().out

    def test_explain_backend_does_not_change_the_explanation(self, capsys):
        base_args = [
            "explain",
            "--model",
            "crude",
            "--block",
            BLOCK_INLINE,
            "--epsilon",
            "0.25",
            "--relative-epsilon",
            "0.0",
            "--coverage-samples",
            "60",
            "--max-precision-samples",
            "40",
            "--seed",
            "3",
            "--json",
        ]
        assert main(base_args) == 0
        serial = json.loads(capsys.readouterr().out)
        assert main(base_args + ["--backend", "thread", "--workers", "2"]) == 0
        threaded = json.loads(capsys.readouterr().out)
        assert serial == threaded


class TestDataset:
    def test_dataset_synthesis_round_trips(self, tmp_path, capsys):
        output = tmp_path / "dataset.json"
        code = main(
            [
                "dataset",
                "--size",
                "12",
                "--min-instructions",
                "3",
                "--max-instructions",
                "6",
                "--uarchs",
                "hsw",
                "--seed",
                "4",
                "--output",
                str(output),
            ]
        )
        assert code == 0
        assert output.exists()
        loaded = BHiveDataset.load(output)
        assert len(loaded) >= 12
        assert "wrote" in capsys.readouterr().out
