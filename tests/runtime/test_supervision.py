"""Tests for the supervised process backend (worker-death recovery).

A process-pool worker that dies (OOM kill, segfault) poisons the whole
``ProcessPoolExecutor``; the supervised backend must rebuild the pool and
retry the batch so deterministic work completes bit-for-bit, surface
counters for the restarts, and honour the retry policy's exhaustion and
fallback semantics.
"""

import multiprocessing
import os
import signal
import time

import pytest

from repro.models.mca import PortPressureCostModel
from repro.runtime.backend import (
    BackendRetryPolicy,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
)
from repro.utils.errors import BackendError


def _square(x):
    return x * x


def _die_in_worker(x):
    # Kills only pool workers: the serial fallback runs in the parent, where
    # parent_process() is None, and must survive.
    if multiprocessing.parent_process() is not None:
        os._exit(1)
    return x * x


def _fast_retry(**overrides):
    params = dict(max_restarts=2, backoff=0.0, max_backoff=0.0)
    params.update(overrides)
    return BackendRetryPolicy(**params)


def _kill_pool_workers(backend):
    """SIGKILL every live worker of the backend's current pool."""
    pool = backend._pool
    assert pool is not None, "pool must be warm before the kill"
    pids = list(pool._processes)
    assert pids
    for pid in pids:
        os.kill(pid, signal.SIGKILL)
    # Wait for the kills to land so the next submit sees a broken pool
    # instead of racing a half-dead worker.
    deadline = time.monotonic() + 10.0
    for process in list(pool._processes.values()):
        process.join(max(deadline - time.monotonic(), 0.1))
    return pids


class TestRetryPolicy:
    def test_defaults(self):
        policy = BackendRetryPolicy()
        assert policy.max_restarts == 2
        assert policy.fallback is None

    def test_delay_is_capped_exponential(self):
        policy = BackendRetryPolicy(backoff=0.1, max_backoff=0.35)
        assert policy.delay(0) == pytest.approx(0.1)
        assert policy.delay(1) == pytest.approx(0.2)
        assert policy.delay(2) == pytest.approx(0.35)  # capped
        assert policy.delay(10) == pytest.approx(0.35)

    def test_validation(self):
        with pytest.raises(ValueError, match="max_restarts"):
            BackendRetryPolicy(max_restarts=-1)
        with pytest.raises(ValueError, match="backoff"):
            BackendRetryPolicy(backoff=-0.1)
        with pytest.raises(ValueError, match="fallback"):
            BackendRetryPolicy(fallback="thread")

    def test_serial_fallback_accepted(self):
        assert BackendRetryPolicy(fallback="serial").fallback == "serial"


class TestWorkerStats:
    def test_in_process_backends_report_zeros(self):
        for backend in (SerialBackend(), ThreadBackend(2)):
            stats = backend.worker_stats()
            assert stats["restarts"] == 0
            assert stats["retries"] == 0
            assert stats["fallbacks"] == 0

    def test_fresh_process_backend_reports_zeros(self):
        backend = ProcessBackend(2)
        assert backend.worker_stats() == {
            "workers": 2,
            "restarts": 0,
            "retries": 0,
            "fallbacks": 0,
        }


class TestSigkillRecovery:
    def test_predict_blocks_survives_sigkilled_workers(self, block_fleet):
        """Kill the whole worker fleet; the rebuilt pool must reproduce the
        original batch bit-for-bit and count exactly one restart."""
        blocks = list(block_fleet[:8])
        model = PortPressureCostModel("hsw")
        expected = [model._predict(block) for block in blocks]
        with ProcessBackend(2, retry=_fast_retry()) as backend:
            assert backend.predict_blocks(model, blocks) == expected
            _kill_pool_workers(backend)
            assert backend.predict_blocks(model, blocks) == expected
            stats = backend.worker_stats()
        assert stats["restarts"] >= 1
        assert stats["retries"] >= 1
        assert stats["fallbacks"] == 0

    def test_map_batch_survives_sigkilled_workers(self):
        with ProcessBackend(2, retry=_fast_retry()) as backend:
            assert backend.map_batch(_square, list(range(16))) == [
                x * x for x in range(16)
            ]
            _kill_pool_workers(backend)
            assert backend.map_batch(_square, list(range(16))) == [
                x * x for x in range(16)
            ]
            assert backend.worker_stats()["restarts"] >= 1

    def test_backend_stays_usable_after_recovery(self, block_fleet):
        blocks = list(block_fleet[:4])
        model = PortPressureCostModel("hsw")
        expected = [model._predict(block) for block in blocks]
        with ProcessBackend(2, retry=_fast_retry()) as backend:
            backend.predict_blocks(model, blocks)
            _kill_pool_workers(backend)
            for _ in range(3):  # recovered pool keeps serving
                assert backend.predict_blocks(model, blocks) == expected


class TestRetryExhaustion:
    def test_persistent_crash_raises_backend_error(self):
        """A workload that kills its worker every time exhausts the restart
        budget and surfaces a BackendError naming the fallback escape."""
        with ProcessBackend(2, retry=_fast_retry(max_restarts=1)) as backend:
            with pytest.raises(BackendError, match="could not be restored"):
                backend.map_batch(_die_in_worker, list(range(8)))
            stats = backend.worker_stats()
        assert stats["restarts"] == 1  # budget spent, then the raise
        assert stats["fallbacks"] == 0

    def test_zero_restarts_disables_supervision(self):
        with ProcessBackend(2, retry=_fast_retry(max_restarts=0)) as backend:
            with pytest.raises(BackendError):
                backend.map_batch(_die_in_worker, list(range(8)))
            assert backend.worker_stats()["restarts"] == 0

    def test_serial_fallback_completes_the_batch(self):
        policy = _fast_retry(max_restarts=1, fallback="serial")
        with ProcessBackend(2, retry=policy) as backend:
            assert backend.map_batch(_die_in_worker, list(range(8))) == [
                x * x for x in range(8)
            ]
            stats = backend.worker_stats()
        assert stats["fallbacks"] == 1
        assert stats["restarts"] == 1

    def test_backend_usable_after_exhaustion(self, block_fleet):
        """An exhausted batch must not poison the next one: the pool was
        torn down, so healthy work simply rebuilds it."""
        blocks = list(block_fleet[:4])
        model = PortPressureCostModel("hsw")
        with ProcessBackend(2, retry=_fast_retry(max_restarts=0)) as backend:
            with pytest.raises(BackendError):
                backend.map_batch(_die_in_worker, list(range(8)))
            assert backend.predict_blocks(model, blocks) == [
                model._predict(block) for block in blocks
            ]


class TestSessionIntegration:
    def test_session_stats_surface_worker_counters(self, block_fleet, fast_config):
        from repro.models.analytical import AnalyticalCostModel
        from repro.runtime.session import ExplanationSession

        blocks = list(block_fleet[:4])
        backend = ProcessBackend(2, retry=_fast_retry())
        with ExplanationSession(
            AnalyticalCostModel("hsw"), fast_config, backend=backend
        ) as session:
            session.explain_many(blocks, rng=0)
            _kill_pool_workers(backend)
            session.explain_many(blocks, rng=0)
            stats = session.stats()
        backend.close()
        assert stats.worker_restarts >= 1
        assert stats.worker_retries >= 1
        assert "worker restarts" in stats.describe()
