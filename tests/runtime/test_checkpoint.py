"""Tests for crash-safe checkpointed ``explain_many`` runs.

The contract under test: an interrupted-and-resumed checkpointed run is
bit-for-bit identical to an uninterrupted one, stale journals are discarded
rather than half-trusted, and corruption fails loudly instead of returning
wrong explanations.
"""

import json

import numpy as np
import pytest

from repro.models.analytical import AnalyticalCostModel
from repro.runtime.checkpoint import (
    JOURNAL_VERSION,
    CheckpointJournal,
    _entry_key,
    run_fingerprint,
)
from repro.runtime.session import ExplanationSession
from repro.utils.errors import CheckpointError, ModelError

from tests.conftest import FAST_CONFIG, explanation_fingerprint


def _checkpointed_run(blocks, path, seed=7):
    with ExplanationSession(AnalyticalCostModel("hsw"), FAST_CONFIG) as session:
        results = session.explain_many(blocks, rng=seed, checkpoint=path)
        return results, session.stats()


class TestFingerprint:
    def _base(self, tiny_blocks, **overrides):
        params = dict(
            blocks=tiny_blocks,
            model_name="m",
            uarch="hsw",
            config=FAST_CONFIG,
            seed=0,
            shards_normalised="auto",
        )
        params.update(overrides)
        return run_fingerprint(**params)

    def test_stable_for_identical_runs(self, tiny_blocks):
        assert self._base(tiny_blocks) == self._base(tiny_blocks)

    def test_changes_with_every_result_defining_input(self, tiny_blocks):
        base = self._base(tiny_blocks)
        assert self._base(tiny_blocks, seed=1) != base
        assert self._base(tiny_blocks, model_name="other") != base
        assert self._base(tiny_blocks, uarch="skl") != base
        assert self._base(tiny_blocks, blocks=tiny_blocks[:2]) != base
        assert self._base(tiny_blocks, blocks=list(reversed(tiny_blocks))) != base

    def test_changes_with_config(self, tiny_blocks):
        from repro.explain.config import ExplainerConfig

        other = ExplainerConfig(epsilon=0.9)
        assert self._base(tiny_blocks, config=other) != self._base(tiny_blocks)


class TestJournalLifecycle:
    def test_fresh_journal_writes_manifest(self, tmp_path, tiny_blocks):
        path = tmp_path / "run.jsonl"
        with CheckpointJournal(path, fingerprint="f" * 64, fleet_size=3) as journal:
            assert journal.completed == {}
            assert journal.skipped == 0
        manifest = json.loads((tmp_path / "run.jsonl.manifest").read_text())
        assert manifest["version"] == JOURNAL_VERSION
        assert manifest["fingerprint"] == "f" * 64
        assert manifest["fleet_size"] == 3

    def test_record_then_resume_recovers_entries(self, tmp_path, tiny_blocks, seeded_session):
        path = tmp_path / "run.jsonl"
        explanation = seeded_session.explain(tiny_blocks[0], rng=0)
        with CheckpointJournal(path, fingerprint="f" * 64, fleet_size=3) as journal:
            journal.record(0, tiny_blocks[0], explanation)
        with CheckpointJournal(path, fingerprint="f" * 64, fleet_size=3) as journal:
            assert journal.skipped == 1
            assert set(journal.completed) == {0}
            recovered = journal.completed[0]
            assert explanation_fingerprint(recovered) == explanation_fingerprint(
                explanation
            )
            journal.verify_entry_keys(tiny_blocks)  # matching fleet is fine

    def test_torn_final_line_is_ignored(self, tmp_path, tiny_blocks, seeded_session):
        path = tmp_path / "run.jsonl"
        explanation = seeded_session.explain(tiny_blocks[0], rng=0)
        with CheckpointJournal(path, fingerprint="f" * 64, fleet_size=3) as journal:
            journal.record(0, tiny_blocks[0], explanation)
        with path.open("a", encoding="utf-8") as handle:
            handle.write('{"position": 1, "key": "1:dead", "payl')  # the crash
        with CheckpointJournal(path, fingerprint="f" * 64, fleet_size=3) as journal:
            assert set(journal.completed) == {0}

    def test_mismatched_fingerprint_discards_journal(
        self, tmp_path, tiny_blocks, seeded_session
    ):
        path = tmp_path / "run.jsonl"
        explanation = seeded_session.explain(tiny_blocks[0], rng=0)
        with CheckpointJournal(path, fingerprint="a" * 64, fleet_size=3) as journal:
            journal.record(0, tiny_blocks[0], explanation)
        with CheckpointJournal(path, fingerprint="b" * 64, fleet_size=3) as journal:
            assert journal.completed == {}
            assert journal.skipped == 0
        # The stale entries are gone for good, not merely hidden.
        assert path.read_text() == ""

    def test_mismatched_fleet_size_discards_journal(
        self, tmp_path, tiny_blocks, seeded_session
    ):
        path = tmp_path / "run.jsonl"
        explanation = seeded_session.explain(tiny_blocks[0], rng=0)
        with CheckpointJournal(path, fingerprint="a" * 64, fleet_size=3) as journal:
            journal.record(0, tiny_blocks[0], explanation)
        with CheckpointJournal(path, fingerprint="a" * 64, fleet_size=4) as journal:
            assert journal.completed == {}

    def test_missing_manifest_discards_journal(
        self, tmp_path, tiny_blocks, seeded_session
    ):
        path = tmp_path / "run.jsonl"
        explanation = seeded_session.explain(tiny_blocks[0], rng=0)
        with CheckpointJournal(path, fingerprint="a" * 64, fleet_size=3) as journal:
            journal.record(0, tiny_blocks[0], explanation)
        (tmp_path / "run.jsonl.manifest").unlink()
        with CheckpointJournal(path, fingerprint="a" * 64, fleet_size=3) as journal:
            assert journal.completed == {}

    def test_out_of_range_position_refused(self, tmp_path, tiny_blocks, seeded_session):
        path = tmp_path / "run.jsonl"
        explanation = seeded_session.explain(tiny_blocks[0], rng=0)
        with CheckpointJournal(path, fingerprint="a" * 64, fleet_size=3) as journal:
            journal.record(0, tiny_blocks[0], explanation)
        # Corrupt the entry's position while keeping the line valid JSON and
        # the manifest matching — replay must refuse, not index out of range.
        entry = json.loads(path.read_text())
        entry["position"] = 99
        path.write_text(json.dumps(entry) + "\n")
        with pytest.raises(CheckpointError, match="outside the fleet"):
            CheckpointJournal(path, fingerprint="a" * 64, fleet_size=3)

    def test_entry_key_mismatch_refused(self, tmp_path, tiny_blocks, seeded_session):
        path = tmp_path / "run.jsonl"
        explanation = seeded_session.explain(tiny_blocks[0], rng=0)
        with CheckpointJournal(path, fingerprint="a" * 64, fleet_size=3) as journal:
            journal.record(0, tiny_blocks[0], explanation)
        with CheckpointJournal(path, fingerprint="a" * 64, fleet_size=3) as journal:
            # Same manifest, but the resuming fleet has a different block at
            # position 0 (hand-edited or corrupted journal).
            with pytest.raises(CheckpointError, match="different fleet"):
                journal.verify_entry_keys([tiny_blocks[1]] + list(tiny_blocks[1:]))

    def test_entry_keys_bind_position_and_content(self, tiny_blocks):
        assert _entry_key(0, tiny_blocks[0]) != _entry_key(1, tiny_blocks[0])
        assert _entry_key(0, tiny_blocks[0]) != _entry_key(0, tiny_blocks[1])


class TestSessionCheckpointing:
    def test_checkpoint_requires_integer_seed(self, tmp_path, tiny_blocks):
        with ExplanationSession(AnalyticalCostModel("hsw"), FAST_CONFIG) as session:
            for bad in (np.random.default_rng(0), None, True):
                with pytest.raises(CheckpointError, match="integer seed"):
                    session.explain_many(
                        tiny_blocks, rng=bad, checkpoint=tmp_path / "run.jsonl"
                    )

    def test_numpy_integer_seed_accepted(self, tmp_path, tiny_blocks):
        with ExplanationSession(AnalyticalCostModel("hsw"), FAST_CONFIG) as session:
            results = session.explain_many(
                tiny_blocks, rng=np.int64(7), checkpoint=tmp_path / "run.jsonl"
            )
        assert len(results) == len(tiny_blocks)

    def test_completed_run_resumes_as_pure_replay(self, tmp_path, tiny_blocks):
        path = tmp_path / "run.jsonl"
        first, first_stats = _checkpointed_run(tiny_blocks, path)
        again, again_stats = _checkpointed_run(tiny_blocks, path)
        assert [explanation_fingerprint(e) for e in again] == [
            explanation_fingerprint(e) for e in first
        ]
        assert first_stats.checkpoint_skips == 0
        assert again_stats.checkpoint_skips == len(tiny_blocks)
        assert again_stats.explanations == 0  # nothing recomputed
        assert "checkpoint skips" in again_stats.describe()

    def test_interrupted_run_resumes_bit_for_bit(
        self, tmp_path, block_fleet, monkeypatch
    ):
        """The tentpole guarantee: crash mid-run, rerun, identical output."""
        fleet = list(block_fleet[:6])
        uninterrupted, _ = _checkpointed_run(fleet, tmp_path / "clean.jsonl")

        # Crash the process (well, the call) right after the journal fsyncs
        # its second entry — the exact frontier a real OOM kill leaves.
        crashed = tmp_path / "crashed.jsonl"
        real_record = CheckpointJournal.record
        recorded = []

        def crashing_record(self, position, block, explanation):
            real_record(self, position, block, explanation)
            recorded.append(position)
            if len(recorded) == 2:
                raise ModelError("simulated crash mid-run")

        with monkeypatch.context() as patch:
            patch.setattr(CheckpointJournal, "record", crashing_record)
            with ExplanationSession(
                AnalyticalCostModel("hsw"), FAST_CONFIG
            ) as session:
                with pytest.raises(ModelError, match="simulated crash"):
                    session.explain_many(fleet, rng=7, checkpoint=crashed)
        assert len(recorded) == 2  # genuinely interrupted mid-run

        resumed, stats = _checkpointed_run(fleet, crashed)
        assert [explanation_fingerprint(e) for e in resumed] == [
            explanation_fingerprint(e) for e in uninterrupted
        ]
        assert stats.checkpoint_skips == 2
        assert stats.explanations == len(fleet) - 2

    def test_different_seed_does_not_reuse_the_journal(self, tmp_path, tiny_blocks):
        path = tmp_path / "run.jsonl"
        _checkpointed_run(tiny_blocks, path, seed=7)
        _, stats = _checkpointed_run(tiny_blocks, path, seed=8)
        assert stats.checkpoint_skips == 0  # fingerprint mismatch → fresh run

    def test_checkpointed_matches_plain_sequential_run(self, tmp_path, tiny_blocks):
        """Journaling must not change what gets computed, only what is kept."""
        with ExplanationSession(AnalyticalCostModel("hsw"), FAST_CONFIG) as session:
            plain = session.explain_many(tiny_blocks, rng=7, shards=None)
        checkpointed, _ = _checkpointed_run(tiny_blocks, tmp_path / "run.jsonl")
        assert [explanation_fingerprint(e) for e in checkpointed] == [
            explanation_fingerprint(e) for e in plain
        ]
