"""SessionPool: lease/release accounting, LRU eviction (immediate and
deferred), build failure propagation, occupancy stats and lifecycle."""

import threading
import time

import pytest

from repro.models.base import CachedCostModel, CallableCostModel
from repro.runtime.pool import SessionPool
from repro.runtime.session import ExplanationSession
from repro.utils.errors import BackendError

from tests.conftest import FAST_CONFIG


def _factory(built=None, delay=0.0, fail_for=()):
    def build(model_name, uarch):
        if delay:
            time.sleep(delay)
        if model_name in fail_for:
            raise RuntimeError(f"cannot build {model_name}")
        if built is not None:
            built.append((model_name, uarch))
        model = CachedCostModel(
            CallableCostModel(lambda b: float(b.num_instructions), name=model_name)
        )
        return ExplanationSession(model, FAST_CONFIG, backend="serial")

    return build


class TestLeasing:
    def test_lease_builds_once_and_reuses(self):
        built = []
        with SessionPool(_factory(built)) as pool:
            first = pool.lease("m", "hsw")
            pool.release("m", "hsw")
            second = pool.lease("m", "hsw")
            pool.release("m", "hsw")
            assert first is second
            assert built == [("m", "hsw")]
            stats = pool.stats()
            assert stats.builds == 1
            assert stats.hits == 1
            assert stats.leased == 0

    def test_leased_context_manager_pairs(self):
        with SessionPool(_factory()) as pool:
            with pool.leased("m", "hsw") as session:
                assert pool.stats().leased == 1
                assert not session.closed
            assert pool.stats().leased == 0

    def test_release_without_lease_rejected(self):
        with SessionPool(_factory()) as pool:
            with pytest.raises(BackendError):
                pool.release("m", "hsw")
            with pool.leased("m", "hsw"):
                pass
            with pytest.raises(BackendError):
                pool.release("m", "hsw")  # lease already returned

    def test_concurrent_leases_of_one_key_share_one_build(self):
        built = []
        with SessionPool(_factory(built, delay=0.05)) as pool:
            sessions = []
            lock = threading.Lock()

            def leaser():
                session = pool.lease("m", "hsw")
                with lock:
                    sessions.append(session)

            threads = [threading.Thread(target=leaser) for _ in range(4)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=30)
            assert not any(thread.is_alive() for thread in threads)
            assert built == [("m", "hsw")]
            assert len(set(map(id, sessions))) == 1
            assert pool.stats().leased == 1  # one entry, four leases on it
            for _ in range(4):
                pool.release("m", "hsw")

    def test_build_failure_propagates_and_leaves_pool_clean(self):
        with SessionPool(_factory(fail_for=("bad",))) as pool:
            with pytest.raises(RuntimeError):
                pool.lease("bad", "hsw")
            assert pool.stats().sessions == 0
            # The pool still works for (and after) the failure.
            with pool.leased("good", "hsw"):
                pass
            with pytest.raises(RuntimeError):
                pool.lease("bad", "hsw")  # fails again, not poisoned


class TestEviction:
    def test_idle_lru_session_evicted_at_capacity(self):
        with SessionPool(_factory(), max_sessions=2) as pool:
            with pool.leased("a", "hsw") as a_session:
                pass
            with pool.leased("b", "hsw"):
                pass
            with pool.leased("c", "hsw"):
                pass
            assert a_session.closed
            assert pool.keys() == (("b", "hsw"), ("c", "hsw"))
            assert pool.stats().evictions == 1

    def test_lease_order_decides_the_victim(self):
        with SessionPool(_factory(), max_sessions=2) as pool:
            with pool.leased("a", "hsw"):
                pass
            with pool.leased("b", "hsw") as b_session:
                pass
            with pool.leased("a", "hsw"):  # refresh a: b is now LRU
                pass
            with pool.leased("c", "hsw"):
                pass
            assert b_session.closed
            assert pool.keys() == (("a", "hsw"), ("c", "hsw"))

    def test_leased_session_never_closed_under_a_request(self):
        """Overflow while the LRU session is leased: eviction is deferred to
        the final release instead of closing a session mid-request."""
        with SessionPool(_factory(), max_sessions=1) as pool:
            a_session = pool.lease("a", "hsw")
            with pool.leased("b", "hsw"):
                # "a" is marked for eviction but must still be open: a
                # request may be running on it right now.
                assert not a_session.closed
            assert not a_session.closed
            pool.release("a", "hsw")
            assert a_session.closed  # final release completed the eviction
            assert pool.keys() == (("b", "hsw"),)

    def test_hot_session_leased_again_is_resurrected_not_doomed(self):
        """Re-leasing a deferred-evicted session clears the mark and picks
        another victim, so a hot key is never closed-and-cold-rebuilt just
        because the pool briefly overflowed while it was busy."""
        with SessionPool(_factory(), max_sessions=1) as pool:
            hot = pool.lease("hot", "hsw")
            with pool.leased("other", "hsw") as other:
                # Overflow marked "hot" (leased, so deferred)...
                hot_again = pool.lease("hot", "hsw")  # ...but it is hot again
                assert hot_again is hot
            # "other" (idle once released) became the victim instead.
            assert other.closed
            pool.release("hot", "hsw")
            pool.release("hot", "hsw")
            assert not hot.closed  # survives: the resurrection stuck
            assert pool.keys() == (("hot", "hsw"),)
            # Occupancy no longer over-reports a permanently evicted ghost.
            assert pool.stats().sessions == 1

    def test_occupancy_stats(self):
        with SessionPool(_factory(), max_sessions=4) as pool:
            with pool.leased("a", "hsw"):
                with pool.leased("b", "hsw"):
                    stats = pool.stats()
                    assert stats.sessions == 2
                    assert stats.leased == 2
                    assert stats.occupancy == 0.5
            assert "2/4 sessions" in pool.stats().describe()

    def test_snapshot_is_internally_consistent(self):
        with SessionPool(_factory(), max_sessions=4) as pool:
            with pool.leased("a", "hsw"):
                with pool.leased("b", "hsw"):
                    keys, stats, session_stats = pool.snapshot()
        assert keys == (("a", "hsw"), ("b", "hsw"))
        assert stats.sessions == len(keys) == 2
        assert stats.leased == 2
        assert set(session_stats) == set(keys)

    def test_session_stats_relayed(self):
        from repro.bb.block import BasicBlock

        block = BasicBlock.from_text("add rcx, rax\nmov rdx, rcx")
        with SessionPool(_factory()) as pool:
            with pool.leased("m", "hsw") as session:
                session.explain(block, rng=0)
            per_session = pool.session_stats()
        assert per_session[("m", "hsw")].explanations == 1


class TestLifecycle:
    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            SessionPool(_factory(), max_sessions=0)

    def test_close_closes_all_sessions_idempotently(self):
        pool = SessionPool(_factory())
        a = pool.lease("a", "hsw")
        pool.release("a", "hsw")
        b = pool.lease("b", "hsw")
        pool.release("b", "hsw")
        pool.close()
        pool.close()
        assert a.closed and b.closed
        assert pool.closed
        assert pool.keys() == ()

    def test_lease_after_close_rejected(self):
        pool = SessionPool(_factory())
        pool.close()
        with pytest.raises(BackendError):
            pool.lease("m", "hsw")

    def test_release_after_close_is_harmless(self):
        pool = SessionPool(_factory())
        session = pool.lease("m", "hsw")
        pool.close()
        # The live lease shields the session: close() defers to the final
        # release instead of killing a possibly-running request.
        assert not session.closed
        pool.release("m", "hsw")  # must not raise, and completes the close
        assert session.closed
        pool.release("m", "hsw")  # a genuinely straggling duplicate: no-op

    def test_close_defers_to_live_leases(self):
        pool = SessionPool(_factory())
        idle = pool.lease("idle", "hsw")
        pool.release("idle", "hsw")
        with pool.leased("busy", "hsw") as busy:
            pool.close()
            assert idle.closed        # idle session closed immediately
            assert not busy.closed    # leased session survives its request
        assert busy.closed            # ...and closes on release

    def test_close_racing_a_build_leaks_no_session(self):
        """close() while a factory call is in flight: the late-built session
        must still be closed and the leaser must see a clean rejection."""
        build_started = threading.Event()
        build_release = threading.Event()
        built_sessions = []
        base = _factory()

        def slow_build(model_name, uarch):
            build_started.set()
            build_release.wait(timeout=30)
            session = base(model_name, uarch)
            built_sessions.append(session)
            return session

        pool = SessionPool(slow_build)
        outcomes = []

        def leaser():
            try:
                outcomes.append(pool.lease("m", "hsw"))
            except BackendError as error:
                outcomes.append(str(error))

        thread = threading.Thread(target=leaser)
        thread.start()
        assert build_started.wait(timeout=10)
        pool.close()          # races the in-flight build
        build_release.set()   # let the factory finish late
        thread.join(timeout=30)
        assert not thread.is_alive()
        assert outcomes == ["this session pool has been closed"]
        assert built_sessions and built_sessions[0].closed  # not leaked

    def test_from_registry_builds_real_sessions(self):
        from repro.bb.block import BasicBlock

        block = BasicBlock.from_text("div rcx")
        with SessionPool.from_registry(config=FAST_CONFIG, backend="serial") as pool:
            with pool.leased("crude", "hsw") as session:
                explanation = session.explain(block, rng=0)
        assert explanation.model_name == "crude-analytical-hsw"
