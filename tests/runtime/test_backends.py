"""Tests for the execution backends (the runtime's substrate layer)."""

import pickle

import pytest

from repro.bb.block import BasicBlock
from repro.models.base import CachedCostModel, CallableCostModel
from repro.models.mca import PortPressureCostModel
from repro.runtime.backend import (
    BACKEND_ENV_VAR,
    WORKERS_ENV_VAR,
    ExecutionBackend,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    available_backends,
    resolve_backend,
)
from repro.utils.errors import BackendError


def _square(x):
    return x * x


@pytest.fixture
def blocks():
    return [
        BasicBlock.from_text("add rcx, rax\nmov rdx, rcx"),
        BasicBlock.from_text("xor edx, edx\ndiv rcx\nimul rax, rcx"),
        BasicBlock.from_text("pop rbx"),
        BasicBlock.from_text("mov ecx, edx\nlea rax, [rcx + rax - 1]"),
    ]


@pytest.fixture(params=["serial", "thread", "process"])
def backend(request):
    with resolve_backend(request.param, 2) as instance:
        yield instance


class TestMapBatch:
    def test_preserves_input_order(self, backend):
        assert backend.map_batch(_square, list(range(20))) == [
            x * x for x in range(20)
        ]

    def test_empty_batch(self, backend):
        assert backend.map_batch(_square, []) == []

    def test_predict_blocks_matches_serial(self, backend, blocks):
        model = PortPressureCostModel("hsw")
        expected = [model._predict(block) for block in blocks]
        assert backend.predict_blocks(model, blocks) == expected


class TestLifecycle:
    @pytest.mark.parametrize("name", available_backends())
    def test_close_is_idempotent(self, name):
        backend = resolve_backend(name, 2)
        backend.close()
        backend.close()
        assert backend.closed

    @pytest.mark.parametrize("name", available_backends())
    def test_use_after_close_rejected(self, name):
        backend = resolve_backend(name, 2)
        backend.close()
        with pytest.raises(BackendError):
            backend.map_batch(_square, [1, 2])

    def test_context_manager_closes(self):
        with ThreadBackend(2) as backend:
            backend.map_batch(_square, [1, 2, 3])
        assert backend.closed

    def test_thread_pool_released_on_close(self):
        backend = ThreadBackend(2)
        backend.map_batch(_square, [1, 2, 3])
        assert backend._pool is not None
        backend.close()
        assert backend._pool is None

    def test_process_pool_released_on_close(self, blocks):
        backend = ProcessBackend(2)
        model = PortPressureCostModel("hsw")
        backend.predict_blocks(model, blocks)
        assert backend._pool is not None
        backend.close()
        assert backend._pool is None


class TestIntrospection:
    def test_worker_counts(self):
        assert SerialBackend().workers == 1
        assert ThreadBackend(3).workers == 3
        assert ProcessBackend(2).workers == 2

    def test_zero_workers_means_sequential(self):
        # Matches the legacy batch_workers=0 convention: an explicit 0 asks
        # for no parallelism, not for the machine default.
        assert ThreadBackend(0).workers == 1
        assert ProcessBackend(0).workers == 1

    def test_describe_names_the_backend(self):
        assert "process" in ProcessBackend(2).describe()
        assert "workers=2" in ProcessBackend(2).describe()

    def test_names(self):
        assert SerialBackend().name == "serial"
        assert ThreadBackend(1).name == "thread"
        assert ProcessBackend(1).name == "process"


class TestResolution:
    def test_names_resolve(self):
        assert isinstance(resolve_backend("serial"), SerialBackend)
        assert isinstance(resolve_backend("thread", 2), ThreadBackend)
        assert isinstance(resolve_backend("process", 2), ProcessBackend)

    def test_instance_passes_through(self):
        backend = SerialBackend()
        assert resolve_backend(backend) is backend

    def test_instance_with_workers_rejected(self):
        with pytest.raises(BackendError):
            resolve_backend(SerialBackend(), workers=4)

    def test_unknown_name_rejected(self):
        with pytest.raises(BackendError, match="unknown execution backend"):
            resolve_backend("quantum")

    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
        assert isinstance(resolve_backend(None), SerialBackend)

    def test_environment_selects_backend(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "thread")
        monkeypatch.setenv(WORKERS_ENV_VAR, "3")
        backend = resolve_backend(None)
        assert isinstance(backend, ThreadBackend)
        assert backend.workers == 3

    def test_bad_workers_environment_rejected(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV_VAR, "lots")
        with pytest.raises(BackendError):
            resolve_backend("thread")


class TestProcessBackendModelValidation:
    def test_lambda_model_rejected_with_clear_error(self):
        model = CallableCostModel(lambda b: 1.0, name="toy-lambda")
        backend = ProcessBackend(2)
        with pytest.raises(BackendError, match="not picklable") as excinfo:
            backend.prepare_model(model)
        message = str(excinfo.value)
        assert "toy-lambda" in message
        assert "serial or thread" in message

    def test_rejection_happens_at_install_time(self):
        model = CallableCostModel(lambda b: 1.0)
        with pytest.raises(BackendError):
            model.set_backend(ProcessBackend(2))

    def test_picklable_models_accepted(self):
        ProcessBackend(2).prepare_model(PortPressureCostModel("hsw"))


class TestModelBackendIntegration:
    def test_batch_workers_materialises_owned_thread_backend(self):
        model = PortPressureCostModel("hsw", batch_workers=2)
        backend = model.execution_backend
        assert isinstance(backend, ThreadBackend)
        model.close()
        assert backend.closed

    def test_injected_backend_survives_model_close(self):
        backend = ThreadBackend(2)
        model = PortPressureCostModel("hsw")
        model.set_backend(backend)
        model.close()
        assert not backend.closed
        backend.close()

    def test_cached_model_delegates_backend_to_inner(self):
        backend = SerialBackend()
        cached = CachedCostModel(PortPressureCostModel("hsw"))
        cached.set_backend(backend)
        assert cached.inner.execution_backend is backend
        assert cached.execution_backend is backend

    def test_model_pickles_without_its_backend(self, blocks):
        model = PortPressureCostModel("hsw")
        with ThreadBackend(2) as backend:
            model.set_backend(backend)
            clone = pickle.loads(pickle.dumps(model))
        assert clone.execution_backend is None
        assert clone._predict(blocks[0]) == model._predict(blocks[0])

    def test_fanout_through_process_backend_matches_serial(self, blocks):
        serial = PortPressureCostModel("hsw")
        expected = serial.predict_batch(blocks)
        with ProcessBackend(2) as backend:
            model = PortPressureCostModel("hsw")
            model.set_backend(backend)
            assert model.predict_batch(blocks) == expected

    def test_process_backend_rebinds_when_the_model_changes(self, blocks):
        # One shared pool must never serve a stale worker-resident model.
        with ProcessBackend(2) as backend:
            light = PortPressureCostModel("hsw", dependency_weight=0.0)
            heavy = PortPressureCostModel("hsw", dependency_weight=1.0)
            assert backend.predict_blocks(light, blocks) == [
                light._predict(b) for b in blocks
            ]
            assert backend.predict_blocks(heavy, blocks) == [
                heavy._predict(b) for b in blocks
            ]

    def test_using_backend_is_a_borrow(self, blocks):
        model = PortPressureCostModel("hsw")
        configured = SerialBackend()
        model.set_backend(configured, own=True)
        with ThreadBackend(2) as temporary:
            with model.using_backend(temporary):
                assert model.execution_backend is temporary
                model.predict_batch(blocks)
            assert model.execution_backend is configured
        assert not configured.closed
        model.close()
