"""Tests for :class:`ExplanationSession` (the runtime's shared-state layer)."""

import pytest

from repro.bb.block import BasicBlock
from repro.explain.config import ExplainerConfig
from repro.explain.explainer import CometExplainer
from repro.models.analytical import AnalyticalCostModel
from repro.models.base import CachedCostModel
from repro.runtime.backend import SerialBackend, ThreadBackend
from repro.runtime.session import ExplanationSession
from repro.utils.errors import BackendError

from tests.conftest import FAST_CONFIG, explanation_fingerprint as _fingerprint


class TestSessionExplanations:
    def test_first_explanation_matches_one_shot_explainer(self, tiny_blocks):
        one_shot = CometExplainer(
            CachedCostModel(AnalyticalCostModel("hsw")), FAST_CONFIG
        ).explain(tiny_blocks[0], rng=3)
        with ExplanationSession(AnalyticalCostModel("hsw"), FAST_CONFIG) as session:
            in_session = session.explain(tiny_blocks[0], rng=3)
        assert _fingerprint(one_shot) == _fingerprint(in_session)

    def test_explain_many_matches_per_block_streams(self, tiny_blocks):
        explainer = CometExplainer(
            CachedCostModel(AnalyticalCostModel("hsw")), FAST_CONFIG
        )
        fleet = explainer.explain_many(tiny_blocks, rng=11)
        with ExplanationSession(AnalyticalCostModel("hsw"), FAST_CONFIG) as session:
            again = session.explain_many(tiny_blocks, rng=11)
        assert [_fingerprint(e) for e in fleet] == [_fingerprint(e) for e in again]

    def test_seeded_session_runs_are_deterministic(self, tiny_blocks):
        def run():
            with ExplanationSession(AnalyticalCostModel("hsw"), FAST_CONFIG) as s:
                return [_fingerprint(e) for e in s.explain_many(tiny_blocks, rng=2)]

        assert run() == run()


class TestSharedState:
    def test_population_record_shared_across_explanations(self, tiny_blocks):
        with ExplanationSession(AnalyticalCostModel("hsw"), FAST_CONFIG) as session:
            record = session.coverage_record(tiny_blocks[0])
            assert record is session.coverage_record(tiny_blocks[0])
            session.explain(tiny_blocks[0], rng=0)
            assert len(record.population) == FAST_CONFIG.coverage_samples
            session.explain(tiny_blocks[0], rng=1)
            assert session.stats().populations_cached == 1

    def test_repeated_block_does_not_redraw_population(self, tiny_blocks):
        with ExplanationSession(AnalyticalCostModel("hsw"), FAST_CONFIG) as session:
            session.explain(tiny_blocks[0], rng=0)
            population = list(session.coverage_record(tiny_blocks[0]).population)
            session.explain(tiny_blocks[0], rng=1)
            assert session.coverage_record(tiny_blocks[0]).population == population

    def test_population_records_are_lru_bounded(self, tiny_blocks):
        with ExplanationSession(
            AnalyticalCostModel("hsw"), FAST_CONFIG, max_population_records=1
        ) as session:
            session.explain(tiny_blocks[0], rng=0)
            session.explain(tiny_blocks[1], rng=0)
            assert session.stats().populations_cached == 1
            # The surviving record belongs to the most recent block.
            assert session.coverage_record(tiny_blocks[1]).population

    def test_invalid_population_bound_rejected(self):
        with pytest.raises(ValueError):
            ExplanationSession(
                AnalyticalCostModel("hsw"), FAST_CONFIG, max_population_records=0
            )

    def test_shared_background_can_be_disabled(self, tiny_blocks):
        config = FAST_CONFIG.with_overrides(shared_background=False)
        with ExplanationSession(AnalyticalCostModel("hsw"), config) as session:
            assert session.coverage_record(tiny_blocks[0]) is None
            session.explain(tiny_blocks[0], rng=0)
            assert session.stats().populations_cached == 0

    def test_model_wrapped_in_cache_exactly_once(self):
        raw = AnalyticalCostModel("hsw")
        with ExplanationSession(raw, FAST_CONFIG) as session:
            assert isinstance(session.model, CachedCostModel)
            assert session.model.inner is raw
        cached = CachedCostModel(AnalyticalCostModel("hsw"))
        with ExplanationSession(cached, FAST_CONFIG) as session:
            assert session.model is cached


class TestStats:
    def test_stats_track_run_accounting(self, tiny_blocks):
        with ExplanationSession(
            AnalyticalCostModel("hsw"), FAST_CONFIG, backend="serial"
        ) as session:
            session.explain_many(tiny_blocks[:2], rng=0)
            stats = session.stats()
        assert stats.explanations == 2
        assert stats.model_queries > 0
        assert stats.cache_hits + stats.cache_misses >= stats.model_queries
        assert 0.0 <= stats.cache_hit_rate <= 1.0
        assert stats.populations_cached == 2
        assert "serial" in stats.backend
        assert "2 explanations" in stats.describe()

    def test_stats_ignore_pre_session_history(self, tiny_blocks):
        cached = CachedCostModel(AnalyticalCostModel("hsw"))
        cached.predict(tiny_blocks[0])
        cached.predict(tiny_blocks[0])
        with ExplanationSession(cached, FAST_CONFIG) as session:
            assert session.stats().model_queries == 0
            assert session.stats().cache_hits == 0


class TestLifecycle:
    def test_explain_after_close_rejected(self, tiny_blocks):
        session = ExplanationSession(AnalyticalCostModel("hsw"), FAST_CONFIG)
        session.close()
        with pytest.raises(BackendError):
            session.explain(tiny_blocks[0], rng=0)

    def test_close_is_idempotent(self):
        session = ExplanationSession(AnalyticalCostModel("hsw"), FAST_CONFIG)
        session.close()
        session.close()
        assert session.closed

    def test_session_closes_backend_it_resolved(self):
        session = ExplanationSession(
            AnalyticalCostModel("hsw"), FAST_CONFIG, backend="thread", workers=2
        )
        backend = session.backend
        session.close()
        assert backend.closed

    def test_caller_owned_backend_left_open(self):
        backend = ThreadBackend(2)
        session = ExplanationSession(
            AnalyticalCostModel("hsw"), FAST_CONFIG, backend=backend
        )
        session.close()
        assert not backend.closed
        backend.close()

    def test_session_borrows_a_model_configured_backend(self):
        # A substrate the caller installed on the model beats the ambient
        # default, and must survive the session.
        configured = ThreadBackend(2)
        model = AnalyticalCostModel("hsw")
        model.set_backend(configured, own=True)
        session = ExplanationSession(model, FAST_CONFIG)
        assert session.backend is configured
        session.close()
        assert not configured.closed
        assert model.execution_backend is configured
        model.close()
        assert configured.closed

    def test_explainer_fleet_api_leaves_model_usable(self, tiny_blocks):
        model = CachedCostModel(AnalyticalCostModel("hsw"))
        explainer = CometExplainer(model, FAST_CONFIG, rng=4)
        explainer.explain_many(tiny_blocks[:1])
        # The transient session released its backend; one-shot use still works.
        explainer.explain(tiny_blocks[0], rng=0)

    def test_explainer_with_named_backend_closes_it(self):
        model = CachedCostModel(AnalyticalCostModel("hsw"))
        with CometExplainer(model, FAST_CONFIG, backend="thread", workers=2) as explainer:
            backend = explainer._backend
            assert model.execution_backend is backend
        assert backend.closed
        assert model.execution_backend is None


class TestGlobalExplainerIntegration:
    def test_session_scores_block_set_through_its_model(self, tiny_blocks):
        with ExplanationSession(AnalyticalCostModel("hsw"), FAST_CONFIG) as session:
            global_explainer = session.global_explainer(tiny_blocks)
            assert global_explainer.model is session.model
            expected = [session.model.predict(block) for block in tiny_blocks]
            assert global_explainer.predictions() == expected

    def test_backend_parity_for_global_predictions(self, tiny_blocks):
        baseline = ExplanationSession(AnalyticalCostModel("hsw"), FAST_CONFIG)
        serial = baseline.global_explainer(tiny_blocks).predictions()
        baseline.close()
        with ExplanationSession(
            AnalyticalCostModel("hsw"), FAST_CONFIG, backend="process", workers=2
        ) as session:
            assert session.global_explainer(tiny_blocks).predictions() == serial

    def test_global_explainer_backend_is_transient(self, tiny_blocks):
        from repro.globalx.global_explainer import GlobalExplainer

        model = CachedCostModel(AnalyticalCostModel("hsw"))
        explainer = GlobalExplainer(model, tiny_blocks, backend="thread", workers=2)
        # Scoring borrowed the backend; the model's substrate is untouched
        # and nothing pooled is left behind.
        assert model.execution_backend is None
        assert len(explainer.predictions()) == len(tiny_blocks)
