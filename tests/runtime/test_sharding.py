"""Block-sharded ``explain_many``: parity, determinism and plan semantics.

Sharding partitions a fleet across backend workers, each shard running full
anchor searches.  The contract: for a fresh session and a fixed seed, the
sharded result payload is bit-for-bit the unsharded one, on every backend,
including fleets with repeated blocks (whose population-record reuse must
happen exactly where the serial loop would reuse).
"""

import pytest

from repro.models.analytical import AnalyticalCostModel
from repro.models.base import CachedCostModel
from repro.models.mca import PortPressureCostModel
from repro.runtime.session import ExplanationSession
from repro.utils.errors import BackendError

from tests.conftest import FAST_CONFIG, explanation_fingerprint


def _workload(tiny_blocks):
    # Repeats included on purpose: they exercise the key-grouped partitioning
    # (all occurrences of one block must land in one shard, in order).
    return list(tiny_blocks) + [tiny_blocks[0], tiny_blocks[2], tiny_blocks[0]]


def _fleet(blocks, *, backend, shards, workers=3, model=None, seed=11):
    model = model or AnalyticalCostModel("hsw")
    with ExplanationSession(
        model, FAST_CONFIG, backend=backend, workers=workers
    ) as session:
        return [
            explanation_fingerprint(e)
            for e in session.explain_many(blocks, rng=seed, shards=shards)
        ]


class TestShardedParity:
    @pytest.fixture(scope="class")
    def baseline(self, tiny_blocks):
        return _fleet(_workload(tiny_blocks), backend="serial", shards=None)

    @pytest.mark.parametrize(
        "backend,shards",
        [
            ("serial", 3),
            ("thread", "auto"),
            ("thread", 2),
            ("process", "auto"),
            ("process", 5),  # more shards than distinct-block groups
        ],
    )
    def test_sharded_matches_unsharded(self, tiny_blocks, baseline, backend, shards):
        assert _fleet(_workload(tiny_blocks), backend=backend, shards=shards) == baseline

    def test_sharded_deterministic_across_runs(self, tiny_blocks):
        first = _fleet(_workload(tiny_blocks), backend="thread", shards="auto")
        second = _fleet(_workload(tiny_blocks), backend="thread", shards="auto")
        assert first == second

    def test_process_sharding_on_simulator_model(self, tiny_blocks):
        # The motivating case: whole GIL-bound searches fan out per worker.
        serial = _fleet(
            tiny_blocks,
            backend="serial",
            shards=None,
            model=CachedCostModel(PortPressureCostModel("hsw")),
        )
        sharded = _fleet(
            tiny_blocks,
            backend="process",
            shards="auto",
            workers=2,
            model=CachedCostModel(PortPressureCostModel("hsw")),
        )
        assert sharded == serial

    def test_explainer_api_passes_shards_through(self, tiny_blocks):
        from repro.explain.explainer import CometExplainer

        baseline = CometExplainer(
            CachedCostModel(AnalyticalCostModel("hsw")), FAST_CONFIG
        ).explain_many(tiny_blocks, rng=3)
        sharded = CometExplainer(
            CachedCostModel(AnalyticalCostModel("hsw")),
            FAST_CONFIG,
            backend="thread",
            workers=2,
        ).explain_many(tiny_blocks, rng=3, shards="auto")
        assert [explanation_fingerprint(e) for e in sharded] == [
            explanation_fingerprint(e) for e in baseline
        ]


class TestShardPlan:
    def _plan(self, blocks, shards, workers=4):
        with ExplanationSession(
            AnalyticalCostModel("hsw"), FAST_CONFIG, backend="thread", workers=workers
        ) as session:
            return session._shard_plan(blocks, shards)

    def test_default_is_sequential(self, tiny_blocks):
        assert self._plan(tiny_blocks, None) is None

    def test_zero_and_one_stay_sequential(self, tiny_blocks):
        assert self._plan(tiny_blocks, 0) is None
        assert self._plan(tiny_blocks, 1) is None

    def test_auto_sizes_to_workers(self, tiny_blocks):
        plan = self._plan(_workload(tiny_blocks), "auto", workers=2)
        assert len(plan) == 2

    def test_plan_covers_every_position_once(self, tiny_blocks):
        workload = _workload(tiny_blocks)
        plan = self._plan(workload, 3)
        positions = sorted(p for shard in plan for p in shard)
        assert positions == list(range(len(workload)))

    def test_duplicate_blocks_share_a_shard_in_order(self, tiny_blocks):
        workload = _workload(tiny_blocks)
        plan = self._plan(workload, 3)
        for shard in plan:
            assert shard == sorted(shard)
        # All occurrences of tiny_blocks[0] (positions 0, 3, 5) co-located.
        containing = [shard for shard in plan if 0 in shard]
        assert len(containing) == 1
        assert {3, 5} <= set(containing[0])

    def test_shard_count_capped_by_distinct_blocks(self, tiny_blocks):
        plan = self._plan(_workload(tiny_blocks), 16)
        assert len(plan) == len(tiny_blocks)  # 3 distinct keys

    def test_single_block_never_shards(self, tiny_blocks):
        assert self._plan(tiny_blocks[:1], 4) is None

    def test_invalid_shards_rejected(self, tiny_blocks):
        with pytest.raises(BackendError):
            self._plan(tiny_blocks, "most")


class TestShardWorker:
    """The process-shard worker function, exercised in-process.

    ``_explain_shard_remote`` normally runs inside pool workers where
    coverage cannot see it; it is a plain function, so its contract — same
    explanations as the session path, records rebuilt per shard — is pinned
    directly here.
    """

    def test_worker_matches_session_results(self, tiny_blocks):
        from repro.runtime.session import _explain_shard_remote
        from repro.utils.rng import spawn_rngs

        workload = _workload(tiny_blocks)
        with ExplanationSession(AnalyticalCostModel("hsw"), FAST_CONFIG) as session:
            expected = [
                explanation_fingerprint(e)
                for e in session.explain_many(workload, rng=7)
            ]
        streams = spawn_rngs(7, len(workload))
        payload = (
            AnalyticalCostModel("hsw"),
            FAST_CONFIG,
            list(zip(range(len(workload)), workload, streams)),
            100_000,
        )
        pairs = _explain_shard_remote(payload)
        assert [position for position, _ in pairs] == list(range(len(workload)))
        assert [explanation_fingerprint(e) for _, e in pairs] == expected

    def test_worker_honours_disabled_shared_background(self, tiny_blocks):
        from repro.runtime.session import _explain_shard_remote
        from repro.utils.rng import spawn_rngs

        config = FAST_CONFIG.with_overrides(shared_background=False)
        streams = spawn_rngs(0, 2)
        payload = (
            AnalyticalCostModel("hsw"),
            config,
            [(0, tiny_blocks[0], streams[0]), (1, tiny_blocks[0], streams[1])],
            100_000,
        )
        pairs = _explain_shard_remote(payload)
        assert len(pairs) == 2


class TestRuntimeLazyExports:
    def test_session_importable_from_package_root(self):
        import repro.runtime as runtime

        assert runtime.ExplanationSession is ExplanationSession
        assert runtime.SessionStats is not None

    def test_unknown_attribute_rejected(self):
        import repro.runtime as runtime

        with pytest.raises(AttributeError):
            runtime.NoSuchThing


class TestShardedAccounting:
    """Per-explanation ``num_queries`` must not depend on the substrate.

    Searches measure their queries through thread-scoped tallies
    (``CostModel.query_tally``), so a shard thread counts only its own
    cache misses — concurrent shards cannot pollute each other — and the
    key-grouped partitioning keeps each block's cache history identical to
    the serial loop's.  The result: the *whole* ``num_queries`` vector of a
    fresh fleet run is equal on every backend, sharded or not, repeats
    included.
    """

    @pytest.fixture(scope="class")
    def baseline_queries(self, tiny_blocks):
        model = CachedCostModel(AnalyticalCostModel("hsw"))
        with ExplanationSession(model, FAST_CONFIG, backend="serial") as session:
            return [
                e.num_queries
                for e in session.explain_many(_workload(tiny_blocks), rng=11, shards=None)
            ]

    @pytest.mark.parametrize(
        "backend,shards",
        [
            ("serial", None),
            ("serial", 3),
            ("thread", "auto"),
            ("thread", 2),
            ("process", "auto"),
            ("process", 5),
        ],
    )
    def test_num_queries_matches_unsharded_serial(
        self, tiny_blocks, baseline_queries, backend, shards
    ):
        model = CachedCostModel(AnalyticalCostModel("hsw"))
        with ExplanationSession(
            model, FAST_CONFIG, backend=backend, workers=3
        ) as session:
            queries = [
                e.num_queries
                for e in session.explain_many(_workload(tiny_blocks), rng=11, shards=shards)
            ]
        assert queries == baseline_queries
        assert all(q > 0 for q in queries[: len(tiny_blocks)])  # fresh blocks query

    def test_auto_sharding_is_now_the_fleet_default(self, tiny_blocks):
        """The default ``shards="auto"`` actually shards on parallel backends."""
        with ExplanationSession(
            AnalyticalCostModel("hsw"), FAST_CONFIG, backend="thread", workers=2
        ) as session:
            plan = session._shard_plan(_workload(tiny_blocks), "auto")
            assert plan is not None and len(plan) == 2
            import inspect

            signature = inspect.signature(session.explain_many)
            assert signature.parameters["shards"].default == "auto"

    def test_session_counts_every_explanation(self, tiny_blocks):
        with ExplanationSession(
            AnalyticalCostModel("hsw"), FAST_CONFIG, backend="thread", workers=2
        ) as session:
            session.explain_many(_workload(tiny_blocks), rng=0, shards="auto")
            assert session.explanations_produced == len(_workload(tiny_blocks))

    def test_thread_sharding_keeps_shared_cache_warm(self, tiny_blocks):
        with ExplanationSession(
            AnalyticalCostModel("hsw"), FAST_CONFIG, backend="thread", workers=2
        ) as session:
            session.explain_many(tiny_blocks, rng=0, shards="auto")
            stats = session.stats()
            # In-process shards share the session cache: lookups were served.
            assert stats.cache_hits > 0
            assert stats.model_queries > 0
