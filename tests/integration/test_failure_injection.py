"""Failure-injection tests: misbehaving models and malformed inputs.

COMET only has query access to the model it explains, so the library must
fail loudly and predictably when that model misbehaves (negative costs,
exceptions, NaNs) or when callers hand it malformed blocks.
"""

import math

import pytest

from repro.bb.block import BasicBlock
from repro.explain.config import ExplainerConfig
from repro.explain.explainer import CometExplainer
from repro.guidance.optimizer import ExplanationGuidedOptimizer, OptimizationConfig
from repro.models.base import CachedCostModel, CallableCostModel, CostModel
from repro.selection.criteria import score_model
from repro.utils.errors import ModelError, ParseError, ReproError, ValidationError


BLOCK = BasicBlock.from_text("add rcx, rax\nmov rdx, rcx\npop rbx")

FAST_EXPLAINER = ExplainerConfig(
    epsilon=0.25,
    relative_epsilon=0.0,
    coverage_samples=40,
    max_precision_samples=30,
    min_precision_samples=10,
)


class _ExplodingModel(CostModel):
    """Raises after a configurable number of successful queries."""

    def __init__(self, fail_after: int = 0) -> None:
        super().__init__("hsw")
        self.name = "exploding"
        self.fail_after = fail_after
        self.calls = 0

    def _predict(self, block):
        self.calls += 1
        if self.calls > self.fail_after:
            raise RuntimeError("backend unavailable")
        return 1.0


class TestModelContractViolations:
    def test_negative_cost_raises_model_error(self):
        model = CallableCostModel(lambda b: -1.0, name="negative")
        with pytest.raises(ModelError):
            model.predict(BLOCK)

    def test_nan_cost_raises_model_error(self):
        model = CallableCostModel(lambda b: float("nan"), name="nan")
        with pytest.raises(ModelError):
            model.predict(BLOCK)

    def test_model_exception_propagates_through_cache(self):
        model = CachedCostModel(_ExplodingModel(fail_after=0))
        with pytest.raises(RuntimeError):
            model.predict(BLOCK)

    def test_model_exception_propagates_through_explainer(self):
        model = _ExplodingModel(fail_after=3)
        explainer = CometExplainer(model, FAST_EXPLAINER, rng=0)
        with pytest.raises(RuntimeError):
            explainer.explain(BLOCK)

    def test_model_exception_propagates_through_optimizer(self):
        model = _ExplodingModel(fail_after=1)
        optimizer = ExplanationGuidedOptimizer(
            model, OptimizationConfig(steps=5, guided=False), rng=0
        )
        with pytest.raises(RuntimeError):
            optimizer.optimize(BLOCK)

    def test_model_exception_propagates_through_selection(self):
        model = _ExplodingModel(fail_after=1)
        with pytest.raises(RuntimeError):
            score_model(model, [BLOCK], [1.0], config=FAST_EXPLAINER)


class TestMalformedBlocks:
    def test_empty_text_rejected(self):
        with pytest.raises(ReproError):
            BasicBlock.from_text("")

    def test_unknown_opcode_rejected(self):
        with pytest.raises(ReproError):
            BasicBlock.from_text("frobnicate rax, rbx")

    def test_control_flow_rejected(self):
        with pytest.raises(ReproError):
            BasicBlock.from_text("add rcx, rax\njmp somewhere")

    def test_garbage_operand_rejected(self):
        with pytest.raises(ReproError):
            BasicBlock.from_text("add rcx, @@@")

    def test_empty_instruction_list_rejected(self):
        with pytest.raises(ValidationError):
            BasicBlock(instructions=())


def _const_one(block):
    # Module-level so the model pickles to process-backend workers.
    return 1.0


class TestNonFiniteTargets:
    def test_selection_accepts_but_flags_degenerate_targets(self):
        # Zero targets are clamped by the metric (no division by zero), so the
        # score is finite even for a pathological labelled set.
        model = CallableCostModel(_const_one, name="const")
        score = score_model(
            model, [BLOCK], [0.0], config=FAST_EXPLAINER, seed=0
        )
        assert math.isfinite(score.mape)
