"""Sanity checks on the public API surface, the examples and the CLI.

These tests protect downstream users from the most annoying breakages:
``__all__`` names that do not resolve, examples that do not even compile,
and CLI subcommands that disappear.
"""

import importlib
import py_compile
from pathlib import Path

import pytest

from repro.cli import build_parser


PACKAGES = [
    "repro.core",
    "repro.isa",
    "repro.uarch",
    "repro.bb",
    "repro.perturb",
    "repro.explain",
    "repro.models",
    "repro.data",
    "repro.eval",
    "repro.guidance",
    "repro.selection",
    "repro.train",
    "repro.globalx",
    "repro.reporting",
    "repro.runtime",
    "repro.service",
    "repro.utils",
]

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"


class TestPublicExports:
    @pytest.mark.parametrize("package", PACKAGES)
    def test_all_names_resolve(self, package):
        module = importlib.import_module(package)
        exported = getattr(module, "__all__", None)
        assert exported, f"{package} must define a non-empty __all__"
        for name in exported:
            assert hasattr(module, name), f"{package}.__all__ lists missing name {name}"

    @pytest.mark.parametrize("package", PACKAGES)
    def test_packages_have_docstrings(self, package):
        module = importlib.import_module(package)
        assert module.__doc__ and module.__doc__.strip()

    def test_top_level_version(self):
        import repro

        assert isinstance(repro.__version__, str)
        assert repro.__version__.count(".") >= 1


class TestExamples:
    def _example_files(self):
        return sorted(EXAMPLES_DIR.glob("*.py"))

    def test_at_least_seven_examples_ship(self):
        assert len(self._example_files()) >= 7

    @pytest.mark.parametrize(
        "path", sorted(EXAMPLES_DIR.glob("*.py")), ids=lambda p: p.name
    )
    def test_examples_compile(self, path):
        py_compile.compile(str(path), doraise=True)

    @pytest.mark.parametrize(
        "path", sorted(EXAMPLES_DIR.glob("*.py")), ids=lambda p: p.name
    )
    def test_examples_have_main_guard_and_docstring(self, path):
        source = path.read_text()
        assert source.lstrip().startswith(("#!", '"""')), path.name
        assert 'if __name__ == "__main__":' in source, path.name
        assert "def main(" in source, path.name


class TestCliSurface:
    def test_all_subcommands_registered(self):
        parser = build_parser()
        subparsers_action = next(
            action
            for action in parser._actions
            if hasattr(action, "choices") and action.choices
        )
        commands = set(subparsers_action.choices)
        assert {
            "predict",
            "explain",
            "features",
            "perturb",
            "space",
            "optimize",
            "dataset",
        } <= commands

    def test_help_text_renders(self):
        parser = build_parser()
        text = parser.format_help()
        assert "COMET" in text
