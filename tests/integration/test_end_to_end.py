"""End-to-end integration tests across the whole stack.

These follow the paper's narrative: parse real listings from the paper,
build cost models (analytical, simulation, neural), run COMET, and check the
qualitative conclusions the paper draws from each artefact.
"""

import pytest

from repro.core import (
    AnalyticalCostModel,
    BasicBlock,
    CachedCostModel,
    CometExplainer,
    ExplainerConfig,
    UiCACostModel,
    extract_features,
    ground_truth_explanations,
    train_ithemal,
)
from repro.bb.features import FeatureKind
from repro.data import BHiveDataset, HardwareOracle, explanation_test_set
from repro.eval.metrics import explanation_accuracy, mean_absolute_percentage_error
from repro.models.ithemal import IthemalConfig

FAST_CONFIG = ExplainerConfig(
    coverage_samples=150,
    max_precision_samples=80,
    min_precision_samples=16,
    batch_size=8,
)
CRUDE_CONFIG = FAST_CONFIG.with_overrides(epsilon=0.2, relative_epsilon=0.0)


@pytest.fixture(scope="module")
def dataset():
    return BHiveDataset.synthesize(
        150, min_instructions=3, max_instructions=9, rng=17
    )


class TestMotivatingExample:
    def test_listing1_explanation_mentions_the_raw_dependency(self):
        block = BasicBlock.from_text("add rcx, rax\nmov rdx, rcx\npop rbx")
        model = AnalyticalCostModel("hsw")
        explanation = CometExplainer(model, CRUDE_CONFIG, rng=0).explain(block)
        assert explanation.meets_threshold
        descriptions = " ".join(f.describe() for f in explanation.features)
        assert "RAW" in descriptions or "η" in descriptions


class TestCrudeModelPipeline:
    def test_comet_matches_ground_truth_on_clear_cut_blocks(self):
        model = AnalyticalCostModel("hsw")
        explainer = CometExplainer(model, CRUDE_CONFIG, rng=1)
        clear_cut = [
            "mov ecx, edx\nxor edx, edx\nlea rax, [rcx + rax - 1]\ndiv rcx\nmov rdx, rcx\nimul rax, rcx",
            "divss xmm0, xmm1\nmulss xmm2, xmm0\naddss xmm3, xmm2\nsubss xmm4, xmm3",
            "div rcx\nadd rax, rbx\nsub rdx, rsi\nxor r8, r9",
        ]
        hits = 0
        for text in clear_cut:
            block = BasicBlock.from_text(text)
            truth = ground_truth_explanations(block, model)
            explanation = explainer.explain(block)
            hits += explanation_accuracy(explanation.features, truth)
        assert hits >= 2  # at least 2/3 clear-cut blocks explained exactly


class TestSimulatorPipeline:
    def test_uica_tracks_oracle_closely(self, dataset):
        model = CachedCostModel(UiCACostModel("hsw"))
        predictions = [model.predict(b) for b in dataset.blocks()]
        error = mean_absolute_percentage_error(predictions, dataset.throughputs("hsw"))
        assert error < 20.0

    def test_store_block_explained_by_fine_grained_features(self):
        block = BasicBlock.from_text(
            "lea rdx, [rax + 1]\nmov qword ptr [rdi + 24], rdx\n"
            "mov byte ptr [rax], 80\nmov rsi, qword ptr [r14 + 32]\nmov rdi, rbp"
        )
        model = CachedCostModel(UiCACostModel("hsw"))
        explanation = CometExplainer(model, FAST_CONFIG, rng=2).explain(block)
        assert explanation.is_fine_grained


class TestNeuralPipeline:
    def test_train_explain_roundtrip(self, dataset):
        config = IthemalConfig(embedding_size=16, hidden_size=16, epochs=3)
        model = CachedCostModel(
            train_ithemal(dataset.blocks(), dataset.throughputs("hsw"), "hsw", config)
        )
        test_blocks = explanation_test_set(dataset, 2, rng=3).blocks()
        explainer = CometExplainer(model, FAST_CONFIG, rng=4)
        for block in test_blocks:
            explanation = explainer.explain(block)
            assert 0.0 <= explanation.precision <= 1.0
            assert 0.0 <= explanation.coverage <= 1.0
            assert explanation.num_queries > 0

    def test_neural_model_less_accurate_than_simulator(self, dataset):
        config = IthemalConfig(embedding_size=16, hidden_size=16, epochs=3)
        neural = train_ithemal(
            dataset.blocks(), dataset.throughputs("hsw"), "hsw", config
        )
        simulator = CachedCostModel(UiCACostModel("hsw"))
        targets = dataset.throughputs("hsw")
        neural_error = mean_absolute_percentage_error(
            [neural.predict(b) for b in dataset.blocks()], targets
        )
        simulator_error = mean_absolute_percentage_error(
            [simulator.predict(b) for b in dataset.blocks()], targets
        )
        assert neural_error > simulator_error


class TestQueryOnlyContract:
    def test_explainer_only_uses_query_access(self, dataset):
        """COMET must work for a model exposed solely as a callable."""
        from repro.models.base import CallableCostModel

        oracle = HardwareOracle("hsw")
        opaque = CallableCostModel(oracle.measure, name="opaque-hardware")
        block = explanation_test_set(dataset, 1, rng=5).blocks()[0]
        explanation = CometExplainer(opaque, FAST_CONFIG, rng=6).explain(block)
        assert explanation.num_queries > 0
        assert explanation.model_name == "opaque-hardware"

    def test_feature_space_consistency(self, dataset):
        """Explanation features always come from the block's feature set."""
        model = AnalyticalCostModel("hsw")
        explainer = CometExplainer(model, CRUDE_CONFIG, rng=7)
        for record in explanation_test_set(dataset, 3, rng=8):
            explanation = explainer.explain(record.block)
            block_features = set(extract_features(record.block))
            assert set(explanation.features) <= block_features
