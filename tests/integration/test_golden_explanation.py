"""Golden end-to-end regression: one seeded explanation, pinned bit-for-bit.

``golden_explanation.json`` is a checked-in snapshot of everything a seeded
end-to-end explanation produces for the paper's division block on the crude
model — the block, the anchor features, the precision/coverage numbers, the
query count.  The direct explainer, the session runtime and the warm service
must all reproduce it exactly, so a refactor anywhere in the stack (sampler,
estimator, cache, backend, service) that silently drifts results fails here
first.

Regenerating (only after an *intentional* semantic change)::

    REPRO_REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest \
        tests/integration/test_golden_explanation.py -q

then commit the updated JSON alongside the change that justified it.
"""

import json
import os
from pathlib import Path

import pytest

from repro.bb.block import BasicBlock
from repro.explain.config import ExplainerConfig
from repro.explain.explainer import CometExplainer
from repro.models.analytical import AnalyticalCostModel
from repro.models.base import CachedCostModel
from repro.reporting.export import explanation_to_dict
from repro.runtime.session import ExplanationSession
from repro.service import ExplanationService

GOLDEN_PATH = Path(__file__).parent / "golden_explanation.json"
REGEN_ENV_VAR = "REPRO_REGEN_GOLDEN"

#: The paper's Listing-2-style division block (also used by the CLI docs).
GOLDEN_BLOCK = (
    "mov ecx, edx\n"
    "xor edx, edx\n"
    "lea rax, [rcx + rax - 1]\n"
    "div rcx\n"
    "mov rdx, rcx\n"
    "imul rax, rcx"
)
GOLDEN_SEED = 2024
GOLDEN_CONFIG = ExplainerConfig(
    epsilon=0.2,
    relative_epsilon=0.0,
    coverage_samples=150,
    max_precision_samples=80,
    min_precision_samples=16,
    batch_size=8,
)


def _compute_golden() -> dict:
    block = BasicBlock.from_text(GOLDEN_BLOCK)
    model = CachedCostModel(AnalyticalCostModel("hsw"))
    explanation = CometExplainer(model, GOLDEN_CONFIG).explain(block, rng=GOLDEN_SEED)
    payload = explanation_to_dict(explanation)
    payload["seed"] = GOLDEN_SEED
    payload["precision_samples"] = explanation.precision_samples
    payload["candidates_evaluated"] = explanation.candidates_evaluated
    return payload


@pytest.fixture(scope="module")
def golden() -> dict:
    if os.environ.get(REGEN_ENV_VAR):
        GOLDEN_PATH.write_text(json.dumps(_compute_golden(), indent=2) + "\n")
    assert GOLDEN_PATH.exists(), (
        f"{GOLDEN_PATH} is missing; regenerate it with {REGEN_ENV_VAR}=1"
    )
    return json.loads(GOLDEN_PATH.read_text())


class TestGoldenExplanation:
    def test_direct_explainer_reproduces_golden(self, golden):
        assert _compute_golden() == golden

    def test_golden_is_a_meaningful_explanation(self, golden):
        # Sanity on the artifact itself, so a bad regeneration can't pin noise.
        assert golden["meets_threshold"] is True
        assert golden["features"], "golden anchor must be non-empty"
        assert 0.0 < golden["precision"] <= 1.0
        assert 0.0 < golden["coverage"] <= 1.0
        described = " ".join(f["description"] for f in golden["features"])
        assert "div" in described or "RAW" in described

    def test_session_runtime_reproduces_golden(self, golden):
        block = BasicBlock.from_text(GOLDEN_BLOCK)
        with ExplanationSession(AnalyticalCostModel("hsw"), GOLDEN_CONFIG) as session:
            explanation = session.explain(block, rng=GOLDEN_SEED)
        payload = explanation_to_dict(explanation)
        for key in ("block", "prediction", "precision", "coverage",
                    "meets_threshold", "features", "num_queries"):
            assert payload[key] == golden[key], key

    @pytest.mark.parametrize("dispatchers", [1, 4])
    @pytest.mark.parametrize("continuous_batching", [False, True])
    def test_warm_service_reproduces_golden(
        self, golden, dispatchers, continuous_batching
    ):
        """The single-dispatcher oracle, the 4-dispatcher scheduler and the
        continuous batcher must all serve the golden payload, warm and cold
        alike."""
        block = BasicBlock.from_text(GOLDEN_BLOCK)
        with ExplanationService(
            model="crude",
            config=GOLDEN_CONFIG,
            dispatchers=dispatchers,
            continuous_batching=continuous_batching,
        ) as service:
            # Twice: the warm (second) request must be as golden as the first.
            first = service.explain(block, seed=GOLDEN_SEED)[0]
            second = service.explain(block, seed=GOLDEN_SEED)[0]
        for explanation in (first, second):
            payload = explanation_to_dict(explanation)
            for key in ("block", "prediction", "precision", "coverage",
                        "meets_threshold", "features"):
                assert payload[key] == golden[key], key

    @pytest.mark.parametrize("continuous_batching", [False, True])
    @pytest.mark.parametrize(
        "cache_state", ["disabled", "cold", "warm", "warm-restart"]
    )
    def test_result_cache_state_matrix_reproduces_golden(
        self, golden, tmp_path, cache_state, continuous_batching
    ):
        """Cold == warm == disabled == golden, bit-for-bit, fused or not.

        The result cache memoizes whole explanations, so every cache
        temperature must serve the same payload the no-cache
        single-dispatcher oracle (the golden JSON itself) produces:

        * ``disabled`` — the cache pinned off (even if ``REPRO_RESULT_CACHE``
          is exported, as it is in the CI cache lanes);
        * ``cold`` — an empty store, first touch computes and writes through;
        * ``warm`` — the same service answering a repeat from tier 0;
        * ``warm-restart`` — a *new* service process-life answering from the
          on-disk tier a previous life wrote.

        ``num_queries`` is excluded from the golden comparison here as in
        every warm-service test: it counts *uncached inner-model* queries,
        which depend on shared query-LRU warmth by design.  Its attribution
        rule under the result cache — a hit returns the stored payload
        verbatim, so a hit's ``num_queries`` is the *storing* computation's
        count — is pinned separately below.
        """
        block = BasicBlock.from_text(GOLDEN_BLOCK)
        path = tmp_path / "golden.cache"
        result_cache = False if cache_state == "disabled" else str(path)
        if cache_state == "warm-restart":
            with ExplanationService(
                model="crude", config=GOLDEN_CONFIG, result_cache=str(path)
            ) as warmer:
                warmer.explain(block, seed=GOLDEN_SEED)
        with ExplanationService(
            model="crude",
            config=GOLDEN_CONFIG,
            dispatchers=1,
            continuous_batching=continuous_batching,
            result_cache=result_cache,
        ) as service:
            first = service.explain(block, seed=GOLDEN_SEED)[0]
            second = service.explain(block, seed=GOLDEN_SEED)[0]
            stats = service.stats()
        for explanation in (first, second):
            payload = explanation_to_dict(explanation)
            for key in ("block", "prediction", "precision", "coverage",
                        "meets_threshold", "features"):
                assert payload[key] == golden[key], key
        if cache_state == "disabled":
            assert stats.result_cache is None
        else:
            assert stats.result_cache is not None
            assert stats.result_cache.hits > 0, "cache-enabled arm never hit"

    def test_cache_hit_returns_stored_payload_verbatim(self, golden, tmp_path):
        """num_queries attribution: a hit is the storing computation's
        payload byte-for-byte — including its query count — not a fresh
        count of the (zero) queries the hit itself issued."""
        block = BasicBlock.from_text(GOLDEN_BLOCK)
        with ExplanationService(
            model="crude",
            config=GOLDEN_CONFIG,
            result_cache=str(tmp_path / "verbatim.cache"),
        ) as service:
            first = explanation_to_dict(service.explain(block, seed=GOLDEN_SEED)[0])
            second = explanation_to_dict(service.explain(block, seed=GOLDEN_SEED)[0])
            assert service.stats().result_cache.hits >= 1
        assert second == first  # the whole dict, num_queries included

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_golden_holds_across_backends(self, golden, backend):
        block = BasicBlock.from_text(GOLDEN_BLOCK)
        with ExplanationSession(
            AnalyticalCostModel("hsw"), GOLDEN_CONFIG, backend=backend, workers=2
        ) as session:
            explanation = session.explain(block, rng=GOLDEN_SEED)
        payload = explanation_to_dict(explanation)
        for key in ("prediction", "precision", "coverage", "meets_threshold",
                    "features", "num_queries"):
            assert payload[key] == golden[key], key
