"""End-to-end user journey across the extension subpackages.

One small, fast walk through the workflow a performance engineer would follow
with this library: synthesize a labelled dataset, train a (tiny) neural cost
model, explain it, export the explanation, compare candidate models, diagnose
a bottleneck and run the guided optimizer — all through the public API only.
"""

import json

import pytest

from repro.core import (
    BasicBlock,
    CachedCostModel,
    CometExplainer,
    ExplainerConfig,
    IthemalConfig,
    UiCACostModel,
    train_ithemal,
)
from repro.data import BHiveDataset, train_test_split
from repro.guidance import diagnose, optimize_block
from repro.reporting import explanation_to_dict, explanations_to_csv
from repro.selection import ModelSelector, SelectionConfig

FAST_EXPLAINER = ExplainerConfig(
    coverage_samples=60,
    max_precision_samples=40,
    min_precision_samples=12,
    batch_size=8,
)


@pytest.fixture(scope="module")
def dataset():
    return BHiveDataset.synthesize(
        48, min_instructions=3, max_instructions=8, microarchs=("hsw",), rng=21
    )


@pytest.fixture(scope="module")
def neural_model(dataset):
    train, _ = train_test_split(dataset, 0.2, rng=2)
    config = IthemalConfig(embedding_size=8, hidden_size=8, epochs=1)
    return CachedCostModel(
        train_ithemal(train.blocks(), train.throughputs("hsw"), "hsw", config)
    )


class TestUserJourney:
    def test_explain_and_export_neural_model(self, dataset, neural_model, tmp_path):
        block = dataset.blocks()[0]
        explainer = CometExplainer(neural_model, FAST_EXPLAINER, rng=0)
        explanation = explainer.explain(block)

        payload = explanation_to_dict(explanation)
        assert json.dumps(payload)  # JSON-safe
        assert payload["model"].startswith("ithemal")

        csv_path = explanations_to_csv([explanation], tmp_path / "explanations.csv")
        assert csv_path.exists()
        assert "model" in csv_path.read_text().splitlines()[0]

    def test_model_selection_prefers_the_simulator(self, dataset, neural_model):
        sample = dataset.sample(4, rng=5)
        selector = ModelSelector(
            sample.blocks(),
            sample.throughputs("hsw"),
            SelectionConfig(mape_tolerance=1.0, explainer=FAST_EXPLAINER, seed=0),
        )
        report = selector.rank(
            {"neural": neural_model, "uica": CachedCostModel(UiCACostModel("hsw"))}
        )
        # The tiny 1-epoch neural model cannot be within 1 MAPE point of the
        # simulator, so the error criterion alone decides.
        assert report.best_name == "uica"
        assert len(report.ranking) == 2

    def test_diagnose_then_optimize_reduces_predicted_cost(self, dataset):
        block = BasicBlock.from_text(
            "mov ecx, edx\nxor edx, edx\ndiv rcx\nimul rax, rcx"
        )
        model = CachedCostModel(UiCACostModel("hsw"))
        report = diagnose(block, model, config=FAST_EXPLAINER, rng=1)
        assert report.prediction > 0.0

        result = optimize_block(
            CachedCostModel(UiCACostModel("hsw")),
            block,
            guided=True,
            steps=15,
            rng=1,
            explainer_config=FAST_EXPLAINER,
        )
        assert result.best_cost <= result.original_cost + 1e-9
        assert result.best_block.num_instructions >= 1
