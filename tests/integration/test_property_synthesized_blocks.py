"""Property-based tests over synthesizer-generated blocks.

The block synthesizer can reach a much wider slice of the ISA subset than the
hand-written fixtures, so these properties are checked over blocks generated
from hypothesis-chosen seeds: parser/formatter round-trips, dependency
invariants, feature-extraction invariants, cost-model sanity and the
guidance rewrites' validity.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.bb.block import BasicBlock, classify_block
from repro.bb.features import (
    DependencyFeature,
    FeatureKind,
    InstructionFeature,
    NumInstructionsFeature,
    extract_features,
    feature_present,
)
from repro.data.synthesis import BlockSynthesizer
from repro.guidance.rewrites import rewrites_for_feature
from repro.models.analytical import AnalyticalCostModel, ground_truth_explanations
from repro.models.mca import PortPressureCostModel
from repro.models.uica import UiCACostModel
from repro.perturb.space import estimate_space_size


def _block_from_seed(seed: int, size: int) -> BasicBlock:
    synthesizer = BlockSynthesizer(np.random.default_rng(seed))
    return synthesizer.generate(num_instructions=size)


block_seeds = st.integers(min_value=0, max_value=2**31 - 1)
block_sizes = st.integers(min_value=2, max_value=9)


class TestParserRoundTrip:
    @given(seed=block_seeds, size=block_sizes)
    @settings(max_examples=40, deadline=None)
    def test_text_round_trip_preserves_block(self, seed, size):
        block = _block_from_seed(seed, size)
        reparsed = BasicBlock.from_text(block.text)
        assert reparsed == block
        assert reparsed.text == block.text

    @given(seed=block_seeds, size=block_sizes)
    @settings(max_examples=40, deadline=None)
    def test_category_is_stable_under_round_trip(self, seed, size):
        block = _block_from_seed(seed, size)
        assert classify_block(BasicBlock.from_text(block.text)) is block.category


class TestDependencyInvariants:
    @given(seed=block_seeds, size=block_sizes)
    @settings(max_examples=40, deadline=None)
    def test_dependencies_respect_program_order(self, seed, size):
        block = _block_from_seed(seed, size)
        for dep in block.dependencies:
            assert 0 <= dep.source < dep.destination < block.num_instructions

    @given(seed=block_seeds, size=block_sizes)
    @settings(max_examples=40, deadline=None)
    def test_raw_hazard_location_is_written_then_read(self, seed, size):
        block = _block_from_seed(seed, size)
        for dep in block.dependencies:
            if dep.kind.value != "RAW":
                continue
            assert dep.location in block[dep.source].writes
            assert dep.location in block[dep.destination].reads


class TestFeatureInvariants:
    @given(seed=block_seeds, size=block_sizes)
    @settings(max_examples=40, deadline=None)
    def test_feature_counts_match_block_structure(self, seed, size):
        block = _block_from_seed(seed, size)
        features = extract_features(block)
        instruction_features = [f for f in features if isinstance(f, InstructionFeature)]
        dependency_features = [f for f in features if isinstance(f, DependencyFeature)]
        count_features = [f for f in features if isinstance(f, NumInstructionsFeature)]
        assert len(instruction_features) == block.num_instructions
        assert len(dependency_features) == len(block.dependencies)
        assert len(count_features) == 1
        assert count_features[0].count == block.num_instructions

    @given(seed=block_seeds, size=block_sizes)
    @settings(max_examples=40, deadline=None)
    def test_every_extracted_feature_is_present_in_its_own_block(self, seed, size):
        block = _block_from_seed(seed, size)
        for feature in extract_features(block):
            assert feature_present(feature, block)

    @given(seed=block_seeds, size=block_sizes)
    @settings(max_examples=30, deadline=None)
    def test_space_size_never_grows_when_preserving_features(self, seed, size):
        block = _block_from_seed(seed, size)
        unconstrained = estimate_space_size(block)
        features = extract_features(block)
        constrained = estimate_space_size(block, features[: len(features) // 2])
        assert constrained <= unconstrained


class TestCostModelSanity:
    @given(seed=block_seeds, size=block_sizes)
    @settings(max_examples=25, deadline=None)
    def test_models_produce_positive_finite_costs(self, seed, size):
        block = _block_from_seed(seed, size)
        for model in (
            AnalyticalCostModel("hsw"),
            UiCACostModel("hsw"),
            PortPressureCostModel("hsw"),
        ):
            cost = model.predict(block)
            assert np.isfinite(cost)
            assert cost > 0.0

    @given(seed=block_seeds, size=block_sizes)
    @settings(max_examples=25, deadline=None)
    def test_predictions_are_deterministic(self, seed, size):
        block = _block_from_seed(seed, size)
        model = UiCACostModel("skl")
        assert model.predict(block) == pytest.approx(model.predict(block))

    @given(seed=block_seeds, size=block_sizes)
    @settings(max_examples=25, deadline=None)
    def test_ground_truth_explanations_attain_the_crude_maximum(self, seed, size):
        block = _block_from_seed(seed, size)
        model = AnalyticalCostModel("hsw")
        truth = ground_truth_explanations(block, model)
        assert truth, "every block must have at least one ground-truth feature"
        kinds = {f.kind for f in truth}
        assert kinds <= {
            FeatureKind.INSTRUCTION,
            FeatureKind.DEPENDENCY,
            FeatureKind.NUM_INSTRUCTIONS,
        }


class TestGuidanceRewriteValidity:
    @given(seed=block_seeds, size=st.integers(min_value=2, max_value=6))
    @settings(max_examples=20, deadline=None)
    def test_rewrites_always_produce_parseable_valid_blocks(self, seed, size):
        block = _block_from_seed(seed, size)
        model = AnalyticalCostModel("hsw")
        for feature in extract_features(block):
            for rewrite in rewrites_for_feature(
                block, feature, "hsw", only_cheaper_opcodes=False
            ):
                reparsed = BasicBlock.from_text(rewrite.block.text)
                assert reparsed.num_instructions >= 1
                assert model.predict(rewrite.block) > 0.0
