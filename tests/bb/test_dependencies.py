"""Tests for data-dependency (hazard) detection."""

import pytest

from repro.bb.block import BasicBlock
from repro.bb.dependencies import (
    Dependency,
    DependencyKind,
    dependencies_between,
    find_dependencies,
    true_dependency_chains,
)
from repro.isa.parser import parse_block_text


def deps_of(text):
    return find_dependencies(parse_block_text(text))


def kinds_between(deps, src, dst):
    return {d.kind for d in deps if d.source == src and d.destination == dst}


class TestRawDependencies:
    def test_simple_raw(self):
        deps = deps_of("add rcx, rax\nmov rdx, rcx")
        assert kinds_between(deps, 0, 1) == {DependencyKind.RAW}

    def test_raw_through_register_alias(self):
        deps = deps_of("mov ecx, edx\nmov rax, rcx")
        assert DependencyKind.RAW in kinds_between(deps, 0, 1)

    def test_raw_through_memory(self):
        deps = deps_of(
            "mov qword ptr [rdi + 8], rax\nmov rbx, qword ptr [rdi + 8]"
        )
        raw = [d for d in deps if d.kind is DependencyKind.RAW]
        assert any(d.location_space == "mem" for d in raw)

    def test_different_addresses_do_not_conflict(self):
        deps = deps_of(
            "mov qword ptr [rdi + 8], rax\nmov rbx, qword ptr [rdi + 16]"
        )
        assert not any(d.location_space == "mem" for d in deps)

    def test_raw_shadowed_by_intervening_write(self):
        # Instruction 1 overwrites rcx, so instruction 2 depends on 1, not 0.
        deps = deps_of("add rcx, rax\nmov rcx, rbx\nmov rdx, rcx")
        assert DependencyKind.RAW in kinds_between(deps, 1, 2)
        assert DependencyKind.RAW not in kinds_between(deps, 0, 2)

    def test_address_register_read_creates_raw(self):
        deps = deps_of("add rdi, rax\nmov rbx, qword ptr [rdi]")
        assert DependencyKind.RAW in kinds_between(deps, 0, 1)


class TestWarWawDependencies:
    def test_war(self):
        # Paper case study 2: instruction 1 reads edx, instruction 2 writes it.
        deps = deps_of("mov ecx, edx\nxor edx, edx")
        assert DependencyKind.WAR in kinds_between(deps, 0, 1)

    def test_waw(self):
        deps = deps_of("mov rax, rbx\nmov rax, rcx")
        assert DependencyKind.WAW in kinds_between(deps, 0, 1)

    def test_multiple_hazards_between_same_pair(self):
        # add writes rcx (read+written by the second add): RAW and WAW and WAR.
        deps = deps_of("add rcx, rax\nadd rcx, rbx")
        kinds = kinds_between(deps, 0, 1)
        assert DependencyKind.RAW in kinds and DependencyKind.WAW in kinds


class TestIgnoredLocations:
    def test_flags_do_not_create_dependencies(self):
        deps = deps_of("add rax, rbx\nadd rcx, rdx")
        assert deps == []

    def test_stack_pointer_ignored(self):
        deps = deps_of("push rax\npush rbx")
        assert deps == []

    def test_push_value_still_tracked(self):
        deps = deps_of("add rax, rbx\npush rax")
        assert DependencyKind.RAW in kinds_between(deps, 0, 1)


class TestStructure:
    def test_sources_precede_destinations(self):
        text = """
            mov ecx, edx
            xor edx, edx
            lea rax, [rcx + rax - 1]
            div rcx
            mov rdx, rcx
            imul rax, rcx
        """
        for dep in deps_of(text):
            assert dep.source < dep.destination

    def test_constructor_rejects_backwards_edge(self):
        with pytest.raises(ValueError):
            Dependency(3, 1, DependencyKind.RAW, ("reg", "rax"))

    def test_label_rendering(self):
        dep = Dependency(0, 2, DependencyKind.RAW, ("reg", "rcx"))
        assert dep.label() == "RAW(0→2 over rcx)"

    def test_dependencies_between_helper(self):
        deps = deps_of("add rcx, rax\nmov rdx, rcx\nmov rbx, rcx")
        assert len(dependencies_between(deps, 0, 1)) >= 1
        assert dependencies_between(deps, 1, 0) == []

    def test_block_dependencies_cached_property(self):
        block = BasicBlock.from_text("add rcx, rax\nmov rdx, rcx")
        assert block.dependencies is block.dependencies  # cached

    def test_paper_case_study_2_dependencies(self):
        block = BasicBlock.from_text(
            """
            mov ecx, edx
            xor edx, edx
            lea rax, [rcx + rax - 1]
            div rcx
            mov rdx, rcx
            imul rax, rcx
            """
        )
        deps = {(d.source, d.destination, d.kind, d.location) for d in block.dependencies}
        # The paper highlights a RAW dependency into instruction 6 (index 5)
        # over rax.  Our analysis models div's implicit write to rax, so the
        # nearest producer is the div (index 3) rather than the lea (index 2);
        # either way imul must have an incoming RAW hazard over rax.
        assert any(
            dst == 5 and kind is DependencyKind.RAW and loc == ("reg", "rax")
            for (_, dst, kind, loc) in deps
        )
        # WAR between instructions 1 and 2 (indices 0 and 1) via edx.
        assert (0, 1, DependencyKind.WAR, ("reg", "rdx")) in deps


class TestChains:
    def test_true_dependency_chains(self):
        instructions = parse_block_text(
            "add rax, rbx\nadd rcx, rax\nadd rdx, rcx"
        )
        deps = find_dependencies(instructions)
        chains = true_dependency_chains(instructions, deps)
        assert any(len(chain) >= 3 for chain in chains)

    def test_no_chains_for_independent_block(self):
        instructions = parse_block_text("add rax, rbx\nadd rcx, rdx")
        assert true_dependency_chains(instructions, find_dependencies(instructions)) == []
