"""Tests for the BasicBlock value object and category classification."""

import pytest

from repro.bb.block import BasicBlock, BlockCategory, classify_block
from repro.isa.parser import parse_instruction
from repro.utils.errors import ParseError, ValidationError


SIMPLE = "add rcx, rax\nmov rdx, rcx\npop rbx"


class TestConstruction:
    def test_from_text(self):
        block = BasicBlock.from_text(SIMPLE)
        assert block.num_instructions == 3
        assert block[0].mnemonic == "add"

    def test_from_instructions(self):
        insts = [parse_instruction("add rcx, rax"), parse_instruction("nop")]
        block = BasicBlock.from_instructions(insts)
        assert len(block) == 2

    def test_empty_block_rejected(self):
        with pytest.raises(ValidationError):
            BasicBlock.from_text("\n\n")

    def test_control_transfer_rejected(self):
        # ``jmp`` parses (it is a real opcode) but basic-block validation
        # rejects it because control transfer cannot appear inside a block.
        with pytest.raises(ValidationError):
            BasicBlock.from_text("jmp target\nadd rax, rbx")

    def test_metadata_preserved(self):
        block = BasicBlock.from_text(SIMPLE, source="clang", block_id="b-1")
        assert block.source == "clang" and block.block_id == "b-1"

    def test_iteration_and_indexing(self):
        block = BasicBlock.from_text(SIMPLE)
        assert [i.mnemonic for i in block] == ["add", "mov", "pop"]
        assert block[2].mnemonic == "pop"


class TestEqualityAndHashing:
    def test_content_equality_ignores_metadata(self):
        a = BasicBlock.from_text(SIMPLE, source="clang")
        b = BasicBlock.from_text(SIMPLE, source="openblas")
        assert a == b
        assert hash(a) == hash(b)

    def test_different_content_differs(self):
        a = BasicBlock.from_text(SIMPLE)
        b = BasicBlock.from_text("add rcx, rax\nmov rdx, rcx\npush rbx")
        assert a != b

    def test_text_round_trip(self):
        block = BasicBlock.from_text(SIMPLE)
        assert BasicBlock.from_text(block.text) == block


class TestRewrites:
    def test_replace_instruction(self):
        block = BasicBlock.from_text(SIMPLE)
        new = block.replace_instruction(2, parse_instruction("push rbx"))
        assert new[2].mnemonic == "push"
        assert block[2].mnemonic == "pop"  # original untouched

    def test_delete_instruction(self):
        block = BasicBlock.from_text(SIMPLE)
        new = block.delete_instruction(1)
        assert new.num_instructions == 2
        assert [i.mnemonic for i in new] == ["add", "pop"]

    def test_with_instructions_keeps_metadata(self):
        block = BasicBlock.from_text(SIMPLE, source="clang")
        new = block.with_instructions([parse_instruction("nop")])
        assert new.source == "clang"


class TestCategories:
    def test_load_category(self):
        block = BasicBlock.from_text("mov rax, qword ptr [rdi]\nadd rax, rbx")
        assert block.category is BlockCategory.LOAD

    def test_store_category(self):
        block = BasicBlock.from_text("mov qword ptr [rdi], rax\nadd rax, rbx")
        assert block.category is BlockCategory.STORE

    def test_load_store_category(self):
        block = BasicBlock.from_text(
            "mov rax, qword ptr [rdi]\nmov qword ptr [rsi], rax"
        )
        assert block.category is BlockCategory.LOAD_STORE

    def test_scalar_category(self):
        block = BasicBlock.from_text("add rcx, rax\nimul rax, rbx")
        assert block.category is BlockCategory.SCALAR

    def test_vector_category(self):
        block = BasicBlock.from_text("vmulss xmm0, xmm1, xmm2\nvaddss xmm3, xmm0, xmm1")
        assert block.category is BlockCategory.VECTOR

    def test_scalar_vector_category(self):
        block = BasicBlock.from_text("add rcx, rax\nvmulss xmm0, xmm1, xmm2")
        assert block.category is BlockCategory.SCALAR_VECTOR

    def test_memory_takes_precedence_over_vector(self):
        block = BasicBlock.from_text("movss xmm0, dword ptr [rdi]\nmulss xmm0, xmm1")
        assert block.category is BlockCategory.LOAD

    def test_classify_function_matches_property(self):
        block = BasicBlock.from_text(SIMPLE)
        assert classify_block(block) is block.category
