"""Tests for explanation feature extraction and presence checks."""

import pytest

from repro.bb.block import BasicBlock
from repro.bb.features import (
    DependencyFeature,
    FeatureKind,
    InstructionFeature,
    NumInstructionsFeature,
    extract_features,
    feature_kinds_present,
    feature_present,
    features_present,
    split_by_kind,
)


@pytest.fixture
def block():
    return BasicBlock.from_text("add rcx, rax\nmov rdx, rcx\npop rbx")


class TestExtraction:
    def test_feature_count(self, block):
        features = extract_features(block)
        # 3 instructions + 1 RAW dependency + 1 count feature.
        assert len(features) == 3 + len(block.dependencies) + 1

    def test_kinds_present(self, block):
        kinds = feature_kinds_present(extract_features(block))
        assert kinds == {
            FeatureKind.INSTRUCTION,
            FeatureKind.DEPENDENCY,
            FeatureKind.NUM_INSTRUCTIONS,
        }

    def test_instruction_features_are_positional(self, block):
        features = [f for f in extract_features(block) if isinstance(f, InstructionFeature)]
        assert [f.index for f in features] == [0, 1, 2]
        assert features[1].mnemonic == "mov"

    def test_dependency_feature_records_endpoints(self, block):
        dep_features = [
            f for f in extract_features(block) if isinstance(f, DependencyFeature)
        ]
        assert dep_features[0].source == 0 and dep_features[0].destination == 1
        assert dep_features[0].source_mnemonic == "add"

    def test_count_feature_value(self, block):
        count = [f for f in extract_features(block) if isinstance(f, NumInstructionsFeature)]
        assert count[0].count == 3

    def test_features_hashable_and_unique(self, block):
        features = extract_features(block)
        assert len(set(features)) == len(features)

    def test_split_by_kind(self, block):
        grouped = split_by_kind(extract_features(block))
        assert len(grouped[FeatureKind.INSTRUCTION]) == 3
        assert len(grouped[FeatureKind.NUM_INSTRUCTIONS]) == 1

    def test_fine_grained_classification(self):
        assert FeatureKind.INSTRUCTION.is_fine_grained
        assert FeatureKind.DEPENDENCY.is_fine_grained
        assert not FeatureKind.NUM_INSTRUCTIONS.is_fine_grained

    def test_describe_strings(self, block):
        descriptions = [f.describe() for f in extract_features(block)]
        assert any("inst1: add rcx, rax" in d for d in descriptions)
        assert any(d.startswith("δRAW") for d in descriptions)
        assert any("η" in d for d in descriptions)


class TestPresence:
    def test_instruction_presence_position_independent(self, block):
        feature = InstructionFeature.of(0, block[0])
        reordered = BasicBlock.from_text("pop rbx\nadd rcx, rax\nmov rdx, rcx")
        assert feature_present(feature, reordered)

    def test_instruction_absence(self, block):
        feature = InstructionFeature.of(0, block[0])
        other = BasicBlock.from_text("sub rcx, rax\nmov rdx, rcx\npop rbx")
        assert not feature_present(feature, other)

    def test_instruction_presence_requires_same_operands(self, block):
        feature = InstructionFeature.of(0, block[0])
        other = BasicBlock.from_text("add rcx, rbx\nmov rdx, rcx\npop rbx")
        assert not feature_present(feature, other)

    def test_dependency_presence(self, block):
        dep_feature = [f for f in extract_features(block) if isinstance(f, DependencyFeature)][0]
        # Listing 1(b) of the paper: pop replaced by push, dependency retained.
        perturbed = BasicBlock.from_text("add rcx, rax\nmov rdx, rcx\npush rbx")
        assert feature_present(dep_feature, perturbed)

    def test_dependency_absence_when_broken(self, block):
        dep_feature = [f for f in extract_features(block) if isinstance(f, DependencyFeature)][0]
        broken = BasicBlock.from_text("add rcx, rax\nmov rdx, rbx\npop rbx")
        assert not feature_present(dep_feature, broken)

    def test_count_presence(self, block):
        count_feature = NumInstructionsFeature(3)
        assert feature_present(count_feature, block)
        assert not feature_present(
            count_feature, BasicBlock.from_text("add rcx, rax\nmov rdx, rcx")
        )

    def test_features_present_conjunction(self, block):
        features = extract_features(block)
        assert features_present(features, block)
        smaller = BasicBlock.from_text("add rcx, rax\nmov rdx, rcx")
        assert not features_present(features, smaller)

    def test_features_present_empty_set(self, block):
        assert features_present([], block)
