"""Tests for the dependency multigraph."""

import pytest

from repro.bb.block import BasicBlock
from repro.bb.dependencies import DependencyKind
from repro.bb.multigraph import DependencyGraph, build_multigraph


@pytest.fixture
def case_study_block():
    return BasicBlock.from_text(
        """
        mov ecx, edx
        xor edx, edx
        lea rax, [rcx + rax - 1]
        div rcx
        mov rdx, rcx
        imul rax, rcx
        """
    )


class TestConstruction:
    def test_vertices_are_positions(self, case_study_block):
        graph = build_multigraph(case_study_block)
        assert set(graph.nodes) == set(range(6))
        assert graph.nodes[3]["instruction"].mnemonic == "div"

    def test_edge_count_matches_dependencies(self, case_study_block):
        graph = build_multigraph(case_study_block)
        assert graph.number_of_edges() == len(case_study_block.dependencies)

    def test_edges_carry_kind_labels(self, case_study_block):
        graph = build_multigraph(case_study_block)
        kinds = {data["kind"] for _, _, data in graph.edges(data=True)}
        assert DependencyKind.RAW in kinds

    def test_parallel_edges_supported(self):
        block = BasicBlock.from_text("add rcx, rax\nadd rcx, rbx")
        graph = build_multigraph(block)
        assert graph.number_of_edges(0, 1) >= 2


class TestDependencyGraphWrapper:
    def test_of_builds_graph(self, case_study_block):
        wrapper = DependencyGraph.of(case_study_block)
        assert wrapper.num_vertices == 6
        assert wrapper.num_edges == len(case_study_block.dependencies)

    def test_dependencies_touching(self, case_study_block):
        wrapper = DependencyGraph.of(case_study_block)
        touching_div = wrapper.dependencies_touching(3)
        assert all(3 in (d.source, d.destination) for d in touching_div)
        assert touching_div

    def test_edges_by_kind_partitions_all_edges(self, case_study_block):
        wrapper = DependencyGraph.of(case_study_block)
        grouped = wrapper.edges_by_kind()
        assert sum(len(v) for v in grouped.values()) == wrapper.num_edges

    def test_shared_operand_edges(self):
        # Two RAW consumers of the same produced register share vertex 0 and
        # the rcx location.
        block = BasicBlock.from_text("add rcx, rax\nmov rdx, rcx\nmov rbx, rcx")
        wrapper = DependencyGraph.of(block)
        assert wrapper.shared_operand_edges()

    def test_critical_path_length(self):
        block = BasicBlock.from_text("add rax, rbx\nadd rcx, rax\nadd rdx, rcx")
        wrapper = DependencyGraph.of(block)
        # Three unit-latency instructions in a RAW chain.
        assert wrapper.critical_path_length(lambda _: 1.0) == pytest.approx(3.0)

    def test_critical_path_without_dependencies(self):
        block = BasicBlock.from_text("add rax, rbx\nadd rcx, rdx")
        wrapper = DependencyGraph.of(block)
        assert wrapper.critical_path_length(lambda _: 1.0) == pytest.approx(1.0)
