"""Tests for the anchor search and the public explainer API.

These tests use cost models whose behaviour is known analytically (constant
models, instruction-count models, the crude model ``C``) so the expected
explanation is unambiguous without large sample budgets.
"""

import pytest

from repro.bb.block import BasicBlock
from repro.bb.features import (
    DependencyFeature,
    FeatureKind,
    InstructionFeature,
    NumInstructionsFeature,
)
from repro.explain.anchors import AnchorSearch
from repro.explain.config import ExplainerConfig
from repro.explain.explainer import CometExplainer, explain_block
from repro.explain.explanation import Explanation
from repro.models.analytical import AnalyticalCostModel
from repro.models.base import CallableCostModel

FAST_CONFIG = ExplainerConfig(
    epsilon=0.2,
    relative_epsilon=0.0,
    coverage_samples=150,
    max_precision_samples=80,
    min_precision_samples=16,
    batch_size=8,
)


@pytest.fixture
def div_block():
    return BasicBlock.from_text(
        "mov ecx, edx\nxor edx, edx\nlea rax, [rcx + rax - 1]\n"
        "div rcx\nmov rdx, rcx\nimul rax, rcx"
    )


@pytest.fixture
def cheap_block():
    return BasicBlock.from_text(
        "add rax, rbx\nsub rcx, rdx\nxor rsi, rdi\nand r8, r9\n"
        "or r10, r11\nadd r12, r13\nsub r14, r15\nand rbx, rax"
    )


class TestAgainstSyntheticModels:
    def test_constant_model_gets_empty_explanation(self, div_block):
        model = CallableCostModel(lambda b: 5.0, name="constant")
        explanation = CometExplainer(model, FAST_CONFIG, rng=0).explain(div_block)
        assert explanation.features == ()
        assert explanation.meets_threshold
        assert explanation.coverage == pytest.approx(1.0)

    def test_count_model_explained_by_count(self, cheap_block):
        model = CallableCostModel(lambda b: float(b.num_instructions), name="count")
        explanation = CometExplainer(model, FAST_CONFIG, rng=1).explain(cheap_block)
        assert explanation.meets_threshold
        assert explanation.feature_kinds == {FeatureKind.NUM_INSTRUCTIONS}

    def test_div_presence_model_explained_by_div_instruction(self, div_block):
        model = CallableCostModel(
            lambda b: 25.0 if any(i.mnemonic == "div" for i in b) else 1.0,
            name="has-div",
        )
        explanation = CometExplainer(model, FAST_CONFIG, rng=2).explain(div_block)
        assert explanation.meets_threshold
        assert any(
            isinstance(f, InstructionFeature) and f.mnemonic == "div"
            for f in explanation.features
        )


class TestAgainstCrudeModel:
    def test_division_dependency_identified(self, div_block):
        model = AnalyticalCostModel("hsw")
        explanation = CometExplainer(model, FAST_CONFIG, rng=3).explain(div_block)
        assert explanation.meets_threshold
        kinds = {type(f) for f in explanation.features}
        assert kinds <= {DependencyFeature, InstructionFeature}
        described = " ".join(f.describe() for f in explanation.features)
        assert "div" in described or "RAW" in described

    def test_prediction_recorded(self, div_block):
        model = AnalyticalCostModel("hsw")
        explanation = CometExplainer(model, FAST_CONFIG, rng=4).explain(div_block)
        assert explanation.prediction == pytest.approx(model.predict(div_block))

    def test_queries_counted(self, div_block):
        model = AnalyticalCostModel("hsw")
        before = model.query_count
        explanation = CometExplainer(model, FAST_CONFIG, rng=5).explain(div_block)
        assert explanation.num_queries > 50
        assert model.query_count - before >= explanation.num_queries

    def test_explanations_reproducible_with_seed(self, div_block):
        model = AnalyticalCostModel("hsw")
        a = CometExplainer(model, FAST_CONFIG, rng=6).explain(div_block)
        b = CometExplainer(model, FAST_CONFIG, rng=6).explain(div_block)
        assert [f.describe() for f in a.features] == [f.describe() for f in b.features]
        assert a.precision == pytest.approx(b.precision)

    def test_explain_many_independent_streams(self, div_block, cheap_block):
        model = AnalyticalCostModel("hsw")
        explanations = CometExplainer(model, FAST_CONFIG, rng=7).explain_many(
            [div_block, cheap_block]
        )
        assert len(explanations) == 2
        assert all(isinstance(e, Explanation) for e in explanations)

    def test_explain_block_convenience(self, div_block):
        explanation = explain_block(
            AnalyticalCostModel("hsw"), div_block, config=FAST_CONFIG, rng=8
        )
        assert explanation.precision > 0.5


class TestAnchorSearchInternals:
    def test_candidate_features_cover_block(self, div_block):
        search = AnchorSearch(AnalyticalCostModel("hsw"), div_block, FAST_CONFIG, rng=9)
        kinds = {f.kind for f in search.candidate_features}
        assert kinds == {
            FeatureKind.INSTRUCTION,
            FeatureKind.DEPENDENCY,
            FeatureKind.NUM_INSTRUCTIONS,
        }

    def test_search_records_evaluated_candidates(self, div_block):
        search = AnchorSearch(AnalyticalCostModel("hsw"), div_block, FAST_CONFIG, rng=10)
        anchor = search.search()
        assert search.evaluated
        assert anchor in search.evaluated or anchor.features == ()

    def test_fallback_when_nothing_meets_threshold(self, cheap_block):
        # A model driven by a feature COMET cannot express (the exact operand
        # registers of every instruction) never reaches the threshold, so the
        # search must return its best fallback with the flag cleared.
        def operand_hash_model(block):
            return float(sum(len(str(i)) for i in block) % 17)

        model = CallableCostModel(operand_hash_model, name="operand-hash")
        config = FAST_CONFIG.with_overrides(epsilon=0.01, max_anchor_size=2, delta=0.01)
        explanation = CometExplainer(model, config, rng=11).explain(cheap_block)
        assert isinstance(explanation.meets_threshold, bool)
        assert explanation.precision <= 1.0


class TestExplanationObject:
    def test_describe_lists_features(self, div_block):
        explanation = explain_block(
            AnalyticalCostModel("hsw"), div_block, config=FAST_CONFIG, rng=12
        )
        text = explanation.describe()
        assert "precision" in text and "coverage" in text

    def test_to_dict_round_trip(self, div_block):
        explanation = explain_block(
            AnalyticalCostModel("hsw"), div_block, config=FAST_CONFIG, rng=13
        )
        payload = explanation.to_dict()
        assert payload["model"].startswith("crude-analytical")
        assert payload["size"] == len(explanation.features)
        assert isinstance(payload["features"], list)

    def test_fine_grained_flag(self, div_block):
        explanation = Explanation(
            block=div_block,
            model_name="m",
            prediction=1.0,
            features=(NumInstructionsFeature(6),),
            precision=0.9,
            coverage=0.5,
            meets_threshold=True,
            epsilon=0.5,
        )
        assert not explanation.is_fine_grained
        assert explanation.contains_kind(FeatureKind.NUM_INSTRUCTIONS)
