"""End-to-end encoded-pipeline parity: explanations never change, only cost.

``REPRO_ENCODED`` (and its scoped twin :func:`forced_encoded`) switches the
batched query path between encoded perturbation batches and materialised
block lists.  The switch is representation-only by contract — these tests
pin that explanations, their query counts and the KL bound values are
bit-for-bit identical either way, and that the session-level row accounting
actually observes the encoded traffic.
"""

import numpy as np
import pytest

from repro.explain.config import ExplainerConfig
from repro.explain.explainer import CometExplainer
from repro.explain.precision import (
    bernoulli_lower_bound,
    bernoulli_upper_bound,
    bound_memo_disabled,
)
from repro.models.analytical import AnalyticalCostModel
from repro.models.base import CachedCostModel
from repro.perturb.algorithm import forced_engine
from repro.perturb.batch import encoded_tally, forced_encoded
from repro.runtime.session import ExplanationSession

from tests.conftest import explanation_fingerprint


def _explain_all(blocks, config, encoded):
    model = CachedCostModel(AnalyticalCostModel("hsw"))
    explainer = CometExplainer(model, config, rng=7)
    with forced_encoded(encoded):
        explanations = explainer.explain_many(blocks, rng=7)
    return explanations, model


class TestEndToEndParity:
    def test_encoded_and_materialized_results_are_identical(
        self, tiny_blocks, fast_config
    ):
        encoded, encoded_model = _explain_all(tiny_blocks, fast_config, True)
        eager, eager_model = _explain_all(tiny_blocks, fast_config, False)
        assert [explanation_fingerprint(e) for e in encoded] == [
            explanation_fingerprint(e) for e in eager
        ]
        # Fresh model per lane, deterministic rng: even the query accounting
        # (excluded from the fingerprint for shared-cache runs) must agree.
        assert [e.num_queries for e in encoded] == [e.num_queries for e in eager]
        assert encoded_model.query_count == eager_model.query_count
        assert encoded_model.hits == eager_model.hits

    def test_sequential_mode_is_unaffected(self, tiny_blocks, fast_config):
        config = ExplainerConfig(
            **{**fast_config.__dict__, "batch_queries": False}
        )
        encoded, _ = _explain_all(tiny_blocks[:1], config, True)
        eager, _ = _explain_all(tiny_blocks[:1], config, False)
        assert [explanation_fingerprint(e) for e in encoded] == [
            explanation_fingerprint(e) for e in eager
        ]

    def test_encoded_lane_actually_runs_encoded(self, tiny_blocks, fast_config):
        base = encoded_tally()
        # Only the wave engine emits deferred rows — pin it so this holds
        # on the scalar-oracle CI lane too.
        with forced_engine("soa"):
            _explain_all(tiny_blocks, fast_config, True)
        delta = encoded_tally().delta(base)
        assert delta.encoded > 0
        # The analytical row kernel plus content-key caching keep the whole
        # batched path block-free; nothing should need materialising.
        assert delta.materialized == 0

    def test_materialized_lane_stays_dark(self, tiny_blocks, fast_config):
        base = encoded_tally()
        _explain_all(tiny_blocks, fast_config, False)
        delta = encoded_tally().delta(base)
        assert delta.encoded == 0


class TestBoundMemo:
    GRID = [
        (0.0, 5), (0.02, 12), (0.25, 40), (0.5, 7), (0.73, 100), (1.0, 3),
    ]

    @pytest.mark.parametrize("p_hat,n", GRID)
    def test_memoised_bounds_equal_fresh_bisection(self, p_hat, n):
        beta = 1.9
        with bound_memo_disabled():
            fresh_upper = bernoulli_upper_bound(p_hat, n, beta)
            fresh_lower = bernoulli_lower_bound(p_hat, n, beta)
        # First call populates the memo, second serves from it; both must
        # equal the un-memoised bisection bit for bit.
        for _ in range(2):
            assert bernoulli_upper_bound(p_hat, n, beta) == fresh_upper
            assert bernoulli_lower_bound(p_hat, n, beta) == fresh_lower

    def test_zero_samples_bypasses_memo(self):
        assert bernoulli_upper_bound(0.5, 0, 1.0) == 1.0
        assert bernoulli_lower_bound(0.5, 0, 1.0) == 0.0


class TestSessionAccounting:
    def test_session_stats_count_encoded_rows(self, fast_config, tiny_blocks):
        model = CachedCostModel(AnalyticalCostModel("hsw"))
        with forced_encoded(True), forced_engine("soa"):
            with ExplanationSession(model, fast_config, rng=3) as session:
                session.explain(tiny_blocks[0])
                stats = session.stats()
        assert stats.encoded_rows > 0
        assert stats.materialized_rows == 0
        assert f"{stats.encoded_rows} encoded rows" in stats.describe()

    def test_describe_omits_encoded_rows_when_dark(self, fast_config, tiny_blocks):
        model = CachedCostModel(AnalyticalCostModel("hsw"))
        with forced_encoded(False):
            with ExplanationSession(model, fast_config, rng=3) as session:
                session.explain(tiny_blocks[0])
                stats = session.stats()
        assert stats.encoded_rows == 0
        assert "encoded rows" not in stats.describe()
