"""Seeded parity of the batched explanation pipeline.

The batched query engine must be a pure throughput optimisation: given the
same random seed, routing a refinement round's blocks through one
``predict_batch`` call has to produce *exactly* the explanation that the
sequential one-query-per-block path produces.  These tests pin that
bit-for-bit contract (and seeded determinism generally), plus the round-level
semantics of the estimator's batch sampler.
"""

import numpy as np
import pytest

from repro.bb.block import BasicBlock
from repro.explain.config import ExplainerConfig
from repro.explain.explainer import CometExplainer
from repro.explain.precision import PrecisionEstimator
from repro.models.analytical import AnalyticalCostModel
from repro.models.base import CachedCostModel
from repro.models.mca import PortPressureCostModel
from repro.runtime.backend import available_backends, resolve_backend
from repro.runtime.session import ExplanationSession

from tests.conftest import FAST_CONFIG


def _explain(block, *, batched: bool, seed: int):
    config = FAST_CONFIG.with_overrides(batch_queries=batched)
    model = CachedCostModel(AnalyticalCostModel("hsw"))
    return CometExplainer(model, config, rng=seed).explain(block)


def _fingerprint(explanation):
    # Deliberately local (not tests.conftest.explanation_fingerprint): this
    # module pins num_queries parity too, which only holds for the unsharded
    # paths compared here.
    return (
        tuple(f.describe() for f in explanation.features),
        explanation.precision,
        explanation.coverage,
        explanation.precision_samples,
        explanation.num_queries,
        explanation.meets_threshold,
    )


class TestBatchedSequentialParity:
    @pytest.mark.parametrize("seed", [0, 1, 2, 5])
    def test_seeded_explanations_identical(self, tiny_blocks, seed):
        for block in tiny_blocks:
            batched = _explain(block, batched=True, seed=seed)
            sequential = _explain(block, batched=False, seed=seed)
            assert _fingerprint(batched) == _fingerprint(sequential)

    def test_parity_holds_with_dependency_heavy_block(self):
        block = BasicBlock.from_text(
            "mov ecx, edx\nxor edx, edx\nlea rax, [rcx + rax - 1]\n"
            "div rcx\nmov rdx, rcx\nimul rax, rcx"
        )
        for seed in (0, 11):
            assert _fingerprint(_explain(block, batched=True, seed=seed)) == (
                _fingerprint(_explain(block, batched=False, seed=seed))
            )

    @pytest.mark.parametrize("batched", [True, False])
    def test_seeded_determinism(self, tiny_blocks, batched):
        first = _explain(tiny_blocks[0], batched=batched, seed=9)
        second = _explain(tiny_blocks[0], batched=batched, seed=9)
        assert _fingerprint(first) == _fingerprint(second)

    def test_batched_is_default(self):
        assert ExplainerConfig().batch_queries is True


class TestBackendParity:
    """Seeded explanations must not depend on the execution substrate.

    Backends decide only where deterministic predictions run, so for a fixed
    rng the serial, thread and process backends must produce identical
    explanations — through both ``explain`` and the ``explain_many`` fleet
    path.  Exercised on a simulator-style model (the kind that actually fans
    out) with the process path included.
    """

    def _fleet(self, tiny_blocks, backend_name, seed):
        model = CachedCostModel(PortPressureCostModel("hsw"))
        with ExplanationSession(
            model, FAST_CONFIG, backend=backend_name, workers=2
        ) as session:
            return [_fingerprint(e) for e in session.explain_many(tiny_blocks, rng=seed)]

    @pytest.mark.parametrize("backend_name", ["thread", "process"])
    def test_explain_many_identical_across_backends(self, tiny_blocks, backend_name):
        assert self._fleet(tiny_blocks[:2], "serial", 7) == self._fleet(
            tiny_blocks[:2], backend_name, 7
        )

    @pytest.mark.parametrize("backend_name", available_backends())
    def test_explain_identical_across_backends(self, tiny_blocks, backend_name):
        baseline = CometExplainer(
            CachedCostModel(PortPressureCostModel("hsw")), FAST_CONFIG
        ).explain(tiny_blocks[0], rng=13)
        with resolve_backend(backend_name, 2) as backend:
            explainer = CometExplainer(
                CachedCostModel(PortPressureCostModel("hsw")),
                FAST_CONFIG,
                backend=backend,
            )
            routed = explainer.explain(tiny_blocks[0], rng=13)
        assert _fingerprint(baseline) == _fingerprint(routed)


class TestBatchSamplerSemantics:
    def _make(self, probabilities, **kwargs):
        rng = np.random.default_rng(0)
        calls = []

        def batch_sampler(requests):
            calls.append(list(requests))
            return [
                rng.random(count) < probabilities[arm] for arm, count in requests
            ]

        estimator = PrecisionEstimator(
            batch_sampler=batch_sampler, num_arms=len(probabilities), **kwargs
        )
        return estimator, calls

    def test_selects_best_arm(self):
        estimator, _ = self._make([0.15, 0.9, 0.5], max_samples=300)
        assert estimator.select_top(1) == [1]

    def test_minimum_fill_is_one_round(self):
        estimator, calls = self._make([0.5, 0.6], min_samples=20)
        estimator._ensure_minimum()
        assert calls[0] == [(0, 20), (1, 20)]
        assert all(s.samples == 20 for s in estimator.stats)

    def test_requests_clamped_to_budget(self):
        estimator, calls = self._make([0.5], min_samples=10, max_samples=25)
        estimator._draw_many([(0, 10), (0, 10), (0, 10)])
        assert estimator.stats[0].samples == 25
        assert calls[0] == [(0, 10), (0, 10), (0, 5)]

    def test_certify_threshold_through_batch_sampler(self):
        estimator, _ = self._make([0.95], max_samples=400)
        meets, stats = estimator.certify_threshold(0, 0.7)
        assert meets and stats.mean > 0.8

    def test_rejects_both_sampler_kinds(self):
        with pytest.raises(ValueError):
            PrecisionEstimator([lambda n: [True] * n], batch_sampler=lambda r: [])

    def test_batch_sampler_requires_num_arms(self):
        with pytest.raises(ValueError):
            PrecisionEstimator(batch_sampler=lambda r: [])

    def test_mismatched_outcome_count_rejected(self):
        estimator = PrecisionEstimator(batch_sampler=lambda requests: [], num_arms=1)
        with pytest.raises(ValueError):
            estimator._draw_many([(0, 5)])

    def test_numpy_outcomes_accepted(self):
        estimator = PrecisionEstimator(
            batch_sampler=lambda requests: [
                np.ones(count, dtype=bool) for _, count in requests
            ],
            num_arms=1,
            min_samples=8,
        )
        estimator._ensure_minimum()
        assert estimator.stats[0].samples == 8
        assert estimator.stats[0].positives == 8
