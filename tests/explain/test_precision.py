"""Tests for KL-Bernoulli confidence bounds and the KL-LUCB estimator."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.explain.precision import (
    ArmStatistics,
    PrecisionEstimator,
    bernoulli_lower_bound,
    bernoulli_upper_bound,
    confidence_beta,
    kl_bernoulli,
)


class TestKLBernoulli:
    def test_zero_when_equal(self):
        assert kl_bernoulli(0.3, 0.3) == pytest.approx(0.0, abs=1e-9)

    def test_positive_when_different(self):
        assert kl_bernoulli(0.2, 0.8) > 0.5

    def test_handles_boundary_probabilities(self):
        assert np.isfinite(kl_bernoulli(0.0, 0.5))
        assert np.isfinite(kl_bernoulli(1.0, 0.5))

    @given(
        p=st.floats(min_value=0.01, max_value=0.99),
        q=st.floats(min_value=0.01, max_value=0.99),
    )
    @settings(max_examples=50, deadline=None)
    def test_non_negative(self, p, q):
        assert kl_bernoulli(p, q) >= -1e-12


class TestConfidenceBounds:
    def test_bounds_bracket_the_mean(self):
        for p_hat in (0.1, 0.5, 0.9):
            lower = bernoulli_lower_bound(p_hat, 50, beta=2.0)
            upper = bernoulli_upper_bound(p_hat, 50, beta=2.0)
            assert 0.0 <= lower <= p_hat <= upper <= 1.0

    def test_bounds_tighten_with_samples(self):
        wide = bernoulli_upper_bound(0.5, 10, beta=2.0) - bernoulli_lower_bound(0.5, 10, beta=2.0)
        narrow = bernoulli_upper_bound(0.5, 1000, beta=2.0) - bernoulli_lower_bound(0.5, 1000, beta=2.0)
        assert narrow < wide

    def test_zero_samples_gives_vacuous_bounds(self):
        assert bernoulli_upper_bound(0.0, 0, beta=1.0) == 1.0
        assert bernoulli_lower_bound(1.0, 0, beta=1.0) == 0.0

    def test_beta_increases_with_round(self):
        assert confidence_beta(10, 5, 0.05) > confidence_beta(10, 1, 0.05)

    def test_beta_increases_with_arms(self):
        assert confidence_beta(100, 1, 0.05) > confidence_beta(2, 1, 0.05)

    @given(
        p_hat=st.floats(min_value=0.0, max_value=1.0),
        n=st.integers(min_value=1, max_value=500),
        beta=st.floats(min_value=0.1, max_value=10.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_bounds_property(self, p_hat, n, beta):
        lower = bernoulli_lower_bound(p_hat, n, beta)
        upper = bernoulli_upper_bound(p_hat, n, beta)
        assert 0.0 <= lower <= p_hat + 1e-6
        assert p_hat - 1e-6 <= upper <= 1.0


class TestArmStatistics:
    def test_update_and_mean(self):
        stats = ArmStatistics()
        stats.update([True, True, False, True])
        assert stats.samples == 4 and stats.positives == 3
        assert stats.mean == pytest.approx(0.75)

    def test_empty_mean_is_zero(self):
        assert ArmStatistics().mean == 0.0


def _bernoulli_sampler(probability, seed):
    rng = np.random.default_rng(seed)

    def draw(count):
        return list(rng.random(count) < probability)

    return draw


class TestPrecisionEstimator:
    def test_selects_best_arm(self):
        estimator = PrecisionEstimator(
            [
                _bernoulli_sampler(0.2, 0),
                _bernoulli_sampler(0.9, 1),
                _bernoulli_sampler(0.5, 2),
            ],
            max_samples=300,
        )
        assert estimator.select_top(1) == [1]

    def test_selects_top_two(self):
        estimator = PrecisionEstimator(
            [
                _bernoulli_sampler(0.1, 0),
                _bernoulli_sampler(0.85, 1),
                _bernoulli_sampler(0.8, 2),
                _bernoulli_sampler(0.15, 3),
            ],
            max_samples=300,
        )
        assert set(estimator.select_top(2)) == {1, 2}

    def test_top_n_larger_than_arms(self):
        estimator = PrecisionEstimator([_bernoulli_sampler(0.5, 0)])
        assert estimator.select_top(3) == [0]

    def test_certify_accepts_high_precision_arm(self):
        estimator = PrecisionEstimator([_bernoulli_sampler(0.95, 4)], max_samples=400)
        meets, stats = estimator.certify_threshold(0, 0.7)
        assert meets and stats.mean > 0.8

    def test_certify_rejects_low_precision_arm(self):
        estimator = PrecisionEstimator([_bernoulli_sampler(0.3, 5)], max_samples=400)
        meets, _ = estimator.certify_threshold(0, 0.7)
        assert not meets

    def test_respects_max_samples_budget(self):
        estimator = PrecisionEstimator(
            [_bernoulli_sampler(0.7, 6), _bernoulli_sampler(0.69, 7)],
            max_samples=60,
        )
        estimator.select_top(1, tolerance=0.001)  # nearly indistinguishable arms
        assert all(s.samples <= 60 for s in estimator.stats)

    def test_summary_shape(self):
        estimator = PrecisionEstimator([_bernoulli_sampler(0.5, 8)])
        estimator.select_top(1)
        summary = estimator.summary()
        assert len(summary) == 1
        assert {"mean", "samples", "positives"} <= set(summary[0])

    def test_requires_at_least_one_arm(self):
        with pytest.raises(ValueError):
            PrecisionEstimator([])
