"""Equivalence of the estimator's array round state with ``ArmStatistics``.

The KL-LUCB estimator keeps its per-arm round state as contiguous
``(successes, trials)`` int64 arrays, re-exposed per arm through
``_ArmView`` with the original :class:`ArmStatistics` API.  This suite
feeds identical outcome streams to both representations and asserts the
statistics and the KL confidence bounds agree exactly, and that the
vectorized bound bisection matches the scalar bisections element for
element on both sides of its small-size fast-path cutoff.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.explain.precision import (
    ArmStatistics,
    PrecisionEstimator,
    _bernoulli_bounds_vec,
    bernoulli_lower_bound,
    bernoulli_upper_bound,
    confidence_beta,
)

_SETTINGS = dict(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@st.composite
def update_schedules(draw):
    """A multi-arm sequence of outcome batches: (arm, outcomes) pairs."""
    num_arms = draw(st.integers(min_value=1, max_value=5))
    schedule = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=num_arms - 1),
                st.lists(st.booleans(), min_size=0, max_size=12),
            ),
            min_size=0,
            max_size=15,
        )
    )
    return num_arms, schedule


@given(spec=update_schedules())
@settings(**_SETTINGS)
def test_arm_views_track_arm_statistics_exactly(spec):
    """Identical outcome streams → identical samples/positives/mean/bounds."""
    num_arms, schedule = spec
    estimator = PrecisionEstimator(num_arms=num_arms)
    reference = [ArmStatistics() for _ in range(num_arms)]

    for arm, outcomes in schedule:
        estimator.stats[arm].update(outcomes)
        reference[arm].update(outcomes)

    for round_index in (1, 3, 17):
        beta = confidence_beta(num_arms, round_index, 0.05)
        for arm in range(num_arms):
            view, stats = estimator.stats[arm], reference[arm]
            assert view.samples == stats.samples
            assert view.positives == stats.positives
            assert view.mean == stats.mean
            assert view.upper(beta) == stats.upper(beta)
            assert view.lower(beta) == stats.lower(beta)
            # The views are live windows onto the estimator's round arrays.
            assert int(estimator._trials[arm]) == stats.samples
            assert int(estimator._successes[arm]) == stats.positives


@given(spec=update_schedules())
@settings(**_SETTINGS)
def test_record_round_matches_per_view_updates(spec):
    """Folding a served round into the arrays equals per-arm ``update`` calls."""
    num_arms, schedule = spec
    batched = PrecisionEstimator(num_arms=num_arms)
    sequential = PrecisionEstimator(num_arms=num_arms)

    requests = [(arm, len(outcomes)) for arm, outcomes in schedule]
    batched._record_round(requests, [outcomes for _, outcomes in schedule])
    for arm, outcomes in schedule:
        sequential.stats[arm].update(outcomes)

    assert np.array_equal(batched._trials, sequential._trials)
    assert np.array_equal(batched._successes, sequential._successes)


@given(
    p_hats=st.lists(st.floats(0.0, 1.0), min_size=1, max_size=64),
    samples=st.data(),
    beta=st.floats(min_value=0.01, max_value=20.0),
)
@settings(**_SETTINGS)
def test_vector_bounds_match_scalar_bisection(p_hats, samples, beta):
    """``_bernoulli_bounds_vec`` equals the scalar bisections per element,
    on both sides of the ``size <= 32`` fast-path cutoff (the strategy spans
    sizes 1–64) and under a mixed per-element upper/lower mask."""
    p = np.array(p_hats, dtype=float)
    n = np.array(
        [samples.draw(st.integers(min_value=0, max_value=200)) for _ in p_hats],
        dtype=float,
    )
    upper_mask = np.array(
        [samples.draw(st.booleans()) for _ in p_hats], dtype=bool
    )

    bounds = _bernoulli_bounds_vec(p, n, beta, upper_mask, 1e-5)
    for i in range(p.shape[0]):
        if upper_mask[i]:
            expected = bernoulli_upper_bound(float(p[i]), int(n[i]), beta)
        else:
            expected = bernoulli_lower_bound(float(p[i]), int(n[i]), beta)
        assert abs(bounds[i] - expected) <= 2e-5, (
            f"element {i}: vec={bounds[i]!r} scalar={expected!r} "
            f"(p={p[i]}, n={n[i]}, upper={upper_mask[i]})"
        )
