"""Tests for the coverage estimator and the explainer configuration."""

import pytest

from repro.bb.block import BasicBlock
from repro.bb.features import NumInstructionsFeature, extract_features
from repro.explain.config import ExplainerConfig
from repro.explain.coverage import CoverageEstimator
from repro.perturb.config import PerturbationConfig
from repro.perturb.sampler import PerturbationSampler


@pytest.fixture
def block():
    return BasicBlock.from_text(
        "mov ecx, edx\nxor edx, edx\nlea rax, [rcx + rax - 1]\n"
        "div rcx\nmov rdx, rcx\nimul rax, rcx"
    )


class TestCoverageEstimator:
    def test_empty_set_full_coverage(self, block):
        estimator = CoverageEstimator(PerturbationSampler(block, rng=0), 100)
        assert estimator.coverage([]) == 1.0

    def test_antitone_in_feature_sets(self, block):
        estimator = CoverageEstimator(PerturbationSampler(block, rng=1), 200)
        features = extract_features(block)
        one = estimator.coverage(features[:1])
        two = estimator.coverage(features[:2])
        assert 0.0 <= two <= one <= 1.0

    def test_population_cached_across_queries(self, block):
        sampler = PerturbationSampler(block, rng=2)
        estimator = CoverageEstimator(sampler, 150)
        estimator.coverage(extract_features(block)[:1])
        drawn_after_first = sampler.samples_drawn
        estimator.coverage(extract_features(block)[:2])
        assert sampler.samples_drawn == drawn_after_first

    def test_coverage_many_matches_individual(self, block):
        estimator = CoverageEstimator(PerturbationSampler(block, rng=3), 150)
        features = extract_features(block)
        candidates = [features[:1], features[:2]]
        batch = estimator.coverage_many(candidates)
        assert batch == [estimator.coverage(c) for c in candidates]

    def test_absent_feature_zero_coverage(self, block):
        estimator = CoverageEstimator(PerturbationSampler(block, rng=4), 150)
        assert estimator.coverage([NumInstructionsFeature(99)]) == 0.0


class TestExplainerConfig:
    def test_defaults_follow_paper(self):
        config = ExplainerConfig()
        assert config.precision_threshold == pytest.approx(0.7)
        assert config.epsilon == pytest.approx(0.5)
        assert isinstance(config.perturbation, PerturbationConfig)

    def test_tolerance_uses_relative_component(self):
        config = ExplainerConfig(epsilon=0.5, relative_epsilon=0.1)
        assert config.tolerance_for(2.0) == pytest.approx(0.5)
        assert config.tolerance_for(40.0) == pytest.approx(4.0)

    def test_tolerance_absolute_only(self):
        config = ExplainerConfig(epsilon=0.25, relative_epsilon=0.0)
        assert config.tolerance_for(40.0) == pytest.approx(0.25)

    def test_with_overrides(self):
        config = ExplainerConfig().with_overrides(delta=0.2, beam_width=3)
        assert config.precision_threshold == pytest.approx(0.8)
        assert config.beam_width == 3

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"delta": 0.0},
            {"delta": 1.0},
            {"epsilon": -1.0},
            {"beam_width": 0},
            {"max_anchor_size": 0},
            {"confidence_delta": 0.0},
            {"min_precision_samples": 100, "max_precision_samples": 10},
        ],
    )
    def test_invalid_configurations_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ExplainerConfig(**kwargs)
