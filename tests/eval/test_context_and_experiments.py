"""Tests for the evaluation context and (small-scale) experiment drivers.

The experiment drivers are exercised here at a deliberately tiny scale — the
full-scale regeneration of every table/figure lives in ``benchmarks/``.
"""

import pytest

from repro.eval.accuracy import run_accuracy_experiment
from repro.eval.case_studies import CASE_STUDY_BLOCKS, run_case_studies
from repro.eval.context import EvaluationContext, EvaluationSettings
from repro.eval.error_correlation import (
    render_granularity_table,
    run_error_granularity_experiment,
)
from repro.eval.precision_coverage import run_precision_coverage_experiment
from repro.explain.config import ExplainerConfig
from repro.models.ithemal import IthemalConfig

TINY_SETTINGS = EvaluationSettings(
    dataset_size=80,
    test_set_size=4,
    seeds=1,
    microarchs=("hsw",),
    ithemal_config=IthemalConfig(embedding_size=12, hidden_size=12, epochs=2),
    explainer_config=ExplainerConfig(
        coverage_samples=120, max_precision_samples=60, min_precision_samples=12,
        batch_size=8,
    ),
)


@pytest.fixture(scope="module")
def context():
    return EvaluationContext(TINY_SETTINGS)


class TestSettings:
    def test_env_overrides(self, monkeypatch):
        monkeypatch.setenv("REPRO_EVAL_BLOCKS", "7")
        monkeypatch.setenv("REPRO_EVAL_SEEDS", "2")
        settings = EvaluationSettings.from_env()
        assert settings.test_set_size == 7
        assert settings.seeds == 2

    def test_crude_config_uses_crude_epsilon(self):
        settings = EvaluationSettings()
        config = settings.crude_explainer_config()
        assert config.epsilon == pytest.approx(settings.crude_epsilon)
        assert config.relative_epsilon == 0.0

    def test_scaled_copy(self):
        assert EvaluationSettings().scaled(test_set_size=3).test_set_size == 3


class TestContext:
    def test_dataset_and_test_set_built_lazily(self, context):
        assert len(context.dataset) > 0
        assert len(context.test_set) <= TINY_SETTINGS.test_set_size
        for record in context.test_set:
            assert 4 <= record.block.num_instructions <= 10

    def test_models_cached(self, context):
        assert context.crude_model("hsw") is context.crude_model("hsw")
        assert context.uica_model("hsw") is context.uica_model("hsw")

    def test_model_resolution(self, context):
        assert context.model("crude", "hsw") is context.crude_model("hsw")
        with pytest.raises(ValueError):
            context.model("unknown", "hsw")

    def test_shared_contexts_keyed_by_settings(self):
        a = EvaluationContext.shared(TINY_SETTINGS)
        b = EvaluationContext.shared(TINY_SETTINGS)
        assert a is b


class TestExperimentDrivers:
    def test_accuracy_experiment_structure(self, context):
        result = run_accuracy_experiment(context, blocks=context.test_blocks()[:3], seeds=1)
        assert set(result.accuracy) == {"Random", "Fixed", "COMET"}
        assert "hsw" in result.accuracy["COMET"]
        text = result.render()
        assert "COMET" in text and "Random" in text

    def test_precision_coverage_structure(self, context):
        result = run_precision_coverage_experiment(
            context, models=("uica",), blocks=context.test_blocks()[:2]
        )
        assert len(result.rows) == 1
        row = result.rows[0]
        assert 0.0 <= row.precision_mean <= 1.0
        assert 0.0 <= row.coverage_mean <= 1.0
        assert "Av. Precision" in result.render()

    def test_error_granularity_structure(self, context):
        results = run_error_granularity_experiment(
            context, models=("uica",), microarchs=("hsw",)
        )
        assert len(results) == 1
        result = results[0]
        assert result.mape >= 0.0
        total = (
            result.pct_num_instructions + result.pct_instructions + result.pct_dependencies
        )
        assert total >= 0.0
        assert "MAPE" in render_granularity_table("t", results)

    def test_case_study_blocks_parse_and_run(self, context):
        assert set(CASE_STUDY_BLOCKS) == {"case-study-1", "case-study-2"}
        results = run_case_studies(context, models=("uica",))
        assert len(results) == 2
        for result in results:
            assert result.hardware_throughput > 0
            assert "uiCA" in result.explanations
            assert "prediction" in result.render()
