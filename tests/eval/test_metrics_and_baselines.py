"""Tests for evaluation metrics and the random/fixed explanation baselines."""

import pytest

from repro.bb.block import BasicBlock
from repro.bb.features import FeatureKind, NumInstructionsFeature, extract_features
from repro.eval.baselines import (
    FixedExplanationBaseline,
    RandomExplanationBaseline,
    ground_truth_type_frequencies,
)
from repro.eval.metrics import (
    accuracy_rate,
    explanation_accuracy,
    feature_kind_percentages,
    mean_absolute_percentage_error,
    summarize_mean_std,
)
from repro.models.analytical import AnalyticalCostModel, ground_truth_explanations


@pytest.fixture(scope="module")
def blocks():
    texts = [
        "div rcx\nimul rax, rcx\nmov rbx, rax",
        "add rax, rbx\nsub rcx, rdx\nxor rsi, rdi\nand r8, r9\nor r10, r11",
        "mov qword ptr [rdi], rax\nmov qword ptr [rdi + 8], rbx\nadd rcx, rdx",
        "divss xmm0, xmm1\nmulss xmm2, xmm0\naddss xmm3, xmm2",
        "mov rax, qword ptr [rdi]\nadd rax, rbx\nmov qword ptr [rsi], rax",
    ]
    return [BasicBlock.from_text(t) for t in texts]


@pytest.fixture(scope="module")
def model():
    return AnalyticalCostModel("hsw")


class TestMape:
    def test_zero_for_perfect_predictions(self):
        assert mean_absolute_percentage_error([1.0, 2.0], [1.0, 2.0]) == 0.0

    def test_simple_value(self):
        assert mean_absolute_percentage_error([1.1, 2.2], [1.0, 2.0]) == pytest.approx(10.0)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            mean_absolute_percentage_error([1.0], [1.0, 2.0])

    def test_empty_is_nan(self):
        import math

        assert math.isnan(mean_absolute_percentage_error([], []))


class TestExplanationAccuracy:
    def test_exact_match_accurate(self, blocks, model):
        truth = ground_truth_explanations(blocks[0], model)
        assert explanation_accuracy(truth[:1], truth)

    def test_superset_inaccurate(self, blocks, model):
        truth = ground_truth_explanations(blocks[0], model)
        extra = [f for f in extract_features(blocks[0]) if f not in truth][:1]
        assert not explanation_accuracy(list(truth[:1]) + extra, truth)

    def test_empty_explanation_inaccurate(self, blocks, model):
        truth = ground_truth_explanations(blocks[0], model)
        assert not explanation_accuracy([], truth)

    def test_disjoint_explanation_inaccurate(self, blocks, model):
        truth = ground_truth_explanations(blocks[0], model)
        outside = [f for f in extract_features(blocks[0]) if f not in truth]
        assert not explanation_accuracy(outside[:1], truth)

    def test_accuracy_rate(self):
        assert accuracy_rate([True, True, False, False]) == pytest.approx(50.0)

    def test_summarize_mean_std(self):
        mean, std = summarize_mean_std([1.0, 3.0])
        assert mean == pytest.approx(2.0)
        assert std == pytest.approx(1.0)


class TestFeatureKindPercentages:
    def test_percentages(self, blocks):
        class FakeExplanation:
            def __init__(self, kinds):
                self.feature_kinds = kinds

        explanations = [
            FakeExplanation({FeatureKind.NUM_INSTRUCTIONS}),
            FakeExplanation({FeatureKind.INSTRUCTION, FeatureKind.DEPENDENCY}),
        ]
        pct = feature_kind_percentages(explanations)
        assert pct["num_instrs"] == pytest.approx(50.0)
        assert pct["inst"] == pytest.approx(50.0)
        assert pct["dep"] == pytest.approx(50.0)


class TestBaselines:
    def test_type_frequencies_sum_to_one(self, blocks, model):
        frequencies = ground_truth_type_frequencies(blocks, model)
        assert sum(frequencies.values()) == pytest.approx(1.0)

    def test_random_baseline_returns_single_block_feature(self, blocks, model):
        baseline = RandomExplanationBaseline(blocks, model, rng=0)
        for block in blocks:
            explanation = baseline.explain(block)
            assert len(explanation) == 1
            assert explanation[0] in extract_features(block)

    def test_random_baseline_seed_reproducible(self, blocks, model):
        a = RandomExplanationBaseline(blocks, model, rng=3).explain(blocks[0])
        b = RandomExplanationBaseline(blocks, model, rng=3).explain(blocks[0])
        assert a == b

    def test_fixed_baseline_deterministic(self, blocks, model):
        baseline = FixedExplanationBaseline(blocks, model)
        assert baseline.explain(blocks[1]) == baseline.explain(blocks[1])

    def test_fixed_baseline_uses_dominant_kind(self, blocks, model):
        baseline = FixedExplanationBaseline(blocks, model)
        explanation = baseline.explain(blocks[0])
        assert len(explanation) == 1
        assert explanation[0].kind is baseline.dominant_kind

    def test_baselines_score_below_perfect(self, blocks, model):
        """Both baselines are imperfect on this mixed block set."""
        random_baseline = RandomExplanationBaseline(blocks, model, rng=1)
        fixed_baseline = FixedExplanationBaseline(blocks, model)
        random_hits = []
        fixed_hits = []
        for block in blocks:
            truth = ground_truth_explanations(block, model)
            random_hits.append(explanation_accuracy(random_baseline.explain(block), truth))
            fixed_hits.append(explanation_accuracy(fixed_baseline.explain(block), truth))
        assert accuracy_rate(random_hits) < 100.0
        assert accuracy_rate(fixed_hits) < 100.0
