"""Pytest root configuration.

Prepends ``src/`` to ``sys.path`` so the test and benchmark suites run against
the in-tree package even when ``pip install -e .`` has not been executed
(useful on machines without network access to pip's build dependencies).
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.abspath(__file__)), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)
