"""BHive-style dataset substrate: synthetic blocks, hardware oracle, splits.

The paper evaluates COMET on blocks from the BHive benchmark suite, which
pairs ~300k real x86 basic blocks with throughputs measured on real silicon.
Neither the measured data nor the hardware is available offline, so this
package synthesises an equivalent substrate:

* :class:`BlockSynthesizer` generates valid blocks mimicking BHive's source
  (Clang / OpenBLAS) and category (Load / Store / Scalar / Vector / ...)
  structure,
* :class:`HardwareOracle` produces "measured" throughputs from a detailed
  configuration of the pipeline simulator plus measurement noise,
* :class:`BHiveDataset` bundles records, splits and the explanation test set
  used throughout the evaluation.
"""

from repro.data.synthesis import BlockSynthesizer, SynthesisProfile, SOURCE_PROFILES
from repro.data.oracle import HardwareOracle
from repro.data.bhive import BHiveDataset, BlockRecord
from repro.data.splits import (
    explanation_test_set,
    partition_by_category,
    partition_by_source,
    train_test_split,
)

__all__ = [
    "BlockSynthesizer",
    "SynthesisProfile",
    "SOURCE_PROFILES",
    "HardwareOracle",
    "BHiveDataset",
    "BlockRecord",
    "explanation_test_set",
    "partition_by_category",
    "partition_by_source",
    "train_test_split",
]
