"""The BHive-style dataset object.

:class:`BHiveDataset` bundles synthetic blocks with their oracle-measured
throughputs for every modelled micro-architecture, plus the source/category
metadata the paper's partitioned studies (Figures 3 and 4) rely on.  Datasets
can be persisted to / restored from a plain JSON file so expensive experiment
runs can reuse the exact same data.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.bb.block import BasicBlock, BlockCategory
from repro.data.oracle import HardwareOracle
from repro.data.synthesis import SOURCE_PROFILES, BlockSynthesizer
from repro.uarch.microarch import available_microarchitectures, get_microarch
from repro.utils.errors import ReproError
from repro.utils.rng import RandomSource, as_rng


@dataclass
class BlockRecord:
    """One dataset entry: a block plus measured throughputs and metadata."""

    block: BasicBlock
    throughputs: Dict[str, float]
    source: str
    category: str

    def throughput(self, microarch) -> float:
        """Measured throughput for one micro-architecture."""
        key = get_microarch(microarch).short_name
        if key not in self.throughputs:
            raise ReproError(f"record has no throughput for microarchitecture {key!r}")
        return self.throughputs[key]


@dataclass
class BHiveDataset:
    """A collection of :class:`BlockRecord` with convenience accessors."""

    records: List[BlockRecord] = field(default_factory=list)

    # ------------------------------------------------------------ synthesis

    @classmethod
    def synthesize(
        cls,
        num_blocks: int = 600,
        *,
        sources: Sequence[str] = ("clang", "openblas"),
        min_instructions: int = 2,
        max_instructions: int = 12,
        microarchs: Optional[Sequence[str]] = None,
        include_categories: bool = True,
        rng: RandomSource = 0,
        backend: "BackendSource" = None,
        workers: Optional[int] = None,
    ) -> "BHiveDataset":
        """Generate a labelled dataset.

        ``num_blocks`` are drawn from the source profiles (split evenly); when
        ``include_categories`` is set, an additional ~20% of blocks are drawn
        per BHive category so the category partitions are well populated.

        ``backend`` selects the execution substrate for the oracle
        measurements (the expensive part: one detailed simulation per block
        per micro-architecture).  The oracle's measurement noise is derived
        from the block content, not from shared generator state, so fanning
        the measurements out across processes labels every block exactly as
        the serial path would.
        """
        generator = as_rng(rng)
        microarchs = tuple(microarchs or available_microarchitectures())
        synthesizer = BlockSynthesizer(generator)
        oracles = {m: HardwareOracle(m) for m in microarchs}

        candidates: List[Tuple[BasicBlock, str]] = []
        seen: set = set()

        def add(block: BasicBlock, source: str) -> None:
            key = block.key()
            if key in seen:
                return
            seen.add(key)
            candidates.append((block, source))

        per_source = max(num_blocks // max(len(sources), 1), 1)
        for source in sources:
            if source not in SOURCE_PROFILES:
                raise ReproError(f"unknown source profile {source!r}")
            blocks = synthesizer.generate_many(
                per_source,
                min_instructions=min_instructions,
                max_instructions=max_instructions,
                source=source,
                rng=generator,
            )
            for block in blocks:
                add(block, source)

        if include_categories:
            per_category = max(num_blocks // 10, 8)
            for category in BlockCategory:
                for _ in range(per_category):
                    size = int(
                        generator.integers(min_instructions, max_instructions + 1)
                    )
                    block = synthesizer.generate_category(category, size, rng=generator)
                    add(block, "synthetic")

        labels = cls._measure_labels(candidates, oracles, microarchs, backend, workers)
        records = [
            BlockRecord(
                block=block,
                throughputs=labels[index],
                source=source,
                category=block.category.value,
            )
            for index, (block, source) in enumerate(candidates)
        ]
        return cls(records)

    @staticmethod
    def _measure_labels(
        candidates: Sequence[Tuple[BasicBlock, str]],
        oracles: Dict[str, HardwareOracle],
        microarchs: Sequence[str],
        backend,
        workers: Optional[int],
    ) -> List[Dict[str, float]]:
        """Oracle-label every candidate block, one batch per micro-architecture."""
        from repro.runtime.backend import ExecutionBackend, resolve_backend

        blocks = [block for block, _ in candidates]
        labels: List[Dict[str, float]] = [{} for _ in blocks]
        runtime = resolve_backend(backend, workers) if backend is not None else None
        try:
            for microarch in microarchs:
                oracle = oracles[microarch]
                if runtime is None or runtime.workers <= 1:
                    values = [oracle.measure(block) for block in blocks]
                else:
                    values = runtime.map_batch(oracle.measure, blocks)
                for index, value in enumerate(values):
                    labels[index][microarch] = float(value)
        finally:
            # Close a runtime resolved here from a name; a backend instance
            # passed in stays caller-owned.
            if runtime is not None and not isinstance(backend, ExecutionBackend):
                runtime.close()
        return labels

    # ------------------------------------------------------------ accessors

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    def __getitem__(self, index: int) -> BlockRecord:
        return self.records[index]

    def blocks(self) -> List[BasicBlock]:
        """All blocks, in dataset order."""
        return [record.block for record in self.records]

    def throughputs(self, microarch) -> List[float]:
        """Measured throughputs for one micro-architecture, in dataset order."""
        return [record.throughput(microarch) for record in self.records]

    def sources(self) -> List[str]:
        """Distinct source tags present in the dataset."""
        return sorted({record.source for record in self.records})

    def categories(self) -> List[str]:
        """Distinct category tags present in the dataset."""
        return sorted({record.category for record in self.records})

    def filter(self, predicate) -> "BHiveDataset":
        """A new dataset containing only records for which ``predicate`` holds."""
        return BHiveDataset([r for r in self.records if predicate(r)])

    def filter_by_source(self, source: str) -> "BHiveDataset":
        """Records derived from one source profile (Figure 3 partitions)."""
        return self.filter(lambda r: r.source == source)

    def filter_by_category(self, category) -> "BHiveDataset":
        """Records of one BHive category (Figure 4 partitions)."""
        value = category.value if isinstance(category, BlockCategory) else str(category)
        return self.filter(lambda r: r.category == value)

    def filter_by_size(self, minimum: int, maximum: int) -> "BHiveDataset":
        """Records whose block size lies in ``[minimum, maximum]``."""
        return self.filter(
            lambda r: minimum <= r.block.num_instructions <= maximum
        )

    def sample(self, count: int, rng: RandomSource = None) -> "BHiveDataset":
        """A uniformly sampled subset of at most ``count`` records."""
        generator = as_rng(rng)
        if count >= len(self.records):
            return BHiveDataset(list(self.records))
        idx = generator.choice(len(self.records), size=count, replace=False)
        return BHiveDataset([self.records[int(i)] for i in sorted(idx)])

    # ------------------------------------------------------------ persistence

    def save(self, path) -> None:
        """Serialise the dataset to a JSON file."""
        payload = [
            {
                "text": record.block.text,
                "throughputs": record.throughputs,
                "source": record.source,
                "category": record.category,
            }
            for record in self.records
        ]
        Path(path).write_text(json.dumps(payload, indent=1))

    @classmethod
    def load(cls, path) -> "BHiveDataset":
        """Restore a dataset written by :meth:`save`."""
        payload = json.loads(Path(path).read_text())
        records = []
        for entry in payload:
            block = BasicBlock.from_text(entry["text"], source=entry.get("source"))
            records.append(
                BlockRecord(
                    block=block,
                    throughputs={k: float(v) for k, v in entry["throughputs"].items()},
                    source=entry.get("source", "unknown"),
                    category=entry.get("category", block.category.value),
                )
            )
        return cls(records)
