"""Dataset splits used by the paper's evaluation.

* the *explanation test set*: 200 randomly picked blocks with 4–10
  instructions (Section 6),
* partitions by BHive *source* (Clang, OpenBLAS — Figure 3) and *category*
  (Load, Store, ... — Figure 4),
* a train/test split for fitting the neural cost model.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.bb.block import BlockCategory
from repro.data.bhive import BHiveDataset, BlockRecord
from repro.utils.rng import RandomSource, as_rng


def explanation_test_set(
    dataset: BHiveDataset,
    count: int = 200,
    *,
    min_instructions: int = 4,
    max_instructions: int = 10,
    rng: RandomSource = 0,
) -> BHiveDataset:
    """The explanation test set of Section 6: random blocks of 4–10 instructions."""
    eligible = dataset.filter_by_size(min_instructions, max_instructions)
    return eligible.sample(count, rng=rng)


def train_test_split(
    dataset: BHiveDataset, test_fraction: float = 0.2, rng: RandomSource = 0
) -> Tuple[BHiveDataset, BHiveDataset]:
    """Random train/test split (used to fit and evaluate the neural model)."""
    if not 0.0 < test_fraction < 1.0:
        raise ValueError("test_fraction must be in (0, 1)")
    generator = as_rng(rng)
    indices = list(range(len(dataset)))
    generator.shuffle(indices)
    cut = int(len(indices) * test_fraction)
    test_idx = set(indices[:cut])
    train_records = [dataset[i] for i in range(len(dataset)) if i not in test_idx]
    test_records = [dataset[i] for i in range(len(dataset)) if i in test_idx]
    return BHiveDataset(train_records), BHiveDataset(test_records)


def partition_by_source(dataset: BHiveDataset) -> Dict[str, BHiveDataset]:
    """Figure 3 partitions: one sub-dataset per source profile."""
    return {source: dataset.filter_by_source(source) for source in dataset.sources()}


def partition_by_category(dataset: BHiveDataset) -> Dict[str, BHiveDataset]:
    """Figure 4 partitions: one sub-dataset per BHive category."""
    return {
        category: dataset.filter_by_category(category)
        for category in dataset.categories()
    }


def category_order() -> List[str]:
    """The category ordering used by the paper's Figure 4 panels."""
    return [
        BlockCategory.LOAD.value,
        BlockCategory.LOAD_STORE.value,
        BlockCategory.STORE.value,
        BlockCategory.SCALAR.value,
        BlockCategory.VECTOR.value,
        BlockCategory.SCALAR_VECTOR.value,
    ]
