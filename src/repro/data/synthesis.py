"""Synthetic basic-block generator (BHive stand-in).

Blocks are generated from per-source *profiles* describing how often each
instruction template appears.  The ``clang`` profile is integer/control-heavy
(mov, lea, ALU, stack traffic, occasional division), the ``openblas`` profile
is floating-point/vector-heavy (SSE/AVX arithmetic, loads/stores of vector
data, FMA-style chains).  Operands are drawn from a small per-block register
pool with a bias towards recently written registers, so realistic RAW/WAR/WAW
dependency structure emerges naturally.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.bb.block import BasicBlock, BlockCategory
from repro.isa.instructions import Instruction
from repro.isa.operands import ImmediateOperand, MemoryOperand, RegisterOperand
from repro.isa.registers import register
from repro.isa.validation import is_valid_instruction
from repro.utils.rng import RandomSource, as_rng, choice

#: GPRs the generator may use (omits rsp/rbp-as-frame conventions on purpose).
_GPR_POOL = ["rax", "rbx", "rcx", "rdx", "rsi", "rdi", "rbp", "r8", "r9", "r10",
             "r11", "r12", "r13", "r14", "r15"]
_XMM_POOL = [f"xmm{i}" for i in range(16)]
_BASE_POOL = ["rdi", "rsi", "rbp", "r14", "rsp", "rbx"]


@dataclass
class _BlockState:
    """Mutable operand pools used while one block is generated."""

    gprs: List[str]
    xmms: List[str]
    bases: List[str]
    recently_written_gpr: List[str] = field(default_factory=list)
    recently_written_xmm: List[str] = field(default_factory=list)

    def pick_gpr(self, rng: np.random.Generator, prefer_written: float = 0.45) -> str:
        if self.recently_written_gpr and rng.random() < prefer_written:
            return choice(rng, self.recently_written_gpr)
        return choice(rng, self.gprs)

    def pick_xmm(self, rng: np.random.Generator, prefer_written: float = 0.5) -> str:
        if self.recently_written_xmm and rng.random() < prefer_written:
            return choice(rng, self.recently_written_xmm)
        return choice(rng, self.xmms)

    def note_written(self, name: str) -> None:
        target = self.recently_written_xmm if name.startswith("xmm") else self.recently_written_gpr
        target.append(name)
        if len(target) > 4:
            target.pop(0)


def _reg(name: str, width: int = 64) -> RegisterOperand:
    full = register(name)
    if full.width == width:
        return RegisterOperand(full)
    # Find the family member of the requested width.
    from repro.isa.registers import REGISTERS

    for candidate in REGISTERS.values():
        if candidate.root == full.root and candidate.width == width:
            return RegisterOperand(candidate)
    return RegisterOperand(full)


def _mem(
    rng: np.random.Generator, state: _BlockState, size: int = 64
) -> MemoryOperand:
    base = register(choice(rng, state.bases))
    displacement = int(choice(rng, [0, 8, 16, 24, 32, 40, 48, 64, 96, 128]))
    return MemoryOperand(base=base, displacement=displacement, access_size=size)


# ---------------------------------------------------------------------------
# Instruction templates
# ---------------------------------------------------------------------------

def _template_int_alu(rng, state) -> Instruction:
    mnemonic = choice(rng, ["add", "sub", "and", "or", "xor", "imul"])
    dst = state.pick_gpr(rng)
    if rng.random() < 0.3:
        src = ImmediateOperand(int(rng.integers(1, 256)), 32)
    else:
        src = _reg(state.pick_gpr(rng))
    state.note_written(dst)
    return Instruction(mnemonic, (_reg(dst), src) if not isinstance(src, RegisterOperand) else (_reg(dst), src))


def _template_mov_reg(rng, state) -> Instruction:
    dst, src = state.pick_gpr(rng), state.pick_gpr(rng)
    state.note_written(dst)
    return Instruction("mov", (_reg(dst), _reg(src)))


def _template_mov_imm(rng, state) -> Instruction:
    dst = state.pick_gpr(rng)
    state.note_written(dst)
    return Instruction("mov", (_reg(dst), ImmediateOperand(int(rng.integers(0, 4096)), 32)))


def _template_lea(rng, state) -> Instruction:
    dst = state.pick_gpr(rng)
    base = register(state.pick_gpr(rng))
    operand = MemoryOperand(
        base=base,
        index=register(state.pick_gpr(rng)) if rng.random() < 0.4 else None,
        scale=int(choice(rng, [1, 2, 4, 8])),
        displacement=int(choice(rng, [-8, -1, 0, 1, 4, 8, 16])),
        access_size=64,
        is_agen=True,
    )
    state.note_written(dst)
    return Instruction("lea", (_reg(dst), operand))


def _template_shift(rng, state) -> Instruction:
    dst = state.pick_gpr(rng)
    state.note_written(dst)
    return Instruction(
        choice(rng, ["shl", "shr", "sar"]),
        (_reg(dst), ImmediateOperand(int(rng.integers(1, 32)), 8)),
    )


def _template_cmp(rng, state) -> Instruction:
    return Instruction(
        choice(rng, ["cmp", "test"]),
        (_reg(state.pick_gpr(rng)), _reg(state.pick_gpr(rng))),
    )


def _template_div(rng, state) -> Instruction:
    return Instruction("div", (_reg(state.pick_gpr(rng)),))


def _template_stack(rng, state) -> Instruction:
    if rng.random() < 0.5:
        return Instruction("push", (_reg(state.pick_gpr(rng)),))
    dst = state.pick_gpr(rng)
    state.note_written(dst)
    return Instruction("pop", (_reg(dst),))


def _template_load(rng, state) -> Instruction:
    dst = state.pick_gpr(rng)
    state.note_written(dst)
    return Instruction("mov", (_reg(dst), _mem(rng, state, 64)))


def _template_store(rng, state) -> Instruction:
    return Instruction("mov", (_mem(rng, state, 64), _reg(state.pick_gpr(rng))))


def _template_store_imm(rng, state) -> Instruction:
    return Instruction(
        "mov", (_mem(rng, state, 8), ImmediateOperand(int(rng.integers(0, 128)), 8))
    )


def _template_vec_arith(rng, state) -> Instruction:
    mnemonic = choice(
        rng,
        ["vaddss", "vsubss", "vmulss", "vdivss", "vmaxss", "vminss", "vfmadd231ss"],
    )
    dst, a, b = state.pick_xmm(rng), state.pick_xmm(rng), state.pick_xmm(rng)
    state.note_written(dst)
    return Instruction(mnemonic, (_reg(dst, 128), _reg(a, 128), _reg(b, 128)))


def _template_vec_sse(rng, state) -> Instruction:
    mnemonic = choice(rng, ["addss", "mulss", "subss", "divss", "xorps", "andps", "sqrtss"])
    dst, src = state.pick_xmm(rng), state.pick_xmm(rng)
    state.note_written(dst)
    return Instruction(mnemonic, (_reg(dst, 128), _reg(src, 128)))


def _template_vec_load(rng, state) -> Instruction:
    dst = state.pick_xmm(rng)
    state.note_written(dst)
    mnemonic = choice(rng, ["movss", "movsd", "movups", "movaps"])
    size = 32 if mnemonic == "movss" else (64 if mnemonic == "movsd" else 128)
    return Instruction(mnemonic, (_reg(dst, 128), _mem(rng, state, size)))


def _template_vec_store(rng, state) -> Instruction:
    src = state.pick_xmm(rng)
    mnemonic = choice(rng, ["movss", "movsd", "movups"])
    size = 32 if mnemonic == "movss" else (64 if mnemonic == "movsd" else 128)
    return Instruction(mnemonic, (_mem(rng, state, size), _reg(src, 128)))


def _template_cvt(rng, state) -> Instruction:
    dst = state.pick_xmm(rng)
    state.note_written(dst)
    return Instruction(
        choice(rng, ["cvtsi2ss", "cvtsi2sd"]), (_reg(dst, 128), _reg(state.pick_gpr(rng)))
    )


#: Template name -> generator function.
TEMPLATES: Dict[str, Callable] = {
    "int_alu": _template_int_alu,
    "mov_reg": _template_mov_reg,
    "mov_imm": _template_mov_imm,
    "lea": _template_lea,
    "shift": _template_shift,
    "cmp": _template_cmp,
    "div": _template_div,
    "stack": _template_stack,
    "load": _template_load,
    "store": _template_store,
    "store_imm": _template_store_imm,
    "vec_arith": _template_vec_arith,
    "vec_sse": _template_vec_sse,
    "vec_load": _template_vec_load,
    "vec_store": _template_vec_store,
    "cvt": _template_cvt,
}


@dataclass(frozen=True)
class SynthesisProfile:
    """Template mixture describing one BHive-style source."""

    name: str
    weights: Dict[str, float]

    def normalised(self) -> Tuple[List[str], np.ndarray]:
        names = sorted(self.weights)
        values = np.array([self.weights[n] for n in names], dtype=float)
        return names, values / values.sum()


SOURCE_PROFILES: Dict[str, SynthesisProfile] = {
    "clang": SynthesisProfile(
        "clang",
        {
            "int_alu": 3.0,
            "mov_reg": 2.0,
            "mov_imm": 1.0,
            "lea": 1.5,
            "shift": 1.0,
            "cmp": 1.5,
            "div": 0.3,
            "stack": 1.0,
            "load": 2.5,
            "store": 1.5,
            "store_imm": 0.5,
            "vec_sse": 0.3,
            "cvt": 0.2,
        },
    ),
    "openblas": SynthesisProfile(
        "openblas",
        {
            "int_alu": 1.0,
            "mov_reg": 0.5,
            "lea": 1.0,
            "vec_arith": 4.0,
            "vec_sse": 2.0,
            "vec_load": 2.5,
            "vec_store": 1.5,
            "load": 0.8,
            "cvt": 0.4,
            "shift": 0.4,
        },
    ),
}

#: Templates allowed for each BHive category (pure compute vs memory classes).
_CATEGORY_TEMPLATES: Dict[BlockCategory, List[str]] = {
    BlockCategory.SCALAR: ["int_alu", "mov_reg", "mov_imm", "lea", "shift", "cmp", "div"],
    BlockCategory.VECTOR: ["vec_arith", "vec_sse"],
    BlockCategory.SCALAR_VECTOR: ["int_alu", "mov_reg", "lea", "vec_arith", "vec_sse", "cvt"],
    BlockCategory.LOAD: ["load", "vec_load", "int_alu", "mov_reg", "lea", "vec_sse"],
    BlockCategory.STORE: ["store", "store_imm", "vec_store", "int_alu", "mov_reg", "lea"],
    BlockCategory.LOAD_STORE: ["load", "store", "vec_load", "vec_store", "int_alu", "lea"],
}

#: Templates that make a block fall into the memory categories.
_MEMORY_TEMPLATES = {"load", "store", "store_imm", "vec_load", "vec_store", "stack"}


class BlockSynthesizer:
    """Generates random valid basic blocks from source profiles or categories."""

    def __init__(self, rng: RandomSource = None) -> None:
        self._rng = as_rng(rng)

    # ------------------------------------------------------------ generation

    def _new_state(self, rng: np.random.Generator) -> _BlockState:
        gprs = list(choice(rng, _GPR_POOL, size=6))
        xmms = list(choice(rng, _XMM_POOL, size=6))
        bases = list(choice(rng, _BASE_POOL, size=3))
        return _BlockState(gprs=gprs, xmms=xmms, bases=bases)

    def _generate_with_templates(
        self,
        template_names: Sequence[str],
        weights: Optional[np.ndarray],
        num_instructions: int,
        rng: np.random.Generator,
        source: Optional[str],
    ) -> BasicBlock:
        state = self._new_state(rng)
        instructions: List[Instruction] = []
        attempts = 0
        while len(instructions) < num_instructions and attempts < num_instructions * 20:
            attempts += 1
            if weights is None:
                name = choice(rng, list(template_names))
            else:
                name = template_names[int(rng.choice(len(template_names), p=weights))]
            instruction = TEMPLATES[name](rng, state)
            if is_valid_instruction(instruction):
                instructions.append(instruction)
        if not instructions:  # pragma: no cover - template pools never all fail
            instructions = [Instruction("nop", ())]
        return BasicBlock.from_instructions(instructions, source=source, validate=True)

    def generate(
        self,
        num_instructions: int,
        *,
        source: str = "clang",
        rng: RandomSource = None,
    ) -> BasicBlock:
        """Generate one block of ``num_instructions`` following a source profile."""
        generator = as_rng(rng) if rng is not None else self._rng
        profile = SOURCE_PROFILES[source]
        names, weights = profile.normalised()
        return self._generate_with_templates(
            names, weights, num_instructions, generator, source
        )

    def generate_category(
        self,
        category: BlockCategory,
        num_instructions: int,
        *,
        rng: RandomSource = None,
        max_attempts: int = 50,
    ) -> BasicBlock:
        """Generate a block guaranteed to classify into ``category``."""
        generator = as_rng(rng) if rng is not None else self._rng
        templates = _CATEGORY_TEMPLATES[category]
        for _ in range(max_attempts):
            block = self._generate_with_templates(
                templates, None, num_instructions, generator, source="synthetic"
            )
            if block.category is category:
                return block
        # Force the category with a canonical instruction if sampling failed.
        block = self._generate_with_templates(
            templates, None, max(num_instructions - 1, 1), generator, "synthetic"
        )
        forced = {
            BlockCategory.LOAD: _template_load,
            BlockCategory.STORE: _template_store,
            BlockCategory.LOAD_STORE: _template_load,
            BlockCategory.VECTOR: _template_vec_arith,
            BlockCategory.SCALAR: _template_int_alu,
            BlockCategory.SCALAR_VECTOR: _template_vec_arith,
        }[category]
        state = self._new_state(generator)
        instructions = list(block.instructions) + [forced(generator, state)]
        return BasicBlock.from_instructions(instructions, source="synthetic")

    def generate_many(
        self,
        count: int,
        *,
        min_instructions: int = 2,
        max_instructions: int = 12,
        source: str = "clang",
        rng: RandomSource = None,
    ) -> List[BasicBlock]:
        """Generate ``count`` blocks with sizes uniform in the given range."""
        generator = as_rng(rng) if rng is not None else self._rng
        blocks = []
        for _ in range(count):
            size = int(generator.integers(min_instructions, max_instructions + 1))
            blocks.append(self.generate(size, source=source, rng=generator))
        return blocks
