"""The "hardware" throughput oracle labelling the synthetic dataset.

BHive labels blocks with throughputs measured on real Haswell/Skylake chips.
Offline we substitute a *more detailed* configuration of the pipeline
simulator (renamer idioms enabled, longer steady-state measurement) plus a
small deterministic measurement noise.  The important property for the
reproduction is relational, not absolute: the uiCA-style model (the plain
simulator) tracks the oracle closely but not perfectly, while the neural
model — which only ever sees (block, oracle throughput) pairs — has a clearly
higher error, matching the error ordering in the paper's Figures 2–4.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.bb.block import BasicBlock
from repro.models.pipeline import PipelineSimulator, SimulationConfig
from repro.uarch.microarch import MicroArchitecture, get_microarch

#: Simulator configuration used for "hardware measurements": renamer idioms
#: on, longer measurement window than the prediction-side simulator.
ORACLE_SIMULATION_CONFIG = SimulationConfig(
    measured_iterations=24,
    warmup_iterations=6,
    move_elimination=True,
    zero_idiom_elimination=True,
)


@dataclass
class HardwareOracle:
    """Deterministic "measured throughput" provider for one micro-architecture.

    Parameters
    ----------
    microarch:
        Target micro-architecture.
    noise:
        Relative standard deviation of the multiplicative measurement noise
        (BHive reports run-to-run variation of a few percent).
    seed:
        Base seed; the per-block noise is derived from this seed and the block
        content, so the same block always receives the same label.
    """

    microarch: MicroArchitecture
    noise: float = 0.02
    seed: int = 1234

    def __init__(self, microarch="hsw", noise: float = 0.02, seed: int = 1234) -> None:
        self.microarch = get_microarch(microarch)
        self.noise = float(noise)
        self.seed = int(seed)
        self._simulator = PipelineSimulator(self.microarch, ORACLE_SIMULATION_CONFIG)
        self._cache: Dict[tuple, float] = {}

    def _block_seed(self, block: BasicBlock) -> int:
        digest = hashlib.sha256(
            (block.text + self.microarch.short_name + str(self.seed)).encode()
        ).digest()
        return int.from_bytes(digest[:8], "little") % (2**32)

    def measure(self, block: BasicBlock) -> float:
        """"Measured" steady-state throughput of ``block`` in cycles/iteration."""
        key = block.key()
        if key in self._cache:
            return self._cache[key]
        base = self._simulator.throughput(block)
        if self.noise > 0:
            rng = np.random.default_rng(self._block_seed(block))
            base *= float(np.exp(rng.normal(0.0, self.noise)))
        value = max(base, 0.05)
        self._cache[key] = value
        return value

    def __call__(self, block: BasicBlock) -> float:
        return self.measure(block)
