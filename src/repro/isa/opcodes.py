"""Opcode database for the modelled x86-64 subset.

Each :class:`OpcodeSpec` records, for one mnemonic:

* the operand *signatures* it accepts (kind and width patterns per position),
* the access semantics of each explicit operand (read / write / read-write),
* implicit register reads/writes (e.g. ``div`` uses ``rax``/``rdx``),
* whether it reads or writes the flags register,
* a coarse category used by the micro-architecture cost tables, and
* whether it may appear inside a basic block at all (control transfer
  instructions such as ``call``/``jmp``/``ret`` may not).

The perturbation algorithm uses :func:`replacement_candidates` to find all
opcodes that could legally replace a given instruction's mnemonic while
keeping its operand list unchanged — exactly the vertex replacement operation
described in Section 5.2 of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, FrozenSet, Iterable, List, Sequence, Tuple

from repro.isa.operands import Operand, OperandKind
from repro.utils.errors import UnknownOpcodeError


class Access(str, Enum):
    """Access semantics of an explicit operand position."""

    READ = "r"
    WRITE = "w"
    READ_WRITE = "rw"

    @property
    def reads(self) -> bool:
        return self in (Access.READ, Access.READ_WRITE)

    @property
    def writes(self) -> bool:
        return self in (Access.WRITE, Access.READ_WRITE)


@dataclass(frozen=True)
class OperandPattern:
    """A pattern one operand position must match (kind set + width set)."""

    kinds: FrozenSet[OperandKind]
    sizes: FrozenSet[int]

    def matches(self, operand: Operand) -> bool:
        """Whether ``operand`` satisfies this pattern."""
        return operand.kind in self.kinds and operand.size in self.sizes


#: One full operand signature (a pattern per explicit operand position).
OperandSignature = Tuple[OperandPattern, ...]


GPR_SIZES = frozenset({8, 16, 32, 64})
GPR_WIDE = frozenset({16, 32, 64})
VEC_SIZES = frozenset({128, 256})
IMM_SIZES = frozenset({8, 16, 32, 64})
ALL_MEM = frozenset({8, 16, 32, 64, 128, 256})


def _pat(kinds: Iterable[OperandKind], sizes: Iterable[int]) -> OperandPattern:
    return OperandPattern(frozenset(kinds), frozenset(sizes))


def R(sizes: Iterable[int] = GPR_SIZES) -> OperandPattern:
    """Register operand pattern."""
    return _pat([OperandKind.REGISTER], sizes)


def M(sizes: Iterable[int] = GPR_SIZES) -> OperandPattern:
    """Memory operand pattern."""
    return _pat([OperandKind.MEMORY], sizes)


def RM(sizes: Iterable[int] = GPR_SIZES) -> OperandPattern:
    """Register-or-memory operand pattern."""
    return _pat([OperandKind.REGISTER, OperandKind.MEMORY], sizes)


def I(sizes: Iterable[int] = IMM_SIZES) -> OperandPattern:
    """Immediate operand pattern."""
    return _pat([OperandKind.IMMEDIATE], sizes)


def V(sizes: Iterable[int] = VEC_SIZES) -> OperandPattern:
    """Vector register operand pattern."""
    return _pat([OperandKind.REGISTER], sizes)


def VM(sizes: Iterable[int] = frozenset({32, 64, 128, 256})) -> OperandPattern:
    """Vector register or memory operand pattern (for FP/SSE sources)."""
    return _pat([OperandKind.REGISTER, OperandKind.MEMORY], sizes)


def AGEN() -> OperandPattern:
    """Address-generation operand pattern (the source of ``lea``)."""
    return _pat([OperandKind.AGEN], ALL_MEM)


@dataclass(frozen=True)
class OpcodeSpec:
    """Static description of one opcode."""

    mnemonic: str
    signatures: Tuple[OperandSignature, ...]
    access: Tuple[Access, ...]
    category: str
    implicit_reads: Tuple[str, ...] = ()
    implicit_writes: Tuple[str, ...] = ()
    reads_flags: bool = False
    writes_flags: bool = False
    is_vector: bool = False
    allowed_in_block: bool = True
    notes: str = ""

    @property
    def arity(self) -> int:
        """Number of explicit operands this opcode takes."""
        return len(self.access)

    def matches(self, operands: Sequence[Operand]) -> bool:
        """Whether the operand list satisfies one of the signatures."""
        if len(operands) != self.arity:
            return False
        for signature in self.signatures:
            if all(pat.matches(op) for pat, op in zip(signature, operands)):
                return True
        return False


_DB: Dict[str, OpcodeSpec] = {}


def _add(spec: OpcodeSpec) -> None:
    if spec.mnemonic in _DB:
        raise ValueError(f"duplicate opcode definition: {spec.mnemonic}")
    for sig in spec.signatures:
        if len(sig) != spec.arity:
            raise ValueError(
                f"{spec.mnemonic}: signature arity {len(sig)} != access arity {spec.arity}"
            )
    _DB[spec.mnemonic] = spec


def _sig(*patterns: OperandPattern) -> OperandSignature:
    return tuple(patterns)


def _add_many(
    mnemonics: Iterable[str],
    signatures: Tuple[OperandSignature, ...],
    access: Tuple[Access, ...],
    category: str,
    **kwargs,
) -> None:
    for mnemonic in mnemonics:
        _add(
            OpcodeSpec(
                mnemonic=mnemonic,
                signatures=signatures,
                access=access,
                category=category,
                **kwargs,
            )
        )


# ---------------------------------------------------------------------------
# Integer data movement
# ---------------------------------------------------------------------------

_MOV_SIGS = (
    _sig(R(), RM()),
    _sig(M(), R()),
    _sig(RM(), I()),
)
_add(
    OpcodeSpec(
        "mov",
        signatures=_MOV_SIGS,
        access=(Access.WRITE, Access.READ),
        category="mov",
    )
)
_add(
    OpcodeSpec(
        "movzx",
        signatures=(_sig(R(GPR_WIDE), RM(frozenset({8, 16}))),),
        access=(Access.WRITE, Access.READ),
        category="mov",
    )
)
_add(
    OpcodeSpec(
        "movsx",
        signatures=(_sig(R(GPR_WIDE), RM(frozenset({8, 16}))),),
        access=(Access.WRITE, Access.READ),
        category="mov",
    )
)
_add(
    OpcodeSpec(
        "movsxd",
        signatures=(_sig(R(frozenset({64})), RM(frozenset({32}))),),
        access=(Access.WRITE, Access.READ),
        category="mov",
    )
)
_add(
    OpcodeSpec(
        "lea",
        signatures=(_sig(R(GPR_WIDE), AGEN()),),
        access=(Access.WRITE, Access.READ),
        category="lea",
        notes="AGEN source: no other opcode shares this signature, so lea "
        "cannot be replaced (Appendix D of the paper).",
    )
)
_add(
    OpcodeSpec(
        "xchg",
        signatures=(_sig(R(), R()), _sig(RM(), R()), _sig(R(), RM())),
        access=(Access.READ_WRITE, Access.READ_WRITE),
        category="mov",
    )
)
_add(
    OpcodeSpec(
        "push",
        signatures=(_sig(RM(frozenset({64, 16})),), _sig(I(),)),
        access=(Access.READ,),
        category="push",
        implicit_reads=("rsp",),
        implicit_writes=("rsp",),
    )
)
_add(
    OpcodeSpec(
        "pop",
        signatures=(_sig(RM(frozenset({64, 16})),),),
        access=(Access.WRITE,),
        category="pop",
        implicit_reads=("rsp",),
        implicit_writes=("rsp",),
    )
)

# ---------------------------------------------------------------------------
# Integer ALU
# ---------------------------------------------------------------------------

_ALU_SIGS = (
    _sig(R(), RM()),
    _sig(M(), R()),
    _sig(RM(), I()),
)
_add_many(
    ["add", "sub", "and", "or", "xor"],
    _ALU_SIGS,
    (Access.READ_WRITE, Access.READ),
    "int_alu",
    writes_flags=True,
)
_add_many(
    ["adc", "sbb"],
    _ALU_SIGS,
    (Access.READ_WRITE, Access.READ),
    "int_alu",
    reads_flags=True,
    writes_flags=True,
)
_add_many(
    ["cmp", "test"],
    _ALU_SIGS,
    (Access.READ, Access.READ),
    "cmp",
    writes_flags=True,
)
_add(
    OpcodeSpec(
        "imul",
        signatures=(_sig(R(GPR_WIDE), RM(GPR_WIDE)),),
        access=(Access.READ_WRITE, Access.READ),
        category="int_mul",
        writes_flags=True,
    )
)
_add_many(
    ["mul", "div", "idiv"],
    (_sig(RM(),),),
    (Access.READ,),
    "int_div",
    implicit_reads=("rax", "rdx"),
    implicit_writes=("rax", "rdx"),
    writes_flags=True,
)
# ``mul`` is really a multiply; give it its own category for the cost tables.
_DB["mul"] = OpcodeSpec(
    "mul",
    signatures=(_sig(RM(),),),
    access=(Access.READ,),
    category="int_mul",
    implicit_reads=("rax", "rdx"),
    implicit_writes=("rax", "rdx"),
    writes_flags=True,
)
_add_many(
    ["inc", "dec", "neg", "not"],
    (_sig(RM(),),),
    (Access.READ_WRITE,),
    "int_alu",
    writes_flags=True,
)
_add_many(
    ["shl", "shr", "sar", "sal", "rol", "ror"],
    (
        _sig(RM(), I(frozenset({8}))),
        _sig(RM(), R(frozenset({8}))),
    ),
    (Access.READ_WRITE, Access.READ),
    "shift",
    writes_flags=True,
)
_add_many(
    ["bsr", "bsf", "popcnt", "lzcnt", "tzcnt"],
    (_sig(R(GPR_WIDE), RM(GPR_WIDE)),),
    (Access.WRITE, Access.READ),
    "bit",
    writes_flags=True,
)
_add(
    OpcodeSpec(
        "bswap",
        signatures=(_sig(R(frozenset({32, 64})),),),
        access=(Access.READ_WRITE,),
        category="bit",
    )
)
_add_many(
    ["sete", "setne", "setz", "setnz", "setb", "setae", "setl", "setg"],
    (_sig(RM(frozenset({8})),),),
    (Access.WRITE,),
    "setcc",
    reads_flags=True,
)
_add_many(
    ["cmove", "cmovne", "cmovz", "cmovnz", "cmovb", "cmovae", "cmovl", "cmovg"],
    (_sig(R(GPR_WIDE), RM(GPR_WIDE)),),
    (Access.READ_WRITE, Access.READ),
    "cmov",
    reads_flags=True,
)
_add(
    OpcodeSpec(
        "cdq",
        signatures=((),),
        access=(),
        category="mov",
        implicit_reads=("rax",),
        implicit_writes=("rdx",),
    )
)
_add(
    OpcodeSpec(
        "cqo",
        signatures=((),),
        access=(),
        category="mov",
        implicit_reads=("rax",),
        implicit_writes=("rdx",),
    )
)
_add(
    OpcodeSpec(
        "nop",
        signatures=((),),
        access=(),
        category="nop",
    )
)

# ---------------------------------------------------------------------------
# SSE scalar floating point
# ---------------------------------------------------------------------------

_SSE_SCALAR_SIGS = (_sig(V(), VM(frozenset({32, 64, 128}))),)
_SSE_SCALAR_RW = (Access.READ_WRITE, Access.READ)
_SSE_SCALAR_W = (Access.WRITE, Access.READ)

_add_many(
    ["addss", "addsd", "subss", "subsd", "minss", "maxss", "minsd", "maxsd"],
    _SSE_SCALAR_SIGS,
    _SSE_SCALAR_RW,
    "fp_add",
    is_vector=True,
)
_add_many(
    ["mulss", "mulsd"],
    _SSE_SCALAR_SIGS,
    _SSE_SCALAR_RW,
    "fp_mul",
    is_vector=True,
)
_add_many(
    ["divss", "divsd"],
    _SSE_SCALAR_SIGS,
    _SSE_SCALAR_RW,
    "fp_div",
    is_vector=True,
)
_add_many(
    ["sqrtss", "sqrtsd"],
    _SSE_SCALAR_SIGS,
    _SSE_SCALAR_W,
    "fp_sqrt",
    is_vector=True,
)
_add_many(
    ["ucomiss", "ucomisd", "comiss", "comisd"],
    _SSE_SCALAR_SIGS,
    (Access.READ, Access.READ),
    "fp_cmp",
    is_vector=True,
    writes_flags=True,
)
_add_many(
    ["movss", "movsd"],
    (
        _sig(V(), VM(frozenset({32, 64, 128}))),
        _sig(M(frozenset({32, 64})), V()),
    ),
    _SSE_SCALAR_W,
    "fp_mov",
    is_vector=True,
)
_add_many(
    ["cvtsi2ss", "cvtsi2sd"],
    (_sig(V(), RM(frozenset({32, 64}))),),
    _SSE_SCALAR_RW,
    "fp_cvt",
    is_vector=True,
)
_add_many(
    ["cvttss2si", "cvttsd2si", "cvtss2si", "cvtsd2si"],
    (_sig(R(frozenset({32, 64})), VM(frozenset({32, 64, 128}))),),
    (Access.WRITE, Access.READ),
    "fp_cvt",
    is_vector=True,
)
_add_many(
    ["cvtss2sd", "cvtsd2ss"],
    _SSE_SCALAR_SIGS,
    _SSE_SCALAR_RW,
    "fp_cvt",
    is_vector=True,
)

# ---------------------------------------------------------------------------
# SSE packed / integer vector
# ---------------------------------------------------------------------------

_SSE_PACKED_SIGS = (_sig(V(), VM(frozenset({128, 256}))),)
_add_many(
    ["movaps", "movups", "movapd", "movupd", "movdqa", "movdqu"],
    (
        _sig(V(), VM(frozenset({128, 256}))),
        _sig(M(frozenset({128, 256})), V()),
    ),
    _SSE_SCALAR_W,
    "fp_mov",
    is_vector=True,
)
_add_many(
    ["movq", "movd"],
    (
        _sig(V(), RM(frozenset({32, 64, 128}))),
        _sig(RM(frozenset({32, 64})), V()),
    ),
    _SSE_SCALAR_W,
    "fp_mov",
    is_vector=True,
)
_add_many(
    ["addps", "addpd", "subps", "subpd"],
    _SSE_PACKED_SIGS,
    _SSE_SCALAR_RW,
    "fp_add",
    is_vector=True,
)
_add_many(
    ["mulps", "mulpd"],
    _SSE_PACKED_SIGS,
    _SSE_SCALAR_RW,
    "fp_mul",
    is_vector=True,
)
_add_many(
    ["divps", "divpd"],
    _SSE_PACKED_SIGS,
    _SSE_SCALAR_RW,
    "fp_div",
    is_vector=True,
)
_add_many(
    ["xorps", "xorpd", "andps", "andpd", "orps", "orpd", "pxor", "pand", "por"],
    _SSE_PACKED_SIGS,
    _SSE_SCALAR_RW,
    "vec_logic",
    is_vector=True,
)
_add_many(
    ["paddd", "paddq", "psubd", "psubq", "pmulld"],
    _SSE_PACKED_SIGS,
    _SSE_SCALAR_RW,
    "vec_int",
    is_vector=True,
)
_add_many(
    ["unpcklps", "unpckhps", "punpcklqdq", "punpckldq"],
    _SSE_PACKED_SIGS,
    _SSE_SCALAR_RW,
    "shuffle",
    is_vector=True,
)
_add(
    OpcodeSpec(
        "shufps",
        signatures=(_sig(V(), VM(frozenset({128, 256})), I(frozenset({8}))),),
        access=(Access.READ_WRITE, Access.READ, Access.READ),
        category="shuffle",
        is_vector=True,
    )
)
_add(
    OpcodeSpec(
        "pshufd",
        signatures=(_sig(V(), VM(frozenset({128, 256})), I(frozenset({8}))),),
        access=(Access.WRITE, Access.READ, Access.READ),
        category="shuffle",
        is_vector=True,
    )
)

# ---------------------------------------------------------------------------
# AVX (VEX encoded, mostly three-operand)
# ---------------------------------------------------------------------------

_AVX3_SIGS = (_sig(V(), V(), VM(frozenset({32, 64, 128, 256}))),)
_AVX3_ACCESS = (Access.WRITE, Access.READ, Access.READ)
_add_many(
    ["vaddss", "vaddsd", "vsubss", "vsubsd", "vminss", "vmaxss", "vaddps", "vaddpd", "vsubps"],
    _AVX3_SIGS,
    _AVX3_ACCESS,
    "fp_add",
    is_vector=True,
)
_add_many(
    ["vmulss", "vmulsd", "vmulps", "vmulpd"],
    _AVX3_SIGS,
    _AVX3_ACCESS,
    "fp_mul",
    is_vector=True,
)
_add_many(
    ["vdivss", "vdivsd", "vdivps", "vdivpd"],
    _AVX3_SIGS,
    _AVX3_ACCESS,
    "fp_div",
    is_vector=True,
)
_add_many(
    ["vxorps", "vxorpd", "vandps", "vandpd", "vorps", "vpxor", "vpand", "vpor"],
    _AVX3_SIGS,
    _AVX3_ACCESS,
    "vec_logic",
    is_vector=True,
)
_add_many(
    ["vpaddd", "vpaddq", "vpsubd", "vpmulld"],
    _AVX3_SIGS,
    _AVX3_ACCESS,
    "vec_int",
    is_vector=True,
)
_add_many(
    ["vsqrtss", "vsqrtsd"],
    (_sig(V(), V(), VM(frozenset({32, 64, 128}))),),
    _AVX3_ACCESS,
    "fp_sqrt",
    is_vector=True,
)
_add_many(
    ["vfmadd213ss", "vfmadd231ss", "vfmadd213ps", "vfmadd231ps", "vfmadd213sd", "vfmadd231sd"],
    _AVX3_SIGS,
    (Access.READ_WRITE, Access.READ, Access.READ),
    "fp_fma",
    is_vector=True,
)
_add_many(
    ["vmovss", "vmovsd"],
    (
        _sig(V(), VM(frozenset({32, 64, 128}))),
        _sig(M(frozenset({32, 64})), V()),
    ),
    _SSE_SCALAR_W,
    "fp_mov",
    is_vector=True,
)
_add_many(
    ["vmovaps", "vmovups", "vmovdqa", "vmovdqu", "vmovapd"],
    (
        _sig(V(), VM(frozenset({128, 256}))),
        _sig(M(frozenset({128, 256})), V()),
    ),
    _SSE_SCALAR_W,
    "fp_mov",
    is_vector=True,
)

# ---------------------------------------------------------------------------
# Control transfer (present only so the parser/validator can reject them)
# ---------------------------------------------------------------------------

_add_many(
    ["jmp", "call"],
    (
        _sig(_pat([OperandKind.LABEL, OperandKind.REGISTER, OperandKind.MEMORY], ALL_MEM | frozenset({0})),),
    ),
    (Access.READ,),
    "branch",
    allowed_in_block=False,
)
_add(
    OpcodeSpec(
        "ret",
        signatures=((),),
        access=(),
        category="branch",
        allowed_in_block=False,
    )
)
_add_many(
    ["je", "jne", "jz", "jnz", "jb", "jae", "jl", "jg", "jle", "jge"],
    (_sig(_pat([OperandKind.LABEL], frozenset({0})),),),
    (Access.READ,),
    "branch",
    reads_flags=True,
    allowed_in_block=False,
)


#: The full opcode database, keyed by mnemonic.
OPCODES: Dict[str, OpcodeSpec] = dict(_DB)


def has_opcode(mnemonic: str) -> bool:
    """Whether ``mnemonic`` is in the database."""
    return mnemonic.lower() in OPCODES


def opcode_spec(mnemonic: str) -> OpcodeSpec:
    """Look up the :class:`OpcodeSpec` for ``mnemonic``."""
    spec = OPCODES.get(mnemonic.lower())
    if spec is None:
        raise UnknownOpcodeError(mnemonic)
    return spec


def block_legal_mnemonics() -> List[str]:
    """All mnemonics that may appear inside a basic block."""
    return sorted(m for m, spec in OPCODES.items() if spec.allowed_in_block)


#: Signature matching depends only on each operand's (kind, size), so the
#: candidate scan over the whole opcode database is memoised per shape.
_REPLACEMENT_CACHE: Dict[tuple, Tuple[str, ...]] = {}


def replacement_candidates(
    mnemonic: str, operands: Sequence[Operand]
) -> List[str]:
    """Opcodes that could replace ``mnemonic`` given the same operand list.

    A candidate must (i) be legal inside a basic block, (ii) accept exactly
    the operand kinds and widths of ``operands`` through one of its
    signatures, and (iii) differ from the original mnemonic.  The returned
    list is sorted for determinism; the perturbation algorithm samples from
    it uniformly.
    """
    original = mnemonic.lower()
    shape = (original, tuple((op.kind, op.size) for op in operands))
    cached = _REPLACEMENT_CACHE.get(shape)
    if cached is None:
        out = []
        for name, spec in OPCODES.items():
            if name == original or not spec.allowed_in_block:
                continue
            if spec.matches(operands):
                out.append(name)
        cached = _REPLACEMENT_CACHE[shape] = tuple(sorted(out))
    return list(cached)


def categories() -> List[str]:
    """All opcode categories present in the database."""
    return sorted({spec.category for spec in OPCODES.values()})
