"""The x86-64 register file with aliasing information.

Data-dependency analysis needs to know that writing ``eax`` and then reading
``rax`` is a read-after-write hazard, so every register carries a ``root``:
the canonical name of the full-width architectural register it aliases
(``al``/``ax``/``eax``/``rax`` all share root ``rax``; ``xmm3``/``ymm3``
share root ``v3``).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, List, Tuple

from repro.utils.errors import UnknownRegisterError


class RegisterClass(str, Enum):
    """Coarse register classes used for operand typing and replacement."""

    GPR = "gpr"
    VECTOR = "vector"
    FLAGS = "flags"
    IP = "ip"


@dataclass(frozen=True)
class Register:
    """A single architectural register name.

    Attributes
    ----------
    name:
        Assembly name (``rax``, ``eax``, ``xmm0`` ...).
    width:
        Width in bits.
    cls:
        Register class (:class:`RegisterClass`).
    root:
        Canonical name of the full-width register this name aliases.  Two
        registers conflict for dependency purposes iff their roots match.
    """

    name: str
    width: int
    cls: RegisterClass
    root: str

    def aliases(self, other: "Register") -> bool:
        """Whether this register overlaps ``other`` architecturally."""
        return self.root == other.root

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.name


def _gpr_family(root: str, r64: str, r32: str, r16: str, r8: str) -> List[Register]:
    return [
        Register(r64, 64, RegisterClass.GPR, root),
        Register(r32, 32, RegisterClass.GPR, root),
        Register(r16, 16, RegisterClass.GPR, root),
        Register(r8, 8, RegisterClass.GPR, root),
    ]


def _build_register_file() -> Dict[str, Register]:
    regs: List[Register] = []
    legacy: List[Tuple[str, str, str, str]] = [
        ("rax", "eax", "ax", "al"),
        ("rbx", "ebx", "bx", "bl"),
        ("rcx", "ecx", "cx", "cl"),
        ("rdx", "edx", "dx", "dl"),
        ("rsi", "esi", "si", "sil"),
        ("rdi", "edi", "di", "dil"),
        ("rbp", "ebp", "bp", "bpl"),
        ("rsp", "esp", "sp", "spl"),
    ]
    for r64, r32, r16, r8 in legacy:
        regs.extend(_gpr_family(r64, r64, r32, r16, r8))
    for i in range(8, 16):
        base = f"r{i}"
        regs.extend(_gpr_family(base, base, f"{base}d", f"{base}w", f"{base}b"))
    for i in range(16):
        root = f"v{i}"
        regs.append(Register(f"xmm{i}", 128, RegisterClass.VECTOR, root))
        regs.append(Register(f"ymm{i}", 256, RegisterClass.VECTOR, root))
    regs.append(Register("rflags", 64, RegisterClass.FLAGS, "rflags"))
    regs.append(Register("rip", 64, RegisterClass.IP, "rip"))
    return {r.name: r for r in regs}


#: Mapping from register name to :class:`Register` for the whole register file.
REGISTERS: Dict[str, Register] = _build_register_file()

#: Register roots that are conventionally reserved and never used as
#: replacement targets when the perturbation algorithm renames operands
#: (renaming something to ``rsp``/``rip`` would produce unrealistic blocks).
RESERVED_ROOTS = frozenset({"rsp", "rip", "rflags"})


def register(name: str) -> Register:
    """Look up a register by assembly name (case-insensitive)."""
    reg = REGISTERS.get(name.lower())
    if reg is None:
        raise UnknownRegisterError(name)
    return reg


def is_register_name(name: str) -> bool:
    """Whether ``name`` is a known register name."""
    return name.lower() in REGISTERS


def registers_of(cls: RegisterClass, width: int) -> List[Register]:
    """All registers of a given class and width, in a stable order."""
    return sorted(
        (r for r in REGISTERS.values() if r.cls == cls and r.width == width),
        key=lambda r: r.name,
    )


def same_size_registers(reg: Register, *, exclude_reserved: bool = True) -> List[Register]:
    """Registers interchangeable with ``reg`` (same class and width).

    These are the candidates the perturbation algorithm may rename ``reg`` to
    when breaking a data dependency.  ``reg`` itself is excluded, as are the
    stack pointer / instruction pointer when ``exclude_reserved`` is set.
    """
    out = []
    for cand in registers_of(reg.cls, reg.width):
        if cand.root == reg.root:
            continue
        if exclude_reserved and cand.root in RESERVED_ROOTS:
            continue
        out.append(cand)
    return out


def gpr_names(width: int) -> List[str]:
    """Names of all general-purpose registers of the given width."""
    return [r.name for r in registers_of(RegisterClass.GPR, width)]


def vector_names(width: int) -> List[str]:
    """Names of all vector registers of the given width."""
    return [r.name for r in registers_of(RegisterClass.VECTOR, width)]
