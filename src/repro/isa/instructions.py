"""The :class:`Instruction` value object and its read/write set computation."""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import FrozenSet, Optional, Tuple

from repro.isa.opcodes import Access, OpcodeSpec, opcode_spec
from repro.isa.operands import (
    ImmediateOperand,
    MemoryOperand,
    Operand,
    OperandKind,
    RegisterOperand,
)
from repro.utils.errors import ValidationError

#: Symbolic location read or written by an instruction.  Register locations
#: are ``("reg", root)``; memory locations are ``("mem", address_key)``;
#: the flags register is ``("flags", "rflags")``.
Location = Tuple[str, object]


@dataclass(frozen=True)
class Instruction:
    """One x86 instruction: a mnemonic plus explicit operands.

    Instances are immutable; the perturbation algorithm builds modified
    copies via :meth:`with_mnemonic` / :meth:`with_operands`.
    """

    mnemonic: str
    operands: Tuple[Operand, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "mnemonic", self.mnemonic.lower())

    # ------------------------------------------------------------------ spec

    @property
    def spec(self) -> OpcodeSpec:
        """The opcode database entry for this instruction's mnemonic."""
        return opcode_spec(self.mnemonic)

    @property
    def arity(self) -> int:
        return len(self.operands)

    # -------------------------------------------------------------- rewrites

    def with_mnemonic(self, mnemonic: str) -> "Instruction":
        """Copy of this instruction with a different opcode."""
        return Instruction(mnemonic, self.operands)

    def with_operands(self, operands: Tuple[Operand, ...]) -> "Instruction":
        """Copy of this instruction with a different operand tuple."""
        return Instruction(self.mnemonic, tuple(operands))

    def with_operand(self, index: int, operand: Operand) -> "Instruction":
        """Copy of this instruction with operand ``index`` replaced."""
        ops = list(self.operands)
        ops[index] = operand
        return Instruction(self.mnemonic, tuple(ops))

    # ----------------------------------------------------- read / write sets

    def _operand_access(self, index: int) -> Access:
        spec = self.spec
        if index >= spec.arity:
            raise ValidationError(
                f"{self.mnemonic} has arity {spec.arity}, no operand {index}"
            )
        return spec.access[index]

    @cached_property
    def reads(self) -> FrozenSet[Location]:
        """Symbolic locations read by this instruction."""
        spec = self.spec
        locations: set[Location] = set()
        for root in spec.implicit_reads:
            locations.add(("reg", root))
        if spec.reads_flags:
            locations.add(("flags", "rflags"))
        for index, operand in enumerate(self.operands):
            access = spec.access[index] if index < spec.arity else Access.READ
            # Address registers are always read, even for pure-write operands.
            for reg in operand.registers_read():
                locations.add(("reg", reg.root))
            if isinstance(operand, RegisterOperand) and access.reads:
                locations.add(("reg", operand.register.root))
            elif isinstance(operand, MemoryOperand) and not operand.is_agen:
                if access.reads:
                    locations.add(("mem", operand.address_key()))
        return frozenset(locations)

    @cached_property
    def writes(self) -> FrozenSet[Location]:
        """Symbolic locations written by this instruction."""
        spec = self.spec
        locations: set[Location] = set()
        for root in spec.implicit_writes:
            locations.add(("reg", root))
        if spec.writes_flags:
            locations.add(("flags", "rflags"))
        for index, operand in enumerate(self.operands):
            access = spec.access[index] if index < spec.arity else Access.READ
            if isinstance(operand, RegisterOperand) and access.writes:
                locations.add(("reg", operand.register.root))
            elif isinstance(operand, MemoryOperand) and not operand.is_agen:
                if access.writes:
                    locations.add(("mem", operand.address_key()))
        return frozenset(locations)

    # ------------------------------------------------------- classification

    @cached_property
    def loads_memory(self) -> bool:
        """Whether this instruction reads from memory."""
        return any(loc[0] == "mem" for loc in self.reads) or self.mnemonic == "pop"

    @cached_property
    def stores_memory(self) -> bool:
        """Whether this instruction writes to memory."""
        return any(loc[0] == "mem" for loc in self.writes) or self.mnemonic == "push"

    @property
    def is_vector(self) -> bool:
        """Whether this is an SSE/AVX instruction."""
        return self.spec.is_vector

    @property
    def category(self) -> str:
        """The opcode's coarse category (used by the cost tables)."""
        return self.spec.category

    def memory_operand(self) -> Optional[MemoryOperand]:
        """The first true memory operand, if any."""
        for operand in self.operands:
            if isinstance(operand, MemoryOperand) and not operand.is_agen:
                return operand
        return None

    def register_operands(self) -> Tuple[RegisterOperand, ...]:
        """All explicit register operands."""
        return tuple(op for op in self.operands if isinstance(op, RegisterOperand))

    def immediate_operands(self) -> Tuple[ImmediateOperand, ...]:
        """All explicit immediate operands."""
        return tuple(op for op in self.operands if isinstance(op, ImmediateOperand))

    # ---------------------------------------------------------------- dunder

    def __str__(self) -> str:
        from repro.isa.formatter import format_instruction

        return format_instruction(self)

    def key(self) -> Tuple:
        """A hashable identity key (mnemonic plus formatted operands).

        Memoised per instance: instructions are immutable and shared between
        the original block and its perturbations, so block-level cache keys
        are mostly assembled from already-formatted parts.
        """
        cached = self.__dict__.get("_key")
        if cached is None:
            from repro.isa.formatter import format_operand

            cached = (self.mnemonic, tuple(format_operand(op) for op in self.operands))
            self.__dict__["_key"] = cached
        return cached
