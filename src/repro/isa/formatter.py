"""Formatting of operands, instructions and blocks back to Intel syntax."""

from __future__ import annotations

from typing import Iterable

from repro.isa.operands import (
    ImmediateOperand,
    LabelOperand,
    MemoryOperand,
    Operand,
    RegisterOperand,
)

_SIZE_PREFIX = {
    8: "byte ptr",
    16: "word ptr",
    32: "dword ptr",
    64: "qword ptr",
    128: "xmmword ptr",
    256: "ymmword ptr",
}


def format_memory(operand: MemoryOperand, *, with_size: bool = True) -> str:
    """Format a memory operand as ``qword ptr [base + index*scale + disp]``."""
    parts = []
    if operand.base is not None:
        parts.append(operand.base.name)
    if operand.index is not None:
        term = operand.index.name
        if operand.scale != 1:
            term = f"{term}*{operand.scale}"
        parts.append(term)
    expr = " + ".join(parts)
    if operand.displacement:
        if expr:
            sign = "+" if operand.displacement > 0 else "-"
            expr = f"{expr} {sign} {abs(operand.displacement)}"
        else:
            expr = str(operand.displacement)
    if not expr:
        expr = "0"
    body = f"[{expr}]"
    if operand.is_agen or not with_size:
        return body
    prefix = _SIZE_PREFIX.get(operand.access_size, "")
    return f"{prefix} {body}".strip()


def format_operand(operand: Operand) -> str:
    """Format any operand in Intel syntax."""
    if isinstance(operand, RegisterOperand):
        return operand.register.name
    if isinstance(operand, MemoryOperand):
        return format_memory(operand)
    if isinstance(operand, ImmediateOperand):
        return str(operand.value)
    if isinstance(operand, LabelOperand):
        return operand.name
    raise TypeError(f"unknown operand type: {type(operand)!r}")


def format_instruction(instruction) -> str:
    """Format an :class:`~repro.isa.instructions.Instruction` in Intel syntax."""
    if not instruction.operands:
        return instruction.mnemonic
    operands = ", ".join(format_operand(op) for op in instruction.operands)
    return f"{instruction.mnemonic} {operands}"


def format_block_lines(instructions: Iterable) -> str:
    """Format a sequence of instructions, one per line."""
    return "\n".join(format_instruction(inst) for inst in instructions)
