"""Intel-syntax parser for x86 instructions and basic blocks.

Handles the subset of Intel syntax used by BHive-style basic blocks::

    add rcx, rax
    mov qword ptr [rdi + 24], rdx
    lea rax, [rcx + rax - 1]
    vmulss xmm7, xmm0, xmm0
    shl eax, 3

Comments starting with ``#`` or ``;`` are stripped.  The parser is strict
about register names and opcode mnemonics (both must be known to the ISA
model) but forgiving about whitespace.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.isa.instructions import Instruction
from repro.isa.opcodes import has_opcode, opcode_spec
from repro.isa.operands import (
    ImmediateOperand,
    LabelOperand,
    MemoryOperand,
    Operand,
    RegisterOperand,
)
from repro.isa.registers import is_register_name, register
from repro.utils.errors import ParseError

_SIZE_PREFIXES = {
    "byte": 8,
    "word": 16,
    "dword": 32,
    "qword": 64,
    "xmmword": 128,
    "ymmword": 256,
}

_PREFIX_RE = re.compile(
    r"^(?P<size>byte|word|dword|qword|xmmword|ymmword)\s+(ptr\s+)?", re.IGNORECASE
)
_INT_RE = re.compile(r"^[+-]?(0x[0-9a-f]+|\d+)$", re.IGNORECASE)
_SCALE_RE = re.compile(r"^(?P<a>[^*]+)\*(?P<b>[^*]+)$")


@dataclass
class _MemSpec:
    """Parsed memory reference before the access size is known."""

    base: Optional[str]
    index: Optional[str]
    scale: int
    displacement: int
    explicit_size: Optional[int]


def _parse_int(text: str) -> int:
    text = text.strip().lower()
    negative = text.startswith("-")
    if text.startswith(("+", "-")):
        text = text[1:].strip()
    value = int(text, 16) if text.startswith("0x") else int(text)
    return -value if negative else value


def _parse_memory_body(body: str, original: str) -> _MemSpec:
    base: Optional[str] = None
    index: Optional[str] = None
    scale = 1
    displacement = 0

    # Split the bracket expression into signed terms.
    tokens = re.split(r"([+-])", body)
    terms: List[Tuple[int, str]] = []
    sign = 1
    for token in tokens:
        token = token.strip()
        if not token:
            continue
        if token == "+":
            sign = 1
        elif token == "-":
            sign = -1
        else:
            terms.append((sign, token))
            sign = 1

    for sgn, term in terms:
        scaled = _SCALE_RE.match(term)
        if scaled:
            a, b = scaled.group("a").strip(), scaled.group("b").strip()
            if is_register_name(a) and _INT_RE.match(b):
                reg_name, scale_val = a, int(b)
            elif is_register_name(b) and _INT_RE.match(a):
                reg_name, scale_val = b, int(a)
            else:
                raise ParseError(original, f"cannot parse scaled index term {term!r}")
            if sgn < 0:
                raise ParseError(original, "scaled index cannot be negative")
            if index is not None:
                raise ParseError(original, "multiple index registers in address")
            index, scale = reg_name, scale_val
        elif is_register_name(term):
            if sgn < 0:
                raise ParseError(original, "registers cannot be subtracted in addresses")
            if base is None:
                base = term
            elif index is None:
                index = term
            else:
                raise ParseError(original, "too many registers in address")
        elif _INT_RE.match(term):
            displacement += sgn * _parse_int(term)
        else:
            raise ParseError(original, f"cannot parse address term {term!r}")

    return _MemSpec(base, index, scale, displacement, None)


def _parse_operand_text(text: str, original: str):
    """Parse one operand into an Operand or a :class:`_MemSpec`."""
    text = text.strip()
    if not text:
        raise ParseError(original, "empty operand")

    explicit_size: Optional[int] = None
    prefix = _PREFIX_RE.match(text)
    if prefix:
        explicit_size = _SIZE_PREFIXES[prefix.group("size").lower()]
        text = text[prefix.end():].strip()

    if text.startswith("["):
        if not text.endswith("]"):
            raise ParseError(original, f"unterminated memory operand {text!r}")
        spec = _parse_memory_body(text[1:-1], original)
        spec.explicit_size = explicit_size
        return spec
    if explicit_size is not None:
        raise ParseError(original, "size prefix on a non-memory operand")
    if is_register_name(text):
        return RegisterOperand(register(text))
    if _INT_RE.match(text):
        value = _parse_int(text)
        width = 8 if -128 <= value <= 127 else (32 if -(2**31) <= value < 2**31 else 64)
        return ImmediateOperand(value, width)
    if re.fullmatch(r"[.\w@]+", text):
        return LabelOperand(text)
    raise ParseError(original, f"cannot parse operand {text!r}")


def _infer_memory_size(mnemonic: str, parsed: List, spec_index: int) -> int:
    """Infer the access size of a memory operand without an explicit prefix."""
    if mnemonic.endswith("ss") or mnemonic in ("movd", "cvtsi2ss"):
        return 32
    if mnemonic.endswith("sd") or mnemonic in ("movq", "cvtsi2sd"):
        return 64
    register_widths = [
        op.register.width for op in parsed if isinstance(op, RegisterOperand)
    ]
    vector_widths = [w for w in register_widths if w >= 128]
    if has_opcode(mnemonic) and opcode_spec(mnemonic).is_vector:
        return min(vector_widths) if vector_widths else 128
    gpr_widths = [w for w in register_widths if w <= 64]
    if mnemonic in ("movzx", "movsx"):
        return 8
    if mnemonic == "movsxd":
        return 32
    if gpr_widths:
        return max(gpr_widths)
    return 64


def parse_instruction(text: str) -> Instruction:
    """Parse one Intel-syntax instruction line into an :class:`Instruction`."""
    original = text
    text = re.split(r"[#;]", text, maxsplit=1)[0].strip()
    if not text:
        raise ParseError(original, "empty instruction")

    match = re.match(r"^(?P<mnemonic>[a-zA-Z][\w.]*)\s*(?P<rest>.*)$", text)
    if not match:
        raise ParseError(original, "cannot find a mnemonic")
    mnemonic = match.group("mnemonic").lower()
    rest = match.group("rest").strip()

    if not has_opcode(mnemonic):
        raise ParseError(original, f"unknown opcode {mnemonic!r}")

    raw_operands: List[str] = []
    if rest:
        raw_operands = [part for part in rest.split(",")]

    parsed = [_parse_operand_text(part, original) for part in raw_operands]

    operands: List[Operand] = []
    for i, item in enumerate(parsed):
        if isinstance(item, _MemSpec):
            size = item.explicit_size or _infer_memory_size(mnemonic, parsed, i)
            operands.append(
                MemoryOperand(
                    base=register(item.base) if item.base else None,
                    index=register(item.index) if item.index else None,
                    scale=item.scale,
                    displacement=item.displacement,
                    access_size=size,
                    is_agen=(mnemonic == "lea"),
                )
            )
        else:
            operands.append(item)

    # Labels are only meaningful for control-transfer instructions; for any
    # other opcode an unrecognised bare word is almost certainly a typo'd
    # register name, so reject it here with a parse error.
    if any(isinstance(op, LabelOperand) for op in operands) and opcode_spec(
        mnemonic
    ).allowed_in_block:
        raise ParseError(original, "unrecognised operand (not a register, memory or immediate)")

    return Instruction(mnemonic, tuple(operands))


def parse_block_text(text: str) -> List[Instruction]:
    """Parse a multi-line block of assembly into a list of instructions.

    Blank lines and comment-only lines are skipped.  Optional leading line
    numbers (as used in the paper's listings) are tolerated.
    """
    instructions = []
    for line in text.splitlines():
        stripped = re.split(r"[#;]", line, maxsplit=1)[0].strip()
        if not stripped:
            continue
        stripped = re.sub(r"^\d+\s*[:.]?\s*", "", stripped)
        if not stripped:
            continue
        instructions.append(parse_instruction(stripped))
    return instructions
