"""Validity checks for instructions and basic-block instruction sequences.

A perturbed block is only useful if it is valid x86 that could occur in a
basic block; the perturbation algorithm re-validates every block it emits so
that the cost models are never queried with malformed inputs (one of the
failure modes of generative-model-based perturbation the paper avoids).
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

from repro.isa.instructions import Instruction
from repro.isa.operands import ImmediateOperand, MemoryOperand, OperandKind
from repro.utils.errors import ValidationError


def validate_instruction(instruction: Instruction) -> None:
    """Raise :class:`ValidationError` if ``instruction`` is not valid.

    Checks performed:

    * the mnemonic is in the opcode database and allowed in basic blocks,
    * the operand list matches one of the opcode's signatures,
    * at most one explicit memory operand (x86 encodes at most one),
    * destination operands are not immediates.
    """
    spec = instruction.spec
    if not spec.allowed_in_block:
        raise ValidationError(
            f"{instruction.mnemonic} is a control-transfer instruction and "
            "cannot appear inside a basic block"
        )
    if not spec.matches(instruction.operands):
        raise ValidationError(
            f"operands {tuple(str(op.kind.value) + str(op.size) for op in instruction.operands)} "
            f"do not match any signature of {instruction.mnemonic}"
        )
    memory_count = sum(
        1 for op in instruction.operands if isinstance(op, MemoryOperand)
    )
    if memory_count > 1:
        raise ValidationError(
            f"{instruction} has {memory_count} memory operands; x86 allows at most one"
        )
    for index, operand in enumerate(instruction.operands):
        if index < spec.arity and spec.access[index].writes:
            if isinstance(operand, ImmediateOperand):
                raise ValidationError(
                    f"{instruction}: operand {index} is written but is an immediate"
                )
            if operand.kind == OperandKind.LABEL:
                raise ValidationError(
                    f"{instruction}: operand {index} is written but is a label"
                )


#: Every check in :func:`validate_instruction` depends only on the mnemonic
#: and each operand's (class, kind, size) — never on register identity or
#: immediate value — so validity is memoised per shape across instances.
_VALIDITY_CACHE: dict = {}


def is_valid_instruction(instruction: Instruction) -> bool:
    """Boolean form of :func:`validate_instruction`.

    Memoised twice over: per instance (instructions are immutable and the
    perturbation algorithm shares objects across thousands of perturbed
    blocks) and per shape (fresh replacement instructions recur with the
    same mnemonic/operand shapes, which is all validity depends on).
    """
    cached = instruction.__dict__.get("_is_valid")
    if cached is None:
        shape = (
            instruction.mnemonic,
            tuple(
                (type(op), op.kind, op.size) for op in instruction.operands
            ),
        )
        cached = _VALIDITY_CACHE.get(shape)
        if cached is None:
            try:
                validate_instruction(instruction)
                cached = True
            except ValidationError:
                cached = False
            _VALIDITY_CACHE[shape] = cached
        instruction.__dict__["_is_valid"] = cached
    return cached


def validate_block_instructions(instructions: Sequence[Instruction]) -> None:
    """Validate every instruction of a basic block.

    Raises :class:`ValidationError` mentioning the offending instruction
    index so callers can report precise errors.
    """
    if len(instructions) == 0:
        raise ValidationError("a basic block must contain at least one instruction")
    for index, instruction in enumerate(instructions):
        try:
            validate_instruction(instruction)
        except ValidationError as exc:
            raise ValidationError(f"instruction {index} ({instruction}): {exc}") from exc


def invalid_instructions(instructions: Iterable[Instruction]) -> List[int]:
    """Indices of invalid instructions (empty list when the block is valid)."""
    bad = []
    for index, instruction in enumerate(instructions):
        if not is_valid_instruction(instruction):
            bad.append(index)
    return bad
