"""x86 ISA substrate: registers, operands, opcodes, parsing and validation.

COMET perturbs x86 assembly basic blocks, so the framework needs an ISA model
that knows (i) which registers alias each other, (ii) which operand shapes
each opcode accepts, and (iii) which operands each opcode reads and writes.
This subpackage provides that model for the subset of x86 exercised by the
BHive-style workloads used in the paper's evaluation.
"""

from repro.isa.registers import (
    Register,
    RegisterClass,
    REGISTERS,
    register,
    registers_of,
    same_size_registers,
)
from repro.isa.operands import (
    Operand,
    OperandKind,
    RegisterOperand,
    MemoryOperand,
    ImmediateOperand,
    LabelOperand,
)
from repro.isa.opcodes import (
    OpcodeSpec,
    OperandPattern,
    OperandSignature,
    Access,
    OPCODES,
    opcode_spec,
    has_opcode,
    replacement_candidates,
)
from repro.isa.instructions import Instruction
from repro.isa.parser import parse_instruction, parse_block_text
from repro.isa.formatter import format_instruction, format_operand
from repro.isa.validation import validate_instruction, validate_block_instructions

__all__ = [
    "Register",
    "RegisterClass",
    "REGISTERS",
    "register",
    "registers_of",
    "same_size_registers",
    "Operand",
    "OperandKind",
    "RegisterOperand",
    "MemoryOperand",
    "ImmediateOperand",
    "LabelOperand",
    "OpcodeSpec",
    "OperandPattern",
    "OperandSignature",
    "Access",
    "OPCODES",
    "opcode_spec",
    "has_opcode",
    "replacement_candidates",
    "Instruction",
    "parse_instruction",
    "parse_block_text",
    "format_instruction",
    "format_operand",
    "validate_instruction",
    "validate_block_instructions",
]
