"""Operand model: registers, memory references, immediates.

Operands are immutable value objects.  The perturbation algorithm rewrites
instructions by *replacing* operands rather than mutating them, which keeps
perturbed blocks independent of the original block object.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from enum import Enum
from typing import FrozenSet, Optional, Tuple

from repro.isa.registers import Register


class OperandKind(str, Enum):
    """Operand kinds used in opcode signatures.

    ``AGEN`` is the address-generation operand of ``lea``: syntactically a
    memory reference but semantically neither a load nor a store.  Keeping it
    a separate kind means no other opcode's signature matches an ``lea``
    instruction, which reproduces the paper's observation (Appendix D) that
    ``lea`` has no valid opcode replacements.
    """

    REGISTER = "reg"
    MEMORY = "mem"
    IMMEDIATE = "imm"
    AGEN = "agen"
    LABEL = "label"


class Operand:
    """Base class for all operand types."""

    kind: OperandKind
    size: int

    def registers_read(self) -> Tuple[Register, ...]:
        """Registers read merely by *evaluating* this operand (e.g. address)."""
        return ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        from repro.isa.formatter import format_operand

        return f"<{type(self).__name__} {format_operand(self)}>"


@dataclass(frozen=True, repr=False)
class RegisterOperand(Operand):
    """A direct register operand."""

    register: Register

    @property
    def kind(self) -> OperandKind:
        return OperandKind.REGISTER

    @property
    def size(self) -> int:
        return self.register.width

    def registers_read(self) -> Tuple[Register, ...]:
        return ()

    def with_register(self, new_register: Register) -> "RegisterOperand":
        """Return a copy referring to ``new_register``."""
        return RegisterOperand(new_register)


@dataclass(frozen=True, repr=False)
class MemoryOperand(Operand):
    """A memory reference ``[base + index*scale + displacement]``.

    ``access_size`` is the width of the memory access in bits (from the
    ``qword ptr`` style prefix, or inferred from the other operand during
    parsing).  ``is_agen`` marks the operand of ``lea``.
    """

    base: Optional[Register] = None
    index: Optional[Register] = None
    scale: int = 1
    displacement: int = 0
    access_size: int = 64
    is_agen: bool = False

    def __post_init__(self) -> None:
        if self.scale not in (1, 2, 4, 8):
            raise ValueError(f"invalid scale {self.scale}; must be 1, 2, 4 or 8")
        if self.base is None and self.index is None and self.displacement == 0:
            raise ValueError("memory operand needs a base, index or displacement")

    @property
    def kind(self) -> OperandKind:
        return OperandKind.AGEN if self.is_agen else OperandKind.MEMORY

    @property
    def size(self) -> int:
        return self.access_size

    def registers_read(self) -> Tuple[Register, ...]:
        regs = []
        if self.base is not None:
            regs.append(self.base)
        if self.index is not None:
            regs.append(self.index)
        return tuple(regs)

    def address_key(self) -> Tuple[Optional[str], Optional[str], int, int]:
        """A hashable key identifying the symbolic address.

        Two memory operands with equal keys refer to the same location for
        dependency purposes; differing keys are conservatively treated as
        distinct locations (the same simplification BHive-style tooling makes
        for straight-line code).
        """
        return (
            self.base.root if self.base else None,
            self.index.root if self.index else None,
            self.scale,
            self.displacement,
        )

    def with_fields(self, **changes) -> "MemoryOperand":
        """Return a copy with the given fields replaced."""
        return replace(self, **changes)


@dataclass(frozen=True, repr=False)
class ImmediateOperand(Operand):
    """A constant operand."""

    value: int
    width: int = 32

    @property
    def kind(self) -> OperandKind:
        return OperandKind.IMMEDIATE

    @property
    def size(self) -> int:
        return self.width

    def with_value(self, value: int) -> "ImmediateOperand":
        """Return a copy holding ``value``."""
        return ImmediateOperand(value, self.width)


@dataclass(frozen=True, repr=False)
class LabelOperand(Operand):
    """A symbolic label (only used to reject branch-like instructions)."""

    name: str

    @property
    def kind(self) -> OperandKind:
        return OperandKind.LABEL

    @property
    def size(self) -> int:
        return 0


def operand_kinds(operands: Tuple[Operand, ...]) -> Tuple[OperandKind, ...]:
    """Kinds of each operand, in order."""
    return tuple(op.kind for op in operands)


def memory_operands(operands: Tuple[Operand, ...]) -> Tuple[MemoryOperand, ...]:
    """All true memory (non-AGEN) operands among ``operands``."""
    return tuple(
        op for op in operands if isinstance(op, MemoryOperand) and not op.is_agen
    )


ALL_KINDS: FrozenSet[OperandKind] = frozenset(OperandKind)
