"""Interpretable block predicates used by the global explainer.

A predicate is a boolean function over basic blocks with a human-readable
description.  The global explainer composes conjunctions of predicates, so
each predicate should be simple enough for a compiler engineer to read off
the rule directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Set, Tuple

from repro.bb.block import BasicBlock, BlockCategory
from repro.bb.dependencies import DependencyKind


class BlockPredicate:
    """Base class: a named boolean property of basic blocks."""

    def holds(self, block: BasicBlock) -> bool:  # pragma: no cover - abstract
        raise NotImplementedError

    def describe(self) -> str:  # pragma: no cover - abstract
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.describe()}>"


@dataclass(frozen=True, repr=False)
class NumInstructionsEquals(BlockPredicate):
    """``η == count`` — the predicate behind the paper's ``M1`` example."""

    count: int

    def holds(self, block: BasicBlock) -> bool:
        return block.num_instructions == self.count

    def describe(self) -> str:
        return f"num_instructions == {self.count}"


@dataclass(frozen=True, repr=False)
class NumInstructionsInRange(BlockPredicate):
    """``lo <= η <= hi`` (inclusive)."""

    low: int
    high: int

    def __post_init__(self) -> None:
        if self.low > self.high:
            raise ValueError("low must not exceed high")

    def holds(self, block: BasicBlock) -> bool:
        return self.low <= block.num_instructions <= self.high

    def describe(self) -> str:
        return f"{self.low} <= num_instructions <= {self.high}"


@dataclass(frozen=True, repr=False)
class ContainsOpcode(BlockPredicate):
    """The block contains at least one instruction with the given mnemonic."""

    mnemonic: str

    def holds(self, block: BasicBlock) -> bool:
        return any(inst.mnemonic == self.mnemonic for inst in block)

    def describe(self) -> str:
        return f"contains opcode {self.mnemonic}"


@dataclass(frozen=True, repr=False)
class ContainsDependencyKind(BlockPredicate):
    """The block contains at least one hazard of the given kind."""

    dep_kind: DependencyKind

    def holds(self, block: BasicBlock) -> bool:
        return any(dep.kind is self.dep_kind for dep in block.dependencies)

    def describe(self) -> str:
        return f"contains {self.dep_kind.value} dependency"


@dataclass(frozen=True, repr=False)
class CategoryIs(BlockPredicate):
    """The block's BHive-style category equals the given one."""

    category: str

    def holds(self, block: BasicBlock) -> bool:
        return block.category.value == self.category

    def describe(self) -> str:
        return f"category is {self.category}"


@dataclass(frozen=True, repr=False)
class AndPredicate(BlockPredicate):
    """Conjunction of several predicates (the global explainer's rule form)."""

    terms: Tuple[BlockPredicate, ...]

    def __post_init__(self) -> None:
        if not self.terms:
            raise ValueError("a conjunction needs at least one term")

    def holds(self, block: BasicBlock) -> bool:
        return all(term.holds(block) for term in self.terms)

    def describe(self) -> str:
        return " AND ".join(term.describe() for term in self.terms)

    def __len__(self) -> int:
        return len(self.terms)


def candidate_predicates(
    blocks: Sequence[BasicBlock],
    *,
    include_counts: bool = True,
    include_opcodes: bool = True,
    include_dependencies: bool = True,
    include_categories: bool = True,
    max_opcodes: int = 40,
) -> List[BlockPredicate]:
    """Enumerate candidate predicates grounded in ``blocks``.

    The candidate pool is derived from the data rather than the whole ISA so
    that the search space stays proportional to what the dataset can actually
    distinguish: one count predicate per observed instruction count, one
    opcode predicate per observed mnemonic (capped at ``max_opcodes`` by
    frequency), one predicate per hazard kind and per observed category.
    """
    predicates: List[BlockPredicate] = []
    if include_counts:
        counts = sorted({block.num_instructions for block in blocks})
        predicates.extend(NumInstructionsEquals(count) for count in counts)
    if include_opcodes:
        frequency: dict = {}
        for block in blocks:
            for inst in block:
                frequency[inst.mnemonic] = frequency.get(inst.mnemonic, 0) + 1
        ranked = sorted(frequency, key=lambda m: (-frequency[m], m))[:max_opcodes]
        predicates.extend(ContainsOpcode(mnemonic) for mnemonic in sorted(ranked))
    if include_dependencies:
        kinds = sorted(
            {dep.kind for block in blocks for dep in block.dependencies},
            key=lambda kind: kind.value,
        )
        predicates.extend(ContainsDependencyKind(kind) for kind in kinds)
    if include_categories:
        categories = sorted({block.category.value for block in blocks})
        predicates.extend(CategoryIs(category) for category in categories)
    return predicates
