"""Searching for global explanations of a cost model over a block set.

A global explanation of a cost model ``M`` for a target prediction set ``T``
(here an inclusive interval ``[low, high]``) is the common, distinguishing
property of the blocks whose prediction lands in ``T`` (Section 4 of the
paper).  The search below scores conjunctions of interpretable predicates by

* **precision** — of the blocks satisfying the rule, the fraction whose
  prediction is in ``T`` (the faithfulness analogue), and
* **recall** — of the blocks with prediction in ``T``, the fraction that
  satisfy the rule (the generalizability analogue),

and returns the rule with the best F1 among those clearing the precision
threshold (falling back to the best-precision rule when none clears it).
The beam search mirrors the block-specific anchor construction but works
over a fixed dataset instead of perturbation samples, because a global
statement must hold over the population of real blocks rather than the
perturbation neighbourhood of one block.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.bb.block import BasicBlock
from repro.globalx.predicates import AndPredicate, BlockPredicate, candidate_predicates
from repro.models.base import CostModel
from repro.runtime.backend import BackendSource, ExecutionBackend, resolve_backend


@dataclass(frozen=True)
class GlobalExplainerConfig:
    """Knobs of the global-rule search.

    Attributes
    ----------
    max_terms:
        Maximum number of predicates in a conjunction.
    beam_width:
        Number of candidate rules kept per search level.
    min_precision:
        Rules must reach this precision to be considered "faithful"; when no
        rule does, the most precise rule found is returned with
        ``meets_threshold`` set to ``False`` (same convention as the
        block-specific explainer).
    min_support:
        Minimum number of blocks that must satisfy a rule for it to be kept;
        rules below this support are statistically meaningless.
    """

    max_terms: int = 2
    beam_width: int = 5
    min_precision: float = 0.7
    min_support: int = 3

    def __post_init__(self) -> None:
        if self.max_terms < 1:
            raise ValueError("max_terms must be at least 1")
        if self.beam_width < 1:
            raise ValueError("beam_width must be at least 1")
        if not 0.0 <= self.min_precision <= 1.0:
            raise ValueError("min_precision must be in [0, 1]")
        if self.min_support < 1:
            raise ValueError("min_support must be at least 1")


@dataclass(frozen=True)
class GlobalExplanation:
    """The best rule found for one target interval."""

    rule: BlockPredicate
    target_low: float
    target_high: float
    precision: float
    recall: float
    support: int
    positives: int
    blocks_evaluated: int
    meets_threshold: bool

    @property
    def f1(self) -> float:
        """Harmonic mean of precision and recall (0 when both are 0)."""
        if self.precision + self.recall <= 0.0:
            return 0.0
        return 2.0 * self.precision * self.recall / (self.precision + self.recall)

    def describe(self) -> str:
        """Human-readable rendering of the rule and its quality."""
        status = "meets" if self.meets_threshold else "does NOT meet"
        return (
            f"Global explanation for predictions in [{self.target_low:.2f}, "
            f"{self.target_high:.2f}] cycles:\n"
            f"  rule: {self.rule.describe()}\n"
            f"  precision: {self.precision:.2f}  recall: {self.recall:.2f}  "
            f"F1: {self.f1:.2f}\n"
            f"  support: {self.support} of {self.blocks_evaluated} blocks "
            f"({self.positives} blocks have predictions in the target set)\n"
            f"  the rule {status} the precision threshold"
        )


@dataclass(frozen=True)
class _ScoredRule:
    rule: Tuple[BlockPredicate, ...]
    precision: float
    recall: float
    support: int

    @property
    def f1(self) -> float:
        if self.precision + self.recall <= 0.0:
            return 0.0
        return 2.0 * self.precision * self.recall / (self.precision + self.recall)


class GlobalExplainer:
    """Finds dataset-level rules describing where a model's predictions land."""

    def __init__(
        self,
        model: CostModel,
        blocks: Sequence[BasicBlock],
        *,
        config: Optional[GlobalExplainerConfig] = None,
        predicates: Optional[Sequence[BlockPredicate]] = None,
        backend: BackendSource = None,
        workers: Optional[int] = None,
    ) -> None:
        if len(blocks) == 0:
            raise ValueError("the global explainer needs at least one block")
        self.model = model
        self.blocks = list(blocks)
        self.config = config or GlobalExplainerConfig()
        self.predicates = (
            list(predicates)
            if predicates is not None
            else candidate_predicates(self.blocks)
        )
        # The whole block set is scored through one batched query, so an
        # execution backend fans the dataset out in a single round.  A
        # backend given here is borrowed only for that scoring pass: the
        # model's configured substrate is untouched, and a backend resolved
        # from a name is released before the constructor returns.
        if backend is not None:
            runtime = resolve_backend(backend, workers)
            try:
                with model.using_backend(runtime):
                    self._predictions = model.predict_batch(self.blocks)
            finally:
                if not isinstance(backend, ExecutionBackend):
                    runtime.close()
        else:
            self._predictions = model.predict_batch(self.blocks)
        # Predicate truth table, computed once: rules are conjunctions of
        # these columns, so scoring a rule is a boolean AND over the rows.
        self._truth = [
            [predicate.holds(block) for block in self.blocks]
            for predicate in self.predicates
        ]

    # ----------------------------------------------------------------- public

    def predictions(self) -> List[float]:
        """The model's predictions over the explained block set."""
        return list(self._predictions)

    def explain_value(self, value: float, *, epsilon: float = 0.25) -> GlobalExplanation:
        """Explain the ε-ball around one prediction value."""
        return self.explain_range(value - epsilon, value + epsilon)

    def explain_range(self, low: float, high: float) -> GlobalExplanation:
        """Explain the target set ``T = [low, high]`` (inclusive)."""
        if low > high:
            raise ValueError("low must not exceed high")
        labels = [low <= prediction <= high for prediction in self._predictions]
        positives = sum(labels)
        best = self._search(labels)
        rule_terms = best.rule
        rule: BlockPredicate = (
            rule_terms[0] if len(rule_terms) == 1 else AndPredicate(tuple(rule_terms))
        )
        return GlobalExplanation(
            rule=rule,
            target_low=low,
            target_high=high,
            precision=best.precision,
            recall=best.recall,
            support=best.support,
            positives=positives,
            blocks_evaluated=len(self.blocks),
            meets_threshold=best.precision >= self.config.min_precision
            and best.support >= self.config.min_support,
        )

    # --------------------------------------------------------------- internals

    def _score(self, columns: Sequence[int], labels: Sequence[bool]) -> _ScoredRule:
        holds = [True] * len(self.blocks)
        for column in columns:
            truth = self._truth[column]
            holds = [h and t for h, t in zip(holds, truth)]
        support = sum(holds)
        true_positives = sum(1 for h, label in zip(holds, labels) if h and label)
        positives = sum(labels)
        precision = true_positives / support if support else 0.0
        recall = true_positives / positives if positives else 0.0
        return _ScoredRule(
            rule=tuple(self.predicates[c] for c in columns),
            precision=precision,
            recall=recall,
            support=support,
        )

    def _search(self, labels: Sequence[bool]) -> _ScoredRule:
        config = self.config
        # Level 1: every single predicate.
        level: List[Tuple[Tuple[int, ...], _ScoredRule]] = []
        for column in range(len(self.predicates)):
            scored = self._score([column], labels)
            if scored.support == 0:
                continue
            level.append(((column,), scored))
        if not level:
            # Degenerate candidate pool: fall back to the first predicate.
            return self._score([0], labels)

        def beam_key(entry: Tuple[Tuple[int, ...], _ScoredRule]):
            _, scored = entry
            return (scored.f1, scored.precision, scored.support)

        best_overall = max(level, key=beam_key)[1]
        best_valid = self._best_valid(level)

        frontier = sorted(level, key=beam_key, reverse=True)[: config.beam_width]
        for _ in range(1, config.max_terms):
            next_level: List[Tuple[Tuple[int, ...], _ScoredRule]] = []
            seen: set = set()
            for columns, _ in frontier:
                for column in range(len(self.predicates)):
                    if column in columns:
                        continue
                    new_columns = tuple(sorted(columns + (column,)))
                    if new_columns in seen:
                        continue
                    seen.add(new_columns)
                    scored = self._score(new_columns, labels)
                    if scored.support < config.min_support:
                        continue
                    next_level.append((new_columns, scored))
            if not next_level:
                break
            candidate_best = max(next_level, key=beam_key)[1]
            if beam_key(("", candidate_best)) > beam_key(("", best_overall)):
                best_overall = candidate_best
            valid = self._best_valid(next_level)
            if valid is not None and (
                best_valid is None or valid.f1 > best_valid.f1
            ):
                best_valid = valid
            frontier = sorted(next_level, key=beam_key, reverse=True)[: config.beam_width]

        return best_valid if best_valid is not None else best_overall

    def _best_valid(
        self, level: Sequence[Tuple[Tuple[int, ...], _ScoredRule]]
    ) -> Optional[_ScoredRule]:
        valid = [
            scored
            for _, scored in level
            if scored.precision >= self.config.min_precision
            and scored.support >= self.config.min_support
        ]
        if not valid:
            return None
        return max(valid, key=lambda scored: (scored.f1, scored.precision, scored.support))
