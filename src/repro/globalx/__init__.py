"""Global (dataset-level) explanations for cost models (paper Section 4).

Section 4 of the paper motivates block-specific explanations by arguing that
*global* explanations — the common features of all blocks whose predicted
cost falls in a target set ``T`` — may not exist for complex cost models, and
illustrates the idea with a hypothetical model ``M1`` that predicts 2 cycles
iff a block has exactly 8 instructions.  This subpackage implements that
notion so the claim can be examined empirically:

* :class:`InstructionCountThresholdModel` is the paper's ``M1``,
* :mod:`repro.globalx.predicates` provides interpretable block predicates
  (instruction count, opcode presence, dependency-kind presence, category),
* :class:`GlobalExplainer` searches over conjunctions of those predicates for
  the rule that best separates blocks with predictions in ``T`` from the
  rest, reporting precision and recall so the user can see exactly how far a
  global rule can go for a given model.

For the simple ``M1`` the search recovers the ground-truth rule exactly; for
the pipeline-simulation and neural models it returns rules with visibly lower
precision/recall — the empirical counterpart of the paper's argument for
block-specific explanations.
"""

from repro.globalx.predicates import (
    AndPredicate,
    BlockPredicate,
    CategoryIs,
    ContainsDependencyKind,
    ContainsOpcode,
    NumInstructionsEquals,
    NumInstructionsInRange,
    candidate_predicates,
)
from repro.globalx.global_explainer import (
    GlobalExplainer,
    GlobalExplainerConfig,
    GlobalExplanation,
)
from repro.globalx.threshold_model import InstructionCountThresholdModel

__all__ = [
    "BlockPredicate",
    "NumInstructionsEquals",
    "NumInstructionsInRange",
    "ContainsOpcode",
    "ContainsDependencyKind",
    "CategoryIs",
    "AndPredicate",
    "candidate_predicates",
    "GlobalExplainer",
    "GlobalExplainerConfig",
    "GlobalExplanation",
    "InstructionCountThresholdModel",
]
