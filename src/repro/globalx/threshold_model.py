"""The paper's hypothetical global-explainable cost model ``M1`` (Section 4).

"Consider a hypothetical, crude throughput-predicting cost model M1 that
assigns a throughput of 2 cycles if and only if a basic block has 8
instructions."  The model exists so the global explainer has a ground truth:
for ``T = {2}`` the correct global explanation is exactly the predicate
``num_instructions == 8``.
"""

from __future__ import annotations

from repro.bb.block import BasicBlock
from repro.models.base import CostModel


class InstructionCountThresholdModel(CostModel):
    """Cost model whose prediction depends only on the instruction count."""

    def __init__(
        self,
        microarch="hsw",
        *,
        target_count: int = 8,
        match_cost: float = 2.0,
        default_cost: float = 1.0,
    ) -> None:
        super().__init__(microarch)
        if target_count < 1:
            raise ValueError("target_count must be at least 1")
        if match_cost < 0.0 or default_cost < 0.0:
            raise ValueError("costs must be non-negative")
        self.target_count = int(target_count)
        self.match_cost = float(match_cost)
        self.default_cost = float(default_cost)
        self.name = f"m1-count-{self.target_count}"

    def _predict(self, block: BasicBlock) -> float:
        if block.num_instructions == self.target_count:
            return self.match_cost
        return self.default_cost
