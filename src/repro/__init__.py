"""COMET reproduction: explanation framework for basic-block cost models.

See ``repro.core`` for the primary public API, ``README.md`` for a
quickstart, and ``DESIGN.md`` for the system inventory and the mapping from
the paper's tables/figures to the benchmark harness.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
