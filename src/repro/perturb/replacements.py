"""Replacement pools used by the perturbation algorithm.

Two kinds of perturbation primitives need candidate pools:

* **opcode replacement** (vertex perturbation): all opcodes that accept the
  instruction's existing operand list (Section 5.2 / Appendix D),
* **register renaming** (edge perturbation): all registers of the same class
  and width that can stand in for an operand register when a data dependency
  is broken.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.bb.block import BasicBlock
from repro.isa.instructions import Instruction
from repro.isa.opcodes import replacement_candidates
from repro.isa.operands import ImmediateOperand, MemoryOperand, Operand, RegisterOperand
from repro.isa.registers import Register, same_size_registers
from repro.utils.rng import choice


def opcode_replacements(instruction: Instruction) -> List[str]:
    """All opcodes that could replace ``instruction``'s mnemonic.

    Thin wrapper over :func:`repro.isa.opcodes.replacement_candidates`; kept
    here so the perturber has a single import point and so the replacement
    policy can be tightened in one place if needed.
    """
    return replacement_candidates(instruction.mnemonic, instruction.operands)


def block_register_roots(block: BasicBlock) -> Set[str]:
    """Roots of every register referenced anywhere in ``block``."""
    roots: Set[str] = set()
    for instruction in block:
        for operand in instruction.operands:
            if isinstance(operand, RegisterOperand):
                roots.add(operand.register.root)
            elif isinstance(operand, MemoryOperand):
                for reg in operand.registers_read():
                    roots.add(reg.root)
    return roots


def register_renaming_candidates(
    register: Register,
    *,
    forbidden_roots: Sequence[str] = (),
    prefer_unused_in: Optional[BasicBlock] = None,
) -> List[Register]:
    """Registers that may replace ``register`` when breaking a dependency.

    Candidates have the same class and width and do not alias any root in
    ``forbidden_roots``.  When ``prefer_unused_in`` is given and at least one
    candidate is not referenced by that block, the candidate list is narrowed
    to those unused registers so that the renaming does not accidentally
    introduce a *new* dependency.
    """
    forbidden = set(forbidden_roots)
    candidates = [
        reg
        for reg in same_size_registers(register)
        if reg.root not in forbidden
    ]
    if prefer_unused_in is not None and candidates:
        used = block_register_roots(prefer_unused_in)
        unused = [reg for reg in candidates if reg.root not in used]
        if unused:
            return unused
    return candidates


def random_register_rename(
    rng: np.random.Generator,
    register: Register,
    *,
    forbidden_roots: Sequence[str] = (),
    prefer_unused_in: Optional[BasicBlock] = None,
) -> Optional[Register]:
    """Pick a replacement register uniformly, or ``None`` if none exists."""
    candidates = register_renaming_candidates(
        register,
        forbidden_roots=forbidden_roots,
        prefer_unused_in=prefer_unused_in,
    )
    if not candidates:
        return None
    return choice(rng, candidates)


def random_immediate(rng: np.random.Generator, operand: ImmediateOperand) -> ImmediateOperand:
    """A random immediate of the same width (used by whole-instruction replacement)."""
    if operand.width <= 8:
        value = int(rng.integers(0, 128))
    else:
        value = int(rng.integers(0, 4096))
    return operand.with_value(value)


#: (root, width) -> Register, filled lazily; the register file is static.
_FAMILY_MEMBERS: Dict[Tuple[str, int], Optional[Register]] = {}


def _family_member(root: str, width: int) -> Optional[Register]:
    key = (root, width)
    if key not in _FAMILY_MEMBERS:
        from repro.isa.registers import REGISTERS

        found = None
        for reg in REGISTERS.values():
            if reg.root == root and reg.width == width:
                found = reg
                break
        _FAMILY_MEMBERS[key] = found
    return _FAMILY_MEMBERS[key]


def rename_register_in_instruction(
    instruction: Instruction,
    old_root: str,
    new_register: Register,
) -> Instruction:
    """Replace every reference to ``old_root`` in ``instruction``.

    Register operands keep their width: renaming ``ecx`` to the ``rbx`` family
    yields ``ebx``.  Memory base/index registers are renamed to the 64-bit
    member of the new family (addresses are always 64-bit in our blocks).
    """

    def family_member(width: int) -> Register:
        member = _family_member(new_register.root, width)
        return member if member is not None else new_register

    new_operands: List[Operand] = []
    for operand in instruction.operands:
        if isinstance(operand, RegisterOperand) and operand.register.root == old_root:
            new_operands.append(operand.with_register(family_member(operand.register.width)))
        elif isinstance(operand, MemoryOperand):
            base = operand.base
            index = operand.index
            changed = False
            if base is not None and base.root == old_root:
                base = family_member(base.width)
                changed = True
            if index is not None and index.root == old_root:
                index = family_member(index.width)
                changed = True
            if changed:
                new_operands.append(operand.with_fields(base=base, index=index))
            else:
                new_operands.append(operand)
        else:
            new_operands.append(operand)
    return instruction.with_operands(tuple(new_operands))


def perturb_memory_displacement(
    rng: np.random.Generator, operand: MemoryOperand
) -> MemoryOperand:
    """Shift a memory operand's displacement so its address key changes."""
    delta = int(choice(rng, [-64, -32, -16, -8, 8, 16, 32, 64]))
    new_disp = operand.displacement + delta
    if new_disp == operand.displacement:  # pragma: no cover - delta is never 0
        new_disp += 8
    return operand.with_fields(displacement=new_disp)


def registers_in_operand(operand: Operand) -> Tuple[Register, ...]:
    """Every register referenced by ``operand`` (value or address)."""
    if isinstance(operand, RegisterOperand):
        return (operand.register,)
    if isinstance(operand, MemoryOperand):
        return operand.registers_read()
    return ()


def cache_opcode_replacements(block: BasicBlock) -> Dict[int, List[str]]:
    """Pre-compute the opcode replacement pool of every instruction of ``block``.

    The sampler calls Γ thousands of times per explanation; caching the pools
    (which only depend on the original instruction) removes the dominant
    repeated cost.
    """
    return {
        index: opcode_replacements(instruction)
        for index, instruction in enumerate(block)
    }
