"""Encoded perturbation batches: Γ output with deferred block materialisation.

The wave engine resolves each perturbation row to its *survivor instruction
references* (shared, memo-warm :class:`~repro.isa.instructions.Instruction`
objects out of the perturber's replacement/rename caches).  Materialising a
:class:`~repro.bb.block.BasicBlock` per row just so downstream code can read
``block.instructions`` and ``block.key()`` back out is pure representation
churn — so :class:`PerturbationBatch` keeps rows in resolved-reference form
and materialises on demand only at the edges:

* **cache keying** — an :class:`EncodedRow`'s :meth:`~EncodedRow.key` is the
  exact tuple ``BasicBlock.key()`` would produce (per-instruction content
  keys), so :class:`~repro.models.base.CachedCostModel` dedupes encoded rows
  against blocks it cached on any other path, with identical hit/miss
  accounting;
* **featurization** — models exposing a row kernel
  (:meth:`~repro.models.base.CostModel._rows_kernel`) predict straight from
  the instruction references and never construct a block;
* **everything else** — the batch is ``Sequence[BasicBlock]``-compatible:
  indexing or iterating materialises rows through the original block's
  ``with_instructions`` (memoised per row), so simulator models, anchors
  returned to callers and any encoding-unaware consumer see plain blocks.

``REPRO_ENCODED=0`` (or :func:`forced_encoded`) disables the encoded path
end to end — the sampler then emits materialised block lists exactly as
before, which CI uses as the bit-for-bit oracle lane.

Accounting mirrors the Γ fallback counters: per-thread and process-global
tallies of rows that entered the pipeline encoded versus rows that were
materialised (at emission — identity reuse excluded — or on demand), so a
silent regression to the materialise-everything path is visible in
:class:`~repro.models.base.QueryTally` and
:class:`~repro.runtime.session.SessionStats`.
"""

from __future__ import annotations

import os
import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple, Union

from repro.bb.block import BasicBlock
from repro.isa.instructions import Instruction

__all__ = [
    "EncodedRow",
    "EncodedTally",
    "PerturbationBatch",
    "encoded_enabled",
    "encoded_tally",
    "forced_encoded",
    "materialize_row",
    "row_refs",
    "thread_encoded_tally",
]


# ------------------------------------------------------------------ switch

_FORCED_ENCODED: Optional[bool] = None


def encoded_enabled() -> bool:
    """Whether samplers should emit encoded batches (default: yes).

    ``REPRO_ENCODED=0`` turns the encoded pipeline off process-wide — the
    batched sampler then builds materialised block lists, byte-identical to
    the pre-encoding behaviour.  Deliberately *not* an
    :class:`~repro.explain.config.ExplainerConfig` field: the switch changes
    representation only, never results, so it must not perturb config
    fingerprints or result-cache keys.
    """
    if _FORCED_ENCODED is not None:
        return _FORCED_ENCODED
    return os.environ.get("REPRO_ENCODED", "1") != "0"


@contextmanager
def forced_encoded(enabled: Optional[bool]) -> Iterator[None]:
    """Force the encoded pipeline on/off for a scope (``None`` restores env)."""
    global _FORCED_ENCODED
    previous = _FORCED_ENCODED
    _FORCED_ENCODED = enabled
    try:
        yield
    finally:
        _FORCED_ENCODED = previous


# -------------------------------------------------------------- accounting


@dataclass(frozen=True)
class EncodedTally:
    """Snapshot of encoded-pipeline row accounting (see :func:`encoded_tally`).

    ``encoded`` counts rows Γ emitted without building a block (resolved
    reference rows plus unchanged-row reuses of the original block
    instance); ``materialized`` counts block constructions — rows emitted
    already materialised (wave retries, fallbacks, non-wave engines routed
    through :meth:`PerturbationBatch.from_blocks`) plus encoded rows later
    materialised on demand by an encoding-unaware consumer.
    """

    encoded: int = 0
    materialized: int = 0

    def delta(self, since: "EncodedTally") -> "EncodedTally":
        """The accounting accrued between ``since`` and this snapshot."""
        return EncodedTally(
            encoded=self.encoded - since.encoded,
            materialized=self.materialized - since.materialized,
        )


class _ThreadEncodedTally(threading.local):
    """Per-thread encoded/materialized row counters."""

    def __init__(self) -> None:
        self.encoded = 0
        self.materialized = 0


_thread_encoded_tally = _ThreadEncodedTally()
_accounting_lock = threading.Lock()
_encoded_total = 0
_materialized_total = 0


def thread_encoded_tally() -> EncodedTally:
    """The calling thread's encoded-row accounting snapshot."""
    tally = _thread_encoded_tally
    return EncodedTally(encoded=tally.encoded, materialized=tally.materialized)


def encoded_tally() -> EncodedTally:
    """Process-wide encoded-row accounting snapshot (all threads)."""
    with _accounting_lock:
        return EncodedTally(encoded=_encoded_total, materialized=_materialized_total)


def _count_rows(encoded: int, materialized: int) -> None:
    global _encoded_total, _materialized_total
    tally = _thread_encoded_tally
    tally.encoded += encoded
    tally.materialized += materialized
    with _accounting_lock:
        _encoded_total += encoded
        _materialized_total += materialized


# -------------------------------------------------------------------- rows


class EncodedRow:
    """One resolved perturbation row: survivor references, block deferred.

    ``refs`` are the surviving instructions in program order — shared
    instances from the perturber's tables and caches, so their content-key
    and cost memos are already warm.  :meth:`key` equals what
    ``BasicBlock.key()`` would return for the materialised block, and
    :meth:`materialize` builds (and memoises) that block through the
    template's ``with_instructions``, seeding its key memo.
    """

    __slots__ = ("template", "refs", "_key", "_block")

    def __init__(self, template: BasicBlock, refs: Tuple[Instruction, ...]) -> None:
        self.template = template
        self.refs = refs
        self._key: Optional[tuple] = None
        self._block: Optional[BasicBlock] = None

    def key(self) -> tuple:
        """Content key, identical to the materialised block's ``key()``."""
        key = self._key
        if key is None:
            key = self._key = tuple(
                inst.__dict__.get("_key") or inst.key() for inst in self.refs
            )
        return key

    def materialize(self) -> BasicBlock:
        """Build the row's block (memoised; counted as a materialisation)."""
        block = self._block
        if block is None:
            block = self.template.with_instructions(self.refs)
            if self._key is not None:
                block.__dict__["_key"] = self._key
            self._block = block
            _count_rows(0, 1)
        return block

    @property
    def materialized(self) -> bool:
        return self._block is not None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "materialized" if self._block is not None else "encoded"
        return f"<EncodedRow n={len(self.refs)} {state}>"


#: A batch row: either a plain block (identity reuse, wave retry/fallback,
#: non-wave engines, already-materialised) or a deferred encoded row.
Row = Union[BasicBlock, EncodedRow]


def row_refs(row: Row) -> Tuple[Instruction, ...]:
    """The row's instructions in program order, without materialising."""
    if isinstance(row, EncodedRow):
        return row.refs
    return row.instructions


def materialize_row(row: Row) -> BasicBlock:
    """The row as a plain block (constructed and memoised on first demand)."""
    if isinstance(row, EncodedRow):
        return row.materialize()
    return row


class PerturbationBatch(Sequence):
    """Γ's encoded output: perturbation rows with deferred materialisation.

    ``Sequence[BasicBlock]``-compatible — ``len``, indexing, slicing and
    iteration materialise rows on demand, so encoding-unaware consumers are
    correct by construction (they just pay the block construction they would
    always have paid).  Encoded-aware consumers detect the
    ``encoded_perturbations`` marker attribute and work on :attr:`rows`
    directly: ``row.key()`` for cache keying (blocks and encoded rows share
    the method) and :func:`row_refs` for featurization.
    """

    #: Marker for duck-typed detection in the model layer (no import cycle).
    encoded_perturbations = True

    __slots__ = ("rows",)

    def __init__(self, rows: Sequence[Row]) -> None:
        self.rows: List[Row] = list(rows)

    @classmethod
    def from_blocks(cls, blocks: Sequence[BasicBlock]) -> "PerturbationBatch":
        """Wrap already-materialised blocks (non-wave engines, tests)."""
        return cls(blocks)

    def __len__(self) -> int:
        return len(self.rows)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [materialize_row(row) for row in self.rows[index]]
        return materialize_row(self.rows[index])

    def __iter__(self) -> Iterator[BasicBlock]:
        return (materialize_row(row) for row in self.rows)

    def blocks(self) -> List[BasicBlock]:
        """Materialise every row (the encoding-unaware fallback path)."""
        return [materialize_row(row) for row in self.rows]

    def select(self, positions: Sequence[int]) -> "PerturbationBatch":
        """A sub-batch sharing row objects (and their materialisation memos)."""
        rows = self.rows
        return PerturbationBatch([rows[p] for p in positions])

    @classmethod
    def concat(cls, batches: Sequence["PerturbationBatch"]) -> "PerturbationBatch":
        """Concatenate batches (e.g. one per KL-LUCB request) into one."""
        rows: List[Row] = []
        for batch in batches:
            rows.extend(batch.rows)
        return cls(rows)

    @property
    def encoded_count(self) -> int:
        """Rows still in deferred form (no block constructed yet)."""
        return sum(
            1
            for row in self.rows
            if isinstance(row, EncodedRow) and row._block is None
        )

    @property
    def materialized_count(self) -> int:
        return len(self.rows) - self.encoded_count

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<PerturbationBatch rows={len(self.rows)} "
            f"encoded={self.encoded_count}>"
        )
