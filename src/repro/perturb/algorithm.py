"""The basic-block perturbation algorithm Γ (Algorithm 1 of the paper).

Γ takes the original block ``β`` and a set of features ``F ⊆ P̂`` to preserve,
and returns a random valid block ``β′`` that keeps the features in ``F`` while
independently perturbing the remaining features:

* *vertex perturbation* — each non-preserved instruction is, with probability
  ``1 − p_instruction_retain``, either deleted (probability ``p_delete``, only
  when the instruction count need not be preserved) or has its opcode replaced
  by another opcode that accepts the same operands,
* *edge perturbation* — each non-preserved data dependency is, unless
  explicitly retained, broken by renaming the registers (or shifting the
  memory address) that cause it.

Preserving a dependency feature also pins the opcodes of its two endpoint
instructions and the operand causing the hazard, exactly as described in
Section 5.2.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.bb.block import BasicBlock
from repro.bb.dependencies import Dependency
from repro.bb.features import (
    DependencyFeature,
    Feature,
    InstructionFeature,
    NumInstructionsFeature,
)
from repro.isa.instructions import Instruction
from repro.isa.operands import ImmediateOperand, MemoryOperand, RegisterOperand
from repro.isa.validation import is_valid_instruction
from repro.perturb.config import PerturbationConfig, ReplacementScheme
from repro.perturb.replacements import (
    cache_opcode_replacements,
    perturb_memory_displacement,
    random_immediate,
    random_register_rename,
    rename_register_in_instruction,
)
from repro.utils.errors import PerturbationError
from repro.utils.rng import RandomSource, as_rng, choice, coin


@dataclass(frozen=True)
class PreservationConstraints:
    """What Γ must keep unchanged, derived from a feature set ``F``.

    Attributes
    ----------
    locked_instructions:
        Indices whose full instruction (opcode and operands) is preserved
        because an :class:`InstructionFeature` names them.
    locked_opcodes:
        Indices whose opcode is preserved (endpoints of preserved
        dependencies, plus all locked instructions).
    locked_register_roots:
        For each index, register roots that must not be renamed there
        (operands carrying a preserved dependency).
    locked_memory:
        Indices whose memory operand must not be displaced (endpoints of a
        preserved memory dependency).
    preserved_dependencies:
        The original-block dependencies that must survive.
    preserve_count:
        Whether the number of instructions must stay fixed (a
        :class:`NumInstructionsFeature` is preserved), which forbids deletion.
    """

    locked_instructions: FrozenSet[int]
    locked_opcodes: FrozenSet[int]
    locked_register_roots: Dict[int, FrozenSet[str]]
    locked_memory: FrozenSet[int]
    preserved_dependencies: Tuple[Dependency, ...]
    preserve_count: bool

    @classmethod
    def from_features(
        cls, block: BasicBlock, features: Iterable[Feature]
    ) -> "PreservationConstraints":
        """Translate a feature set into concrete preservation constraints."""
        locked_instructions: Set[int] = set()
        locked_opcodes: Set[int] = set()
        locked_roots: Dict[int, Set[str]] = {}
        locked_memory: Set[int] = set()
        preserved_deps: List[Dependency] = []
        preserve_count = False

        for feature in features:
            if isinstance(feature, InstructionFeature):
                if not 0 <= feature.index < block.num_instructions:
                    raise PerturbationError(
                        f"instruction feature index {feature.index} outside block "
                        f"of size {block.num_instructions}"
                    )
                locked_instructions.add(feature.index)
                locked_opcodes.add(feature.index)
            elif isinstance(feature, NumInstructionsFeature):
                preserve_count = True
            elif isinstance(feature, DependencyFeature):
                dependency = _match_dependency(block, feature)
                preserved_deps.append(dependency)
                locked_opcodes.add(dependency.source)
                locked_opcodes.add(dependency.destination)
                space, payload = dependency.location
                if space == "reg":
                    for endpoint in (dependency.source, dependency.destination):
                        locked_roots.setdefault(endpoint, set()).add(str(payload))
                else:
                    locked_memory.add(dependency.source)
                    locked_memory.add(dependency.destination)
            else:
                raise PerturbationError(f"unsupported feature type {type(feature)!r}")

        return cls(
            locked_instructions=frozenset(locked_instructions),
            locked_opcodes=frozenset(locked_opcodes),
            locked_register_roots={
                idx: frozenset(roots) for idx, roots in locked_roots.items()
            },
            locked_memory=frozenset(locked_memory),
            preserved_dependencies=tuple(preserved_deps),
            preserve_count=preserve_count,
        )

    def undeletable(self) -> FrozenSet[int]:
        """Indices that may never be deleted."""
        return self.locked_instructions | self.locked_opcodes | self.locked_memory

    def roots_locked_at(self, index: int) -> FrozenSet[str]:
        """Register roots that must not be renamed in instruction ``index``."""
        return self.locked_register_roots.get(index, frozenset())

    def all_locked_roots(self) -> FrozenSet[str]:
        """Every register root involved in a preserved dependency."""
        roots: set = set()
        for locked in self.locked_register_roots.values():
            roots |= locked
        return frozenset(roots)

    def shadowing_writes_forbidden(self, index: int) -> FrozenSet[str]:
        """Register roots instruction ``index`` must not *start* writing.

        If an instruction strictly between the endpoints of a preserved
        register dependency started writing the dependency's register (e.g.
        ``div rcx`` replaced by ``inc rcx``), the nearest-writer analysis
        would re-attribute the hazard and the preserved feature would vanish.
        """
        roots: set = set()
        for dep in self.preserved_dependencies:
            space, payload = dep.location
            if space != "reg":
                continue
            if dep.source < index < dep.destination:
                roots.add(str(payload))
        return frozenset(roots)


def _match_dependency(block: BasicBlock, feature: DependencyFeature) -> Dependency:
    """Find the original-block dependency a :class:`DependencyFeature` refers to."""
    for dep in block.dependencies:
        if (
            dep.source == feature.source
            and dep.destination == feature.destination
            and dep.kind is feature.dep_kind
            and dep.location_space == feature.location_space
        ):
            return dep
    raise PerturbationError(
        f"dependency feature {feature.describe()} does not match any dependency "
        "of the block being perturbed"
    )


class BlockPerturber:
    """Stateful perturber bound to one original block.

    The perturber pre-computes the opcode replacement pools of the block once
    and then produces independent perturbations on every :meth:`perturb`
    call.  It is the object the explanation sampler queries thousands of
    times per explanation.
    """

    def __init__(
        self,
        block: BasicBlock,
        config: Optional[PerturbationConfig] = None,
        rng: RandomSource = None,
    ) -> None:
        self.block = block
        self.config = config or PerturbationConfig()
        self._rng = as_rng(rng)
        self._opcode_pools = cache_opcode_replacements(block)

    # ------------------------------------------------------------------ API

    def perturb(
        self,
        features: Iterable[Feature] = (),
        rng: RandomSource = None,
    ) -> BasicBlock:
        """Produce one perturbation of the block preserving ``features``."""
        generator = as_rng(rng) if rng is not None else self._rng
        constraints = PreservationConstraints.from_features(self.block, features)
        for _ in range(self.config.max_block_attempts):
            perturbed = self._perturb_once(constraints, generator)
            if perturbed is not None:
                return perturbed
        # All attempts failed to produce a valid block: fall back to the
        # original block, which trivially satisfies every constraint.
        return self.block

    def perturb_many(
        self,
        count: int,
        features: Iterable[Feature] = (),
        rng: RandomSource = None,
    ) -> List[BasicBlock]:
        """Produce ``count`` independent perturbations preserving ``features``."""
        generator = as_rng(rng) if rng is not None else self._rng
        constraints = PreservationConstraints.from_features(self.block, features)
        out = []
        for _ in range(count):
            perturbed = None
            for _ in range(self.config.max_block_attempts):
                perturbed = self._perturb_once(constraints, generator)
                if perturbed is not None:
                    break
            out.append(perturbed if perturbed is not None else self.block)
        return out

    # ------------------------------------------------------------ internals

    def _perturb_once(
        self, constraints: PreservationConstraints, rng: np.random.Generator
    ) -> Optional[BasicBlock]:
        config = self.config
        working: List[Optional[Instruction]] = list(self.block.instructions)
        undeletable = constraints.undeletable()
        deletion_allowed = not constraints.preserve_count

        # --- vertex perturbation (lines 8-12 of Algorithm 1) -------------
        for index in range(len(working)):
            if index in constraints.locked_opcodes:
                continue
            if not coin(rng, 1.0 - config.p_instruction_retain):
                continue
            can_delete = (
                deletion_allowed
                and index not in undeletable
                and self._live_count(working) > 1
            )
            if can_delete and coin(rng, config.p_delete):
                working[index] = None
                continue
            working[index] = self._replace_vertex(
                working[index], index, constraints, rng
            )

        # --- edge perturbation (lines 13-17 of Algorithm 1) --------------
        preserved_keys = {
            (d.source, d.destination, d.kind, d.location)
            for d in constraints.preserved_dependencies
        }
        for dep in self.block.dependencies:
            key = (dep.source, dep.destination, dep.kind, dep.location)
            if key in preserved_keys:
                continue
            if working[dep.source] is None or working[dep.destination] is None:
                continue  # deletion already removed the hazard
            if coin(rng, config.p_dependency_explicit_retain):
                continue
            if not coin(rng, config.p_dependency_perturb_attempt):
                continue
            self._break_dependency(working, dep, constraints, rng)

        survivors = [inst for inst in working if inst is not None]
        if not survivors:
            return None
        if any(not is_valid_instruction(inst) for inst in survivors):
            return None
        return self.block.with_instructions(survivors)

    @staticmethod
    def _live_count(working: Sequence[Optional[Instruction]]) -> int:
        return sum(1 for inst in working if inst is not None)

    def _replace_vertex(
        self,
        instruction: Instruction,
        index: int,
        constraints: PreservationConstraints,
        rng: np.random.Generator,
    ) -> Instruction:
        """Replace an instruction's opcode (and, in the whole-instruction
        scheme, its operands).  A failed attempt retains the instruction,
        which is how opcodes with no replacements (e.g. ``lea``) end up
        retained more often (Appendix D)."""
        pool = self._opcode_pools.get(index, [])
        replaced = instruction
        if pool:
            replaced = instruction.with_mnemonic(choice(rng, pool))
        if self.config.replacement_scheme is ReplacementScheme.WHOLE_INSTRUCTION:
            replaced = self._randomise_operands(replaced, index, constraints, rng)
        if not is_valid_instruction(replaced):
            return instruction
        # Do not let the replacement start writing the register of a preserved
        # dependency that passes over this instruction (it would shadow the
        # preserved hazard); treat that as a failed perturbation attempt.
        forbidden = constraints.shadowing_writes_forbidden(index)
        if forbidden:
            original_writes = {loc[1] for loc in instruction.writes if loc[0] == "reg"}
            new_writes = {loc[1] for loc in replaced.writes if loc[0] == "reg"}
            if (new_writes - original_writes) & forbidden:
                return instruction
        return replaced

    def _randomise_operands(
        self,
        instruction: Instruction,
        index: int,
        constraints: PreservationConstraints,
        rng: np.random.Generator,
    ) -> Instruction:
        locked_roots = constraints.roots_locked_at(index)
        result = instruction
        for pos, operand in enumerate(instruction.operands):
            if isinstance(operand, RegisterOperand):
                if operand.register.root in locked_roots:
                    continue
                new_reg = random_register_rename(
                    rng, operand.register, forbidden_roots=locked_roots
                )
                if new_reg is not None and coin(rng, 0.5):
                    result = result.with_operand(pos, operand.with_register(new_reg))
            elif isinstance(operand, ImmediateOperand) and coin(rng, 0.5):
                result = result.with_operand(pos, random_immediate(rng, operand))
        return result

    def _break_dependency(
        self,
        working: List[Optional[Instruction]],
        dep: Dependency,
        constraints: PreservationConstraints,
        rng: np.random.Generator,
    ) -> None:
        """Break one data dependency in place (best effort).

        Register hazards are broken by renaming the hazard register in one of
        the endpoint instructions; memory hazards by shifting the memory
        operand's displacement.  Endpoints whose relevant operand is locked by
        a preserved feature are skipped; if both endpoints are locked the
        dependency is retained (a failed perturbation attempt).
        """
        space, payload = dep.location
        # Prefer rewriting the destination instruction; fall back to the source.
        for endpoint in (dep.destination, dep.source):
            instruction = working[endpoint]
            if instruction is None:
                continue
            if endpoint in constraints.locked_instructions:
                continue
            if space == "reg":
                root = str(payload)
                if root in constraints.roots_locked_at(endpoint):
                    continue
                target_register = self._find_register_with_root(instruction, root)
                if target_register is None:
                    continue
                new_register = random_register_rename(
                    rng,
                    target_register,
                    forbidden_roots=[
                        root,
                        *constraints.roots_locked_at(endpoint),
                        *constraints.all_locked_roots(),
                    ],
                    prefer_unused_in=self.block,
                )
                if new_register is None:
                    continue
                working[endpoint] = rename_register_in_instruction(
                    instruction, root, new_register
                )
                return
            else:  # memory hazard
                if endpoint in constraints.locked_memory:
                    continue
                memory = instruction.memory_operand()
                if memory is None:
                    continue
                new_memory = perturb_memory_displacement(rng, memory)
                position = instruction.operands.index(memory)
                working[endpoint] = instruction.with_operand(position, new_memory)
                return

    @staticmethod
    def _find_register_with_root(instruction: Instruction, root: str):
        """The first register referenced by ``instruction`` with the given root."""
        for operand in instruction.operands:
            if isinstance(operand, RegisterOperand) and operand.register.root == root:
                return operand.register
            if isinstance(operand, MemoryOperand):
                for reg in operand.registers_read():
                    if reg.root == root:
                        return reg
        return None
