"""The basic-block perturbation algorithm Γ (Algorithm 1 of the paper).

Γ takes the original block ``β`` and a set of features ``F ⊆ P̂`` to preserve,
and returns a random valid block ``β′`` that keeps the features in ``F`` while
independently perturbing the remaining features:

* *vertex perturbation* — each non-preserved instruction is, with probability
  ``1 − p_instruction_retain``, either deleted (probability ``p_delete``, only
  when the instruction count need not be preserved) or has its opcode replaced
  by another opcode that accepts the same operands,
* *edge perturbation* — each non-preserved data dependency is, unless
  explicitly retained, broken by renaming the registers (or shifting the
  memory address) that cause it.

Preserving a dependency feature also pins the opcodes of its two endpoint
instructions and the operand causing the hazard, exactly as described in
Section 5.2.
"""

from __future__ import annotations

import threading
import warnings
import weakref
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.bb.block import BasicBlock
from repro.bb.dependencies import Dependency
from repro.bb.features import (
    DependencyFeature,
    Feature,
    InstructionFeature,
    NumInstructionsFeature,
)
from repro.isa.instructions import Instruction
from repro.isa.operands import ImmediateOperand, MemoryOperand, RegisterOperand
from repro.isa.validation import is_valid_instruction
from repro.perturb.batch import EncodedRow, PerturbationBatch, _count_rows
from repro.perturb.config import PerturbationConfig, ReplacementScheme
from repro.perturb.replacements import (
    cache_opcode_replacements,
    perturb_memory_displacement,
    random_immediate,
    register_renaming_candidates,
    rename_register_in_instruction,
)
from repro.utils.errors import PerturbationError
from repro.utils.rng import RandomSource, as_rng, choice, coin

#: The displacement shifts :func:`perturb_memory_displacement` picks from;
#: mirrored here so the wave engine can cache the eight possible rewritten
#: instructions per memory endpoint instead of rebuilding fresh objects.
_MEMORY_DELTAS = (-64, -32, -16, -8, 8, 16, 32, 64)

#: Staleness sentinel for the wave engine's per-endpoint root tracking: a
#: dynamic dependency break picks its replacement register outside the static
#: tables, so the rewritten endpoint is treated as stale for every root.
_ALL_ROOTS = object()

#: Resolution sentinel for :meth:`BlockPerturber._resolve_row`: the row's
#: decisions changed nothing, so the original block instance stands in for it
#: (no construction, memos stay warm).
_IDENTITY = object()


@dataclass(frozen=True)
class PerturbTally:
    """Cumulative Γ accounting (process-wide), snapshot via :func:`perturb_tally`.

    ``fallbacks`` counts perturbations that silently returned the original
    block after ``max_block_attempts`` failed attempts — each one injects a
    trivially-preserving sample into precision estimates, so runs watch the
    rate through :class:`~repro.runtime.session.SessionStats`.
    """

    perturbations: int = 0
    fallbacks: int = 0

    def delta(self, since: "PerturbTally") -> "PerturbTally":
        """Counters accumulated since an earlier snapshot."""
        return PerturbTally(
            perturbations=self.perturbations - since.perturbations,
            fallbacks=self.fallbacks - since.fallbacks,
        )


_accounting_lock = threading.Lock()
_perturbations_total = 0
_fallbacks_total = 0


class _ThreadPerturbTally(threading.local):
    """Per-thread Γ accumulators (zero-initialised per thread).

    Mirrors the process-wide totals at thread granularity so per-request
    accounting (``CostModel.query_tally`` deltas around one explanation)
    can report exactly that explanation's perturbations and fallbacks even
    while other threads share the engine.
    """

    def __init__(self) -> None:
        self.perturbations = 0
        self.fallbacks = 0


_thread_perturb_tally = _ThreadPerturbTally()


def thread_perturb_tally() -> PerturbTally:
    """The calling thread's Γ counters (see :func:`perturb_tally`)."""
    tally = _thread_perturb_tally
    return PerturbTally(
        perturbations=tally.perturbations, fallbacks=tally.fallbacks
    )
#: Live perturbers, for the session-level plan-cache gauge.
_live_perturbers: "weakref.WeakSet[BlockPerturber]" = weakref.WeakSet()

#: Fallback-rate warning thresholds (satellite of the silent-fallback bugfix):
#: warn once per perturber when more than ``_FALLBACK_WARNING_RATE`` of at
#: least ``_FALLBACK_WARNING_MIN`` perturbations fell back to the original.
_FALLBACK_WARNING_MIN = 40
_FALLBACK_WARNING_RATE = 0.2

#: Module-level engine override (see :func:`forced_engine`).
_FORCED_ENGINE: Optional[str] = None

_ENGINES = ("soa", "legacy", "reference")


def perturb_tally() -> PerturbTally:
    """Process-wide Γ counters; diff two snapshots with :meth:`PerturbTally.delta`."""
    with _accounting_lock:
        return PerturbTally(
            perturbations=_perturbations_total, fallbacks=_fallbacks_total
        )


def plan_cache_entries() -> int:
    """Total constraint-plan cache entries across live perturbers (a gauge)."""
    return sum(len(p._plan_cache) for p in list(_live_perturbers))


@contextmanager
def forced_engine(name: Optional[str]) -> Iterator[None]:
    """Force every perturber built in this scope onto one Γ engine.

    Benchmark and test plumbing: lets the end-to-end pipeline run on the
    ``legacy`` per-perturbation vectorized engine (the pre-SoA hot path) or
    the ``reference`` scalar oracle without threading an argument through
    sampler and explainer construction.  Not thread-safe; scope it around
    single-threaded runs only.
    """
    global _FORCED_ENGINE
    if name is not None and name not in _ENGINES:
        raise ValueError(f"unknown perturbation engine {name!r}")
    previous = _FORCED_ENGINE
    _FORCED_ENGINE = name
    try:
        yield
    finally:
        _FORCED_ENGINE = previous


@dataclass(frozen=True)
class PreservationConstraints:
    """What Γ must keep unchanged, derived from a feature set ``F``.

    Attributes
    ----------
    locked_instructions:
        Indices whose full instruction (opcode and operands) is preserved
        because an :class:`InstructionFeature` names them.
    locked_opcodes:
        Indices whose opcode is preserved (endpoints of preserved
        dependencies, plus all locked instructions).
    locked_register_roots:
        For each index, register roots that must not be renamed there
        (operands carrying a preserved dependency).
    locked_memory:
        Indices whose memory operand must not be displaced (endpoints of a
        preserved memory dependency).
    preserved_dependencies:
        The original-block dependencies that must survive.
    preserve_count:
        Whether the number of instructions must stay fixed (a
        :class:`NumInstructionsFeature` is preserved), which forbids deletion.
    """

    locked_instructions: FrozenSet[int]
    locked_opcodes: FrozenSet[int]
    locked_register_roots: Dict[int, FrozenSet[str]]
    locked_memory: FrozenSet[int]
    preserved_dependencies: Tuple[Dependency, ...]
    preserve_count: bool

    @classmethod
    def from_features(
        cls, block: BasicBlock, features: Iterable[Feature]
    ) -> "PreservationConstraints":
        """Translate a feature set into concrete preservation constraints."""
        locked_instructions: Set[int] = set()
        locked_opcodes: Set[int] = set()
        locked_roots: Dict[int, Set[str]] = {}
        locked_memory: Set[int] = set()
        preserved_deps: List[Dependency] = []
        preserve_count = False

        for feature in features:
            if isinstance(feature, InstructionFeature):
                if not 0 <= feature.index < block.num_instructions:
                    raise PerturbationError(
                        f"instruction feature index {feature.index} outside block "
                        f"of size {block.num_instructions}"
                    )
                locked_instructions.add(feature.index)
                locked_opcodes.add(feature.index)
            elif isinstance(feature, NumInstructionsFeature):
                preserve_count = True
            elif isinstance(feature, DependencyFeature):
                dependency = _match_dependency(block, feature)
                preserved_deps.append(dependency)
                locked_opcodes.add(dependency.source)
                locked_opcodes.add(dependency.destination)
                space, payload = dependency.location
                if space == "reg":
                    for endpoint in (dependency.source, dependency.destination):
                        locked_roots.setdefault(endpoint, set()).add(str(payload))
                else:
                    locked_memory.add(dependency.source)
                    locked_memory.add(dependency.destination)
            else:
                raise PerturbationError(f"unsupported feature type {type(feature)!r}")

        return cls(
            locked_instructions=frozenset(locked_instructions),
            locked_opcodes=frozenset(locked_opcodes),
            locked_register_roots={
                idx: frozenset(roots) for idx, roots in locked_roots.items()
            },
            locked_memory=frozenset(locked_memory),
            preserved_dependencies=tuple(preserved_deps),
            preserve_count=preserve_count,
        )

    def undeletable(self) -> FrozenSet[int]:
        """Indices that may never be deleted."""
        return self.locked_instructions | self.locked_opcodes | self.locked_memory

    def roots_locked_at(self, index: int) -> FrozenSet[str]:
        """Register roots that must not be renamed in instruction ``index``."""
        return self.locked_register_roots.get(index, frozenset())

    def all_locked_roots(self) -> FrozenSet[str]:
        """Every register root involved in a preserved dependency."""
        roots: set = set()
        for locked in self.locked_register_roots.values():
            roots |= locked
        return frozenset(roots)

    def shadowing_writes_forbidden(self, index: int) -> FrozenSet[str]:
        """Register roots instruction ``index`` must not *start* writing.

        If an instruction strictly between the endpoints of a preserved
        register dependency started writing the dependency's register (e.g.
        ``div rcx`` replaced by ``inc rcx``), the nearest-writer analysis
        would re-attribute the hazard and the preserved feature would vanish.
        """
        roots: set = set()
        for dep in self.preserved_dependencies:
            space, payload = dep.location
            if space != "reg":
                continue
            if dep.source < index < dep.destination:
                roots.add(str(payload))
        return frozenset(roots)


def _match_dependency(block: BasicBlock, feature: DependencyFeature) -> Dependency:
    """Find the original-block dependency a :class:`DependencyFeature` refers to."""
    for dep in block.dependencies:
        if (
            dep.source == feature.source
            and dep.destination == feature.destination
            and dep.kind is feature.dep_kind
            and dep.location_space == feature.location_space
        ):
            return dep
    raise PerturbationError(
        f"dependency feature {feature.describe()} does not match any dependency "
        "of the block being perturbed"
    )


@dataclass(frozen=True)
class _ConstraintPlan:
    """A feature set's constraints plus everything derivable without rng.

    Built once per distinct feature set and cached on the perturber: the
    precision loop redraws the same candidate arms hundreds of times, so the
    feature-to-constraint translation and the derived index sets must not be
    recomputed per perturbation.
    """

    constraints: PreservationConstraints
    unlocked_indices: Tuple[int, ...]
    undeletable: FrozenSet[int]
    deletion_allowed: bool
    preserved_keys: FrozenSet[tuple]
    all_locked_roots: FrozenSet[str]
    #: (endpoint, root, register name) -> rename candidate pool, filled
    #: lazily; keyed per plan because the forbidden roots depend on the
    #: preserved feature set.
    break_pools: Dict[tuple, list] = field(default_factory=dict)
    #: Lazily-built struct-of-arrays tables for the wave engine (one entry,
    #: ``"tables"``); held on the plan so LRU eviction drops both together.
    soa: Dict[str, "_SoaTables"] = field(default_factory=dict)


class _SoaTables:
    """Flat per-plan decision tables driving the struct-of-arrays Γ engine.

    Everything rng-independent about a feature set's perturbations is
    precomputed here once: which indices are unlocked and deletable, the
    *effective* opcode-replacement table per index (validity and
    shadowing-write rejection already folded in, so a pick is a pure table
    lookup), and per-dependency break metadata resolved against the original
    instructions (which endpoint the reference engine would rewrite, through
    which rename pool or memory operand).  The wave engine then reduces each
    perturbation to mask arithmetic plus one bounded-integer draw per
    decision site.
    """

    __slots__ = (
        "n_unlocked",
        "unlocked",
        "can_delete",
        "pool_sizes",
        "replacements",
        "n_deps",
        "dep_entries",
        "pool_bounds",
        "dep_bounds",
    )

    def __init__(
        self,
        unlocked: List[int],
        can_delete: List[bool],
        pool_sizes: List[int],
        replacements: List[List[Instruction]],
        dep_entries: List[tuple],
    ) -> None:
        self.n_unlocked = len(unlocked)
        self.unlocked = unlocked
        self.can_delete = can_delete
        self.pool_sizes = pool_sizes
        self.replacements = replacements
        self.n_deps = len(dep_entries)
        self.dep_entries = dep_entries
        # Per-site pick bounds for the batched pick rectangles (sites with no
        # real choice get bound 1 so one call covers the whole batch; their
        # draws are discarded).
        self.pool_bounds = np.array(
            [max(size, 1) for size in pool_sizes], dtype=np.int64
        )
        self.dep_bounds = np.array(
            [
                len(meta[3]) if meta is not None and meta[0] == "reg"
                else len(_MEMORY_DELTAS) if meta is not None
                else 1
                for _, meta, _ in dep_entries
            ],
            dtype=np.int64,
        )


class BlockPerturber:
    """Stateful perturber bound to one original block.

    The perturber pre-computes the opcode replacement pools of the block
    once, caches the preservation constraints of every feature set it has
    seen and memoises register-rename candidate pools, then produces
    independent perturbations on every :meth:`perturb` call.  It is the
    object the explanation sampler queries thousands of times per
    explanation.
    """

    def __init__(
        self,
        block: BasicBlock,
        config: Optional[PerturbationConfig] = None,
        rng: RandomSource = None,
        *,
        max_cached_plans: int = 256,
        engine: Optional[str] = None,
    ) -> None:
        if max_cached_plans < 1:
            raise ValueError("max_cached_plans must be >= 1")
        if engine is not None and engine not in _ENGINES:
            raise ValueError(f"unknown perturbation engine {engine!r}")
        self.block = block
        self.config = config or PerturbationConfig()
        # Engine precedence: explicit argument, then the scoped
        # forced_engine() override, then the config's vectorized switch
        # (True -> the struct-of-arrays wave engine, False -> the scalar
        # reference oracle).  "legacy" is the pre-SoA per-perturbation
        # vectorized engine, kept for parity tests and benchmark baselines.
        self._engine = engine or _FORCED_ENGINE or (
            "soa" if self.config.vectorized else "reference"
        )
        self._rng = as_rng(rng)
        self._opcode_pools = cache_opcode_replacements(block)
        # Feature set -> constraint plan, LRU-bounded: a warm session
        # explaining many candidate sets of a large block previously grew
        # this without limit.
        self.max_cached_plans = max_cached_plans
        self._plan_cache: "OrderedDict[FrozenSet[Feature], _ConstraintPlan]" = (
            OrderedDict()
        )
        self._rename_pools: Dict[tuple, list] = {}
        # (index, mnemonic) -> replacement Instruction, or None when the
        # replacement is invalid there.  Opcode-only replacements depend only
        # on the original instruction, so the object (and its cached derived
        # properties: reads, writes, key) is shared across all perturbations.
        self._replacement_cache: Dict[Tuple[int, str], Optional[Instruction]] = {}
        # (instruction key, root, new register) -> renamed Instruction; the
        # dependency breaker keeps renaming the same few endpoint forms.
        self._rename_result_cache: Dict[tuple, Instruction] = {}
        # (instruction key, operand position, delta index) -> instruction
        # with the shifted memory displacement.  There are only eight deltas,
        # so memory-hazard breaking cycles through at most eight shared
        # objects per endpoint form — keeping downstream per-instance memos
        # (costs, reads/writes, validity) warm instead of rebuilding fresh
        # instructions every break.
        self._mem_variant_cache: Dict[tuple, Instruction] = {}
        # Γ accounting (see perturb_tally / SessionStats).
        self._perturbations = 0
        self._fallbacks = 0
        self._fallback_warning_emitted = False
        _live_perturbers.add(self)

    # ------------------------------------------------------------------ API

    @property
    def plan_cache_size(self) -> int:
        """Number of cached constraint plans (bounded by ``max_cached_plans``)."""
        return len(self._plan_cache)

    @property
    def fallbacks(self) -> int:
        """How many perturbations fell back to the original block."""
        return self._fallbacks

    @property
    def perturbations(self) -> int:
        """Total perturbations produced by this perturber."""
        return self._perturbations

    def _plan_for(self, features: Iterable[Feature]) -> _ConstraintPlan:
        """Constraints (and derived sets) for ``features``, cached LRU."""
        key = frozenset(features)
        plan = self._plan_cache.get(key)
        if plan is not None:
            self._plan_cache.move_to_end(key)
        else:
            constraints = PreservationConstraints.from_features(self.block, key)
            plan = _ConstraintPlan(
                constraints=constraints,
                unlocked_indices=tuple(
                    index
                    for index in range(self.block.num_instructions)
                    if index not in constraints.locked_opcodes
                ),
                undeletable=constraints.undeletable(),
                deletion_allowed=not constraints.preserve_count,
                preserved_keys=frozenset(
                    (d.source, d.destination, d.kind, d.location)
                    for d in constraints.preserved_dependencies
                ),
                all_locked_roots=constraints.all_locked_roots(),
            )
            self._plan_cache[key] = plan
            while len(self._plan_cache) > self.max_cached_plans:
                self._plan_cache.popitem(last=False)
        return plan

    def perturb(
        self,
        features: Iterable[Feature] = (),
        rng: RandomSource = None,
    ) -> BasicBlock:
        """Produce one perturbation of the block preserving ``features``."""
        return self.perturb_many(1, features, rng)[0]

    def perturb_many(
        self,
        count: int,
        features: Iterable[Feature] = (),
        rng: RandomSource = None,
    ) -> List[BasicBlock]:
        """Produce ``count`` independent perturbations preserving ``features``.

        A perturbation whose every attempt fails to build a valid block falls
        back to the original block (which trivially satisfies all
        constraints); fallbacks are counted — they skew precision estimates
        toward 1 — and surfaced through :func:`perturb_tally`,
        :class:`~repro.runtime.session.SessionStats` and a once-per-block
        warning when the rate crosses ``_FALLBACK_WARNING_RATE``.
        """
        generator = as_rng(rng) if rng is not None else self._rng
        plan = self._plan_for(features)
        if (
            self._engine == "soa"
            and self.config.replacement_scheme is not ReplacementScheme.WHOLE_INSTRUCTION
        ):
            out, fallbacks = self._perturb_wave(plan, count, generator)
        else:
            out, fallbacks = self._perturb_loop(plan, count, generator)
        self._account(count, fallbacks)
        return out

    def perturb_batch(
        self,
        count: int,
        features: Iterable[Feature] = (),
        rng: RandomSource = None,
    ) -> PerturbationBatch:
        """Encoded twin of :meth:`perturb_many` (same stream, same blocks).

        The wave engine resolves each row to its survivor instruction
        references and defers block construction
        (:class:`~repro.perturb.batch.EncodedRow`); rows that leave the wave
        fast path — retry attempts through the per-perturbation engine,
        ``max_block_attempts`` fallbacks — are materialised eagerly, in row
        order, so the random stream stays bit-identical to
        :meth:`perturb_many`.  Non-wave engines (``legacy``/``reference``,
        and the whole-instruction scheme) stay untouched oracles: their rows
        are materialised blocks wrapped in the batch container.
        """
        generator = as_rng(rng) if rng is not None else self._rng
        plan = self._plan_for(features)
        if (
            self._engine == "soa"
            and self.config.replacement_scheme is not ReplacementScheme.WHOLE_INSTRUCTION
        ):
            rows, fallbacks, encoded = self._perturb_wave_rows(
                plan, count, generator
            )
        else:
            rows, fallbacks = self._perturb_loop(plan, count, generator)
            encoded = 0
        self._account(count, fallbacks)
        _count_rows(encoded, count - encoded)
        return PerturbationBatch(rows)

    # ------------------------------------------------------------ internals

    def _perturb_loop(
        self, plan: _ConstraintPlan, count: int, rng: np.random.Generator
    ) -> Tuple[List[BasicBlock], int]:
        """The per-perturbation engines' outer loop (reference/legacy, and the
        whole-instruction scheme, which interleaves operand-randomisation
        coins with its picks — data-dependent rng — so it cannot wave)."""
        out: List[BasicBlock] = []
        fallbacks = 0
        for _ in range(count):
            perturbed = None
            for _ in range(self.config.max_block_attempts):
                perturbed = self._perturb_once(plan, rng)
                if perturbed is not None:
                    break
            if perturbed is None:
                perturbed = self.block
                fallbacks += 1
            out.append(perturbed)
        return out, fallbacks

    def _account(self, count: int, fallbacks: int) -> None:
        global _perturbations_total, _fallbacks_total
        self._perturbations += count
        if fallbacks:
            self._fallbacks += fallbacks
        thread_tally = _thread_perturb_tally
        thread_tally.perturbations += count
        thread_tally.fallbacks += fallbacks
        with _accounting_lock:
            _perturbations_total += count
            _fallbacks_total += fallbacks
        if (
            not self._fallback_warning_emitted
            and self._perturbations >= _FALLBACK_WARNING_MIN
            and self._fallbacks > _FALLBACK_WARNING_RATE * self._perturbations
        ):
            self._fallback_warning_emitted = True
            warnings.warn(
                f"Γ fell back to the original block for {self._fallbacks} of "
                f"{self._perturbations} perturbations of block "
                f"{self.block.text.splitlines()[0]!r}...; precision estimates "
                "over this block are skewed toward 1.0 (constraints likely "
                "leave no valid perturbation)",
                RuntimeWarning,
                stacklevel=3,
            )

    @staticmethod
    def _vector_flips(
        rng: np.random.Generator, count: int, probability: float
    ) -> np.ndarray:
        """``count`` independent coin flips in one rng call.

        Mirrors :func:`repro.utils.rng.coin`'s degenerate cases so
        probability-0/1 configurations consume no random state.
        """
        if count == 0 or probability == 0.0:
            return np.zeros(count, dtype=bool)
        if probability == 1.0:
            return np.ones(count, dtype=bool)
        return rng.random(count) < probability

    def _perturb_once(
        self, plan: _ConstraintPlan, rng: np.random.Generator
    ) -> Optional[BasicBlock]:
        """One perturbation attempt on the configured per-perturbation engine.

        The wave engine also lands here for retry attempts (a failed row
        re-runs through the legacy engine, which consumes the same random
        stream the reference oracle would under degenerate probabilities).
        """
        if self._engine == "reference":
            return self._perturb_once_reference(plan, rng)
        return self._perturb_once_legacy(plan, rng)

    def _perturb_once_legacy(
        self, plan: _ConstraintPlan, rng: np.random.Generator
    ) -> Optional[BasicBlock]:
        """The pre-SoA per-perturbation vectorized engine.

        Coins for one perturbation are batched per decision family but every
        perturbation still walks the block's Python objects; kept as the
        benchmark baseline lane, the whole-instruction-scheme engine and the
        wave engine's retry path.
        """
        config = self.config
        constraints = plan.constraints
        working: List[Optional[Instruction]] = list(self.block.instructions)

        # --- vertex perturbation (lines 8-12 of Algorithm 1) -------------
        # All of the round's retain and delete coin flips are drawn in two
        # vectorized rng calls; only the replacement picks (whose pool sizes
        # vary per index) stay scalar.
        perturb_flags = self._vector_flips(
            rng, len(plan.unlocked_indices), 1.0 - config.p_instruction_retain
        )
        if perturb_flags.any():
            flagged = [
                index
                for index, flip in zip(plan.unlocked_indices, perturb_flags)
                if flip
            ]
            delete_flips = self._vector_flips(
                rng,
                len(flagged),
                config.p_delete if plan.deletion_allowed else 0.0,
            )
            live = len(working)
            for position, index in enumerate(flagged):
                if (
                    delete_flips[position]
                    and index not in plan.undeletable
                    and live > 1
                ):
                    working[index] = None
                    live -= 1
                    continue
                working[index] = self._replace_vertex(
                    working[index], index, constraints, rng
                )

        # --- edge perturbation (lines 13-17 of Algorithm 1) --------------
        live_deps = [
            dep
            for dep in self.block.dependencies
            if (dep.source, dep.destination, dep.kind, dep.location)
            not in plan.preserved_keys
            and working[dep.source] is not None
            and working[dep.destination] is not None
        ]
        retain_flags = self._vector_flips(
            rng, len(live_deps), config.p_dependency_explicit_retain
        )
        attempts = [
            dep for dep, retained in zip(live_deps, retain_flags) if not retained
        ]
        attempt_flags = self._vector_flips(
            rng, len(attempts), config.p_dependency_perturb_attempt
        )
        rewritten: Set[int] = set()
        for dep, attempt in zip(attempts, attempt_flags):
            if not attempt:
                continue
            touched = self._break_dependency(working, dep, plan, rng)
            if touched is not None:
                rewritten.add(touched)

        survivors = [inst for inst in working if inst is not None]
        if not survivors:
            return None
        # Vertex replacements are validated when they are built (and cached),
        # and untouched instructions come from the already-valid original
        # block, so only instructions rewritten by dependency breaking still
        # need a validity check here.
        for index in rewritten:
            instruction = working[index]
            if instruction is not None and not is_valid_instruction(instruction):
                return None
        return self.block.with_instructions(survivors)

    # ------------------------------------------- struct-of-arrays (wave) Γ

    def _soa_tables(self, plan: _ConstraintPlan) -> _SoaTables:
        tables = plan.soa.get("tables")
        if tables is None:
            tables = plan.soa["tables"] = self._build_soa_tables(plan)
        return tables

    def _build_soa_tables(self, plan: _ConstraintPlan) -> _SoaTables:
        """Flatten a plan into the wave engine's decision tables (rng-free).

        The per-index *effective* replacement tables fold in everything the
        per-perturbation engines check after drawing a pick — replacement
        validity and the shadowing-write rejection — so a table entry of
        ``None`` means "this pick retains the original instruction", exactly
        as a failed replacement attempt does.  Keeping the full pool length
        (rather than dropping dead entries) keeps the pick stream identical
        to the reference engine's ``choice`` calls.
        """
        constraints = plan.constraints
        unlocked = list(plan.unlocked_indices)
        can_delete = [
            plan.deletion_allowed and index not in plan.undeletable
            for index in unlocked
        ]
        pool_sizes: List[int] = []
        replacements: List[List[Optional[Instruction]]] = []
        for index in unlocked:
            pool = self._opcode_pools.get(index, [])
            pool_sizes.append(len(pool))
            original = self.block.instructions[index]
            forbidden = constraints.shadowing_writes_forbidden(index)
            original_writes = (
                {loc[1] for loc in original.writes if loc[0] == "reg"}
                if forbidden
                else None
            )
            table: List[Optional[Instruction]] = []
            for mnemonic in pool:
                key = (index, mnemonic)
                if key in self._replacement_cache:
                    replaced = self._replacement_cache[key]
                else:
                    candidate = original.with_mnemonic(mnemonic)
                    replaced = candidate if is_valid_instruction(candidate) else None
                    self._replacement_cache[key] = replaced
                if replaced is not None and forbidden:
                    new_writes = {
                        loc[1] for loc in replaced.writes if loc[0] == "reg"
                    }
                    if (new_writes - original_writes) & forbidden:
                        replaced = None
                table.append(replaced)
            replacements.append(table)
        # Entries carry the hazard's register root (None for memory hazards)
        # so the wave engine can track staleness per root instead of per
        # instruction: a displacement shift touches no registers, and a
        # rename only invalidates walks over the renamed or introduced root.
        dep_entries = [
            (
                dep,
                self._resolve_dep_meta(dep, plan),
                str(dep.location[1]) if dep.location[0] == "reg" else None,
            )
            for dep in self.block.dependencies
            if (dep.source, dep.destination, dep.kind, dep.location)
            not in plan.preserved_keys
        ]
        return _SoaTables(unlocked, can_delete, pool_sizes, replacements, dep_entries)

    def _resolve_dep_meta(
        self, dep: Dependency, plan: _ConstraintPlan
    ) -> Optional[tuple]:
        """Statically resolve which endpoint a dependency break would rewrite.

        Mirrors :meth:`_break_dependency`'s endpoint walk against the
        *original* instructions.  The result stays valid for endpoints whose
        operands are unchanged at break time — opcode-only replacement shares
        the operand tuple, so only instructions rewritten by an earlier break
        of the same perturbation (marked dirty by the wave engine) force the
        dynamic path.  Returns ``("reg", endpoint, root, pool)``,
        ``("mem", endpoint, position, memory)`` or ``None`` when no endpoint
        is viable (the break is a no-op that consumes no randomness).
        """
        constraints = plan.constraints
        space, payload = dep.location
        for endpoint in (dep.destination, dep.source):
            instruction = self.block.instructions[endpoint]
            if endpoint in constraints.locked_instructions:
                continue
            if space == "reg":
                root = str(payload)
                if root in constraints.roots_locked_at(endpoint):
                    continue
                if endpoint in constraints.locked_memory and self._memory_uses_root(
                    instruction, root
                ):
                    continue
                target_register = self._find_register_with_root(instruction, root)
                if target_register is None:
                    continue
                pool_key = (endpoint, root, target_register.name)
                pool = plan.break_pools.get(pool_key)
                if pool is None:
                    forbidden = frozenset(
                        (
                            root,
                            *constraints.roots_locked_at(endpoint),
                            *plan.all_locked_roots,
                        )
                    )
                    pool = self._rename_pool(target_register, forbidden, True)
                    plan.break_pools[pool_key] = pool
                if not pool:
                    continue
                return ("reg", endpoint, root, pool)
            else:  # memory hazard
                if endpoint in constraints.locked_memory:
                    continue
                memory = instruction.memory_operand()
                if memory is None:
                    continue
                position = instruction.operands.index(memory)
                return ("mem", endpoint, position, memory)
        return None

    @staticmethod
    def _seed_derived(source: Instruction, fresh: Instruction) -> None:
        """Copy shape-invariant derived attributes onto an operand rewrite.

        Register renames and memory-displacement shifts preserve the mnemonic
        and every operand's ``(type, kind, size)`` shape (renames are
        width-preserving within a register class), so the source instruction's
        memory-access flags, validity memo and per-uarch cost memos hold
        verbatim for the rewritten instance.  ``reads``/``writes`` are *not*
        copied — they name concrete registers and memory address keys, which
        the rewrite changes.  Seeding them here spares the cost model and the
        validator a cold cached-property storm on every fresh rename (chained
        renames defeat the rename cache, so fresh instances are common).
        """
        source_dict = source.__dict__
        fresh_dict = fresh.__dict__
        for name in ("loads_memory", "stores_memory", "_is_valid"):
            if name in source_dict and name not in fresh_dict:
                fresh_dict[name] = source_dict[name]
        for name, value in source_dict.items():
            if name.startswith("_cost_") and name not in fresh_dict:
                fresh_dict[name] = value

    @staticmethod
    def _flip_rows(
        rng: np.random.Generator, rows: int, cols: int, probability: float
    ) -> List[List[bool]]:
        """``rows`` independent coin-flip rows in one rng call.

        One ``rng.random((rows, cols))`` draw consumes exactly the same
        random stream as ``rows`` sequential ``rng.random(cols)`` calls, and
        the degenerate probabilities (and empty shapes) consume none at all —
        the same contract :meth:`_vector_flips` keeps per perturbation.
        Returns plain nested lists: the wave engine reads the flags one row
        at a time, where list indexing beats numpy scalar extraction.
        """
        if rows == 0:
            return []
        if cols == 0 or probability == 0.0:
            return [[False] * cols for _ in range(rows)]
        if probability == 1.0:
            return [[True] * cols for _ in range(rows)]
        return (rng.random((rows, cols)) < probability).tolist()

    def _perturb_wave(
        self, plan: _ConstraintPlan, count: int, rng: np.random.Generator
    ) -> Tuple[List[BasicBlock], int]:
        """Produce ``count`` perturbations with batch-drawn decisions.

        All four coin families (instruction-perturb, delete, dependency
        explicit-retain, dependency attempt) for the *whole batch* are drawn
        in O(1) rng calls up front; each row is then applied with one bounded
        integer draw per opcode pick batch and one per dependency break.  A
        row whose rewritten instructions fail validation retries immediately
        through the per-perturbation engine so its random-stream position
        matches a sequential run.
        """
        config = self.config
        tables = self._soa_tables(plan)
        n_unlocked = tables.n_unlocked
        n_deps = tables.n_deps
        p_perturb = 1.0 - config.p_instruction_retain
        p_delete = config.p_delete if plan.deletion_allowed else 0.0
        p_retain = config.p_dependency_explicit_retain
        p_attempt = config.p_dependency_perturb_attempt
        perturb_rows = self._flip_rows(rng, count, n_unlocked, p_perturb)
        delete_rows = self._flip_rows(rng, count, n_unlocked, p_delete)
        retain_rows = self._flip_rows(rng, count, n_deps, p_retain)
        attempt_rows = self._flip_rows(rng, count, n_deps, p_attempt)
        # With all coins degenerate the per-row pick draws are what keeps the
        # random stream bit-identical to the reference engine (the parity the
        # property suite certifies), so only non-degenerate waves pre-draw the
        # pick rectangles too — one bounded-integer call per decision family
        # for the whole batch, unused draws discarded (each pick is uniform
        # and independent either way).
        degenerate = all(
            p in (0.0, 1.0) for p in (p_perturb, p_delete, p_retain, p_attempt)
        )
        vertex_picks: Optional[List[List[int]]] = None
        dep_picks: Optional[List[List[int]]] = None
        if not degenerate:
            if n_unlocked:
                vertex_picks = rng.integers(
                    0, tables.pool_bounds, size=(count, n_unlocked)
                ).tolist()
            if n_deps:
                dep_picks = rng.integers(
                    0, tables.dep_bounds, size=(count, n_deps)
                ).tolist()
        out: List[BasicBlock] = []
        fallbacks = 0
        max_attempts = config.max_block_attempts
        for row in range(count):
            perturbed = self._apply_row(
                plan,
                tables,
                perturb_rows[row],
                delete_rows[row],
                retain_rows[row],
                attempt_rows[row],
                rng,
                vertex_picks[row] if vertex_picks is not None else None,
                dep_picks[row] if dep_picks is not None else None,
            )
            attempt = 1
            while perturbed is None and attempt < max_attempts:
                perturbed = self._perturb_once(plan, rng)
                attempt += 1
            if perturbed is None:
                perturbed = self.block
                fallbacks += 1
            out.append(perturbed)
        return out, fallbacks

    def _perturb_wave_rows(
        self, plan: _ConstraintPlan, count: int, rng: np.random.Generator
    ) -> Tuple[List[object], int, int]:
        """Encoded twin of :meth:`_perturb_wave`: rows stay unmaterialised.

        Draws the identical coin/pick rectangles and walks the identical
        per-row resolution (:meth:`_resolve_row`), so the random stream is
        bit-for-bit the stream :meth:`_perturb_wave` consumes.  Fast-path
        rows come back as :class:`~repro.perturb.batch.EncodedRow` (survivor
        references, block deferred) or the original block instance (identity
        rows); rows whose resolution fails retry eagerly — in row order,
        because retries consume rng — through the per-perturbation engine
        and land materialised.  Returns ``(rows, fallbacks, encoded)`` where
        ``encoded`` counts fast-path rows.
        """
        config = self.config
        tables = self._soa_tables(plan)
        n_unlocked = tables.n_unlocked
        n_deps = tables.n_deps
        p_perturb = 1.0 - config.p_instruction_retain
        p_delete = config.p_delete if plan.deletion_allowed else 0.0
        p_retain = config.p_dependency_explicit_retain
        p_attempt = config.p_dependency_perturb_attempt
        perturb_rows = self._flip_rows(rng, count, n_unlocked, p_perturb)
        delete_rows = self._flip_rows(rng, count, n_unlocked, p_delete)
        retain_rows = self._flip_rows(rng, count, n_deps, p_retain)
        attempt_rows = self._flip_rows(rng, count, n_deps, p_attempt)
        degenerate = all(
            p in (0.0, 1.0) for p in (p_perturb, p_delete, p_retain, p_attempt)
        )
        vertex_picks: Optional[List[List[int]]] = None
        dep_picks: Optional[List[List[int]]] = None
        if not degenerate:
            if n_unlocked:
                vertex_picks = rng.integers(
                    0, tables.pool_bounds, size=(count, n_unlocked)
                ).tolist()
            if n_deps:
                dep_picks = rng.integers(
                    0, tables.dep_bounds, size=(count, n_deps)
                ).tolist()
        rows: List[object] = []
        fallbacks = 0
        encoded = 0
        block = self.block
        max_attempts = config.max_block_attempts
        for row in range(count):
            perturb_row = perturb_rows[row]
            retain_row = retain_rows[row]
            attempt_row = attempt_rows[row]
            # Zero-flag rows are identity by construction — every vertex
            # action is gated on its perturb flag and every edge action on
            # ``attempt and not retain`` — and their resolution consumes no
            # rng (deletes/picks are reached only behind those same flags),
            # so the full resolve walk can be skipped without moving the
            # random stream.  At the paper's default retain/attempt rates a
            # third of all rows take this exit.
            if not (
                any(perturb_row)
                or any(
                    attempt_row[d] and not retain_row[d]
                    for d in range(n_deps)
                )
            ):
                rows.append(block)
                encoded += 1
                continue
            resolved = self._resolve_row(
                plan,
                tables,
                perturb_row,
                delete_rows[row],
                retain_row,
                attempt_row,
                rng,
                vertex_picks[row] if vertex_picks is not None else None,
                dep_picks[row] if dep_picks is not None else None,
            )
            if resolved is _IDENTITY:
                rows.append(block)
                encoded += 1
                continue
            if resolved is not None:
                rows.append(EncodedRow(block, tuple(resolved)))
                encoded += 1
                continue
            perturbed = None
            attempt = 1
            while perturbed is None and attempt < max_attempts:
                perturbed = self._perturb_once(plan, rng)
                attempt += 1
            if perturbed is None:
                perturbed = block
                fallbacks += 1
            rows.append(perturbed)
        return rows, fallbacks, encoded

    def _apply_row(
        self,
        plan: _ConstraintPlan,
        tables: _SoaTables,
        perturb_row: List[bool],
        delete_row: List[bool],
        retain_row: List[bool],
        attempt_row: List[bool],
        rng: np.random.Generator,
        vertex_picks: Optional[List[int]] = None,
        dep_picks: Optional[List[int]] = None,
    ) -> Optional[BasicBlock]:
        """Materialise one perturbation from its pre-drawn decision row.

        Thin wrapper over :meth:`_resolve_row` that builds the block; the
        encoded pipeline (:meth:`perturb_batch`) calls the resolver directly
        and defers construction.
        """
        resolved = self._resolve_row(
            plan,
            tables,
            perturb_row,
            delete_row,
            retain_row,
            attempt_row,
            rng,
            vertex_picks,
            dep_picks,
        )
        if resolved is None:
            return None
        if resolved is _IDENTITY:
            # Nothing moved: hand back the original block *instance* so the
            # cost model's and dependency scan's per-instance memos stay
            # warm (block equality is by content, so downstream results are
            # bit-identical to a freshly-built copy).
            return self.block
        return self.block.with_instructions(resolved)

    def _resolve_row(
        self,
        plan: _ConstraintPlan,
        tables: _SoaTables,
        perturb_row: List[bool],
        delete_row: List[bool],
        retain_row: List[bool],
        attempt_row: List[bool],
        rng: np.random.Generator,
        vertex_picks: Optional[List[int]] = None,
        dep_picks: Optional[List[int]] = None,
    ):
        """Resolve one decision row to its survivor instruction references.

        ``vertex_picks``/``dep_picks`` carry the row's slice of the wave's
        pre-drawn pick rectangles; when absent (degenerate-coin waves) the
        picks are drawn here, in reference order.  Returns the survivor list
        (block construction is the caller's choice), :data:`_IDENTITY` when
        the row changed nothing, or ``None`` when a rewritten instruction
        failed validation (the caller retries through the per-perturbation
        engine).
        """
        working: List[Optional[Instruction]] = list(self.block.instructions)
        live = len(working)
        changed = False

        # --- vertex perturbation: deletions, then the opcode picks ---------
        unlocked = tables.unlocked
        can_delete = tables.can_delete
        pool_sizes = tables.pool_sizes
        pick_slots: List[int] = []
        pick_bounds: List[int] = []
        for j in range(tables.n_unlocked):
            if not perturb_row[j]:
                continue
            if delete_row[j] and can_delete[j] and live > 1:
                working[unlocked[j]] = None
                live -= 1
                changed = True
                continue
            if not pool_sizes[j]:
                continue
            if vertex_picks is not None:
                replacement = tables.replacements[j][vertex_picks[j]]
                if replacement is not None:
                    working[unlocked[j]] = replacement
                    changed = True
            else:
                pick_slots.append(j)
                pick_bounds.append(pool_sizes[j])
        if pick_slots:
            picks = rng.integers(0, pick_bounds)
            for slot, pick in zip(pick_slots, picks):
                replacement = tables.replacements[slot][pick]
                if replacement is not None:
                    working[unlocked[slot]] = replacement
                    changed = True

        # --- edge perturbation: static break metadata, dirty fallback -----
        rewritten: List[int] = []
        affected: Dict[int, object] = {}
        for d in range(tables.n_deps):
            dep, meta, dep_root = tables.dep_entries[d]
            source, destination = dep.source, dep.destination
            if working[source] is None or working[destination] is None:
                continue  # deletion already removed the hazard
            if retain_row[d] or not attempt_row[d]:
                continue
            # The static metadata describes the oracle's destination-first
            # endpoint walk over the original operands.  Staleness is
            # tracked per register root: displacement shifts touch no
            # registers (and the memory fast path reads the *current*
            # operand anyway), and a rename only changes walk outcomes for
            # the renamed and introduced roots.  The destination's marks
            # always matter (the walk starts there); the source's only when
            # the walk would reach it (metadata points at the source, or
            # found no viable endpoint at all).
            if dep_root is not None:
                marks = affected.get(destination)
                stale = marks is not None and (
                    marks is _ALL_ROOTS or dep_root in marks
                )
                if not stale and (meta is None or meta[1] != destination):
                    marks = affected.get(source)
                    stale = marks is not None and (
                        marks is _ALL_ROOTS or dep_root in marks
                    )
                if stale:
                    # The oracle's dynamic walk; its rename pick is not in
                    # the static tables, so the endpoint it rewrote is
                    # stale for every root from here on.
                    touched = self._break_dependency(working, dep, plan, rng)
                    if touched is not None:
                        rewritten.append(touched)
                        affected[touched] = _ALL_ROOTS
                        changed = True
                    continue
            if meta is None:
                continue
            kind, endpoint, slot_a, slot_b = meta
            instruction = working[endpoint]
            if kind == "reg":
                root, pool = slot_a, slot_b
                if dep_picks is not None:
                    pick = dep_picks[d]
                else:
                    pick = int(rng.integers(0, len(pool)))
                new_register = pool[pick]
                cache_key = (instruction.key(), root, new_register.name)
                renamed = self._rename_result_cache.get(cache_key)
                if renamed is None:
                    renamed = rename_register_in_instruction(
                        instruction, root, new_register
                    )
                    self._seed_derived(instruction, renamed)
                    self._rename_result_cache[cache_key] = renamed
                working[endpoint] = renamed
                marks = affected.get(endpoint)
                if marks is None:
                    affected[endpoint] = {root, new_register.root}
                elif marks is not _ALL_ROOTS:
                    marks.add(root)
                    marks.add(new_register.root)
            else:  # memory hazard: one of eight cached displacement variants
                position = slot_a
                if dep_picks is not None:
                    delta_index = dep_picks[d]
                else:
                    delta_index = int(rng.integers(0, len(_MEMORY_DELTAS)))
                cache_key = (instruction.key(), position, delta_index)
                variant = self._mem_variant_cache.get(cache_key)
                if variant is None:
                    memory = instruction.operands[position]
                    variant = instruction.with_operand(
                        position,
                        memory.with_fields(
                            displacement=memory.displacement
                            + _MEMORY_DELTAS[delta_index]
                        ),
                    )
                    self._seed_derived(instruction, variant)
                    self._mem_variant_cache[cache_key] = variant
                working[endpoint] = variant
            rewritten.append(endpoint)
            changed = True

        if not changed:
            return _IDENTITY
        survivors = [inst for inst in working if inst is not None]
        if not survivors:
            return None
        for index in rewritten:
            instruction = working[index]
            if instruction is not None and not is_valid_instruction(instruction):
                return None
        return survivors

    # ------------------------------------------------- reference (scalar) Γ

    def _perturb_once_reference(
        self, plan: _ConstraintPlan, rng: np.random.Generator
    ) -> Optional[BasicBlock]:
        """The scalar pre-batching engine, preserved verbatim.

        One coin flip per decision, uncached replacement construction and a
        full re-validation of every surviving instruction.  This is the
        sequential baseline measured by ``benchmarks/bench_query_engine.py``
        and the distributional oracle of the perturbation property tests; it
        is not used by the explanation pipeline unless
        ``PerturbationConfig.vectorized`` is switched off.
        """
        config = self.config
        constraints = plan.constraints
        working: List[Optional[Instruction]] = list(self.block.instructions)

        for index in range(len(working)):
            if index in constraints.locked_opcodes:
                continue
            if not coin(rng, 1.0 - config.p_instruction_retain):
                continue
            can_delete = (
                plan.deletion_allowed
                and index not in plan.undeletable
                and self._live_count(working) > 1
            )
            if can_delete and coin(rng, config.p_delete):
                working[index] = None
                continue
            working[index] = self._replace_vertex_reference(
                working[index], index, constraints, rng
            )

        for dep in self.block.dependencies:
            key = (dep.source, dep.destination, dep.kind, dep.location)
            if key in plan.preserved_keys:
                continue
            if working[dep.source] is None or working[dep.destination] is None:
                continue  # deletion already removed the hazard
            if coin(rng, config.p_dependency_explicit_retain):
                continue
            if not coin(rng, config.p_dependency_perturb_attempt):
                continue
            self._break_dependency_reference(working, dep, constraints, rng)

        survivors = [inst for inst in working if inst is not None]
        if not survivors:
            return None
        if any(not is_valid_instruction(inst) for inst in survivors):
            return None
        return self.block.with_instructions(survivors)

    def _replace_vertex_reference(
        self,
        instruction: Instruction,
        index: int,
        constraints: PreservationConstraints,
        rng: np.random.Generator,
    ) -> Instruction:
        pool = self._opcode_pools.get(index, [])
        replaced = instruction
        if pool:
            replaced = instruction.with_mnemonic(choice(rng, pool))
        if self.config.replacement_scheme is ReplacementScheme.WHOLE_INSTRUCTION:
            replaced = self._randomise_operands(replaced, index, constraints, rng)
        if not is_valid_instruction(replaced):
            return instruction
        forbidden = constraints.shadowing_writes_forbidden(index)
        if forbidden:
            original_writes = {loc[1] for loc in instruction.writes if loc[0] == "reg"}
            new_writes = {loc[1] for loc in replaced.writes if loc[0] == "reg"}
            if (new_writes - original_writes) & forbidden:
                return instruction
        return replaced

    def _break_dependency_reference(
        self,
        working: List[Optional[Instruction]],
        dep: Dependency,
        constraints: PreservationConstraints,
        rng: np.random.Generator,
    ) -> None:
        space, payload = dep.location
        for endpoint in (dep.destination, dep.source):
            instruction = working[endpoint]
            if instruction is None:
                continue
            if endpoint in constraints.locked_instructions:
                continue
            if space == "reg":
                root = str(payload)
                if root in constraints.roots_locked_at(endpoint):
                    continue
                if endpoint in constraints.locked_memory and self._memory_uses_root(
                    instruction, root
                ):
                    # Renaming would rewrite the base/index of a memory
                    # operand pinned by a preserved memory dependency,
                    # silently moving the preserved address.
                    continue
                target_register = self._find_register_with_root(instruction, root)
                if target_register is None:
                    continue
                candidates = register_renaming_candidates(
                    target_register,
                    forbidden_roots=[
                        root,
                        *constraints.roots_locked_at(endpoint),
                        *constraints.all_locked_roots(),
                    ],
                    prefer_unused_in=self.block,
                )
                if not candidates:
                    continue
                working[endpoint] = rename_register_in_instruction(
                    instruction, root, choice(rng, candidates)
                )
                return
            else:  # memory hazard
                if endpoint in constraints.locked_memory:
                    continue
                memory = instruction.memory_operand()
                if memory is None:
                    continue
                new_memory = perturb_memory_displacement(rng, memory)
                position = instruction.operands.index(memory)
                working[endpoint] = instruction.with_operand(position, new_memory)
                return

    @staticmethod
    def _live_count(working: Sequence[Optional[Instruction]]) -> int:
        return sum(1 for inst in working if inst is not None)

    def _rename_pool(
        self, register, forbidden_roots: FrozenSet[str], prefer_unused: bool
    ) -> list:
        """Memoised register-rename candidate pool.

        The pool depends only on the register, the forbidden roots and
        whether unused-in-block registers are preferred — none of which vary
        across the thousands of perturbations of one explanation — so it is
        computed once per distinct key.  Candidate order is deterministic, so
        memoisation does not disturb the random stream.
        """
        key = (register.name, forbidden_roots, prefer_unused)
        pool = self._rename_pools.get(key)
        if pool is None:
            pool = register_renaming_candidates(
                register,
                forbidden_roots=forbidden_roots,
                prefer_unused_in=self.block if prefer_unused else None,
            )
            self._rename_pools[key] = pool
        return pool

    def _replace_vertex(
        self,
        instruction: Instruction,
        index: int,
        constraints: PreservationConstraints,
        rng: np.random.Generator,
    ) -> Instruction:
        """Replace an instruction's opcode (and, in the whole-instruction
        scheme, its operands).  A failed attempt retains the instruction,
        which is how opcodes with no replacements (e.g. ``lea``) end up
        retained more often (Appendix D)."""
        pool = self._opcode_pools.get(index, [])
        if (
            self.config.replacement_scheme is not ReplacementScheme.WHOLE_INSTRUCTION
            and instruction is self.block.instructions[index]
        ):
            # Opcode-only replacement of an unmodified instruction: the
            # replacement (and its validity) is a pure function of
            # (index, mnemonic), so the instruction object is built and
            # validated once and shared across all perturbations.
            if not pool:
                return instruction
            mnemonic = choice(rng, pool)
            key = (index, mnemonic)
            if key in self._replacement_cache:
                replaced = self._replacement_cache[key]
            else:
                candidate = instruction.with_mnemonic(mnemonic)
                replaced = candidate if is_valid_instruction(candidate) else None
                self._replacement_cache[key] = replaced
            if replaced is None:
                return instruction
        else:
            replaced = instruction
            if pool:
                replaced = instruction.with_mnemonic(choice(rng, pool))
            if self.config.replacement_scheme is ReplacementScheme.WHOLE_INSTRUCTION:
                replaced = self._randomise_operands(replaced, index, constraints, rng)
            if not is_valid_instruction(replaced):
                return instruction
        # Do not let the replacement start writing the register of a preserved
        # dependency that passes over this instruction (it would shadow the
        # preserved hazard); treat that as a failed perturbation attempt.
        forbidden = constraints.shadowing_writes_forbidden(index)
        if forbidden:
            original_writes = {loc[1] for loc in instruction.writes if loc[0] == "reg"}
            new_writes = {loc[1] for loc in replaced.writes if loc[0] == "reg"}
            if (new_writes - original_writes) & forbidden:
                return instruction
        return replaced

    def _randomise_operands(
        self,
        instruction: Instruction,
        index: int,
        constraints: PreservationConstraints,
        rng: np.random.Generator,
    ) -> Instruction:
        locked_roots = constraints.roots_locked_at(index)
        result = instruction
        for pos, operand in enumerate(instruction.operands):
            if isinstance(operand, RegisterOperand):
                if operand.register.root in locked_roots:
                    continue
                pool = self._rename_pool(operand.register, locked_roots, False)
                new_reg = choice(rng, pool) if pool else None
                if new_reg is not None and coin(rng, 0.5):
                    result = result.with_operand(pos, operand.with_register(new_reg))
            elif isinstance(operand, ImmediateOperand) and coin(rng, 0.5):
                result = result.with_operand(pos, random_immediate(rng, operand))
        return result

    def _break_dependency(
        self,
        working: List[Optional[Instruction]],
        dep: Dependency,
        plan: _ConstraintPlan,
        rng: np.random.Generator,
    ) -> Optional[int]:
        """Break one data dependency in place (best effort).

        Register hazards are broken by renaming the hazard register in one of
        the endpoint instructions; memory hazards by shifting the memory
        operand's displacement.  Endpoints whose relevant operand is locked by
        a preserved feature are skipped; if both endpoints are locked the
        dependency is retained (a failed perturbation attempt).  Returns the
        index of the rewritten instruction (``None`` when the dependency was
        retained) so the caller can validate exactly what changed.
        """
        constraints = plan.constraints
        space, payload = dep.location
        # Prefer rewriting the destination instruction; fall back to the source.
        for endpoint in (dep.destination, dep.source):
            instruction = working[endpoint]
            if instruction is None:
                continue
            if endpoint in constraints.locked_instructions:
                continue
            if space == "reg":
                root = str(payload)
                if root in constraints.roots_locked_at(endpoint):
                    continue
                if endpoint in constraints.locked_memory and self._memory_uses_root(
                    instruction, root
                ):
                    # A preserved memory dependency pins this instruction's
                    # memory operand; renaming a register that operand
                    # addresses through (base or index) would move the
                    # preserved address even though the displacement is
                    # untouched.  Treat the endpoint as locked for this root.
                    continue
                target_register = self._find_register_with_root(instruction, root)
                if target_register is None:
                    continue
                pool_key = (endpoint, root, target_register.name)
                pool = plan.break_pools.get(pool_key)
                if pool is None:
                    forbidden = frozenset(
                        (
                            root,
                            *constraints.roots_locked_at(endpoint),
                            *plan.all_locked_roots,
                        )
                    )
                    pool = self._rename_pool(target_register, forbidden, True)
                    plan.break_pools[pool_key] = pool
                new_register = choice(rng, pool) if pool else None
                if new_register is None:
                    continue
                cache_key = (instruction.key(), root, new_register.name)
                renamed = self._rename_result_cache.get(cache_key)
                if renamed is None:
                    renamed = rename_register_in_instruction(
                        instruction, root, new_register
                    )
                    self._seed_derived(instruction, renamed)
                    self._rename_result_cache[cache_key] = renamed
                working[endpoint] = renamed
                return endpoint
            else:  # memory hazard
                if endpoint in constraints.locked_memory:
                    continue
                memory = instruction.memory_operand()
                if memory is None:
                    continue
                new_memory = perturb_memory_displacement(rng, memory)
                position = instruction.operands.index(memory)
                shifted = instruction.with_operand(position, new_memory)
                self._seed_derived(instruction, shifted)
                working[endpoint] = shifted
                return endpoint

    @staticmethod
    def _memory_uses_root(instruction: Instruction, root: str) -> bool:
        """Whether the instruction's memory operand addresses through ``root``."""
        memory = instruction.memory_operand()
        if memory is None:
            return False
        return any(reg.root == root for reg in memory.registers_read())

    @staticmethod
    def _find_register_with_root(instruction: Instruction, root: str):
        """The first register referenced by ``instruction`` with the given root."""
        for operand in instruction.operands:
            if isinstance(operand, RegisterOperand) and operand.register.root == root:
                return operand.register
            if isinstance(operand, MemoryOperand):
                for reg in operand.registers_read():
                    if reg.root == root:
                        return reg
        return None
