"""The basic-block perturbation algorithm Γ (Algorithm 1 of the paper).

Γ takes the original block ``β`` and a set of features ``F ⊆ P̂`` to preserve,
and returns a random valid block ``β′`` that keeps the features in ``F`` while
independently perturbing the remaining features:

* *vertex perturbation* — each non-preserved instruction is, with probability
  ``1 − p_instruction_retain``, either deleted (probability ``p_delete``, only
  when the instruction count need not be preserved) or has its opcode replaced
  by another opcode that accepts the same operands,
* *edge perturbation* — each non-preserved data dependency is, unless
  explicitly retained, broken by renaming the registers (or shifting the
  memory address) that cause it.

Preserving a dependency feature also pins the opcodes of its two endpoint
instructions and the operand causing the hazard, exactly as described in
Section 5.2.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.bb.block import BasicBlock
from repro.bb.dependencies import Dependency
from repro.bb.features import (
    DependencyFeature,
    Feature,
    InstructionFeature,
    NumInstructionsFeature,
)
from repro.isa.instructions import Instruction
from repro.isa.operands import ImmediateOperand, MemoryOperand, RegisterOperand
from repro.isa.validation import is_valid_instruction
from repro.perturb.config import PerturbationConfig, ReplacementScheme
from repro.perturb.replacements import (
    cache_opcode_replacements,
    perturb_memory_displacement,
    random_immediate,
    register_renaming_candidates,
    rename_register_in_instruction,
)
from repro.utils.errors import PerturbationError
from repro.utils.rng import RandomSource, as_rng, choice, coin


@dataclass(frozen=True)
class PreservationConstraints:
    """What Γ must keep unchanged, derived from a feature set ``F``.

    Attributes
    ----------
    locked_instructions:
        Indices whose full instruction (opcode and operands) is preserved
        because an :class:`InstructionFeature` names them.
    locked_opcodes:
        Indices whose opcode is preserved (endpoints of preserved
        dependencies, plus all locked instructions).
    locked_register_roots:
        For each index, register roots that must not be renamed there
        (operands carrying a preserved dependency).
    locked_memory:
        Indices whose memory operand must not be displaced (endpoints of a
        preserved memory dependency).
    preserved_dependencies:
        The original-block dependencies that must survive.
    preserve_count:
        Whether the number of instructions must stay fixed (a
        :class:`NumInstructionsFeature` is preserved), which forbids deletion.
    """

    locked_instructions: FrozenSet[int]
    locked_opcodes: FrozenSet[int]
    locked_register_roots: Dict[int, FrozenSet[str]]
    locked_memory: FrozenSet[int]
    preserved_dependencies: Tuple[Dependency, ...]
    preserve_count: bool

    @classmethod
    def from_features(
        cls, block: BasicBlock, features: Iterable[Feature]
    ) -> "PreservationConstraints":
        """Translate a feature set into concrete preservation constraints."""
        locked_instructions: Set[int] = set()
        locked_opcodes: Set[int] = set()
        locked_roots: Dict[int, Set[str]] = {}
        locked_memory: Set[int] = set()
        preserved_deps: List[Dependency] = []
        preserve_count = False

        for feature in features:
            if isinstance(feature, InstructionFeature):
                if not 0 <= feature.index < block.num_instructions:
                    raise PerturbationError(
                        f"instruction feature index {feature.index} outside block "
                        f"of size {block.num_instructions}"
                    )
                locked_instructions.add(feature.index)
                locked_opcodes.add(feature.index)
            elif isinstance(feature, NumInstructionsFeature):
                preserve_count = True
            elif isinstance(feature, DependencyFeature):
                dependency = _match_dependency(block, feature)
                preserved_deps.append(dependency)
                locked_opcodes.add(dependency.source)
                locked_opcodes.add(dependency.destination)
                space, payload = dependency.location
                if space == "reg":
                    for endpoint in (dependency.source, dependency.destination):
                        locked_roots.setdefault(endpoint, set()).add(str(payload))
                else:
                    locked_memory.add(dependency.source)
                    locked_memory.add(dependency.destination)
            else:
                raise PerturbationError(f"unsupported feature type {type(feature)!r}")

        return cls(
            locked_instructions=frozenset(locked_instructions),
            locked_opcodes=frozenset(locked_opcodes),
            locked_register_roots={
                idx: frozenset(roots) for idx, roots in locked_roots.items()
            },
            locked_memory=frozenset(locked_memory),
            preserved_dependencies=tuple(preserved_deps),
            preserve_count=preserve_count,
        )

    def undeletable(self) -> FrozenSet[int]:
        """Indices that may never be deleted."""
        return self.locked_instructions | self.locked_opcodes | self.locked_memory

    def roots_locked_at(self, index: int) -> FrozenSet[str]:
        """Register roots that must not be renamed in instruction ``index``."""
        return self.locked_register_roots.get(index, frozenset())

    def all_locked_roots(self) -> FrozenSet[str]:
        """Every register root involved in a preserved dependency."""
        roots: set = set()
        for locked in self.locked_register_roots.values():
            roots |= locked
        return frozenset(roots)

    def shadowing_writes_forbidden(self, index: int) -> FrozenSet[str]:
        """Register roots instruction ``index`` must not *start* writing.

        If an instruction strictly between the endpoints of a preserved
        register dependency started writing the dependency's register (e.g.
        ``div rcx`` replaced by ``inc rcx``), the nearest-writer analysis
        would re-attribute the hazard and the preserved feature would vanish.
        """
        roots: set = set()
        for dep in self.preserved_dependencies:
            space, payload = dep.location
            if space != "reg":
                continue
            if dep.source < index < dep.destination:
                roots.add(str(payload))
        return frozenset(roots)


def _match_dependency(block: BasicBlock, feature: DependencyFeature) -> Dependency:
    """Find the original-block dependency a :class:`DependencyFeature` refers to."""
    for dep in block.dependencies:
        if (
            dep.source == feature.source
            and dep.destination == feature.destination
            and dep.kind is feature.dep_kind
            and dep.location_space == feature.location_space
        ):
            return dep
    raise PerturbationError(
        f"dependency feature {feature.describe()} does not match any dependency "
        "of the block being perturbed"
    )


@dataclass(frozen=True)
class _ConstraintPlan:
    """A feature set's constraints plus everything derivable without rng.

    Built once per distinct feature set and cached on the perturber: the
    precision loop redraws the same candidate arms hundreds of times, so the
    feature-to-constraint translation and the derived index sets must not be
    recomputed per perturbation.
    """

    constraints: PreservationConstraints
    unlocked_indices: Tuple[int, ...]
    undeletable: FrozenSet[int]
    deletion_allowed: bool
    preserved_keys: FrozenSet[tuple]
    all_locked_roots: FrozenSet[str]
    #: (endpoint, root, register name) -> rename candidate pool, filled
    #: lazily; keyed per plan because the forbidden roots depend on the
    #: preserved feature set.
    break_pools: Dict[tuple, list] = field(default_factory=dict)


class BlockPerturber:
    """Stateful perturber bound to one original block.

    The perturber pre-computes the opcode replacement pools of the block
    once, caches the preservation constraints of every feature set it has
    seen and memoises register-rename candidate pools, then produces
    independent perturbations on every :meth:`perturb` call.  It is the
    object the explanation sampler queries thousands of times per
    explanation.
    """

    def __init__(
        self,
        block: BasicBlock,
        config: Optional[PerturbationConfig] = None,
        rng: RandomSource = None,
    ) -> None:
        self.block = block
        self.config = config or PerturbationConfig()
        self._rng = as_rng(rng)
        self._opcode_pools = cache_opcode_replacements(block)
        self._plan_cache: Dict[FrozenSet[Feature], _ConstraintPlan] = {}
        self._rename_pools: Dict[tuple, list] = {}
        # (index, mnemonic) -> replacement Instruction, or None when the
        # replacement is invalid there.  Opcode-only replacements depend only
        # on the original instruction, so the object (and its cached derived
        # properties: reads, writes, key) is shared across all perturbations.
        self._replacement_cache: Dict[Tuple[int, str], Optional[Instruction]] = {}
        # (instruction key, root, new register) -> renamed Instruction; the
        # dependency breaker keeps renaming the same few endpoint forms.
        self._rename_result_cache: Dict[tuple, Instruction] = {}

    # ------------------------------------------------------------------ API

    def _plan_for(self, features: Iterable[Feature]) -> _ConstraintPlan:
        """Constraints (and derived sets) for ``features``, cached."""
        key = frozenset(features)
        plan = self._plan_cache.get(key)
        if plan is None:
            constraints = PreservationConstraints.from_features(self.block, key)
            plan = _ConstraintPlan(
                constraints=constraints,
                unlocked_indices=tuple(
                    index
                    for index in range(self.block.num_instructions)
                    if index not in constraints.locked_opcodes
                ),
                undeletable=constraints.undeletable(),
                deletion_allowed=not constraints.preserve_count,
                preserved_keys=frozenset(
                    (d.source, d.destination, d.kind, d.location)
                    for d in constraints.preserved_dependencies
                ),
                all_locked_roots=constraints.all_locked_roots(),
            )
            self._plan_cache[key] = plan
        return plan

    def perturb(
        self,
        features: Iterable[Feature] = (),
        rng: RandomSource = None,
    ) -> BasicBlock:
        """Produce one perturbation of the block preserving ``features``."""
        generator = as_rng(rng) if rng is not None else self._rng
        plan = self._plan_for(features)
        for _ in range(self.config.max_block_attempts):
            perturbed = self._perturb_once(plan, generator)
            if perturbed is not None:
                return perturbed
        # All attempts failed to produce a valid block: fall back to the
        # original block, which trivially satisfies every constraint.
        return self.block

    def perturb_many(
        self,
        count: int,
        features: Iterable[Feature] = (),
        rng: RandomSource = None,
    ) -> List[BasicBlock]:
        """Produce ``count`` independent perturbations preserving ``features``."""
        generator = as_rng(rng) if rng is not None else self._rng
        plan = self._plan_for(features)
        out = []
        for _ in range(count):
            perturbed = None
            for _ in range(self.config.max_block_attempts):
                perturbed = self._perturb_once(plan, generator)
                if perturbed is not None:
                    break
            out.append(perturbed if perturbed is not None else self.block)
        return out

    # ------------------------------------------------------------ internals

    @staticmethod
    def _vector_flips(
        rng: np.random.Generator, count: int, probability: float
    ) -> np.ndarray:
        """``count`` independent coin flips in one rng call.

        Mirrors :func:`repro.utils.rng.coin`'s degenerate cases so
        probability-0/1 configurations consume no random state.
        """
        if count == 0 or probability == 0.0:
            return np.zeros(count, dtype=bool)
        if probability == 1.0:
            return np.ones(count, dtype=bool)
        return rng.random(count) < probability

    def _perturb_once(
        self, plan: _ConstraintPlan, rng: np.random.Generator
    ) -> Optional[BasicBlock]:
        config = self.config
        if not config.vectorized:
            return self._perturb_once_reference(plan, rng)
        constraints = plan.constraints
        working: List[Optional[Instruction]] = list(self.block.instructions)

        # --- vertex perturbation (lines 8-12 of Algorithm 1) -------------
        # All of the round's retain and delete coin flips are drawn in two
        # vectorized rng calls; only the replacement picks (whose pool sizes
        # vary per index) stay scalar.
        perturb_flags = self._vector_flips(
            rng, len(plan.unlocked_indices), 1.0 - config.p_instruction_retain
        )
        if perturb_flags.any():
            flagged = [
                index
                for index, flip in zip(plan.unlocked_indices, perturb_flags)
                if flip
            ]
            delete_flips = self._vector_flips(
                rng,
                len(flagged),
                config.p_delete if plan.deletion_allowed else 0.0,
            )
            live = len(working)
            for position, index in enumerate(flagged):
                if (
                    delete_flips[position]
                    and index not in plan.undeletable
                    and live > 1
                ):
                    working[index] = None
                    live -= 1
                    continue
                working[index] = self._replace_vertex(
                    working[index], index, constraints, rng
                )

        # --- edge perturbation (lines 13-17 of Algorithm 1) --------------
        live_deps = [
            dep
            for dep in self.block.dependencies
            if (dep.source, dep.destination, dep.kind, dep.location)
            not in plan.preserved_keys
            and working[dep.source] is not None
            and working[dep.destination] is not None
        ]
        retain_flags = self._vector_flips(
            rng, len(live_deps), config.p_dependency_explicit_retain
        )
        attempts = [
            dep for dep, retained in zip(live_deps, retain_flags) if not retained
        ]
        attempt_flags = self._vector_flips(
            rng, len(attempts), config.p_dependency_perturb_attempt
        )
        rewritten: Set[int] = set()
        for dep, attempt in zip(attempts, attempt_flags):
            if not attempt:
                continue
            touched = self._break_dependency(working, dep, plan, rng)
            if touched is not None:
                rewritten.add(touched)

        survivors = [inst for inst in working if inst is not None]
        if not survivors:
            return None
        # Vertex replacements are validated when they are built (and cached),
        # and untouched instructions come from the already-valid original
        # block, so only instructions rewritten by dependency breaking still
        # need a validity check here.
        for index in rewritten:
            instruction = working[index]
            if instruction is not None and not is_valid_instruction(instruction):
                return None
        return self.block.with_instructions(survivors)

    # ------------------------------------------------- reference (scalar) Γ

    def _perturb_once_reference(
        self, plan: _ConstraintPlan, rng: np.random.Generator
    ) -> Optional[BasicBlock]:
        """The scalar pre-batching engine, preserved verbatim.

        One coin flip per decision, uncached replacement construction and a
        full re-validation of every surviving instruction.  This is the
        sequential baseline measured by ``benchmarks/bench_query_engine.py``
        and the distributional oracle of the perturbation property tests; it
        is not used by the explanation pipeline unless
        ``PerturbationConfig.vectorized`` is switched off.
        """
        config = self.config
        constraints = plan.constraints
        working: List[Optional[Instruction]] = list(self.block.instructions)

        for index in range(len(working)):
            if index in constraints.locked_opcodes:
                continue
            if not coin(rng, 1.0 - config.p_instruction_retain):
                continue
            can_delete = (
                plan.deletion_allowed
                and index not in plan.undeletable
                and self._live_count(working) > 1
            )
            if can_delete and coin(rng, config.p_delete):
                working[index] = None
                continue
            working[index] = self._replace_vertex_reference(
                working[index], index, constraints, rng
            )

        for dep in self.block.dependencies:
            key = (dep.source, dep.destination, dep.kind, dep.location)
            if key in plan.preserved_keys:
                continue
            if working[dep.source] is None or working[dep.destination] is None:
                continue  # deletion already removed the hazard
            if coin(rng, config.p_dependency_explicit_retain):
                continue
            if not coin(rng, config.p_dependency_perturb_attempt):
                continue
            self._break_dependency_reference(working, dep, constraints, rng)

        survivors = [inst for inst in working if inst is not None]
        if not survivors:
            return None
        if any(not is_valid_instruction(inst) for inst in survivors):
            return None
        return self.block.with_instructions(survivors)

    def _replace_vertex_reference(
        self,
        instruction: Instruction,
        index: int,
        constraints: PreservationConstraints,
        rng: np.random.Generator,
    ) -> Instruction:
        pool = self._opcode_pools.get(index, [])
        replaced = instruction
        if pool:
            replaced = instruction.with_mnemonic(choice(rng, pool))
        if self.config.replacement_scheme is ReplacementScheme.WHOLE_INSTRUCTION:
            replaced = self._randomise_operands(replaced, index, constraints, rng)
        if not is_valid_instruction(replaced):
            return instruction
        forbidden = constraints.shadowing_writes_forbidden(index)
        if forbidden:
            original_writes = {loc[1] for loc in instruction.writes if loc[0] == "reg"}
            new_writes = {loc[1] for loc in replaced.writes if loc[0] == "reg"}
            if (new_writes - original_writes) & forbidden:
                return instruction
        return replaced

    def _break_dependency_reference(
        self,
        working: List[Optional[Instruction]],
        dep: Dependency,
        constraints: PreservationConstraints,
        rng: np.random.Generator,
    ) -> None:
        space, payload = dep.location
        for endpoint in (dep.destination, dep.source):
            instruction = working[endpoint]
            if instruction is None:
                continue
            if endpoint in constraints.locked_instructions:
                continue
            if space == "reg":
                root = str(payload)
                if root in constraints.roots_locked_at(endpoint):
                    continue
                if endpoint in constraints.locked_memory and self._memory_uses_root(
                    instruction, root
                ):
                    # Renaming would rewrite the base/index of a memory
                    # operand pinned by a preserved memory dependency,
                    # silently moving the preserved address.
                    continue
                target_register = self._find_register_with_root(instruction, root)
                if target_register is None:
                    continue
                candidates = register_renaming_candidates(
                    target_register,
                    forbidden_roots=[
                        root,
                        *constraints.roots_locked_at(endpoint),
                        *constraints.all_locked_roots(),
                    ],
                    prefer_unused_in=self.block,
                )
                if not candidates:
                    continue
                working[endpoint] = rename_register_in_instruction(
                    instruction, root, choice(rng, candidates)
                )
                return
            else:  # memory hazard
                if endpoint in constraints.locked_memory:
                    continue
                memory = instruction.memory_operand()
                if memory is None:
                    continue
                new_memory = perturb_memory_displacement(rng, memory)
                position = instruction.operands.index(memory)
                working[endpoint] = instruction.with_operand(position, new_memory)
                return

    @staticmethod
    def _live_count(working: Sequence[Optional[Instruction]]) -> int:
        return sum(1 for inst in working if inst is not None)

    def _rename_pool(
        self, register, forbidden_roots: FrozenSet[str], prefer_unused: bool
    ) -> list:
        """Memoised register-rename candidate pool.

        The pool depends only on the register, the forbidden roots and
        whether unused-in-block registers are preferred — none of which vary
        across the thousands of perturbations of one explanation — so it is
        computed once per distinct key.  Candidate order is deterministic, so
        memoisation does not disturb the random stream.
        """
        key = (register.name, forbidden_roots, prefer_unused)
        pool = self._rename_pools.get(key)
        if pool is None:
            pool = register_renaming_candidates(
                register,
                forbidden_roots=forbidden_roots,
                prefer_unused_in=self.block if prefer_unused else None,
            )
            self._rename_pools[key] = pool
        return pool

    def _replace_vertex(
        self,
        instruction: Instruction,
        index: int,
        constraints: PreservationConstraints,
        rng: np.random.Generator,
    ) -> Instruction:
        """Replace an instruction's opcode (and, in the whole-instruction
        scheme, its operands).  A failed attempt retains the instruction,
        which is how opcodes with no replacements (e.g. ``lea``) end up
        retained more often (Appendix D)."""
        pool = self._opcode_pools.get(index, [])
        if (
            self.config.replacement_scheme is not ReplacementScheme.WHOLE_INSTRUCTION
            and instruction is self.block.instructions[index]
        ):
            # Opcode-only replacement of an unmodified instruction: the
            # replacement (and its validity) is a pure function of
            # (index, mnemonic), so the instruction object is built and
            # validated once and shared across all perturbations.
            if not pool:
                return instruction
            mnemonic = choice(rng, pool)
            key = (index, mnemonic)
            if key in self._replacement_cache:
                replaced = self._replacement_cache[key]
            else:
                candidate = instruction.with_mnemonic(mnemonic)
                replaced = candidate if is_valid_instruction(candidate) else None
                self._replacement_cache[key] = replaced
            if replaced is None:
                return instruction
        else:
            replaced = instruction
            if pool:
                replaced = instruction.with_mnemonic(choice(rng, pool))
            if self.config.replacement_scheme is ReplacementScheme.WHOLE_INSTRUCTION:
                replaced = self._randomise_operands(replaced, index, constraints, rng)
            if not is_valid_instruction(replaced):
                return instruction
        # Do not let the replacement start writing the register of a preserved
        # dependency that passes over this instruction (it would shadow the
        # preserved hazard); treat that as a failed perturbation attempt.
        forbidden = constraints.shadowing_writes_forbidden(index)
        if forbidden:
            original_writes = {loc[1] for loc in instruction.writes if loc[0] == "reg"}
            new_writes = {loc[1] for loc in replaced.writes if loc[0] == "reg"}
            if (new_writes - original_writes) & forbidden:
                return instruction
        return replaced

    def _randomise_operands(
        self,
        instruction: Instruction,
        index: int,
        constraints: PreservationConstraints,
        rng: np.random.Generator,
    ) -> Instruction:
        locked_roots = constraints.roots_locked_at(index)
        result = instruction
        for pos, operand in enumerate(instruction.operands):
            if isinstance(operand, RegisterOperand):
                if operand.register.root in locked_roots:
                    continue
                pool = self._rename_pool(operand.register, locked_roots, False)
                new_reg = choice(rng, pool) if pool else None
                if new_reg is not None and coin(rng, 0.5):
                    result = result.with_operand(pos, operand.with_register(new_reg))
            elif isinstance(operand, ImmediateOperand) and coin(rng, 0.5):
                result = result.with_operand(pos, random_immediate(rng, operand))
        return result

    def _break_dependency(
        self,
        working: List[Optional[Instruction]],
        dep: Dependency,
        plan: _ConstraintPlan,
        rng: np.random.Generator,
    ) -> Optional[int]:
        """Break one data dependency in place (best effort).

        Register hazards are broken by renaming the hazard register in one of
        the endpoint instructions; memory hazards by shifting the memory
        operand's displacement.  Endpoints whose relevant operand is locked by
        a preserved feature are skipped; if both endpoints are locked the
        dependency is retained (a failed perturbation attempt).  Returns the
        index of the rewritten instruction (``None`` when the dependency was
        retained) so the caller can validate exactly what changed.
        """
        constraints = plan.constraints
        space, payload = dep.location
        # Prefer rewriting the destination instruction; fall back to the source.
        for endpoint in (dep.destination, dep.source):
            instruction = working[endpoint]
            if instruction is None:
                continue
            if endpoint in constraints.locked_instructions:
                continue
            if space == "reg":
                root = str(payload)
                if root in constraints.roots_locked_at(endpoint):
                    continue
                if endpoint in constraints.locked_memory and self._memory_uses_root(
                    instruction, root
                ):
                    # A preserved memory dependency pins this instruction's
                    # memory operand; renaming a register that operand
                    # addresses through (base or index) would move the
                    # preserved address even though the displacement is
                    # untouched.  Treat the endpoint as locked for this root.
                    continue
                target_register = self._find_register_with_root(instruction, root)
                if target_register is None:
                    continue
                pool_key = (endpoint, root, target_register.name)
                pool = plan.break_pools.get(pool_key)
                if pool is None:
                    forbidden = frozenset(
                        (
                            root,
                            *constraints.roots_locked_at(endpoint),
                            *plan.all_locked_roots,
                        )
                    )
                    pool = self._rename_pool(target_register, forbidden, True)
                    plan.break_pools[pool_key] = pool
                new_register = choice(rng, pool) if pool else None
                if new_register is None:
                    continue
                cache_key = (instruction.key(), root, new_register.name)
                renamed = self._rename_result_cache.get(cache_key)
                if renamed is None:
                    renamed = rename_register_in_instruction(
                        instruction, root, new_register
                    )
                    self._rename_result_cache[cache_key] = renamed
                working[endpoint] = renamed
                return endpoint
            else:  # memory hazard
                if endpoint in constraints.locked_memory:
                    continue
                memory = instruction.memory_operand()
                if memory is None:
                    continue
                new_memory = perturb_memory_displacement(rng, memory)
                position = instruction.operands.index(memory)
                working[endpoint] = instruction.with_operand(position, new_memory)
                return endpoint

    @staticmethod
    def _memory_uses_root(instruction: Instruction, root: str) -> bool:
        """Whether the instruction's memory operand addresses through ``root``."""
        memory = instruction.memory_operand()
        if memory is None:
            return False
        return any(reg.root == root for reg in memory.registers_read())

    @staticmethod
    def _find_register_with_root(instruction: Instruction, root: str):
        """The first register referenced by ``instruction`` with the given root."""
        for operand in instruction.operands:
            if isinstance(operand, RegisterOperand) and operand.register.root == root:
                return operand.register
            if isinstance(operand, MemoryOperand):
                for reg in operand.registers_read():
                    if reg.root == root:
                        return reg
        return None
