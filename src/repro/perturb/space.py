"""Estimating the cardinality of the perturbation space (Appendix F).

The paper motivates the relaxation from the ideal explanation problem to the
probabilistic one by showing that ``|Π̂(F)|`` — the number of distinct blocks
reachable by perturbing everything outside ``F`` — is astronomically large
(≈10³⁸ for a 7-instruction vector block).  This module reproduces those
estimates with a simple combinatorial count:

* every non-preserved instruction contributes
  ``1 (retain) + #opcode replacements + 1 (deletion, when allowed)`` choices,
* every register operand slot that is free to be renamed contributes
  ``1 + #same-width registers`` choices,
* every free memory operand contributes a nominal number of distinct
  displacements.

The count is an estimate of the same flavour the paper reports (it neither
deduplicates coincidentally equal blocks nor enumerates immediate values).
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Tuple

from repro.bb.block import BasicBlock
from repro.bb.features import (
    DependencyFeature,
    Feature,
    InstructionFeature,
    NumInstructionsFeature,
)
from repro.isa.operands import ImmediateOperand, MemoryOperand, RegisterOperand
from repro.isa.registers import same_size_registers
from repro.perturb.replacements import opcode_replacements

#: Nominal number of distinct displacements considered reachable for a free
#: memory operand (the perturber shifts displacements by 8..64 bytes).
MEMORY_DISPLACEMENT_CHOICES = 16


def per_instruction_choices(
    block: BasicBlock,
    index: int,
    *,
    opcode_locked: bool = False,
    fully_locked: bool = False,
    deletion_allowed: bool = True,
) -> float:
    """Number of distinct variants reachable for one instruction."""
    if fully_locked:
        return 1.0
    instruction = block[index]
    choices = 1.0
    if not opcode_locked:
        opcode_choices = 1 + len(opcode_replacements(instruction))
        if deletion_allowed:
            opcode_choices += 1
        choices *= opcode_choices
    for operand in instruction.operands:
        if isinstance(operand, RegisterOperand):
            choices *= 1 + len(same_size_registers(operand.register))
        elif isinstance(operand, MemoryOperand):
            for reg in operand.registers_read():
                choices *= 1 + len(same_size_registers(reg))
            choices *= MEMORY_DISPLACEMENT_CHOICES
        elif isinstance(operand, ImmediateOperand):
            choices *= 2  # the perturber only draws a handful of immediates
    return choices


def estimate_space_size(
    block: BasicBlock, features: Iterable[Feature] = ()
) -> float:
    """Estimate ``|Π̂(F)|`` for ``block`` and preserved feature set ``features``.

    Returns a float because the counts routinely exceed 2⁶³.
    """
    features = tuple(features)
    locked_instructions = {
        f.index for f in features if isinstance(f, InstructionFeature)
    }
    opcode_locked = set(locked_instructions)
    preserve_count = any(isinstance(f, NumInstructionsFeature) for f in features)
    for f in features:
        if isinstance(f, DependencyFeature):
            opcode_locked.add(f.source)
            opcode_locked.add(f.destination)

    total = 1.0
    for index in range(block.num_instructions):
        total *= per_instruction_choices(
            block,
            index,
            opcode_locked=index in opcode_locked,
            fully_locked=index in locked_instructions,
            deletion_allowed=not preserve_count and index not in opcode_locked,
        )
    return total


def log10_space_size(block: BasicBlock, features: Iterable[Feature] = ()) -> float:
    """``log10`` of the estimated perturbation-space size (avoids overflow)."""
    features = tuple(features)
    locked_instructions = {
        f.index for f in features if isinstance(f, InstructionFeature)
    }
    opcode_locked = set(locked_instructions)
    preserve_count = any(isinstance(f, NumInstructionsFeature) for f in features)
    for f in features:
        if isinstance(f, DependencyFeature):
            opcode_locked.add(f.source)
            opcode_locked.add(f.destination)

    total = 0.0
    for index in range(block.num_instructions):
        total += math.log10(
            per_instruction_choices(
                block,
                index,
                opcode_locked=index in opcode_locked,
                fully_locked=index in locked_instructions,
                deletion_allowed=not preserve_count and index not in opcode_locked,
            )
        )
    return total


def space_report(block: BasicBlock, features: Iterable[Feature] = ()) -> Dict[str, float]:
    """A small report used by the Appendix F benchmark."""
    return {
        "num_instructions": float(block.num_instructions),
        "num_dependencies": float(len(block.dependencies)),
        "log10_space_size": log10_space_size(block, features),
        "space_size": estimate_space_size(block, features),
    }
