"""Basic-block perturbation algorithm Γ (Section 5.2 / Appendix C of the paper)."""

from repro.perturb.config import PerturbationConfig, ReplacementScheme
from repro.perturb.replacements import (
    opcode_replacements,
    register_renaming_candidates,
    random_register_rename,
    random_immediate,
)
from repro.perturb.algorithm import BlockPerturber, PreservationConstraints
from repro.perturb.batch import (
    EncodedRow,
    EncodedTally,
    PerturbationBatch,
    encoded_enabled,
    encoded_tally,
    forced_encoded,
    thread_encoded_tally,
)
from repro.perturb.sampler import PerturbationSampler
from repro.perturb.space import estimate_space_size, per_instruction_choices

__all__ = [
    "PerturbationConfig",
    "ReplacementScheme",
    "opcode_replacements",
    "register_renaming_candidates",
    "random_register_rename",
    "random_immediate",
    "BlockPerturber",
    "PreservationConstraints",
    "PerturbationSampler",
    "EncodedRow",
    "EncodedTally",
    "PerturbationBatch",
    "encoded_enabled",
    "encoded_tally",
    "forced_encoded",
    "thread_encoded_tally",
    "estimate_space_size",
    "per_instruction_choices",
]
