"""Sampling interface over the perturbation distributions D_F and D.

The explanation search needs two sampling primitives (Section 5.2):

* samples from ``D_F`` — perturbations that *retain* a candidate feature set
  ``F`` — used to estimate precision (Eq. 4),
* samples from ``D = D_∅`` — unconstrained perturbations — used to estimate
  coverage (Eq. 6).

``D`` is the special case ``F = ∅``, so one sampler built around
:class:`~repro.perturb.algorithm.BlockPerturber` serves both.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.bb.block import BasicBlock
from repro.bb.features import Feature, features_present
from repro.perturb.algorithm import BlockPerturber
from repro.perturb.batch import PerturbationBatch
from repro.perturb.config import PerturbationConfig
from repro.utils.rng import RandomSource, as_rng


class PerturbationSampler:
    """Draws perturbed blocks conditioned on retained feature sets.

    Parameters
    ----------
    block:
        The block being explained.
    config:
        Perturbation hyperparameters (paper defaults when omitted).
    rng:
        Random source; pass an int for reproducible explanation runs.
    """

    def __init__(
        self,
        block: BasicBlock,
        config: Optional[PerturbationConfig] = None,
        rng: RandomSource = None,
    ) -> None:
        self.block = block
        self.config = config or PerturbationConfig()
        self._rng = as_rng(rng)
        self._perturber = BlockPerturber(block, self.config, self._rng)
        self._background: List[BasicBlock] = []
        self.samples_drawn = 0

    # ------------------------------------------------------------ sampling

    def sample(
        self, features: Iterable[Feature] = (), count: int = 1
    ) -> List[BasicBlock]:
        """Draw ``count`` perturbations retaining ``features`` (from D_F)."""
        self.samples_drawn += count
        return self._perturber.perturb_many(count, features, rng=self._rng)

    def sample_encoded(
        self, features: Iterable[Feature] = (), count: int = 1
    ) -> PerturbationBatch:
        """Encoded twin of :meth:`sample`: the same draws, blocks deferred.

        Consumes the identical random stream as :meth:`sample` and resolves
        to content-identical rows (see
        :meth:`~repro.perturb.algorithm.BlockPerturber.perturb_batch`), so a
        caller may mix the two freely without changing seeded results.
        """
        self.samples_drawn += count
        return self._perturber.perturb_batch(count, features, rng=self._rng)

    def sample_unconstrained(self, count: int = 1) -> List[BasicBlock]:
        """Draw ``count`` unconstrained perturbations (from D = D_∅)."""
        return self.sample((), count)

    # ----------------------------------------------------------- background

    def background_population(self, size: int) -> List[BasicBlock]:
        """A cached pool of unconstrained perturbations for coverage estimates.

        The anchor search evaluates the coverage of many candidate feature
        sets against the *same* background population (as the Anchors
        implementation does), so the pool is drawn once and reused.
        """
        if len(self._background) < size:
            self._background.extend(
                self.sample_unconstrained(size - len(self._background))
            )
        return self._background[:size]

    def coverage_of(self, features: Iterable[Feature], population_size: int = 1000) -> float:
        """Empirical coverage of ``features`` over the background population."""
        population = self.background_population(population_size)
        if not population:
            return 0.0
        feature_tuple = tuple(features)
        hits = sum(
            1 for candidate in population if features_present(feature_tuple, candidate)
        )
        return hits / len(population)

    # ----------------------------------------------------------- diagnostics

    def preservation_rate(
        self, features: Iterable[Feature], count: int = 200
    ) -> float:
        """Fraction of D_F samples in which ``features`` are actually present.

        Γ preserves features by construction, but corner cases (e.g. an opcode
        replacement elsewhere shadowing a preserved dependency) can drop one;
        this diagnostic quantifies how rare that is and is exercised by the
        property-based tests.
        """
        feature_tuple = tuple(features)
        samples = self.sample(feature_tuple, count)
        if not samples:
            return 1.0
        hits = sum(1 for s in samples if features_present(feature_tuple, s))
        return hits / len(samples)
