"""Hyperparameters of the perturbation algorithm Γ.

Defaults follow Section 6 and Appendix E of the paper:

* every feature is retained or perturbed with probability 0.5,
* when an instruction is perturbed and deletion is allowed, it is deleted
  with probability 0.33 (Appendix E.2) and opcode-replaced otherwise,
* a data dependency is *explicitly* retained (never even considered for
  perturbation) with probability 0.1 (Appendix E.3),
* vertex perturbation replaces only the opcode (Appendix E.4); the
  whole-instruction scheme is available for the ablation benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from enum import Enum


class ReplacementScheme(str, Enum):
    """How a vertex (instruction) is replaced when it is perturbed."""

    OPCODE_ONLY = "opcode"
    WHOLE_INSTRUCTION = "instruction"


@dataclass(frozen=True)
class PerturbationConfig:
    """Tunable knobs of Γ (see module docstring for the paper defaults)."""

    p_instruction_retain: float = 0.5
    p_dependency_retain: float = 0.5
    p_delete: float = 0.33
    p_dependency_explicit_retain: float = 0.1
    replacement_scheme: ReplacementScheme = ReplacementScheme.OPCODE_ONLY
    max_block_attempts: int = 4
    #: When true (the default) Γ uses the vectorized fast path: batched coin
    #: flips, cached replacement/rename objects and targeted re-validation.
    #: When false it runs the scalar reference implementation (the
    #: pre-batching engine), which the query-engine benchmark uses as its
    #: sequential baseline and the property tests use as an oracle.
    vectorized: bool = True

    def __post_init__(self) -> None:
        for name in (
            "p_instruction_retain",
            "p_dependency_retain",
            "p_delete",
            "p_dependency_explicit_retain",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if self.max_block_attempts < 1:
            raise ValueError("max_block_attempts must be at least 1")

    @property
    def p_dependency_perturb_attempt(self) -> float:
        """Probability of attempting to break a non-explicitly-retained dependency.

        Chosen so that the *overall* retention probability of a dependency is
        ``p_dependency_retain`` when every perturbation attempt succeeds:
        ``retain = explicit + (1 - explicit) * (1 - attempt)``.
        """
        explicit = self.p_dependency_explicit_retain
        if explicit >= 1.0:
            return 0.0
        attempt = (1.0 - self.p_dependency_retain) / (1.0 - explicit)
        return min(max(attempt, 0.0), 1.0)

    def with_overrides(self, **changes) -> "PerturbationConfig":
        """A copy of this config with the given fields replaced."""
        return replace(self, **changes)
