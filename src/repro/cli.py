"""Command-line interface for the COMET reproduction.

The CLI exposes the public API for quick, scriptable use::

    python -m repro predict  --model uica  --block "add rcx, rax; mov rdx, rcx"
    python -m repro explain  --model uica  --block-file block.s --json
    python -m repro explain  --model uica  --blocks-file fleet.txt --checkpoint run.jsonl
    python -m repro features --block "add rcx, rax; mov rdx, rcx; pop rbx"
    python -m repro perturb  --block-file block.s --count 5 --preserve-count
    python -m repro space    --block-file block.s
    python -m repro optimize --model uica  --block-file block.s --steps 40
    python -m repro dataset  --size 200 --output dataset.json
    python -m repro serve    --model uica  --backend process --max-queue 128
    python -m repro serve    --model crude --port 7421 --max-connections 16
    python -m repro serve    --model crude --port 0    --dispatchers 4
    python -m repro serve    --model crude --request-timeout 120
    python -m repro serve    --model crude --port 0    --continuous-batching
    python -m repro serve    --model crude --result-cache results.cache
    python -m repro route    --nodes 127.0.0.1:7421,127.0.0.1:7422

Blocks can be passed inline with ``--block`` (instructions separated by ``;``
or newlines) or from a file with ``--block-file``.  The neural model is
excluded from the model choices here because it must be trained on a dataset
first; use the library API (see ``examples/``) for that workflow.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.bb.block import BasicBlock
from repro.bb.features import extract_features
from repro.data.bhive import BHiveDataset
from repro.explain.config import ExplainerConfig
from repro.explain.explainer import CometExplainer
from repro.guidance.optimizer import optimize_block
from repro.models.base import CachedCostModel, CostModel
from repro.models.registry import build_cost_model
from repro.perturb.algorithm import BlockPerturber
from repro.perturb.config import PerturbationConfig
from repro.perturb.space import space_report
from repro.reporting.export import explanation_to_json
from repro.runtime.backend import available_backends
from repro.uarch.microarch import available_microarchitectures
from repro.utils.errors import ReproError


#: Models constructible without training data.
_CLI_MODELS = ("crude", "uica", "port-pressure")


def _read_block(args: argparse.Namespace) -> BasicBlock:
    if getattr(args, "block", None):
        text = args.block.replace(";", "\n")
    elif getattr(args, "block_file", None):
        text = Path(args.block_file).read_text()
    else:
        raise ReproError("provide a block with --block or --block-file")
    return BasicBlock.from_text(text)


def _build_model(args: argparse.Namespace) -> CostModel:
    return build_cost_model(
        args.model,
        args.uarch,
        cached=True,
        backend=getattr(args, "backend", None),
        workers=getattr(args, "workers", None),
    )


# --------------------------------------------------------------- subcommands


def _cmd_predict(args: argparse.Namespace) -> int:
    block = _read_block(args)
    model = _build_model(args)
    prediction = model.predict(block)
    print(f"{model.name}: {prediction:.3f} cycles/iteration")
    return 0


def _explainer_config(args: argparse.Namespace) -> ExplainerConfig:
    return ExplainerConfig(
        epsilon=args.epsilon,
        relative_epsilon=args.relative_epsilon,
        delta=args.delta,
        coverage_samples=args.coverage_samples,
        max_precision_samples=args.max_precision_samples,
    )


def _cmd_explain(args: argparse.Namespace) -> int:
    config = _explainer_config(args)
    if args.blocks_file:
        return _cmd_explain_fleet(args, config)
    if args.checkpoint:
        raise ReproError(
            "--checkpoint journals a fleet run; use it with --blocks-file"
        )
    block = _read_block(args)
    # The model owns the backend built by the registry; closing the model
    # releases any pooled workers before the process exits.
    with _build_model(args) as model:
        explainer = CometExplainer(model, config, rng=args.seed)
        explanation = explainer.explain(block)
    if args.json:
        print(explanation_to_json(explanation))
    else:
        print(explanation.describe())
    return 0


def _cmd_explain_fleet(args: argparse.Namespace, config: ExplainerConfig) -> int:
    """Explain a whole fleet (one block per line), optionally checkpointed.

    With ``--checkpoint`` the run is crash-safe: rerunning the same command
    after an interruption skips the journaled blocks and produces results
    bit-for-bit identical to an uninterrupted run.
    """
    import json as json_module

    from repro.reporting.export import explanation_to_dict
    from repro.runtime.session import ExplanationSession

    texts = [
        line.strip()
        for line in Path(args.blocks_file).read_text().splitlines()
        if line.strip() and not line.lstrip().startswith("#")
    ]
    if not texts:
        raise ReproError(f"no blocks in {args.blocks_file}")
    blocks = [BasicBlock.from_text(text.replace(";", "\n")) for text in texts]
    with _build_model(args) as model:
        with ExplanationSession(model, config) as session:
            explanations = session.explain_many(
                blocks, rng=args.seed, checkpoint=args.checkpoint
            )
            stats = session.stats()
    if args.json:
        print(
            json_module.dumps(
                [explanation_to_dict(explanation) for explanation in explanations],
                indent=2,
            )
        )
    else:
        for index, explanation in enumerate(explanations):
            print(f"# block {index + 1}")
            print(explanation.describe())
            print()
    if args.checkpoint:
        print(
            f"checkpoint {args.checkpoint}: {stats.checkpoint_skips} of "
            f"{len(blocks)} blocks recovered from the journal",
            file=sys.stderr,
        )
    return 0


def _cmd_features(args: argparse.Namespace) -> int:
    block = _read_block(args)
    features = extract_features(block)
    print(f"{len(features)} candidate features:")
    for feature in features:
        print(f"  [{feature.kind.value:<10}] {feature.describe()}")
    return 0


def _cmd_perturb(args: argparse.Namespace) -> int:
    block = _read_block(args)
    features = []
    all_features = extract_features(block)
    if args.preserve_count:
        features.extend(
            f for f in all_features if f.kind.value == "num_instrs"
        )
    for index in args.preserve_instruction or []:
        if not 1 <= index <= block.num_instructions:
            raise ReproError(
                f"--preserve-instruction {index} is outside the block "
                f"(1..{block.num_instructions})"
            )
        features.extend(
            f
            for f in all_features
            if f.kind.value == "inst" and getattr(f, "index", None) == index - 1
        )
    perturber = BlockPerturber(block, PerturbationConfig(), rng=args.seed)
    for sample_index in range(args.count):
        perturbed = perturber.perturb(features)
        print(f"# perturbation {sample_index + 1}")
        print(perturbed.text)
        print()
    return 0


def _cmd_space(args: argparse.Namespace) -> int:
    block = _read_block(args)
    report = space_report(block)
    print(f"block of {block.num_instructions} instructions")
    for key, value in report.items():
        print(f"  {key}: {value:.3g}")
    return 0


def _cmd_optimize(args: argparse.Namespace) -> int:
    block = _read_block(args)
    model = _build_model(args)
    result = optimize_block(
        model,
        block,
        guided=not args.unguided,
        steps=args.steps,
        rng=args.seed,
    )
    print(result.describe())
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.service import ExplanationService, serve_stream

    # args.result_cache: a path (--result-cache), False (--no-result-cache,
    # pinning the cache off even when REPRO_RESULT_CACHE is set), or None
    # (defer to the environment variable).
    service = ExplanationService(
        model=args.model,
        uarch=args.uarch,
        config=_explainer_config(args),
        backend=args.backend,
        workers=args.workers,
        dispatchers=args.dispatchers,
        continuous_batching=args.continuous_batching,
        max_fused_requests=args.max_fused_requests,
        max_queue=args.max_queue,
        max_sessions=args.max_sessions,
        default_deadline=args.request_timeout,
        result_cache=args.result_cache,
    )
    if args.port is not None:
        if args.requests:
            service.close()
            raise ReproError(
                "--requests reads a batch from a file and --port serves TCP; "
                "use one or the other"
            )
        return _serve_socket(args, service)
    if args.requests:
        source = Path(args.requests).read_text().splitlines()
    else:
        source = sys.stdin
    try:
        served = serve_stream(service, source, sys.stdout)
        stats = service.stats()
    finally:
        service.close()
    print(f"served {served} requests — {stats.describe()}", file=sys.stderr)
    return 0


def _serve_socket(args: argparse.Namespace, service) -> int:
    """Run the TCP front-end until SIGTERM/SIGINT, then drain gracefully."""
    import signal
    import threading

    from repro.service import SocketServer

    server = SocketServer(
        service,
        host=args.host,
        port=args.port,
        max_connections=args.max_connections,
        idle_timeout=args.idle_timeout,
    )
    shutdown_requested = threading.Event()

    def _request_shutdown(signum, frame):  # noqa: ARG001 - signal signature
        # Signal handlers must stay tiny: flag only; the actual drain
        # (joining connection threads, flushing responses) runs on the main
        # thread below.
        shutdown_requested.set()

    previous = {}
    for signum in (signal.SIGTERM, signal.SIGINT):
        previous[signum] = signal.signal(signum, _request_shutdown)
    try:
        host, port = server.start()
        print(f"serving on {host}:{port} (ctrl-c or SIGTERM drains)", file=sys.stderr)
        shutdown_requested.wait()
        server.close(drain=True)
        stats = service.stats()
    finally:
        for signum, handler in previous.items():
            signal.signal(signum, handler)
        service.close()
    print(f"drained — {stats.describe()}", file=sys.stderr)
    return 0


def _cmd_route(args: argparse.Namespace) -> int:
    """Front a fleet of ``repro serve --port`` nodes with consistent-hash
    routing: JSON-lines in, JSON-lines out, each response stamped with the
    node that served it."""
    from repro.service import Router, route_stream

    router = Router(
        args.nodes,
        replicas=args.replicas,
        timeout=args.request_timeout,
    )
    if args.requests:
        source = Path(args.requests).read_text().splitlines()
    else:
        source = sys.stdin
    try:
        with router:
            routed = route_stream(router, source, sys.stdout)
            stats = router.stats()
    except OSError as error:
        raise ReproError(f"fleet unreachable: {error}") from error
    cache = stats.get("result_cache")
    cache_note = (
        ""
        if not isinstance(cache, dict)
        else f", result-cache hit rate {cache.get('hit_rate', 0.0):.0%}"
    )
    print(
        f"routed {routed} requests across {len(router.ring)} nodes — "
        f"fleet served {stats.get('served', 0)}, failed {stats.get('failed', 0)}"
        f"{cache_note}",
        file=sys.stderr,
    )
    return 0


def _cmd_dataset(args: argparse.Namespace) -> int:
    dataset = BHiveDataset.synthesize(
        args.size,
        min_instructions=args.min_instructions,
        max_instructions=args.max_instructions,
        microarchs=tuple(args.uarchs),
        rng=args.seed,
        backend=args.backend,
        workers=args.workers,
    )
    dataset.save(args.output)
    print(f"wrote {len(dataset)} blocks to {args.output}")
    return 0


# -------------------------------------------------------------------- parser


def _add_block_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--block", help="inline block text; instructions separated by ';' or newlines"
    )
    parser.add_argument("--block-file", help="path to a file with one instruction per line")


def _add_backend_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--backend",
        default="serial",
        choices=available_backends(),
        help="execution substrate for batched model/oracle work "
        "(process escapes the GIL for simulator models)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker count for the thread/process backends (default: CPU count)",
    )


def _add_explain_config_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--epsilon", type=float, default=0.5, help="acceptance ball radius")
    parser.add_argument(
        "--relative-epsilon", type=float, default=0.1, help="relative ball component"
    )
    parser.add_argument("--delta", type=float, default=0.3, help="1 - precision threshold")
    parser.add_argument("--coverage-samples", type=int, default=400)
    parser.add_argument("--max-precision-samples", type=int, default=150)


def _add_model_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--model", default="uica", choices=_CLI_MODELS, help="cost model to query"
    )
    parser.add_argument(
        "--uarch",
        default="hsw",
        choices=available_microarchitectures(),
        help="target micro-architecture",
    )


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="COMET cost-model explanation framework (reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    predict = subparsers.add_parser("predict", help="predict a block's throughput")
    _add_block_arguments(predict)
    _add_model_arguments(predict)
    predict.set_defaults(func=_cmd_predict)

    explain = subparsers.add_parser("explain", help="explain a cost model's prediction")
    _add_block_arguments(explain)
    _add_model_arguments(explain)
    _add_explain_config_arguments(explain)
    explain.add_argument("--seed", type=int, default=0)
    explain.add_argument("--json", action="store_true", help="emit JSON instead of text")
    explain.add_argument(
        "--blocks-file",
        help="explain a whole fleet: a file with one block per line "
        "(instructions separated by ';'; blank and '#' lines are skipped)",
    )
    explain.add_argument(
        "--checkpoint",
        help="journal path for a crash-safe --blocks-file run; rerunning the "
        "same command resumes where the interrupted run stopped and yields "
        "bit-for-bit identical results",
    )
    _add_backend_arguments(explain)
    explain.set_defaults(func=_cmd_explain)

    serve = subparsers.add_parser(
        "serve",
        help="serve explanation requests from a warm session "
        "(JSON-lines on stdin/stdout)",
    )
    _add_model_arguments(serve)
    _add_explain_config_arguments(serve)
    _add_backend_arguments(serve)
    serve.add_argument(
        "--dispatchers",
        type=int,
        default=None,
        help="dispatcher threads serving the request queue (default: the "
        "REPRO_DISPATCHERS environment variable, or 1); requests are routed "
        "by (model, uarch) key, so seeded results are identical at any "
        "dispatcher count while distinct models run in parallel",
    )
    serve.add_argument(
        "--continuous-batching",
        action=argparse.BooleanOptionalAction,
        default=None,
        help="fuse concurrent same-(model, uarch) requests into shared "
        "predict_batch ticks at KL-LUCB round granularity (default: the "
        "REPRO_FUSED environment variable, or off); per-request results "
        "stay bit-for-bit identical to unfused serving",
    )
    serve.add_argument(
        "--max-fused-requests",
        type=int,
        default=None,
        help="cap on requests resident in one fused tick group (default: "
        "the REPRO_MAX_FUSED environment variable, or 8)",
    )
    serve.add_argument(
        "--max-queue",
        type=int,
        default=64,
        help="bound on buffered requests (backpressure surface)",
    )
    serve.add_argument(
        "--max-sessions",
        type=int,
        default=4,
        help="how many per-model warm sessions to keep resident",
    )
    serve.add_argument(
        "--request-timeout",
        type=float,
        default=None,
        help="server-side deadline in seconds applied to every request that "
        "does not carry its own; enforced while queued and cooperatively "
        "between estimation rounds while running (default: none)",
    )
    serve.add_argument(
        "--requests",
        help="read request lines from this file instead of stdin "
        "(one JSON object or block text per line)",
    )
    serve.add_argument(
        "--port",
        type=int,
        default=None,
        help="serve the JSON-lines protocol over TCP on this port instead of "
        "stdin/stdout (0 picks an ephemeral port; printed to stderr)",
    )
    serve.add_argument(
        "--host",
        default="127.0.0.1",
        help="bind address for --port (default: loopback only)",
    )
    serve.add_argument(
        "--max-connections",
        type=int,
        default=8,
        help="concurrent TCP client cap for --port; extra connections get an "
        "in-band error and are closed",
    )
    serve.add_argument(
        "--idle-timeout",
        type=float,
        default=None,
        help="seconds a TCP connection may idle (no traffic, no response "
        "owed) before the server hangs up (default: never)",
    )
    serve.add_argument(
        "--result-cache",
        default=None,
        metavar="PATH",
        help="persist whole explanations to this on-disk store and serve "
        "repeats from it (tier-0 in-process LRU over a tier-1 append-only "
        "log; default: the REPRO_RESULT_CACHE environment variable, or off)",
    )
    serve.add_argument(
        "--no-result-cache",
        dest="result_cache",
        action="store_false",
        help="disable the result cache even when REPRO_RESULT_CACHE is set",
    )
    serve.set_defaults(func=_cmd_serve)

    route = subparsers.add_parser(
        "route",
        help="front a fleet of 'repro serve --port' nodes with "
        "consistent-hash routing (JSON-lines on stdin/stdout)",
    )
    route.add_argument(
        "--nodes",
        required=True,
        help="comma-separated fleet addresses, host:port,host:port,... "
        "(each a running 'repro serve --port' process); requests route by "
        "(model, uarch, blocks) so repeats of a request always land on the "
        "node whose caches are already warm for it",
    )
    route.add_argument(
        "--replicas",
        type=int,
        default=64,
        help="virtual points per node on the hash ring (more = smoother "
        "load split; placement stays deterministic at any count)",
    )
    route.add_argument(
        "--request-timeout",
        type=float,
        default=None,
        help="seconds to wait for each routed response (default: forever)",
    )
    route.add_argument(
        "--requests",
        help="read request lines from this file instead of stdin "
        "(one JSON object or block text per line)",
    )
    route.set_defaults(func=_cmd_route)

    features = subparsers.add_parser("features", help="list a block's candidate features")
    _add_block_arguments(features)
    features.set_defaults(func=_cmd_features)

    perturb = subparsers.add_parser("perturb", help="sample perturbations of a block")
    _add_block_arguments(perturb)
    perturb.add_argument("--count", type=int, default=3, help="number of perturbations")
    perturb.add_argument(
        "--preserve-count", action="store_true", help="preserve the instruction count"
    )
    perturb.add_argument(
        "--preserve-instruction",
        type=int,
        action="append",
        help="1-based index of an instruction to preserve (repeatable)",
    )
    perturb.add_argument("--seed", type=int, default=0)
    perturb.set_defaults(func=_cmd_perturb)

    space = subparsers.add_parser(
        "space", help="estimate the size of a block's perturbation space (Appendix F)"
    )
    _add_block_arguments(space)
    space.set_defaults(func=_cmd_space)

    optimize = subparsers.add_parser(
        "optimize", help="explanation-guided predicted-cost minimisation"
    )
    _add_block_arguments(optimize)
    _add_model_arguments(optimize)
    optimize.add_argument("--steps", type=int, default=40)
    optimize.add_argument(
        "--unguided", action="store_true", help="disable explanation guidance"
    )
    optimize.add_argument("--seed", type=int, default=0)
    optimize.set_defaults(func=_cmd_optimize)

    dataset = subparsers.add_parser(
        "dataset", help="synthesize a BHive-style dataset and save it as JSON"
    )
    dataset.add_argument("--size", type=int, default=200)
    dataset.add_argument("--min-instructions", type=int, default=2)
    dataset.add_argument("--max-instructions", type=int, default=12)
    dataset.add_argument(
        "--uarchs", nargs="+", default=list(available_microarchitectures())
    )
    dataset.add_argument("--seed", type=int, default=0)
    dataset.add_argument("--output", required=True, help="output JSON path")
    _add_backend_arguments(dataset)
    dataset.set_defaults(func=_cmd_dataset)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    sys.exit(main())
