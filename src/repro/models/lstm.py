"""A minimal-but-complete LSTM layer in pure NumPy (forward and backward).

PyTorch is not available in the offline reproduction environment, so the
Ithemal-like neural cost model is built on this layer.  The implementation
follows the standard LSTM equations (no peepholes), processes one sequence at
a time (basic blocks are short, so batching adds little), and provides exact
analytic gradients which are checked against numerical gradients in the test
suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.utils.rng import RandomSource, as_rng


def sigmoid(x: np.ndarray) -> np.ndarray:
    """Numerically stable logistic function."""
    out = np.empty_like(x)
    positive = x >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-x[positive]))
    ex = np.exp(x[~positive])
    out[~positive] = ex / (1.0 + ex)
    return out


@dataclass
class LSTMCell:
    """Parameters of one LSTM cell.

    Weight layout: the four gates (input, forget, output, candidate) are
    stacked along the second axis of ``w_x``/``w_h`` and of the bias, i.e.
    each has shape ``(input_size, 4 * hidden_size)`` etc.
    """

    input_size: int
    hidden_size: int
    w_x: np.ndarray
    w_h: np.ndarray
    bias: np.ndarray

    @classmethod
    def initialise(
        cls, input_size: int, hidden_size: int, rng: RandomSource = None
    ) -> "LSTMCell":
        """Xavier-style initialisation with forget-gate bias set to 1."""
        generator = as_rng(rng)
        scale_x = 1.0 / np.sqrt(input_size)
        scale_h = 1.0 / np.sqrt(hidden_size)
        w_x = generator.uniform(-scale_x, scale_x, size=(input_size, 4 * hidden_size))
        w_h = generator.uniform(-scale_h, scale_h, size=(hidden_size, 4 * hidden_size))
        bias = np.zeros(4 * hidden_size)
        bias[hidden_size : 2 * hidden_size] = 1.0  # forget gate bias
        return cls(input_size, hidden_size, w_x, w_h, bias)

    def parameters(self) -> Dict[str, np.ndarray]:
        """Named parameter arrays (shared references, not copies)."""
        return {"w_x": self.w_x, "w_h": self.w_h, "bias": self.bias}

    def zero_like_parameters(self) -> Dict[str, np.ndarray]:
        """Zero-filled gradient accumulators with matching shapes."""
        return {name: np.zeros_like(value) for name, value in self.parameters().items()}


@dataclass
class _StepCache:
    x: np.ndarray
    h_prev: np.ndarray
    c_prev: np.ndarray
    gates: np.ndarray
    c: np.ndarray
    tanh_c: np.ndarray


class LSTMLayer:
    """An LSTM layer that runs a whole sequence and supports backprop."""

    def __init__(self, cell: LSTMCell) -> None:
        self.cell = cell

    @classmethod
    def create(
        cls, input_size: int, hidden_size: int, rng: RandomSource = None
    ) -> "LSTMLayer":
        return cls(LSTMCell.initialise(input_size, hidden_size, rng))

    @property
    def hidden_size(self) -> int:
        return self.cell.hidden_size

    # -------------------------------------------------------------- forward

    def forward(
        self, inputs: np.ndarray, initial_state: Optional[Tuple[np.ndarray, np.ndarray]] = None
    ) -> Tuple[np.ndarray, List[_StepCache]]:
        """Run the layer over ``inputs`` of shape ``(T, input_size)``.

        Returns the hidden states ``(T, hidden_size)`` and the per-step caches
        needed by :meth:`backward`.
        """
        cell = self.cell
        hidden = cell.hidden_size
        steps = inputs.shape[0]
        if initial_state is None:
            h = np.zeros(hidden)
            c = np.zeros(hidden)
        else:
            h, c = initial_state
        hs = np.zeros((steps, hidden))
        caches: List[_StepCache] = []
        for t in range(steps):
            x = inputs[t]
            pre = x @ cell.w_x + h @ cell.w_h + cell.bias
            i = sigmoid(pre[:hidden])
            f = sigmoid(pre[hidden : 2 * hidden])
            o = sigmoid(pre[2 * hidden : 3 * hidden])
            g = np.tanh(pre[3 * hidden :])
            c_new = f * c + i * g
            tanh_c = np.tanh(c_new)
            h_new = o * tanh_c
            caches.append(
                _StepCache(
                    x=x,
                    h_prev=h,
                    c_prev=c,
                    gates=np.concatenate([i, f, o, g]),
                    c=c_new,
                    tanh_c=tanh_c,
                )
            )
            h, c = h_new, c_new
            hs[t] = h
        return hs, caches

    def final_hidden(self, inputs: np.ndarray) -> np.ndarray:
        """Convenience: last hidden state of the sequence."""
        hs, _ = self.forward(inputs)
        return hs[-1]

    def forward_batch(
        self, inputs: np.ndarray, lengths: Optional[Sequence[int]] = None
    ) -> np.ndarray:
        """Run the recurrence over a zero-padded batch of sequences.

        Parameters
        ----------
        inputs:
            Array of shape ``(batch, T, input_size)``; sequences shorter than
            ``T`` are zero-padded at the end.
        lengths:
            True length of each sequence (defaults to ``T`` for all).

        Returns the final hidden state of each sequence, shape
        ``(batch, hidden_size)`` — each row is taken at that sequence's last
        real step, so padding never leaks into the result.  Inference only
        (no caches for backprop); training keeps the per-sequence path.
        """
        if inputs.ndim != 3:
            raise ValueError("inputs must have shape (batch, T, input_size)")
        cell = self.cell
        hidden = cell.hidden_size
        batch, steps, _ = inputs.shape
        if lengths is None:
            length_array = np.full(batch, steps, dtype=np.intp)
        else:
            length_array = np.asarray(lengths, dtype=np.intp)
            if length_array.shape != (batch,):
                raise ValueError("lengths must have one entry per sequence")
            if steps and (length_array < 1).any():
                raise ValueError("every sequence must have at least one step")
            if (length_array > steps).any():
                raise ValueError("sequence lengths cannot exceed the padded size")
        h = np.zeros((batch, hidden))
        c = np.zeros((batch, hidden))
        final = np.zeros((batch, hidden))
        for t in range(steps):
            pre = inputs[:, t, :] @ cell.w_x + h @ cell.w_h + cell.bias
            i = sigmoid(pre[:, :hidden])
            f = sigmoid(pre[:, hidden : 2 * hidden])
            o = sigmoid(pre[:, 2 * hidden : 3 * hidden])
            g = np.tanh(pre[:, 3 * hidden :])
            c_new = f * c + i * g
            h_new = o * np.tanh(c_new)
            # Freeze sequences that already ended so padding steps are no-ops.
            active = length_array > t
            h = np.where(active[:, None], h_new, h)
            c = np.where(active[:, None], c_new, c)
            ending = length_array == t + 1
            if ending.any():
                final[ending] = h_new[ending]
        return final

    # ------------------------------------------------------------- backward

    def backward(
        self, d_hs: np.ndarray, caches: List[_StepCache]
    ) -> Tuple[np.ndarray, Dict[str, np.ndarray]]:
        """Backpropagate gradients ``d_hs`` (same shape as the forward output).

        Returns gradients with respect to the inputs ``(T, input_size)`` and a
        dict of parameter gradients.
        """
        cell = self.cell
        hidden = cell.hidden_size
        steps = len(caches)
        grads = cell.zero_like_parameters()
        d_inputs = np.zeros((steps, cell.input_size))
        d_h_next = np.zeros(hidden)
        d_c_next = np.zeros(hidden)

        for t in reversed(range(steps)):
            cache = caches[t]
            i = cache.gates[:hidden]
            f = cache.gates[hidden : 2 * hidden]
            o = cache.gates[2 * hidden : 3 * hidden]
            g = cache.gates[3 * hidden :]

            d_h = d_hs[t] + d_h_next
            d_o = d_h * cache.tanh_c
            d_c = d_c_next + d_h * o * (1.0 - cache.tanh_c**2)
            d_f = d_c * cache.c_prev
            d_i = d_c * g
            d_g = d_c * i
            d_c_next = d_c * f

            d_pre = np.concatenate(
                [
                    d_i * i * (1.0 - i),
                    d_f * f * (1.0 - f),
                    d_o * o * (1.0 - o),
                    d_g * (1.0 - g**2),
                ]
            )
            grads["w_x"] += np.outer(cache.x, d_pre)
            grads["w_h"] += np.outer(cache.h_prev, d_pre)
            grads["bias"] += d_pre
            d_inputs[t] = d_pre @ cell.w_x.T
            d_h_next = d_pre @ cell.w_h.T

        return d_inputs, grads


def sequence_final_state(layer: LSTMLayer, inputs: np.ndarray) -> np.ndarray:
    """Final hidden state of ``inputs`` under ``layer`` (helper for examples)."""
    if inputs.ndim != 2:
        raise ValueError("inputs must have shape (T, input_size)")
    return layer.final_hidden(inputs)


class AdamOptimizer:
    """Adam optimiser over a flat dict of named parameter arrays."""

    def __init__(
        self,
        parameters: Dict[str, np.ndarray],
        learning_rate: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        epsilon: float = 1e-8,
    ) -> None:
        self.parameters = parameters
        self.learning_rate = learning_rate
        self.beta1 = beta1
        self.beta2 = beta2
        self.epsilon = epsilon
        self.step_count = 0
        self._m = {k: np.zeros_like(v) for k, v in parameters.items()}
        self._v = {k: np.zeros_like(v) for k, v in parameters.items()}

    def step(self, grads: Dict[str, np.ndarray], clip_norm: float = 5.0) -> None:
        """Apply one Adam update (with global-norm gradient clipping)."""
        total = np.sqrt(sum(float(np.sum(g**2)) for g in grads.values()))
        scale = 1.0
        if clip_norm and total > clip_norm:
            scale = clip_norm / (total + 1e-12)
        self.step_count += 1
        t = self.step_count
        for key, grad in grads.items():
            grad = grad * scale
            self._m[key] = self.beta1 * self._m[key] + (1 - self.beta1) * grad
            self._v[key] = self.beta2 * self._v[key] + (1 - self.beta2) * grad**2
            m_hat = self._m[key] / (1 - self.beta1**t)
            v_hat = self._v[key] / (1 - self.beta2**t)
            self.parameters[key] -= (
                self.learning_rate * m_hat / (np.sqrt(v_hat) + self.epsilon)
            )
