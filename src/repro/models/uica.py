"""uiCA-style simulation-based cost model.

Wraps the out-of-order :class:`~repro.models.pipeline.PipelineSimulator` in
the :class:`~repro.models.base.CostModel` query interface.  In the paper,
uiCA is the lowest-error throughput predictor; in this reproduction it plays
the same role against the synthetic hardware oracle (which is a more detailed
configuration of the same simulator family plus measurement noise), so its
error stays low while remaining non-zero.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.bb.block import BasicBlock
from repro.models.base import CostModel
from repro.models.pipeline import PipelineSimulator, SimulationConfig, SimulationResult
from repro.runtime.backend import ExecutionBackend


class UiCACostModel(CostModel):
    """Simulation-based throughput predictor (uiCA stand-in)."""

    #: Default simulator configuration: register-move elimination is modelled
    #: (both Haswell and Skylake implement it); the renamer's zero-idiom
    #: handling and the longer measurement window are left to the hardware
    #: oracle, so uiCA keeps a small but non-zero error against "hardware".
    DEFAULT_CONFIG = SimulationConfig(move_elimination=True)

    def __init__(
        self,
        microarch="hsw",
        config: Optional[SimulationConfig] = None,
        *,
        batch_workers: int = 0,
        backend: Optional[ExecutionBackend] = None,
    ) -> None:
        super().__init__(microarch)
        self.config = config or self.DEFAULT_CONFIG
        self.simulator = PipelineSimulator(self.microarch, self.config)
        self.name = f"uica-{self.microarch.short_name}"
        self.batch_workers = batch_workers
        if backend is not None:
            self.set_backend(backend)

    def _predict(self, block: BasicBlock) -> float:
        return self.simulator.throughput(block)

    def _predict_batch(self, blocks: Sequence[BasicBlock]) -> List[float]:
        # The simulator holds no mutable state across simulate() calls and is
        # picklable, so a batch can fan out across threads or processes
        # whenever an execution backend allows it.
        return self._fanout_predict_batch(blocks)

    def analyze(self, block: BasicBlock) -> SimulationResult:
        """Full simulation result, including port pressure and the bottleneck.

        This mirrors uiCA's ability to report *where* in the pipeline the
        bottleneck lies (Appendix H.3); it is not used by COMET itself (which
        only needs query access) but is exposed for the example applications.
        """
        return self.simulator.simulate(block)
