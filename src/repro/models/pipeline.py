"""Out-of-order pipeline simulator (the simulation substrate behind uiCA).

The paper evaluates COMET on uiCA, a hand-engineered simulator of recent
Intel pipelines.  uiCA itself is not available offline, so this module
implements a simplified out-of-order core simulator with the components that
dominate basic-block throughput on Haswell/Skylake-class machines:

* an in-order front end issuing ``issue_width`` micro-ops per cycle,
* per-port execution with port contention (a uop occupies the least-loaded
  port among the ports its instruction class may use),
* non-pipelined execution units (division) occupying their port for the
  instruction's full reciprocal throughput,
* true (RAW) register and memory dependencies, including loop-carried
  dependencies, with load-to-use latency and store-to-load forwarding,
* optional idiom handling (register move elimination, zero idioms) used by
  the "hardware oracle" configuration of the dataset generator.

The simulator executes the block in a steady-state loop (the BHive
measurement methodology) and reports cycles per iteration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.bb.block import BasicBlock
from repro.isa.instructions import Instruction, Location
from repro.isa.operands import RegisterOperand
from repro.uarch.microarch import MicroArchitecture, get_microarch
from repro.uarch.tables import InstructionCost, instruction_cost_for


@dataclass(frozen=True)
class SimulationConfig:
    """Detail knobs of the pipeline simulator.

    ``measured_iterations``/``warmup_iterations`` control the steady-state
    measurement; the elimination flags model renamer idioms that the more
    detailed "hardware oracle" configuration enables.
    """

    measured_iterations: int = 12
    warmup_iterations: int = 3
    move_elimination: bool = False
    zero_idiom_elimination: bool = False
    store_forwarding_latency: int = 5
    frontend_bandwidth: Optional[int] = None

    def __post_init__(self) -> None:
        if self.measured_iterations < 1:
            raise ValueError("measured_iterations must be >= 1")
        if self.warmup_iterations < 0:
            raise ValueError("warmup_iterations must be >= 0")


@dataclass
class SimulationResult:
    """Outcome of simulating one block."""

    throughput: float
    total_cycles: float
    port_pressure: Dict[str, float]
    frontend_bound: float
    port_bound: float
    dependency_bound: float

    @property
    def bottleneck(self) -> str:
        """Which resource limits this block (``frontend``/``ports``/``dependencies``)."""
        bounds = {
            "frontend": self.frontend_bound,
            "ports": self.port_bound,
            "dependencies": self.dependency_bound,
        }
        return max(bounds, key=lambda k: bounds[k])


#: Ignored for scheduling: flags and stack-pointer updates are renamed away.
_UNTRACKED_ROOTS = {"rflags", "rsp", "rip"}


def _tracked(location: Location) -> bool:
    space, payload = location
    if space == "flags":
        return False
    if space == "reg" and payload in _UNTRACKED_ROOTS:
        return False
    return True


def _is_reg_move(instruction: Instruction) -> bool:
    return (
        instruction.mnemonic in ("mov", "movaps", "movups", "movdqa", "vmovaps", "vmovups")
        and len(instruction.operands) == 2
        and all(isinstance(op, RegisterOperand) for op in instruction.operands)
    )


def _is_zero_idiom(instruction: Instruction) -> bool:
    if instruction.mnemonic not in ("xor", "pxor", "xorps", "vpxor", "vxorps", "sub"):
        return False
    ops = instruction.operands
    if len(ops) == 2 and all(isinstance(op, RegisterOperand) for op in ops):
        return ops[0].register.root == ops[1].register.root
    if len(ops) == 3 and all(isinstance(op, RegisterOperand) for op in ops):
        return ops[1].register.root == ops[2].register.root
    return False


@dataclass
class _StaticInstruction:
    """Per-static-instruction data precomputed before the iteration loop."""

    instruction: Instruction
    cost: InstructionCost
    reads: Tuple[Location, ...]
    writes: Tuple[Location, ...]
    eliminated: bool
    breaks_dependency: bool


class PipelineSimulator:
    """Steady-state loop simulator for one micro-architecture."""

    def __init__(self, microarch="hsw", config: Optional[SimulationConfig] = None) -> None:
        self.microarch: MicroArchitecture = get_microarch(microarch)
        self.config = config or SimulationConfig()

    # ----------------------------------------------------------------- API

    def simulate(self, block: BasicBlock) -> SimulationResult:
        """Simulate ``block`` looped in steady state and return its metrics."""
        statics = [self._prepare(inst) for inst in block]
        config = self.config
        width = config.frontend_bandwidth or self.microarch.issue_width

        register_ready: Dict[Location, float] = {}
        port_free: Dict[str, float] = {p: 0.0 for p in self.microarch.ports}
        port_busy: Dict[str, float] = {p: 0.0 for p in self.microarch.ports}

        frontend_cycle = 0.0
        slots_left = float(width)

        total_iterations = config.warmup_iterations + config.measured_iterations
        iteration_end: List[float] = []
        last_finish = 0.0

        for _ in range(total_iterations):
            for static in statics:
                # -- front end ------------------------------------------------
                uop_count = 0 if static.eliminated else static.cost.total_uops
                uop_count = max(uop_count, 1)  # even eliminated uops are renamed
                issue_time = frontend_cycle
                remaining = uop_count
                while remaining > 0:
                    take = min(remaining, slots_left)
                    remaining -= take
                    slots_left -= take
                    issue_time = frontend_cycle
                    if slots_left <= 0:
                        frontend_cycle += 1.0
                        slots_left = float(width)

                if static.eliminated:
                    # Renamer handles the move/zero idiom: result is ready
                    # immediately after its sources (or unconditionally for
                    # zero idioms), no execution ports are used.
                    ready = issue_time
                    if not static.breaks_dependency:
                        for loc in static.reads:
                            ready = max(ready, register_ready.get(loc, 0.0))
                    finish = ready
                    for loc in static.writes:
                        register_ready[loc] = finish
                    last_finish = max(last_finish, finish)
                    continue

                # -- dependencies ---------------------------------------------
                ready = issue_time
                if not static.breaks_dependency:
                    for loc in static.reads:
                        ready = max(ready, register_ready.get(loc, 0.0))

                # -- execution ports ------------------------------------------
                start = ready
                dispatch_time = start
                for uop_index, uop in enumerate(static.cost.uops):
                    for _ in range(uop.count):
                        # Tie-break equally-loaded ports by name: port sets are
                        # frozensets of str, whose iteration order follows the
                        # per-process hash seed — an unkeyed min() would make
                        # simulated throughput differ between interpreter
                        # launches (and between spawn-style backend workers).
                        port = min(uop.ports, key=lambda p: (port_free[p], p))
                        port_start = max(start, port_free[port])
                        occupancy = 1.0
                        if uop_index == 0 and static.cost.throughput > 1.0:
                            occupancy = float(static.cost.throughput)
                        port_free[port] = port_start + occupancy
                        port_busy[port] += occupancy
                        dispatch_time = max(dispatch_time, port_start)

                finish = dispatch_time + max(static.cost.latency, 1.0)
                for loc in static.writes:
                    register_ready[loc] = finish
                last_finish = max(last_finish, finish)
            iteration_end.append(max(frontend_cycle, last_finish))

        warm = config.warmup_iterations
        if warm > 0:
            cycles = iteration_end[-1] - iteration_end[warm - 1]
        else:
            cycles = iteration_end[-1]
        throughput = max(cycles / config.measured_iterations, 0.05)

        total_uops = sum(
            max(1, 0 if s.eliminated else s.cost.total_uops) for s in statics
        )
        frontend_bound = total_uops / width
        port_bound = (
            max(port_busy.values()) / total_iterations if port_busy else 0.0
        )
        dependency_bound = self._dependency_bound(block, statics)

        return SimulationResult(
            throughput=throughput,
            total_cycles=iteration_end[-1],
            port_pressure={
                p: busy / total_iterations for p, busy in port_busy.items()
            },
            frontend_bound=frontend_bound,
            port_bound=port_bound,
            dependency_bound=dependency_bound,
        )

    def throughput(self, block: BasicBlock) -> float:
        """Convenience wrapper returning only the steady-state throughput.

        ``simulate`` keeps all mutable state in locals, so concurrent calls
        (e.g. :class:`~repro.models.uica.UiCACostModel`'s thread fan-out)
        are safe.
        """
        return self.simulate(block).throughput

    # ------------------------------------------------------------ internals

    def _prepare(self, instruction: Instruction) -> _StaticInstruction:
        cost = instruction_cost_for(instruction, self.microarch)
        eliminated = False
        breaks_dependency = False
        if self.config.zero_idiom_elimination and _is_zero_idiom(instruction):
            eliminated = True
            breaks_dependency = True
        elif self.config.move_elimination and _is_reg_move(instruction):
            eliminated = True
        reads = tuple(loc for loc in instruction.reads if _tracked(loc))
        writes = tuple(loc for loc in instruction.writes if _tracked(loc))
        return _StaticInstruction(
            instruction=instruction,
            cost=cost,
            reads=reads,
            writes=writes,
            eliminated=eliminated,
            breaks_dependency=breaks_dependency,
        )

    def _dependency_bound(
        self, block: BasicBlock, statics: List[_StaticInstruction]
    ) -> float:
        """Latency of the longest loop-carried RAW chain, per iteration.

        A cheap lower bound: sum of latencies along the longest RAW path when
        the path wraps around the loop (producer in one iteration feeding a
        consumer in the next).  Used only for bottleneck classification.
        """
        best = 0.0
        latencies = [max(s.cost.latency, 1.0) for s in statics]
        from repro.bb.dependencies import DependencyKind

        chain: Dict[int, float] = {}
        for dep in block.dependencies:
            if dep.kind is not DependencyKind.RAW:
                continue
            src_latency = chain.get(dep.source, latencies[dep.source])
            candidate = src_latency + latencies[dep.destination]
            if candidate > chain.get(dep.destination, 0.0):
                chain[dep.destination] = candidate
            best = max(best, candidate)
        return best
